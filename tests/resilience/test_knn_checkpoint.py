"""Crash/resume for the multi-round kNN driver.

The driver journals each completed round (and, pooled, each shard inside
the running round); a kill at *any* dispatch ordinal followed by
``Runner.resume`` must reproduce the uninterrupted :class:`KnnResult`
byte-for-byte, re-executing only the incomplete rounds.
"""

from __future__ import annotations

import pytest

from repro.data import uniform
from repro.resilience import (
    CheckpointStore,
    CrashPoint,
    FaultPlan,
    SimulatedCrashError,
)
from repro.runtime import (
    CheckpointConfig,
    KnnConvergenceError,
    Runner,
    RuntimeConfig,
    ShardingConfig,
    compile_knn_join,
)

_K = 4
_EPS0 = 0.02  # small enough that 200 uniform points need several rounds


@pytest.fixture(scope="module")
def points():
    return uniform(200, 2, seed=17, low=0.0, high=1.0)


def _pooled(**kw) -> RuntimeConfig:
    return RuntimeConfig(sharding=ShardingConfig(num_devices=3), **kw)


def _plan(points, rc: RuntimeConfig):
    return compile_knn_join(points, _K, rc, epsilon0=_EPS0)


@pytest.fixture(scope="module")
def golden(points):
    return Runner().run(_plan(points, _pooled()))


def _assert_identical(resumed, golden):
    assert resumed.indices.tobytes() == golden.indices.tobytes()
    assert resumed.distances.tobytes() == golden.distances.tobytes()
    assert resumed.rounds == golden.rounds
    assert resumed.final_epsilon == golden.final_epsilon
    assert resumed.total_seconds == golden.total_seconds


def test_multiple_rounds_exercised(golden):
    assert golden.rounds >= 3  # the matrix below must cover round boundaries


def test_kill_at_every_dispatch_then_resume(points, golden, tmp_path):
    """The full matrix: one kill per dispatch ordinal until the run
    completes uncrashed, each resumed to a bit-identical result."""
    fired = 0
    for kill in range(64):
        ck = CheckpointConfig(directory=str(tmp_path / f"kill{kill}"))
        crashing = _pooled(
            fault_plan=FaultPlan(crashes=(CrashPoint(at_shard=kill),)),
            checkpoint=ck,
        )
        try:
            Runner().run(_plan(points, crashing))
            break  # ordinal beyond the final dispatch: nothing to kill
        except SimulatedCrashError:
            fired += 1
        resumed = Runner().resume(_plan(points, _pooled(checkpoint=ck)))
        _assert_identical(resumed, golden)
    else:
        pytest.fail("crash matrix never ran to completion")
    # at least one kill inside every round (round 0 alone has 6 shards)
    assert fired > golden.rounds


def test_resume_skips_completed_rounds(points, golden, tmp_path):
    """A kill after round 0 finished must replay round 0 from the journal
    (driver load) instead of re-executing its shards."""
    ck = CheckpointConfig(directory=str(tmp_path))
    round0_shards = 6  # 3 devices x 2 shards per device
    crashing = _pooled(
        fault_plan=FaultPlan(crashes=(CrashPoint(at_shard=round0_shards),)),
        checkpoint=ck,
    )
    with pytest.raises(SimulatedCrashError):
        Runner().run(_plan(points, crashing))
    runner = Runner()
    resumed = runner.resume(_plan(points, _pooled(checkpoint=ck)))
    _assert_identical(resumed, golden)
    assert runner.last_checkpoint_stats.loads >= 1


def test_single_device_kill_and_resume(points, tmp_path):
    golden = Runner().run(_plan(points, RuntimeConfig()))
    ck = CheckpointConfig(directory=str(tmp_path))
    crashing = RuntimeConfig(
        fault_plan=FaultPlan(crashes=(CrashPoint(at_shard=1),)), checkpoint=ck
    )
    with pytest.raises(SimulatedCrashError):
        Runner().run(_plan(points, crashing))
    resumed = Runner().resume(_plan(points, RuntimeConfig(checkpoint=ck)))
    _assert_identical(resumed, golden)


def test_journal_cleaned_after_completion(points, tmp_path):
    ck = CheckpointConfig(directory=str(tmp_path))
    Runner().run(_plan(points, _pooled(checkpoint=ck)))
    assert CheckpointStore(str(tmp_path)).runs() == []


def test_non_convergence_keeps_the_journal(points, tmp_path):
    """A driver that hits max_rounds is a failure, not a completion: the
    completed rounds stay durable for diagnosis."""
    ck = CheckpointConfig(directory=str(tmp_path))
    plan = compile_knn_join(
        points, _K, _pooled(checkpoint=ck), epsilon0=1e-4, max_rounds=2
    )
    with pytest.raises(KnnConvergenceError):
        Runner().run(plan)
    assert len(CheckpointStore(str(tmp_path)).runs()) == 1

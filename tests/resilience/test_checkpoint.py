"""Durable checkpoint/resume: fingerprints, fragments, crash equivalence.

The acceptance property of the tentpole: a run killed at shard *k* and
resumed produces **bit-identical** pairs and an identical trace signature
versus the uninterrupted golden run — across self/bipartite joins and
single-device/pooled execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelfJoin
from repro.data import uniform
from repro.grid import GridIndex
from repro.io import load_shard_fragment, save_shard_fragment
from repro.resilience import (
    CheckpointError,
    CheckpointStore,
    CrashPoint,
    FaultPlan,
    SimulatedCrashError,
    config_identity,
    run_fingerprint,
)
from repro.runtime import (
    CheckpointConfig,
    DeadlineExceededError,
    ProfilingOptions,
    Runner,
    RuntimeConfig,
    ShardingConfig,
    compile_self_join,
    compile_similarity_join,
)

_EPS = 0.09


@pytest.fixture(scope="module")
def points():
    return uniform(260, 2, seed=5, low=0.0, high=1.0)


@pytest.fixture(scope="module")
def queries():
    return uniform(90, 2, seed=8, low=0.0, high=1.0)


@pytest.fixture(scope="module")
def index(points):
    return GridIndex(points, _EPS)


def _pooled(**kw) -> RuntimeConfig:
    return RuntimeConfig(sharding=ShardingConfig(num_devices=3), **kw)


# ------------------------------------------------------------ identity
class TestFingerprint:
    def test_stable_across_compiles(self, index):
        rc = _pooled()
        a = run_fingerprint(compile_self_join(index, rc))
        b = run_fingerprint(compile_self_join(index, rc))
        assert a == b

    def test_faults_and_checkpoint_do_not_change_identity(self, index, tmp_path):
        clean = compile_self_join(index, _pooled())
        noisy = compile_self_join(
            index,
            _pooled(
                fault_plan=FaultPlan(crashes=(CrashPoint(at_shard=1),)),
                checkpoint=CheckpointConfig(directory=str(tmp_path)),
                profiling=ProfilingOptions(keep_fragments=True),
            ),
        )
        assert run_fingerprint(clean) == run_fingerprint(noisy)

    def test_result_affecting_config_changes_identity(self, index):
        a = compile_self_join(index, _pooled())
        b = compile_self_join(index, RuntimeConfig(sharding=ShardingConfig(num_devices=2)))
        assert run_fingerprint(a) != run_fingerprint(b)

    def test_op_and_data_change_identity(self, index, points, queries):
        rc = _pooled()
        self_fp = run_fingerprint(compile_self_join(index, rc))
        sim_fp = run_fingerprint(compile_similarity_join(index, queries, rc))
        assert self_fp != sim_fp
        other = GridIndex(uniform(100, 2, seed=77, low=0.0, high=1.0), _EPS)
        assert run_fingerprint(compile_self_join(other, rc)) != self_fp

    def test_config_identity_strips_operational_knobs(self, tmp_path):
        base = _pooled()
        noisy = _pooled(
            fault_plan=FaultPlan(crashes=(CrashPoint(at_shard=0),)),
            checkpoint=CheckpointConfig(directory=str(tmp_path)),
        )
        assert config_identity(base) == config_identity(noisy)
        assert config_identity(base) != config_identity(
            RuntimeConfig(sharding=ShardingConfig(num_devices=2))
        )


# ------------------------------------------------------------ fragments
def test_fragment_roundtrip_is_exact(points, tmp_path):
    result = SelfJoin().execute(points, _EPS)
    path = tmp_path / "frag.npz"
    nbytes = save_shard_fragment(path, result, shard_id=3, run_fingerprint="abc123")
    assert nbytes > 0 and path.stat().st_size == nbytes
    loaded, meta = load_shard_fragment(path)
    assert meta["shard_id"] == 3 and meta["run"] == "abc123"
    assert loaded.pairs.tobytes() == result.pairs.tobytes()
    assert loaded.total_seconds == result.total_seconds
    assert loaded.num_pairs == result.num_pairs


# ------------------------------------------------------------ resume
@pytest.mark.parametrize("kill_at", [0, 1, 3])
def test_kill_and_resume_is_bit_identical_pooled_self(index, tmp_path, kill_at):
    golden = Runner().run(compile_self_join(index, _pooled()))
    ck = CheckpointConfig(directory=str(tmp_path))
    crashing = _pooled(
        fault_plan=FaultPlan(crashes=(CrashPoint(at_shard=kill_at),)), checkpoint=ck
    )
    with pytest.raises(SimulatedCrashError):
        Runner().run(compile_self_join(index, crashing))
    runner = Runner()
    resumed = runner.resume(compile_self_join(index, _pooled(checkpoint=ck)))
    assert resumed.pairs.tobytes() == golden.pairs.tobytes()
    assert resumed.trace.signature() == golden.trace.signature()
    assert runner.last_checkpoint_stats.loads == kill_at


@pytest.mark.parametrize("kill_at", [2])
def test_kill_and_resume_is_bit_identical_pooled_bipartite(
    index, queries, tmp_path, kill_at
):
    golden = Runner().run(compile_similarity_join(index, queries, _pooled()))
    ck = CheckpointConfig(directory=str(tmp_path))
    crashing = _pooled(
        fault_plan=FaultPlan(crashes=(CrashPoint(at_shard=kill_at),)), checkpoint=ck
    )
    with pytest.raises(SimulatedCrashError):
        Runner().run(compile_similarity_join(index, queries, crashing))
    resumed = Runner().resume(
        compile_similarity_join(index, queries, _pooled(checkpoint=ck))
    )
    assert resumed.pairs.tobytes() == golden.pairs.tobytes()
    assert resumed.trace.signature() == golden.trace.signature()


def test_single_device_crash_before_launch_then_resume(index, tmp_path):
    golden = Runner().run(compile_self_join(index, RuntimeConfig()))
    ck = CheckpointConfig(directory=str(tmp_path))
    crashing = RuntimeConfig(
        fault_plan=FaultPlan(crashes=(CrashPoint(at_shard=0),)), checkpoint=ck
    )
    with pytest.raises(SimulatedCrashError):
        Runner().run(compile_self_join(index, crashing))
    resumed = Runner().resume(compile_self_join(index, RuntimeConfig(checkpoint=ck)))
    assert resumed.pairs.tobytes() == golden.pairs.tobytes()


def test_completed_run_resumes_from_journal_alone(index, tmp_path):
    ck = CheckpointConfig(directory=str(tmp_path), keep=True)
    plan = compile_self_join(index, RuntimeConfig(checkpoint=ck))
    first = Runner().run(plan)
    runner = Runner()
    again = runner.resume(compile_self_join(index, RuntimeConfig(checkpoint=ck)))
    assert again.pairs.tobytes() == first.pairs.tobytes()
    assert runner.last_checkpoint_stats.loads == 1
    assert runner.last_checkpoint_stats.writes == 0


def test_journal_cleaned_up_unless_kept(index, tmp_path):
    ck = CheckpointConfig(directory=str(tmp_path))
    plan = compile_self_join(index, _pooled(checkpoint=ck))
    Runner().run(plan)
    store = CheckpointStore(str(tmp_path))
    assert store.runs() == []

    kept = CheckpointConfig(directory=str(tmp_path), keep=True)
    plan2 = compile_self_join(index, _pooled(checkpoint=kept))
    Runner().run(plan2)
    assert len(CheckpointStore(str(tmp_path)).runs()) == 1


def test_resume_without_checkpoint_stage_raises(index):
    with pytest.raises(ValueError, match="checkpointed plan"):
        Runner().resume(compile_self_join(index, RuntimeConfig()))


def test_stale_journal_of_a_different_run_raises(index, tmp_path):
    ck = CheckpointConfig(directory=str(tmp_path), keep=True)
    plan = compile_self_join(index, _pooled(checkpoint=ck))
    Runner().run(plan)
    store = CheckpointStore(str(tmp_path))
    fp = run_fingerprint(plan)
    with pytest.raises(CheckpointError, match="different run"):
        store.journal(fp, kind="self", description="x", num_shards=99)


# ------------------------------------------------------------ deadlines
def test_deadline_exceeded_before_first_shard(index):
    with pytest.raises(DeadlineExceededError, match="deadline exceeded"):
        Runner().run(compile_self_join(index, _pooled()), deadline_seconds=0.0)


def test_deadline_preserves_durable_shards(index, tmp_path):
    ck = CheckpointConfig(directory=str(tmp_path), keep=True)
    plan = compile_self_join(index, _pooled(checkpoint=ck))
    runner = Runner()
    result = runner.run(plan)  # no deadline: everything durable
    journal = CheckpointStore(str(tmp_path)).journal(
        run_fingerprint(plan),
        kind="self",
        description=plan.merge_stage.description,
        num_shards=len(plan.shard_stage.plan.shards),
    )
    assert journal.completed_shards() == list(
        range(len(plan.shard_stage.plan.shards))
    )
    merged = journal.load_completed()
    total = sum(r.num_pairs for r in merged.values())
    assert total == result.num_pairs


def test_generous_deadline_changes_nothing(index):
    golden = Runner().run(compile_self_join(index, _pooled()))
    bounded = Runner().run(compile_self_join(index, _pooled()), deadline_seconds=3600.0)
    assert np.array_equal(golden.pairs, bounded.pairs)

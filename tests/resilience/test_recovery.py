"""The acceptance surface of the resilience tentpole: under every injected
fault the merged result is pair-for-pair identical to the fault-free
single-device join, the trace replays exactly per seed, and the recovery
accounting adds up."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelfJoin, SimilarityJoin
from repro.data.adversarial import dense_core_sparse_halo
from repro.multigpu import (
    SCHEDULE_MODES,
    SHARD_PLANNERS,
    MultiGpuSelfJoin,
    MultiGpuSimilarityJoin,
)
from repro.profiling import resilience_report
from repro.resilience import (
    AllDevicesLostError,
    DeviceFailure,
    FaultPlan,
    ForcedOverflow,
    RecoveryPolicy,
    Straggler,
    TransientFaults,
)
from repro.runtime import RuntimeConfig, ShardingConfig

_EPS = 0.9

_SCENARIOS = {
    "kill-one": FaultPlan(seed=1, failures=[DeviceFailure(1, at_shard=1)]),
    "kill-first-dispatch": FaultPlan(seed=2, failures=[DeviceFailure(0, at_shard=0)]),
    "straggler": FaultPlan(seed=3, stragglers=[Straggler(2, slowdown=6.0)]),
    "flaky": FaultPlan(
        seed=4, transients=[TransientFaults(1, probability=0.7, max_failures=3)]
    ),
    "overflow": FaultPlan(
        seed=5, overflows=[ForcedOverflow(0, times=2, clamp_capacity=16)]
    ),
    "everything": FaultPlan(
        seed=6,
        failures=[DeviceFailure(3, at_shard=1)],
        stragglers=[Straggler(2, slowdown=4.0)],
        transients=[TransientFaults(1, probability=0.5, max_failures=2)],
        overflows=[ForcedOverflow(0, times=1, clamp_capacity=32)],
    ),
}


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return dense_core_sparse_halo(240, 2, seed=9)


@pytest.fixture(scope="module")
def baseline(points) -> np.ndarray:
    return SelfJoin().execute(points, _EPS).sorted_pairs()


def _join(
    planner="balanced", schedule="dynamic", fault_plan=None, recovery=None
) -> MultiGpuSelfJoin:
    runtime = RuntimeConfig(
        sharding=ShardingConfig(num_devices=4, planner=planner, schedule=schedule),
        fault_plan=fault_plan,
        recovery=recovery,
    )
    return MultiGpuSelfJoin(runtime=runtime)


# ------------------------------------------------------- pair identity
@pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
@pytest.mark.parametrize("schedule", SCHEDULE_MODES)
def test_faulty_run_matches_fault_free(points, baseline, scenario, schedule):
    result = _join(schedule=schedule, fault_plan=_SCENARIOS[scenario]).execute(
        points, _EPS
    )
    assert np.array_equal(result.sorted_pairs(), baseline)


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
def test_kill_scenario_matches_across_planners(points, baseline, planner):
    result = _join(planner=planner, fault_plan=_SCENARIOS["everything"]).execute(
        points, _EPS
    )
    assert np.array_equal(result.sorted_pairs(), baseline)


def test_bipartite_recovery_matches(points):
    left, right = points[:130], points[110:]
    single = SimilarityJoin().execute(left, right, _EPS)
    multi = MultiGpuSimilarityJoin(
        runtime=RuntimeConfig(
            sharding=ShardingConfig(num_devices=3),
            fault_plan=FaultPlan(seed=8, failures=[DeviceFailure(0, at_shard=1)]),
        )
    ).execute(left, right, _EPS)
    assert np.array_equal(multi.sorted_pairs(), single.sorted_pairs())
    assert multi.recovery_log.num_devices_lost == 1


# ------------------------------------------------------- determinism
@pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
def test_seeded_fault_run_replays_exactly(points, scenario):
    plan = _SCENARIOS[scenario]
    first = _join(fault_plan=plan).execute(points, _EPS)
    second = _join(fault_plan=plan).execute(points, _EPS)
    assert first.trace.signature() == second.trace.signature()
    assert np.array_equal(first.sorted_pairs(), second.sorted_pairs())


def test_reused_instance_replays_exactly(points):
    """Health and injection state re-arm per execute(), so one instance
    run twice gives the same trace — not a drifting one."""
    join = _join(fault_plan=_SCENARIOS["everything"])
    first = join.execute(points, _EPS)
    second = join.execute(points, _EPS)
    assert first.trace.signature() == second.trace.signature()


# ------------------------------------------------------- degradation
def test_degrades_to_single_survivor(points, baseline):
    plan = FaultPlan(
        failures=[DeviceFailure(d, at_shard=0) for d in (0, 1, 2)]
    )
    result = _join(fault_plan=plan).execute(points, _EPS)
    assert np.array_equal(result.sorted_pairs(), baseline)
    log = result.recovery_log
    assert log.num_devices_lost == 3
    # every productive event ran on the lone survivor
    survivors = {
        e.device_id for e in result.trace.events if e.kind in ("run", "speculative")
    }
    assert survivors == {3}


def test_all_devices_lost_raises(points):
    plan = FaultPlan(failures=[DeviceFailure(d, at_shard=0) for d in range(4)])
    with pytest.raises(AllDevicesLostError):
        _join(fault_plan=plan).execute(points, _EPS)


def test_hopeless_transients_exhaust_attempt_budget(points):
    plan = FaultPlan(
        transients=[TransientFaults(d, probability=1.0) for d in range(2)]
    )
    join = MultiGpuSelfJoin(
        runtime=RuntimeConfig(
            sharding=ShardingConfig(num_devices=2),
            fault_plan=plan,
            recovery=RecoveryPolicy(max_shard_attempts=4),
        )
    )
    with pytest.raises(RuntimeError, match="attempts"):
        join.execute(points, _EPS)


# ------------------------------------------------------- accounting
def test_recovery_log_records_the_kill(points):
    result = _join(fault_plan=_SCENARIOS["kill-one"]).execute(points, _EPS)
    log = result.recovery_log
    assert log.num_devices_lost == 1
    assert log.device_failures[0].device_id == 1
    assert log.num_requeues >= 1
    assert all(r.from_device == 1 for r in log.requeues[:1])
    lost = [e for e in result.trace.events if e.kind == "lost"]
    assert len(lost) == 1 and lost[0].num_pairs == 0


def test_transient_backoff_charges_simulated_time(points):
    plan = FaultPlan(
        transients=[TransientFaults(0, probability=1.0, max_failures=1)]
    )
    quick = _join(
        fault_plan=plan, recovery=RecoveryPolicy(transient_backoff_seconds=0.0)
    ).execute(points, _EPS)
    slow = _join(
        fault_plan=plan, recovery=RecoveryPolicy(transient_backoff_seconds=1.0)
    ).execute(points, _EPS)
    assert (
        slow.recovery_log.transients[0].wasted_seconds
        == pytest.approx(quick.recovery_log.transients[0].wasted_seconds + 1.0)
    )


def test_speculation_beats_no_speculation_on_straggler(points, baseline):
    plan = _SCENARIOS["straggler"]
    with_spec = _join(fault_plan=plan, recovery=RecoveryPolicy()).execute(points, _EPS)
    without = _join(
        fault_plan=plan, recovery=RecoveryPolicy(speculation=False)
    ).execute(points, _EPS)
    assert np.array_equal(with_spec.sorted_pairs(), baseline)
    assert np.array_equal(without.sorted_pairs(), baseline)
    if with_spec.recovery_log.num_speculative_wins:
        assert with_spec.makespan_seconds < without.makespan_seconds


def test_resilience_report_totals(points):
    result = _join(fault_plan=_SCENARIOS["everything"]).execute(points, _EPS)
    rep = resilience_report(result)
    log = result.recovery_log
    assert rep.devices_lost == log.num_devices_lost == 1
    assert rep.degraded
    assert rep.transient_retries == log.num_transient_retries
    assert rep.shard_requeues == log.num_requeues
    assert rep.speculations == log.num_speculations
    assert rep.busy_seconds == pytest.approx(
        result.pool_stats.total_busy_seconds
    )
    assert 0.0 <= rep.waste_fraction < 1.0
    record = rep.to_record()
    assert record["degraded"] is True
    assert record["wasted_seconds"] == pytest.approx(rep.wasted_seconds)


def test_fault_free_resilient_run_reports_zero_waste(points, baseline):
    """The resilient loop with nothing to recover is a clean pass-through."""
    result = _join(recovery=RecoveryPolicy()).execute(points, _EPS)
    assert np.array_equal(result.sorted_pairs(), baseline)
    rep = resilience_report(result)
    assert not rep.degraded
    assert rep.wasted_seconds == 0.0
    assert rep.transient_retries == rep.shard_requeues == 0

"""Fault plans and the injecting executor wrapper: declarative, seeded,
and transparent when empty."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OptimizationConfig, SelfJoin
from repro.core.executor import DeviceExecutor
from repro.grid import GridIndex
from repro.resilience import (
    DeviceFailure,
    DeviceLostError,
    FaultPlan,
    FaultyExecutor,
    ForcedOverflow,
    Straggler,
    TransientFaults,
    TransientKernelError,
)
from repro.simt import CostParams, DeviceSpec

_EPS = 0.8


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return np.random.default_rng(11).uniform(0.0, 10.0, size=(150, 2))


def _executor(**kw) -> DeviceExecutor:
    return DeviceExecutor(DeviceSpec(), CostParams(), seed=0, **kw)


# ---------------------------------------------------------------- plans
class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.describe() == "fault-free"
        assert plan.failure_for(0) is None
        assert plan.straggler_factor(0) == 1.0

    def test_lists_coerced_to_tuples(self):
        plan = FaultPlan(failures=[DeviceFailure(0)], stragglers=[Straggler(1)])
        assert isinstance(plan.failures, tuple)
        assert isinstance(plan.stragglers, tuple)
        assert not plan.is_empty

    def test_earliest_failure_wins(self):
        plan = FaultPlan(
            failures=[DeviceFailure(0, at_shard=5), DeviceFailure(0, at_shard=2)]
        )
        assert plan.failure_for(0).at_shard == 2
        assert plan.failure_for(1) is None

    def test_straggler_factors_compose(self):
        plan = FaultPlan(stragglers=[Straggler(0, 2.0), Straggler(0, 3.0)])
        assert plan.straggler_factor(0) == pytest.approx(6.0)

    def test_describe_names_every_fault(self):
        plan = FaultPlan(
            failures=[DeviceFailure(1, at_shard=2)],
            stragglers=[Straggler(2, 4.0)],
            transients=[TransientFaults(3, probability=0.25)],
            overflows=[ForcedOverflow(0, times=2)],
        )
        text = plan.describe()
        for fragment in ("kill(dev1@shard2)", "slow(dev2x4)", "flaky(dev3 p=0.25)",
                         "overflow(dev0x2)"):
            assert fragment in text

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: DeviceFailure(0, at_shard=-1),
            lambda: Straggler(0, slowdown=0.5),
            lambda: TransientFaults(0, probability=1.5),
            lambda: TransientFaults(0, max_failures=-1),
            lambda: ForcedOverflow(0, times=-1),
        ],
    )
    def test_fault_validation(self, bad):
        with pytest.raises(ValueError):
            bad()

    def test_overflow_clamp(self):
        assert ForcedOverflow(0, clamp_capacity=4).clamp(1000) == 4
        assert ForcedOverflow(0).clamp(1000) == 125
        assert ForcedOverflow(0).clamp(3) == 1  # never clamps to zero


# ---------------------------------------------------------- the wrapper
class TestFaultyExecutor:
    def test_empty_plan_is_transparent(self, points):
        """Same seed, same join, wrapped vs not: byte-identical results."""
        index = GridIndex(points, _EPS)
        join = SelfJoin(OptimizationConfig())
        plain = join.execute_on_index(index, executor=_executor())
        wrapped = join.execute_on_index(
            index, executor=FaultyExecutor(_executor(), 0, FaultPlan())
        )
        assert np.array_equal(plain.sorted_pairs(), wrapped.sorted_pairs())
        assert plain.total_seconds == pytest.approx(wrapped.total_seconds)
        assert plain.warp_execution_efficiency == pytest.approx(
            wrapped.warp_execution_efficiency
        )

    def test_device_failure_fires_at_planned_dispatch(self, points):
        index = GridIndex(points, _EPS)
        join = SelfJoin()
        plan = FaultPlan(failures=[DeviceFailure(0, at_shard=1)])
        fx = FaultyExecutor(_executor(), 0, plan)
        join.execute_on_index(index, executor=fx)  # dispatch 0 survives
        with pytest.raises(DeviceLostError):
            join.execute_on_index(index, executor=fx)  # dispatch 1 dies

    def test_straggler_scales_time_not_pairs(self, points):
        index = GridIndex(points, _EPS)
        join = SelfJoin()
        plain = join.execute_on_index(index, executor=_executor())
        slow = join.execute_on_index(
            index,
            executor=FaultyExecutor(
                _executor(), 0, FaultPlan(stragglers=[Straggler(0, 4.0)])
            ),
        )
        assert np.array_equal(plain.sorted_pairs(), slow.sorted_pairs())
        assert slow.total_seconds == pytest.approx(4.0 * plain.total_seconds)

    def test_straggler_only_hits_its_device(self, points):
        index = GridIndex(points, _EPS)
        join = SelfJoin()
        plan = FaultPlan(stragglers=[Straggler(1, 4.0)])
        plain = join.execute_on_index(index, executor=_executor())
        other = join.execute_on_index(
            index, executor=FaultyExecutor(_executor(), 0, plan)
        )
        assert other.total_seconds == pytest.approx(plain.total_seconds)

    def test_transient_stream_is_seed_deterministic(self, points):
        index = GridIndex(points, _EPS)
        join = SelfJoin()
        plan = FaultPlan(seed=5, transients=[TransientFaults(0, probability=0.5)])

        def failure_pattern():
            fx = FaultyExecutor(_executor(), 0, plan)
            pattern = []
            for _ in range(8):
                try:
                    join.execute_on_index(index, executor=fx)
                    pattern.append(False)
                except TransientKernelError as e:
                    assert e.wasted_seconds > 0
                    pattern.append(True)
            return pattern

        first = failure_pattern()
        assert first == failure_pattern()
        assert any(first) and not all(first)  # p=0.5 over 8 draws

    def test_transient_max_failures_budget(self, points):
        index = GridIndex(points, _EPS)
        join = SelfJoin()
        plan = FaultPlan(
            transients=[TransientFaults(0, probability=1.0, max_failures=2)]
        )
        fx = FaultyExecutor(_executor(), 0, plan)
        failures = 0
        for _ in range(5):
            try:
                join.execute_on_index(index, executor=fx)
            except TransientKernelError:
                failures += 1
        assert failures == 2

    def test_forced_overflow_drives_real_recovery(self, points):
        """Clamping the buffer must exercise the genuine retry machinery,
        not a mock — and the answer must still be exact."""
        index = GridIndex(points, _EPS)
        join = SelfJoin()
        plain = join.execute_on_index(index, executor=_executor())
        fx = FaultyExecutor(
            _executor(overflow_policy="retry"),
            0,
            FaultPlan(overflows=[ForcedOverflow(0, times=1, clamp_capacity=8)]),
        )
        recovered = join.execute_on_index(index, executor=fx)
        assert np.array_equal(plain.sorted_pairs(), recovered.sorted_pairs())
        assert recovered.overflow_retries > 0
        assert recovered.overflow_wasted_seconds > 0
        # the budget is spent: the next dispatch runs unclamped
        clean = join.execute_on_index(index, executor=fx)
        assert clean.overflow_retries == 0

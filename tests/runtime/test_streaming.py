"""`JoinResult.iter_pairs` / `Runner.stream`: blocks ≡ the merged result."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PRESETS,
    MultiGpuSelfJoin,
    ProfilingOptions,
    Runner,
    RuntimeConfig,
    SelfJoin,
    SimilarityJoin,
)
from repro.grid import GridIndex


def points(n=300, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 10.0, size=(n, 2))


def concat(blocks):
    blocks = list(blocks)
    if not blocks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(blocks)


@pytest.mark.parametrize("preset", ["gpucalcglobal", "workqueue", "combined"])
def test_fragments_concatenate_to_pairs(preset):
    result = SelfJoin(PRESETS[preset]).execute(points(), 0.7)
    assert result.fragments is not None
    assert len(result.fragments) == result.num_batches
    np.testing.assert_array_equal(concat(result.fragments), result.pairs)


@pytest.mark.parametrize("chunk", [1, 7, 100, 10_000])
def test_chunked_iteration_matches_pairs(chunk):
    result = SelfJoin(PRESETS["combined"]).execute(points(), 0.7)
    blocks = list(result.iter_pairs(chunk=chunk))
    assert all(len(b) == chunk for b in blocks[:-1])
    assert len(blocks[-1]) <= chunk
    np.testing.assert_array_equal(concat(blocks), result.pairs)


def test_natural_blocks_match_pairs_and_skip_empties():
    result = SelfJoin(PRESETS["sortbywl"]).execute(points(), 0.7)
    blocks = list(result.iter_pairs())
    assert all(len(b) for b in blocks)
    np.testing.assert_array_equal(concat(blocks), result.pairs)


def test_bipartite_streaming_matches():
    rng = np.random.default_rng(3)
    left, right = rng.uniform(0, 10, (150, 2)), rng.uniform(0, 10, (200, 2))
    result = SimilarityJoin(PRESETS["gpucalcglobal"]).execute(left, right, 0.8)
    np.testing.assert_array_equal(concat(result.iter_pairs(chunk=64)), result.pairs)


def test_pooled_result_falls_back_to_merged_pairs():
    result = MultiGpuSelfJoin(PRESETS["combined"], num_devices=3).execute(
        points(), 0.7
    )
    assert result.fragments is None  # merge re-ordered; no per-batch blocks
    np.testing.assert_array_equal(concat(result.iter_pairs(chunk=97)), result.pairs)


def test_runner_stream_yields_result_blocks():
    pts = points()
    rt = RuntimeConfig(optimization=PRESETS["combined"])
    join = SelfJoin(rt)
    index = GridIndex(pts, 0.7)
    plan = join.compile(index)
    streamed = concat(Runner().stream(plan, chunk=50))
    reference = Runner().run(plan)
    np.testing.assert_array_equal(streamed, reference.pairs)


def test_keep_fragments_off_sheds_blocks():
    rt = RuntimeConfig(
        optimization=PRESETS["combined"],
        profiling=ProfilingOptions(keep_fragments=False),
    )
    result = SelfJoin(rt).execute(points(), 0.7)
    assert result.fragments is None
    # iter_pairs still streams, backed by the materialized pairs
    np.testing.assert_array_equal(concat(result.iter_pairs(chunk=33)), result.pairs)


def test_chunk_must_be_positive():
    result = SelfJoin(PRESETS["gpucalcglobal"]).execute(points(60), 0.7)
    with pytest.raises(ValueError, match="chunk"):
        next(result.iter_pairs(chunk=0))

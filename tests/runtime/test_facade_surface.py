"""The facade surface after the deprecation cycle: legacy kwargs are gone.

The one-cycle shims (``engine=``, ``executor=``, ``fault_plan=``,
``recovery=`` on the facades, and ``repro.runtime.shim``) were removed;
these tests pin the end state — the legacy spellings raise ``TypeError``,
the supported spellings (``runtime=RuntimeConfig(...)`` and a
``RuntimeConfig`` in the config slot) carry every knob, and the readable
convenience attributes survive.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PRESETS,
    MultiGpuSelfJoin,
    MultiGpuSimilarityJoin,
    RuntimeConfig,
    SelfJoin,
    ShardingConfig,
    SimilarityJoin,
)
from repro.core.executor import DeviceExecutor
from repro.resilience import FaultPlan, RecoveryPolicy
from repro.resilience.faults import Straggler


def points(n=80, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 10.0, size=(n, 2))


# ------------------------------------------------- legacy kwargs are gone
@pytest.mark.parametrize(
    "facade, kwargs",
    [
        (SelfJoin, {"engine": "vectorized"}),
        (SelfJoin, {"executor": None}),
        (SimilarityJoin, {"engine": "vectorized"}),
        (SimilarityJoin, {"executor": None}),
        (MultiGpuSelfJoin, {"fault_plan": FaultPlan()}),
        (MultiGpuSelfJoin, {"recovery": RecoveryPolicy()}),
        (MultiGpuSimilarityJoin, {"fault_plan": FaultPlan()}),
        (MultiGpuSimilarityJoin, {"recovery": RecoveryPolicy()}),
    ],
    ids=lambda p: getattr(p, "__name__", None) or "+".join(sorted(p)),
)
def test_removed_kwargs_raise_typeerror(facade, kwargs):
    with pytest.raises(TypeError):
        facade(**kwargs)


def test_shim_module_is_gone():
    with pytest.raises(ModuleNotFoundError):
        import repro.runtime.shim  # noqa: F401


# ------------------------------------------------- supported spellings
def test_runtime_kwarg_carries_engine():
    join = SelfJoin(
        runtime=RuntimeConfig(
            optimization=PRESETS["combined"], engine="vectorized", seed=3
        )
    )
    assert join.engine == "vectorized"
    assert join.config == PRESETS["combined"]


def test_runtime_config_in_config_slot():
    join = SelfJoin(
        RuntimeConfig(optimization=PRESETS["combined"], engine="vectorized", seed=3)
    )
    explicit = SelfJoin(
        runtime=RuntimeConfig(
            optimization=PRESETS["combined"], engine="vectorized", seed=3
        )
    )
    assert join.runtime == explicit.runtime


def test_runtime_and_config_slots_are_exclusive():
    with pytest.raises(ValueError, match="not both"):
        SelfJoin(RuntimeConfig(), runtime=RuntimeConfig())


def test_executor_moves_to_execute_on_index():
    pts = points()
    cfg = PRESETS["combined"]
    from repro.grid import GridIndex

    index = GridIndex(pts, 0.7)
    default = SelfJoin(cfg).execute_on_index(index)
    explicit = SelfJoin(cfg).execute_on_index(
        index, executor=DeviceExecutor(seed=0)
    )
    np.testing.assert_array_equal(
        default.sorted_pairs(), explicit.sorted_pairs()
    )


def test_fault_plan_and_recovery_ride_the_runtime():
    plan = FaultPlan(seed=5, stragglers=[Straggler(device_id=0, slowdown=2.0)])
    join = MultiGpuSelfJoin(
        runtime=RuntimeConfig(
            optimization=PRESETS["combined"],
            sharding=ShardingConfig(num_devices=3),
            fault_plan=plan,
        )
    )
    assert join.fault_plan == plan
    # the fault plan implies the default recovery policy
    assert join.recovery == RecoveryPolicy()
    assert join.runtime.overflow_policy == "retry"
    assert join.pool[0].executor.overflow_policy == "retry"


def test_recovery_via_runtime_on_bipartite_facade():
    join = MultiGpuSimilarityJoin(
        runtime=RuntimeConfig(
            sharding=ShardingConfig(),
            recovery=RecoveryPolicy(max_shard_attempts=5),
        )
    )
    assert join.recovery == RecoveryPolicy(max_shard_attempts=5)
    assert join.runtime.overflow_policy == "retry"


def test_legacy_attributes_still_readable():
    join = SelfJoin(PRESETS["combined"], seed=7, include_self=False)
    assert join.config == PRESETS["combined"]
    assert join.seed == 7
    assert join.include_self is False
    assert join.engine == "interpreted"
    assert join.replay_mode == "aggregate"
    mg = MultiGpuSelfJoin(num_devices=3, planner="strided", schedule="static")
    assert (mg.planner, mg.schedule, mg.num_shards) == ("strided", "static", 6)

"""Hold the runtime refactor to the pre-refactor goldens, bit-for-bit.

``goldens.json`` was captured by ``capture_goldens.py`` at the last
commit before ``repro.runtime`` existed (5472173), through the then-
current facades. Every scenario re-runs here through the refactored
plan/compile/execute pipeline and must reproduce the exact pair set
(sha256 of the canonical sorted pairs), the exact scheduler trace
signature, and the exact ``PoolStats`` floats (compared via
``float.hex()`` — same bits, not "close enough").
"""

from __future__ import annotations

import json
import pathlib

import pytest

from tests.runtime.golden_scenarios import (
    BIPARTITE_SCENARIOS,
    run_bipartite_scenario,
    run_scenario,
    self_scenarios,
)

GOLDENS = json.loads(
    (pathlib.Path(__file__).parent / "goldens.json").read_text()
)


def test_every_scenario_has_a_golden():
    keys = {key for key, *_ in self_scenarios()}
    keys |= {key for key, *_ in BIPARTITE_SCENARIOS}
    assert keys == set(GOLDENS)


@pytest.mark.parametrize(
    ("key", "preset", "devices", "faulted"),
    self_scenarios(),
    ids=[key for key, *_ in self_scenarios()],
)
def test_self_join_matches_golden(key, preset, devices, faulted):
    assert run_scenario(preset, devices, faulted) == GOLDENS[key]


@pytest.mark.parametrize(
    ("key", "preset", "devices"),
    BIPARTITE_SCENARIOS,
    ids=[key for key, *_ in BIPARTITE_SCENARIOS],
)
def test_bipartite_matches_golden(key, preset, devices):
    assert run_bipartite_scenario(preset, devices) == GOLDENS[key]

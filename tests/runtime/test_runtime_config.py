"""RuntimeConfig validation, plan compilation and the unified Runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PRESETS,
    JoinPlan,
    OverflowConfig,
    ProfilingOptions,
    Runner,
    RuntimeConfig,
    SelfJoin,
    ShardingConfig,
    compile_self_join,
    compile_similarity_join,
)
from repro.grid import GridIndex
from repro.multigpu import DevicePool, MultiJoinResult
from repro.resilience import FaultPlan, RecoveryPolicy
from repro.resilience.faults import ForcedOverflow, Straggler
from repro.runtime.plan import (
    EstimateStage,
    IndexStage,
    LaunchStage,
    MergeStage,
    ResilienceStage,
    ShardStage,
    apply_resilience,
)


def points(n=150, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 10.0, size=(n, 2))


def index(n=150, eps=0.8):
    return GridIndex(points(n), eps)


# -- config validation --------------------------------------------------
def test_rejects_unknown_engine_and_replay_mode():
    with pytest.raises(ValueError, match="engine"):
        RuntimeConfig(engine="jit")
    with pytest.raises(ValueError, match="replay mode"):
        RuntimeConfig(replay_mode="exact")


def test_rejects_bad_overflow_and_sharding_values():
    with pytest.raises(ValueError, match="overflow policy"):
        OverflowConfig(policy="explode")
    with pytest.raises(ValueError, match="growth"):
        OverflowConfig(growth=1.0)
    with pytest.raises(ValueError, match="planner"):
        ShardingConfig(planner="round_robin")
    with pytest.raises(ValueError, match="schedule"):
        ShardingConfig(schedule="greedy")
    with pytest.raises(ValueError, match="num_devices"):
        ShardingConfig(num_devices=0)


def test_overflow_policy_resolution_tracks_recovery():
    assert RuntimeConfig().overflow_policy == "raise"
    assert (
        RuntimeConfig(
            sharding=ShardingConfig(), recovery=RecoveryPolicy()
        ).overflow_policy
        == "retry"
    )
    # explicit policy wins over the auto rule
    assert (
        RuntimeConfig(
            overflow=OverflowConfig(policy="raise"),
            sharding=ShardingConfig(),
            recovery=RecoveryPolicy(),
        ).overflow_policy
        == "raise"
    )


def test_pooled_fault_plan_implies_recovery():
    rt = RuntimeConfig(sharding=ShardingConfig(), fault_plan=FaultPlan(seed=1))
    assert rt.recovery == RecoveryPolicy()
    # single-device: no scheduler, no implied policy
    assert RuntimeConfig(fault_plan=FaultPlan(seed=1)).recovery is None


def test_with_and_describe():
    rt = RuntimeConfig(optimization=PRESETS["combined"])
    assert rt.with_(engine="vectorized").engine == "vectorized"
    tagged = rt.with_(
        engine="vectorized",
        sharding=ShardingConfig(num_devices=4),
        recovery=RecoveryPolicy(),
    ).describe()
    assert "vectorized" in tagged
    assert "4dev" in tagged
    assert "resilient" in tagged


# -- plan compilation ---------------------------------------------------
def test_single_device_plan_stage_shape():
    plan = compile_self_join(index(), RuntimeConfig(optimization=PRESETS["combined"]))
    kinds = [type(s) for s in plan.stages]
    assert kinds == [IndexStage, EstimateStage, LaunchStage, MergeStage]
    assert not plan.pooled
    assert plan.launch_stage.kernel == "selfjoin_kernel"
    assert plan.merge_stage.dedup is False
    assert "JoinPlan[self]" in plan.describe()


def test_pooled_plan_gains_shard_stage_and_description():
    rt = RuntimeConfig(
        optimization=PRESETS["combined"],
        sharding=ShardingConfig(num_devices=4, planner="balanced"),
    )
    plan = compile_self_join(index(), rt)
    assert plan.pooled
    assert len(plan.shard_stage.plan.shards) == rt.sharding.num_shards
    assert plan.merge_stage.description.startswith("multigpu[4dev balanced/dynamic]")


def test_workqueue_plan_records_fifo_and_head_estimate():
    plan = compile_self_join(
        index(), RuntimeConfig(optimization=PRESETS["workqueue_k8"])
    )
    assert plan.stage(EstimateStage).mode == "head"
    assert plan.launch_stage.issue_order == "fifo"
    assert plan.launch_stage.coop_groups is True


def test_bipartite_compile_rejects_unidirectional_patterns():
    with pytest.raises(ValueError, match="pattern='full'"):
        compile_similarity_join(
            index(), points(40, seed=2), RuntimeConfig(optimization=PRESETS["unicomp"])
        )


def test_apply_resilience_is_a_plan_transform():
    rt = RuntimeConfig(
        optimization=PRESETS["combined"],
        sharding=ShardingConfig(num_devices=2),
        fault_plan=FaultPlan(seed=3, stragglers=[Straggler(device_id=0, slowdown=2.0)]),
    )
    plan = compile_self_join(index(), rt)
    resil = plan.resilience_stage
    assert isinstance(resil, ResilienceStage)
    assert resil.recovery == RecoveryPolicy()
    # the stage sits directly before the merge stage, and the transform
    # is idempotent
    assert isinstance(plan.stages[-2], ResilienceStage)
    assert apply_resilience(plan) is plan


def test_fault_free_plan_has_no_resilience_stage():
    plan = compile_self_join(index(), RuntimeConfig(optimization=PRESETS["combined"]))
    assert plan.resilience_stage is None


# -- the unified runner -------------------------------------------------
def test_runner_executes_single_and_pooled_plans_identically():
    idx = index()
    rt = RuntimeConfig(optimization=PRESETS["combined"])
    single = Runner().run(compile_self_join(idx, rt))
    pooled = Runner().run(
        compile_self_join(idx, rt.with_(sharding=ShardingConfig(num_devices=3)))
    )
    assert isinstance(pooled, MultiJoinResult)
    np.testing.assert_array_equal(single.sorted_pairs(), pooled.sorted_pairs())


def test_runner_accepts_explicit_pool():
    idx = index()
    rt = RuntimeConfig(
        optimization=PRESETS["combined"], sharding=ShardingConfig(num_devices=2)
    )
    plan = compile_self_join(idx, rt)
    result = Runner(pool=DevicePool.from_runtime(rt)).run(plan)
    np.testing.assert_array_equal(
        result.sorted_pairs(), Runner().run(plan).sorted_pairs()
    )


def test_single_device_fault_plan_wraps_executor():
    idx = index()
    plan_cfg = FaultPlan(
        seed=2,
        overflows=[ForcedOverflow(device_id=0, times=1, clamp_capacity=8)],
    )
    rt = RuntimeConfig(
        optimization=PRESETS["combined"],
        overflow=OverflowConfig(policy="retry"),
        fault_plan=plan_cfg,
    )
    faulted = Runner().run(compile_self_join(idx, rt))
    clean = Runner().run(
        compile_self_join(idx, RuntimeConfig(optimization=PRESETS["combined"]))
    )
    assert faulted.overflow_retries > 0
    np.testing.assert_array_equal(faulted.sorted_pairs(), clean.sorted_pairs())


def test_keep_trace_off_drops_trace_keeps_stats():
    rt = RuntimeConfig(
        optimization=PRESETS["combined"],
        sharding=ShardingConfig(num_devices=2),
        profiling=ProfilingOptions(keep_trace=False),
    )
    result = Runner().run(compile_self_join(index(), rt))
    assert result.trace is None
    assert result.pool_stats is not None


def test_facade_compile_returns_plan():
    join = SelfJoin(PRESETS["combined"])
    plan = join.compile(index())
    assert isinstance(plan, JoinPlan)
    result = Runner().run(plan)
    assert result.num_pairs > 0


def test_pool_from_runtime_requires_sharding():
    with pytest.raises(ValueError, match="sharding"):
        DevicePool.from_runtime(RuntimeConfig())

"""Legacy facade kwargs: one deprecation cycle, exact RuntimeConfig parity."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import (
    PRESETS,
    MultiGpuSelfJoin,
    MultiGpuSimilarityJoin,
    RuntimeConfig,
    SelfJoin,
    ShardingConfig,
    SimilarityJoin,
)
from repro.core.executor import DeviceExecutor
from repro.resilience import FaultPlan, RecoveryPolicy
from repro.resilience.faults import Straggler


def points(n=80, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 10.0, size=(n, 2))


# ----------------------------------------------------------------------
def test_selfjoin_engine_kwarg_warns_and_matches_explicit():
    with pytest.warns(DeprecationWarning, match=r"SelfJoin\(engine=\.\.\.\)"):
        legacy = SelfJoin(PRESETS["combined"], engine="vectorized", seed=3)
    explicit = SelfJoin(
        RuntimeConfig(optimization=PRESETS["combined"], engine="vectorized", seed=3)
    )
    assert legacy.runtime == explicit.runtime


def test_selfjoin_executor_kwarg_warns_and_still_runs():
    with pytest.warns(DeprecationWarning, match=r"SelfJoin\(executor=\.\.\.\)"):
        legacy = SelfJoin(PRESETS["combined"], executor=DeviceExecutor(seed=0))
    default = SelfJoin(PRESETS["combined"])
    pts = points()
    np.testing.assert_array_equal(
        legacy.execute(pts, 0.7).sorted_pairs(),
        default.execute(pts, 0.7).sorted_pairs(),
    )


def test_similarityjoin_engine_kwarg_warns_and_matches_explicit():
    with pytest.warns(DeprecationWarning, match=r"SimilarityJoin\(engine=\.\.\.\)"):
        legacy = SimilarityJoin(PRESETS["gpucalcglobal"], engine="vectorized")
    explicit = SimilarityJoin(
        RuntimeConfig(optimization=PRESETS["gpucalcglobal"], engine="vectorized")
    )
    assert legacy.runtime == explicit.runtime


def test_multigpu_fault_plan_kwarg_warns_and_matches_explicit():
    plan = FaultPlan(seed=5, stragglers=[Straggler(device_id=0, slowdown=2.0)])
    with pytest.warns(
        DeprecationWarning, match=r"MultiGpuSelfJoin\(fault_plan=\.\.\.\)"
    ):
        legacy = MultiGpuSelfJoin(PRESETS["combined"], num_devices=3, fault_plan=plan)
    explicit = MultiGpuSelfJoin(
        RuntimeConfig(
            optimization=PRESETS["combined"],
            sharding=ShardingConfig(num_devices=3),
            fault_plan=plan,
        )
    )
    assert legacy.runtime == explicit.runtime
    # the fault plan implied the default recovery policy, as before
    assert legacy.runtime.recovery == RecoveryPolicy()


def test_multigpu_recovery_kwarg_warns_and_matches_explicit():
    with pytest.warns(
        DeprecationWarning, match=r"MultiGpuSimilarityJoin\(recovery=\.\.\.\)"
    ):
        legacy = MultiGpuSimilarityJoin(recovery=RecoveryPolicy(max_shard_attempts=5))
    explicit = MultiGpuSimilarityJoin(
        RuntimeConfig(
            sharding=ShardingConfig(),
            recovery=RecoveryPolicy(max_shard_attempts=5),
        )
    )
    assert legacy.runtime == explicit.runtime
    # recovery resolves the pool's overflow policy to "retry"
    assert legacy.runtime.overflow_policy == "retry"
    assert legacy.pool[0].executor.overflow_policy == "retry"


def test_clean_construction_does_not_warn():
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        SelfJoin(PRESETS["combined"], seed=1, include_self=False)
        SimilarityJoin(PRESETS["gpucalcglobal"], seed=2)
        MultiGpuSelfJoin(PRESETS["combined"], num_devices=2)
        SelfJoin(RuntimeConfig())


def test_runtime_and_config_slots_are_exclusive():
    with pytest.raises(ValueError, match="not both"):
        SelfJoin(RuntimeConfig(), runtime=RuntimeConfig())


def test_legacy_attributes_still_readable():
    join = SelfJoin(PRESETS["combined"], seed=7, include_self=False)
    assert join.config == PRESETS["combined"]
    assert join.seed == 7
    assert join.include_self is False
    assert join.engine == "interpreted"
    assert join.replay_mode == "aggregate"
    mg = MultiGpuSelfJoin(num_devices=3, planner="strided", schedule="static")
    assert (mg.planner, mg.schedule, mg.num_shards) == ("strided", "static", 6)

"""The operation registry and the generic compile pipeline.

Every op declares its stages through the :mod:`repro.runtime.ops` hooks;
``compile_join`` must produce the same plans the dedicated entry points
always did, and the run fingerprint must separate ops that share a
dataset but answer different questions.
"""

from __future__ import annotations

import pytest

from repro.core import PRESETS
from repro.data import uniform
from repro.grid import GridIndex
from repro.resilience import run_fingerprint
from repro.runtime import (
    OPS,
    BipartiteOp,
    ExpansionStage,
    JoinOp,
    KnnJoinOp,
    RuntimeConfig,
    SelfJoinOp,
    compile_join,
    compile_knn_join,
    compile_self_join,
    compile_similarity_join,
    get_op,
    register_op,
)

_EPS = 0.1


@pytest.fixture(scope="module")
def points():
    return uniform(150, 2, seed=11, low=0.0, high=1.0)


@pytest.fixture(scope="module")
def index(points):
    return GridIndex(points, _EPS)


# ------------------------------------------------------------ registry
class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert {"self", "bipartite", "knn"} <= set(OPS)
        assert get_op("self") is SelfJoinOp
        assert get_op("bipartite") is BipartiteOp
        assert get_op("knn") is KnnJoinOp

    def test_unknown_kind_raises_with_inventory(self):
        with pytest.raises(KeyError, match="registered"):
            get_op("voronoi")

    def test_register_op_round_trip(self):
        @register_op
        class _ProbeOp(JoinOp):
            kind = "probe-test"
            kernel_name = "selfjoin_kernel"

        try:
            assert get_op("probe-test") is _ProbeOp
        finally:
            del OPS["probe-test"]

    def test_default_hooks(self, index):
        class _Minimal(JoinOp):
            kind = "minimal"
            kernel_name = "selfjoin_kernel"

        op = _Minimal()
        rc = RuntimeConfig()
        assert op.fingerprint_extras() == ()
        op.validate(rc)  # the default accepts anything
        stages = op.plan_stages(index, rc)
        assert len(stages) == 1
        with pytest.raises(NotImplementedError):
            op.shard_plan(index, rc)


# ------------------------------------------------------------ generic compile
class TestCompileJoin:
    def test_self_wrapper_matches_generic(self, index):
        rc = RuntimeConfig(seed=3)
        via_wrapper = compile_self_join(index, rc)
        via_generic = compile_join(
            SelfJoinOp(include_self=rc.include_self), index, rc
        )
        assert via_wrapper.describe() == via_generic.describe()
        assert run_fingerprint(via_wrapper) == run_fingerprint(via_generic)

    def test_bipartite_wrapper_matches_generic(self, index, points):
        queries = points[:40] + 0.01
        rc = RuntimeConfig(seed=3)
        via_wrapper = compile_similarity_join(index, queries, rc)
        via_generic = compile_join(BipartiteOp(queries), index, rc)
        assert via_wrapper.describe() == via_generic.describe()
        assert run_fingerprint(via_wrapper) == run_fingerprint(via_generic)

    def test_knn_plan_carries_expansion_stage(self, points):
        plan = compile_knn_join(points, 4, RuntimeConfig(), epsilon0=0.05)
        stage = plan.expansion_stage
        assert isinstance(stage, ExpansionStage)
        assert stage.k == 4 and stage.epsilon0 == pytest.approx(0.05)
        assert "expand" in plan.describe()

    def test_knn_rejects_unidirectional_patterns(self, points):
        rc = RuntimeConfig(optimization=PRESETS["combined"])  # lidunicomp
        with pytest.raises(ValueError, match="pattern"):
            compile_knn_join(points, 4, rc)


# ------------------------------------------------------------ op validation
class TestKnnOpValidation:
    def test_k_bounds(self, points):
        with pytest.raises(ValueError, match="k must be >= 1"):
            KnnJoinOp(points, 0)
        with pytest.raises(ValueError, match="at least"):
            KnnJoinOp(points, len(points))

    def test_epsilon_growth_rounds(self, points):
        with pytest.raises(ValueError, match="epsilon0"):
            KnnJoinOp(points, 3, epsilon0=0.0)
        with pytest.raises(ValueError, match="growth"):
            KnnJoinOp(points, 3, growth=1.0)
        with pytest.raises(ValueError, match="max_rounds"):
            KnnJoinOp(points, 3, max_rounds=0)


# ------------------------------------------------------------ fingerprints
class TestFingerprints:
    def test_ops_on_same_data_have_distinct_identity(self, index, points):
        rc = RuntimeConfig()
        self_fp = run_fingerprint(compile_self_join(index, rc))
        knn_fp = run_fingerprint(compile_knn_join(points, 4, rc))
        assert self_fp != knn_fp

    def test_knn_parameters_are_part_of_identity(self, points):
        rc = RuntimeConfig()
        base = run_fingerprint(compile_knn_join(points, 4, rc, epsilon0=0.05))
        assert base == run_fingerprint(compile_knn_join(points, 4, rc, epsilon0=0.05))
        assert base != run_fingerprint(compile_knn_join(points, 5, rc, epsilon0=0.05))
        assert base != run_fingerprint(compile_knn_join(points, 4, rc, epsilon0=0.06))
        assert base != run_fingerprint(
            compile_knn_join(points, 4, rc, epsilon0=0.05, growth=3.0)
        )
        assert base != run_fingerprint(
            compile_knn_join(points, 4, rc, epsilon0=0.05, max_rounds=7)
        )

    def test_bipartite_extras_pin_the_query_side(self, index, points):
        rc = RuntimeConfig()
        a = run_fingerprint(compile_similarity_join(index, points[:30], rc))
        b = run_fingerprint(compile_similarity_join(index, points[:31], rc))
        assert a != b
        (chunk,) = BipartiteOp(points[:30]).fingerprint_extras()
        assert isinstance(chunk, bytes) and chunk

"""Golden-equivalence scenario definitions, shared by capture and verify.

The scenarios enumerate every ``PRESETS`` entry × {1 device, 4 devices} ×
{fault-free, seeded FaultPlan} (plus two bipartite spot checks), and the
fingerprint captures everything the refactor must preserve bit-for-bit:

- the canonical (lexicographically sorted) pair set,
- the scheduler trace signature (pooled runs),
- ``PoolStats`` — per-device busy/kernel seconds, pair counts, makespan,
- end-to-end simulated seconds and warp execution efficiency.

Floats are fingerprinted via ``float.hex()`` so equality means the exact
same bits, not "close enough". ``capture_goldens.py`` ran this module at
the pre-refactor HEAD (commit 5472173) to produce ``goldens.json``;
``test_golden_equivalence.py`` re-runs it against the current tree.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro import PRESETS, RuntimeConfig, SelfJoin, ShardingConfig, SimilarityJoin
from repro.multigpu import MultiGpuSelfJoin, MultiGpuSimilarityJoin
from repro.resilience import (
    DeviceFailure,
    FaultPlan,
    ForcedOverflow,
    Straggler,
    TransientFaults,
)

EPSILON = 0.9
NUM_POINTS = 200
SEED = 0

#: 4-device plan: kill one device, slow one, make one flaky, clamp one
#: buffer — every fault species in a single run.
FAULTS_4DEV = FaultPlan(
    seed=7,
    failures=[DeviceFailure(device_id=1, at_shard=1)],
    stragglers=[Straggler(device_id=2, slowdown=2.0)],
    transients=[TransientFaults(device_id=3, probability=0.4, max_failures=2)],
    overflows=[ForcedOverflow(device_id=0, times=1)],
)

#: 1-device plan: no permanent failure (there is nowhere to requeue), but
#: the straggler and forced-overflow paths still fire.
FAULTS_1DEV = FaultPlan(
    seed=7,
    stragglers=[Straggler(device_id=0, slowdown=2.0)],
    overflows=[ForcedOverflow(device_id=0, times=1)],
)


def dataset() -> np.ndarray:
    return np.random.default_rng(SEED).uniform(0.0, 10.0, size=(NUM_POINTS, 2))


def bipartite_dataset() -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(SEED + 1)
    return (
        rng.uniform(0.0, 10.0, size=(180, 2)),
        rng.uniform(0.0, 10.0, size=(NUM_POINTS, 2)),
    )


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def pairs_fingerprint(result) -> str:
    pairs = result.sorted_pairs()
    return _sha(np.ascontiguousarray(pairs, dtype=np.int64).tobytes())


def result_fingerprint(result) -> dict:
    """Everything a single-device ``JoinResult`` must preserve."""
    return {
        "pairs_sha": pairs_fingerprint(result),
        "num_pairs": int(result.num_pairs),
        "total_seconds": float(result.total_seconds).hex(),
        "kernel_seconds": float(result.kernel_seconds).hex(),
        "wee": float(result.warp_execution_efficiency).hex(),
        "overflow_retries": int(result.overflow_retries),
    }


def pooled_fingerprint(result) -> dict:
    """A ``MultiJoinResult``'s fingerprint: pairs, trace, pool stats."""
    stats = result.pool_stats
    fp = result_fingerprint(result)
    fp.update(
        {
            "trace_sha": _sha(repr(result.trace.signature()).encode()),
            "makespan": float(stats.makespan_seconds).hex(),
            "dee": float(stats.device_execution_efficiency).hex(),
            "devices": [
                {
                    "busy": float(d.busy_seconds).hex(),
                    "kernel": float(d.kernel_seconds).hex(),
                    "pairs": int(d.num_pairs),
                    "shards": int(d.num_shards),
                }
                for d in stats.devices
            ],
        }
    )
    return fp


def run_scenario(preset: str, devices: int, faulted: bool) -> dict:
    """One self-join golden cell, via the public facades."""
    pts = dataset()
    cfg = PRESETS[preset]
    if devices == 1 and not faulted:
        result = SelfJoin(cfg, seed=SEED).execute(pts, EPSILON)
        return result_fingerprint(result)
    fault_plan = None
    if faulted:
        fault_plan = FAULTS_1DEV if devices == 1 else FAULTS_4DEV
    join = MultiGpuSelfJoin(
        runtime=RuntimeConfig(
            optimization=cfg,
            seed=SEED,
            sharding=ShardingConfig(num_devices=devices),
            fault_plan=fault_plan,
        )
    )
    return pooled_fingerprint(join.execute(pts, EPSILON))


def run_bipartite_scenario(preset: str, devices: int) -> dict:
    left, right = bipartite_dataset()
    cfg = PRESETS[preset]
    if devices == 1:
        result = SimilarityJoin(cfg, seed=SEED).execute(left, right, EPSILON)
        return result_fingerprint(result)
    join = MultiGpuSimilarityJoin(cfg, num_devices=devices, seed=SEED)
    return pooled_fingerprint(join.execute(left, right, EPSILON))


def self_scenarios() -> list[tuple[str, str, int, bool]]:
    out = []
    for preset in PRESETS:
        for devices in (1, 4):
            for faulted in (False, True):
                key = f"self/{preset}/{devices}dev/{'faulted' if faulted else 'clean'}"
                out.append((key, preset, devices, faulted))
    return out


#: Bipartite spot checks (the pattern must stay "full").
BIPARTITE_SCENARIOS = [
    ("bipartite/gpucalcglobal/1dev", "gpucalcglobal", 1),
    ("bipartite/gpucalcglobal/4dev", "gpucalcglobal", 4),
    ("bipartite/workqueue_k8/4dev", "workqueue_k8", 4),
]


def capture_all() -> dict:
    goldens: dict[str, dict] = {}
    for key, preset, devices, faulted in self_scenarios():
        goldens[key] = run_scenario(preset, devices, faulted)
    for key, preset, devices in BIPARTITE_SCENARIOS:
        goldens[key] = run_bipartite_scenario(preset, devices)
    return goldens

"""Capture golden fingerprints into ``goldens.json``.

Run from the repo root at the commit whose behaviour is the reference::

    PYTHONPATH=src:. python tests/runtime/capture_goldens.py

The committed ``goldens.json`` was captured at the last pre-``repro.runtime``
commit; ``test_golden_equivalence.py`` holds the refactored pipeline to it.
Re-run this script only when a deliberate, reviewed behaviour change makes
the old reference obsolete.
"""

from __future__ import annotations

import json
import pathlib

from tests.runtime.golden_scenarios import capture_all


def main() -> None:
    out = pathlib.Path(__file__).with_name("goldens.json")
    goldens = capture_all()
    out.write_text(json.dumps(goldens, indent=1, sort_keys=True) + "\n")
    print(f"wrote {len(goldens)} golden scenarios to {out}")


if __name__ == "__main__":
    main()

"""``engine="native"``: the fidelity-free array backend.

The contract under test: for every optimization config the native engine
returns the *same pair set* as the simulated engines (order-normalized via
``canonical_pairs``), composes unchanged with sharding, checkpoint/resume
and the process worker backend, and is honest about its fidelity
(``fidelity="none"``, no batch stats, no WEE).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PRESETS,
    Runner,
    RuntimeConfig,
    SelfJoin,
    ShardingConfig,
    compile_self_join,
    compile_similarity_join,
)
from repro.core import OptimizationConfig, SimilarityJoin
from repro.grid import GridIndex
from repro.resilience import (
    CrashPoint,
    DeviceFailure,
    FaultPlan,
    RecoveryPolicy,
    SimulatedCrashError,
    Straggler,
)
from repro.runtime import CheckpointConfig, NativeLaunchStage, native_query_order
from repro.runtime.plan import LaunchStage

NATIVE_PRESETS = ("gpucalcglobal", "lidunicomp", "sortbywl", "workqueue_k8", "combined")


def _points(n=400, seed=3):
    rng = np.random.default_rng(seed)
    return np.concatenate(
        [rng.normal(2.0, 0.4, (n // 2, 2)), rng.uniform(0.0, 8.0, (n // 2, 2))]
    )


@pytest.fixture(scope="module")
def shared_index():
    return GridIndex(_points(), 0.35)


def _run(index, engine, cfg, **kw):
    rc = RuntimeConfig(optimization=cfg, seed=0, engine=engine, **kw)
    return Runner().run(compile_self_join(index, rc))


# -- single-device equivalence ------------------------------------------
class TestEquivalence:
    @pytest.mark.parametrize("preset", NATIVE_PRESETS)
    def test_matches_interpreted_across_presets(self, shared_index, preset):
        ref = _run(shared_index, "interpreted", PRESETS[preset])
        nat = _run(shared_index, "native", PRESETS[preset])
        assert np.array_equal(nat.canonical_pairs(), ref.canonical_pairs())
        assert nat.num_pairs == ref.num_pairs

    @pytest.mark.parametrize(
        "k,queue", [(1, False), (4, True), (8, True)], ids=["k1", "k4_wq", "k8_wq"]
    )
    def test_matches_across_granularity_and_queue(self, shared_index, k, queue):
        cfg = OptimizationConfig(pattern="lidunicomp", k=k, work_queue=queue)
        ref = _run(shared_index, "vectorized", cfg)
        nat = _run(shared_index, "native", cfg)
        assert np.array_equal(nat.canonical_pairs(), ref.canonical_pairs())

    def test_bipartite_matches_interpreted(self, shared_index):
        cfg = OptimizationConfig(pattern="full", k=4, work_queue=True)
        queries = np.random.default_rng(11).uniform(0.0, 8.0, (150, 2))
        plans = {
            engine: compile_similarity_join(
                shared_index,
                queries,
                RuntimeConfig(optimization=cfg, seed=0, engine=engine),
            )
            for engine in ("interpreted", "native")
        }
        ref = Runner().run(plans["interpreted"])
        nat = Runner().run(plans["native"])
        assert np.array_equal(nat.canonical_pairs(), ref.canonical_pairs())

    def test_facades_accept_native(self, shared_index):
        res = SelfJoin(
            runtime=RuntimeConfig(optimization=PRESETS["combined"], engine="native")
        ).execute_on_index(shared_index)
        assert res.fidelity == "none"
        queries = np.random.default_rng(2).uniform(0.0, 8.0, (40, 2))
        sim = SimilarityJoin(
            runtime=RuntimeConfig(
                optimization=OptimizationConfig(pattern="full"), engine="native"
            )
        ).execute(shared_index.points, queries, 0.35)
        assert sim.fidelity == "none"


# -- result shape and fidelity ------------------------------------------
class TestResultContract:
    def test_fidelity_and_empty_batch_stats(self, shared_index):
        nat = _run(shared_index, "native", PRESETS["gpucalcglobal"])
        sim = _run(shared_index, "vectorized", PRESETS["gpucalcglobal"])
        assert nat.fidelity == "none"
        assert nat.batch_stats == []
        assert sim.fidelity == "simulated"

    def test_canonical_pairs_is_order_insensitive(self, shared_index):
        nat = _run(shared_index, "native", PRESETS["combined"])
        shuffled = nat.pairs[np.random.default_rng(0).permutation(len(nat.pairs))]
        resorted = shuffled[np.lexsort((shuffled[:, 1], shuffled[:, 0]))]
        assert np.array_equal(nat.canonical_pairs(), resorted)

    def test_fragments_stream_concatenates_to_pairs(self, shared_index):
        nat = _run(shared_index, "native", PRESETS["sortbywl"])
        assert nat.fragments is not None
        assert np.array_equal(np.concatenate(nat.fragments, axis=0), nat.pairs)

    def test_plan_uses_native_launch_stage(self, shared_index):
        plan = compile_self_join(
            shared_index, RuntimeConfig(optimization=PRESETS["combined"], engine="native")
        )
        stage = plan.launch_stage
        assert isinstance(stage, NativeLaunchStage)
        assert plan.stage(LaunchStage) is None
        assert stage.order == "sortbywl"  # combined sorts by workload
        assert "engine=native" in plan.describe()

    def test_plan_natural_order_without_sorting(self, shared_index):
        plan = compile_self_join(
            shared_index,
            RuntimeConfig(optimization=PRESETS["gpucalcglobal"], engine="native"),
        )
        assert plan.launch_stage.order == "natural"


# -- query ordering ------------------------------------------------------
class TestQueryOrder:
    def test_subset_restriction_preserves_sorted_order(self, shared_index):
        cfg = PRESETS["sortbywl"]

        class _Op:
            kind = "self"

        subset = np.arange(0, shared_index.num_points, 3, dtype=np.int64)
        full = native_query_order(_Op(), shared_index, cfg)
        restricted = native_query_order(_Op(), shared_index, cfg, subset=subset)
        assert set(restricted.tolist()) == set(subset.tolist())
        pos = {p: i for i, p in enumerate(full.tolist())}
        ranks = [pos[p] for p in restricted.tolist()]
        assert ranks == sorted(ranks)

    def test_natural_order_is_subset_order(self, shared_index):
        cfg = PRESETS["gpucalcglobal"]

        class _Op:
            kind = "self"

        subset = np.array([5, 2, 9], dtype=np.int64)
        assert native_query_order(
            _Op(), shared_index, cfg, subset=subset
        ).tolist() == [5, 2, 9]


# -- sharding: inline pool and process workers --------------------------
class TestSharded:
    def test_pooled_inline_matches_single_device(self, shared_index):
        single = _run(shared_index, "native", PRESETS["combined"])
        pooled = _run(
            shared_index,
            "native",
            PRESETS["combined"],
            sharding=ShardingConfig(num_devices=3),
        )
        assert np.array_equal(pooled.canonical_pairs(), single.canonical_pairs())
        assert pooled.fidelity == "none"

    def test_pooled_matches_interpreted_merged(self, shared_index):
        ref = _run(
            shared_index,
            "interpreted",
            PRESETS["lidunicomp"],
            sharding=ShardingConfig(num_devices=3),
        )
        nat = _run(
            shared_index,
            "native",
            PRESETS["lidunicomp"],
            sharding=ShardingConfig(num_devices=3),
        )
        assert np.array_equal(nat.canonical_pairs(), ref.canonical_pairs())

    def test_process_workers_match_inline_and_replay(self, shared_index):
        sharding = ShardingConfig(num_devices=2, workers="process")
        inline = _run(
            shared_index,
            "native",
            PRESETS["combined"],
            sharding=ShardingConfig(num_devices=2),
        )
        first = _run(shared_index, "native", PRESETS["combined"], sharding=sharding)
        again = _run(shared_index, "native", PRESETS["combined"], sharding=sharding)
        assert np.array_equal(first.canonical_pairs(), inline.canonical_pairs())
        assert np.array_equal(first.pairs, again.pairs)  # deterministic buffers
        assert first.fidelity == "none"


# -- checkpoint / crash / resume ----------------------------------------
class TestCheckpointResume:
    @pytest.mark.parametrize("workers", ["inline", "process"])
    def test_crash_then_resume_reproduces_golden(self, tmp_path, workers):
        index = GridIndex(_points(n=240, seed=5), 0.4)

        def rc(**kw):
            return RuntimeConfig(
                optimization=PRESETS["combined"],
                engine="native",
                sharding=ShardingConfig(num_devices=3, workers=workers),
                checkpoint=CheckpointConfig(directory=tmp_path),
                seed=0,
                **kw,
            )

        golden = Runner().run(compile_self_join(index, rc()))
        with pytest.raises(SimulatedCrashError):
            Runner().run(
                compile_self_join(
                    index,
                    rc(fault_plan=FaultPlan(seed=0, crashes=(CrashPoint(at_shard=2),))),
                )
            )
        resumed = Runner().resume(compile_self_join(index, rc()))
        assert np.array_equal(resumed.canonical_pairs(), golden.canonical_pairs())


# -- config validation ---------------------------------------------------
class TestValidation:
    def test_native_rejects_recovery(self):
        with pytest.raises(ValueError, match="recovery"):
            RuntimeConfig(engine="native", recovery=RecoveryPolicy())

    def test_native_rejects_device_faults(self):
        plan = FaultPlan(seed=0, failures=[DeviceFailure(device_id=0, at_shard=0)])
        with pytest.raises(ValueError, match="native"):
            RuntimeConfig(engine="native", fault_plan=plan)
        slow = FaultPlan(seed=0, stragglers=[Straggler(device_id=0, slowdown=2.0)])
        with pytest.raises(ValueError, match="native"):
            RuntimeConfig(engine="native", fault_plan=slow)

    def test_native_accepts_crash_only_plans(self):
        plan = FaultPlan(seed=0, crashes=(CrashPoint(at_shard=1),))
        rc = RuntimeConfig(engine="native", fault_plan=plan)
        assert rc.recovery is None  # no implied recovery for native

    def test_process_workers_require_native(self):
        with pytest.raises(ValueError, match="process"):
            RuntimeConfig(
                engine="vectorized",
                sharding=ShardingConfig(num_devices=2, workers="process"),
            )

    def test_unknown_worker_backend_rejected(self):
        with pytest.raises(ValueError, match="worker backend"):
            ShardingConfig(num_devices=2, workers="threads")

"""Unit tests for dataset generators and the Table I catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import (
    CATALOG,
    exponential,
    gaia_like,
    load_dataset,
    sw_like,
    uniform,
)


class TestSynthetic:
    def test_uniform_bounds_and_shape(self):
        pts = uniform(500, 3, seed=0)
        assert pts.shape == (500, 3)
        assert pts.min() >= 0.0 and pts.max() <= 100.0

    def test_uniform_reproducible(self):
        np.testing.assert_array_equal(uniform(50, 2, seed=7), uniform(50, 2, seed=7))
        assert (uniform(50, 2, seed=7) != uniform(50, 2, seed=8)).any()

    def test_exponential_mean_near_1_over_lambda(self):
        pts = exponential(20000, 2, seed=0, lam=40.0)
        assert pts.min() >= 0
        assert np.isclose(pts.mean(), 1 / 40.0, rtol=0.05)

    def test_exponential_is_heavy_tailed_workload(self):
        """The property the paper relies on: exponential data has far more
        per-point density variation than uniform data."""
        from repro.grid import GridIndex

        expo = exponential(4000, 2, seed=1)
        unif = uniform(4000, 2, seed=1, high=1.0)
        gi_e = GridIndex(expo, 0.01)
        gi_u = GridIndex(unif, 0.01)
        cv_e = gi_e.cell_counts.std() / gi_e.cell_counts.mean()
        cv_u = gi_u.cell_counts.std() / gi_u.cell_counts.mean()
        assert cv_e > 2 * cv_u

    @pytest.mark.parametrize(
        "fn, kwargs",
        [
            (uniform, dict(num_points=-1, ndim=2)),
            (uniform, dict(num_points=1, ndim=0)),
            (uniform, dict(num_points=1, ndim=2, low=1.0, high=0.0)),
            (exponential, dict(num_points=1, ndim=2, lam=0.0)),
            (exponential, dict(num_points=-1, ndim=2)),
        ],
    )
    def test_validation(self, fn, kwargs):
        with pytest.raises(ValueError):
            fn(**kwargs)


class TestRealWorldProxies:
    def test_sw_2d_bounds(self):
        pts = sw_like(2000, 2, seed=0)
        assert pts.shape == (2000, 2)
        assert pts[:, 0].min() >= -180 and pts[:, 0].max() <= 180
        assert pts[:, 1].min() >= -90 and pts[:, 1].max() <= 90

    def test_sw_3d_has_tec_column(self):
        pts = sw_like(2000, 3, seed=0)
        assert pts.shape == (2000, 3)
        assert pts[:, 2].min() >= 0 and pts[:, 2].max() <= 100

    def test_sw_invalid(self):
        with pytest.raises(ValueError):
            sw_like(10, 4)
        with pytest.raises(ValueError):
            sw_like(10, 2, num_tracks=0)
        with pytest.raises(ValueError):
            sw_like(10, 2, background_fraction=1.0)

    def test_sw_is_clustered(self):
        """Track structure ⇒ heavier density variation than isotropic sky."""
        from repro.grid import GridIndex

        sw = sw_like(6000, 2, seed=3)
        iso = np.stack(
            [
                np.random.default_rng(3).uniform(-180, 180, 6000),
                np.degrees(
                    np.arcsin(np.random.default_rng(4).uniform(-1, 1, 6000))
                ),
            ],
            axis=1,
        )
        cv = lambda g: g.cell_counts.std() / g.cell_counts.mean()
        assert cv(GridIndex(sw, 2.0)) > cv(GridIndex(iso, 2.0))

    def test_gaia_concentrated_at_plane(self):
        pts = gaia_like(20000, seed=0)
        assert pts.shape == (20000, 2)
        near_plane = (np.abs(pts[:, 1]) < 15).mean()
        assert near_plane > 0.45  # far above the isotropic ~25%

    def test_gaia_validation(self):
        with pytest.raises(ValueError):
            gaia_like(-1)
        with pytest.raises(ValueError):
            gaia_like(10, disk_scale_deg=0)
        with pytest.raises(ValueError):
            gaia_like(10, bulge_fraction=0.6, background_fraction=0.5)

    def test_reproducible(self):
        np.testing.assert_array_equal(sw_like(100, 2, seed=5), sw_like(100, 2, seed=5))
        np.testing.assert_array_equal(gaia_like(100, seed=5), gaia_like(100, seed=5))


class TestCatalog:
    def test_table1_entries_present(self):
        expected = {f"Unif{d}D2M" for d in range(2, 7)}
        expected |= {f"Expo{d}D2M" for d in range(2, 7)}
        expected |= {"SW2DA", "SW2DB", "SW3DA", "SW3DB", "Gaia"}
        assert expected == set(CATALOG)

    def test_paper_sizes(self):
        assert CATALOG["Unif2D2M"].paper_size == 2_000_000
        assert CATALOG["SW2DB"].paper_size == 5_159_737
        assert CATALOG["Gaia"].paper_size == 50_000_000

    def test_dimensions(self):
        assert CATALOG["Expo6D2M"].ndim == 6
        assert CATALOG["SW3DA"].ndim == 3
        assert CATALOG["Gaia"].ndim == 2

    def test_load_scaled(self):
        pts = load_dataset("Unif3D2M", size=123, seed=1)
        assert pts.shape == (123, 3)

    def test_load_unknown(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("Borg9D")

    def test_generate_negative(self):
        with pytest.raises(ValueError):
            CATALOG["Gaia"].generate(-5)

    def test_distinct_sw_datasets(self):
        a = load_dataset("SW2DA", size=500)
        b = load_dataset("SW2DB", size=500)
        assert (a != b).any()

"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# A single moderate profile: the suite runs on one core, so keep example
# counts modest while still exploring the space.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(20190711)


@pytest.fixture
def small_uniform_2d(rng) -> np.ndarray:
    """200 uniform points in [0, 10]^2 — a convenient small workload."""
    return rng.uniform(0.0, 10.0, size=(200, 2))


@pytest.fixture
def small_expo_2d(rng) -> np.ndarray:
    """200 exponentially distributed points — skewed per-point workloads."""
    return rng.exponential(1.0 / 4.0, size=(200, 2))

"""Tests for the workload-skew statistics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grid import GridIndex
from repro.profiling.workload_stats import WorkloadStats, gini_coefficient


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_near_one(self):
        v = np.zeros(1000)
        v[0] = 1.0
        assert gini_coefficient(v) > 0.99

    def test_known_value(self):
        # two values {0, 1}: Gini = 0.5
        assert gini_coefficient(np.array([0.0, 1.0])) == pytest.approx(0.5)

    def test_empty_and_zero(self):
        assert gini_coefficient(np.array([])) == 0.0
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini_coefficient(np.array([-1.0, 1.0]))

    @given(st.lists(st.floats(0, 1000), min_size=1, max_size=200))
    def test_bounds_and_scale_invariance(self, xs):
        v = np.array(xs)
        g = gini_coefficient(v)
        assert -1e-9 <= g < 1.0
        if v.sum() > 0:
            assert gini_coefficient(v * 3.7) == pytest.approx(g, abs=1e-9)


class TestWorkloadStats:
    def test_uniform_vs_exponential_ordering(self, rng):
        from repro.data import exponential, uniform

        unif = GridIndex(uniform(3000, 2, seed=1, high=10.0), 0.3)
        expo = GridIndex(exponential(3000, 2, seed=1), 0.01)
        su = WorkloadStats.from_index(unif)
        se = WorkloadStats.from_index(expo)
        assert se.gini > su.gini
        assert se.cv > su.cv
        # skew destroys random-packing WEE
        assert se.random_packing_wee < su.random_packing_wee

    def test_equal_workloads_perfect_wee(self):
        s = WorkloadStats.from_workloads(np.full(128, 5.0))
        assert s.random_packing_wee == pytest.approx(1.0)
        assert s.cv == 0.0

    def test_empty(self):
        s = WorkloadStats.from_workloads(np.array([]))
        assert s.num_points == 0
        assert s.random_packing_wee == 1.0

    def test_tail_padding_does_not_crash(self):
        # 33 points: one padded warp
        s = WorkloadStats.from_workloads(np.ones(33))
        assert 0 < s.random_packing_wee <= 1.0

    def test_top1_share(self):
        w = np.ones(100)
        w[0] = 101.0
        s = WorkloadStats.from_workloads(w)
        assert s.top1_share == pytest.approx(101.0 / 200.0)

    def test_render(self, rng):
        idx = GridIndex(rng.uniform(0, 5, (300, 2)), 0.5)
        out = WorkloadStats.from_index(idx).render()
        assert "Gini" in out and "random-packing WEE" in out

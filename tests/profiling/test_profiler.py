"""Unit tests for the profiling report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PRESETS, SelfJoin
from repro.perfmodel import PerformanceModel
from repro.profiling import ProfileReport, ProfileRow, profile_run


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(0).uniform(0, 5, (300, 2))


class TestProfileRun:
    def test_from_vm_result(self, points):
        res = SelfJoin().execute(points, 0.5)
        row = profile_run(res, dataset="toy", epsilon=0.5)
        assert row.config == "full, k=1"
        assert row.result_rows == res.num_pairs
        assert 0 < row.wee_percent <= 100

    def test_from_model_run(self, points):
        model = PerformanceModel()
        run = model.estimate(model.profile(points, 0.5), PRESETS["combined"])
        row = profile_run(run, dataset="toy", epsilon=0.5, config="combined")
        assert row.config == "combined"
        assert row.num_warps == run.num_warps
        assert row.result_rows == run.total_result_rows


class TestProfileReport:
    def test_render_contains_rows(self, points):
        rep = ProfileReport("Table X")
        res = SelfJoin().execute(points, 0.5)
        rep.add_run(res, dataset="toy", epsilon=0.5)
        out = rep.render()
        assert "Table X" in out
        assert "toy" in out
        assert "WEE (%)" in out

    def test_speedups(self):
        rep = ProfileReport()
        rep.add(ProfileRow("d", 0.5, "base", 50.0, 10.0))
        rep.add(ProfileRow("d", 0.5, "opt", 90.0, 2.0))
        sp = rep.speedups("base")
        assert sp[("d", 0.5)]["opt"] == pytest.approx(5.0)

    def test_speedups_missing_baseline(self):
        rep = ProfileReport()
        rep.add(ProfileRow("d", 0.5, "opt", 90.0, 2.0))
        assert rep.speedups("base") == {}

    def test_speedup_zero_time(self):
        rep = ProfileReport()
        rep.add(ProfileRow("d", 1.0, "base", 50.0, 1.0))
        rep.add(ProfileRow("d", 1.0, "opt", 90.0, 0.0))
        assert rep.speedups("base")[("d", 1.0)]["opt"] == np.inf

"""Integration-grade unit tests: every kernel configuration returns the
exact result set, and the simulated metrics behave sanely."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_pairs, kdtree_pairs
from repro.core import PRESETS, OptimizationConfig, SelfJoin
from repro.simt import DeviceSpec


def canon(pairs: np.ndarray) -> np.ndarray:
    if len(pairs) == 0:
        return pairs.reshape(0, 2)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


@pytest.fixture(scope="module")
def mixed_points():
    rng = np.random.default_rng(99)
    dense = rng.normal(3.0, 0.3, size=(250, 2))
    sparse = rng.uniform(0, 8, size=(250, 2))
    return np.concatenate([dense, sparse])


@pytest.fixture(scope="module")
def oracle_pairs(mixed_points):
    return brute_force_pairs(mixed_points, 0.35)


class TestExactness:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_every_preset_exact(self, preset, mixed_points, oracle_pairs):
        res = SelfJoin(PRESETS[preset]).execute(mixed_points, 0.35)
        np.testing.assert_array_equal(res.sorted_pairs(), oracle_pairs)

    def test_agrees_with_kdtree(self, mixed_points):
        res = SelfJoin().execute(mixed_points, 0.35)
        np.testing.assert_array_equal(
            res.sorted_pairs(), kdtree_pairs(mixed_points, 0.35)
        )

    def test_exclude_self(self, mixed_points):
        res = SelfJoin(include_self=False).execute(mixed_points, 0.35)
        assert not (res.pairs[:, 0] == res.pairs[:, 1]).any()
        np.testing.assert_array_equal(
            res.sorted_pairs(),
            brute_force_pairs(mixed_points, 0.35, include_self=False),
        )

    def test_multibatch_exact(self, mixed_points, oracle_pairs):
        for preset in ("gpucalcglobal", "workqueue", "combined"):
            cfg = PRESETS[preset].with_(batch_result_capacity=len(oracle_pairs) // 5 + 1)
            res = SelfJoin(cfg).execute(mixed_points, 0.35)
            assert res.num_batches > 1
            np.testing.assert_array_equal(res.sorted_pairs(), oracle_pairs)

    @settings(max_examples=10)
    @given(
        seed=st.integers(0, 2**31 - 1),
        ndim=st.integers(1, 4),
        eps=st.floats(0.1, 1.0),
        preset=st.sampled_from(["gpucalcglobal", "lidunicomp", "combined"]),
    )
    def test_property_exactness(self, seed, ndim, eps, preset):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 3, size=(120, ndim))
        res = SelfJoin(PRESETS[preset]).execute(pts, eps)
        np.testing.assert_array_equal(
            res.sorted_pairs(), brute_force_pairs(pts, eps)
        )

    def test_duplicate_points(self):
        pts = np.repeat(np.random.default_rng(1).uniform(0, 2, (30, 2)), 3, axis=0)
        res = SelfJoin(PRESETS["lidunicomp"]).execute(pts, 0.2)
        np.testing.assert_array_equal(res.sorted_pairs(), brute_force_pairs(pts, 0.2))

    def test_two_points(self):
        pts = np.array([[0.0, 0.0], [0.1, 0.0]])
        res = SelfJoin().execute(pts, 0.5)
        assert res.num_pairs == 4  # 2 self + both directions

    def test_single_point(self):
        res = SelfJoin().execute(np.array([[1.0, 1.0]]), 0.5)
        assert res.num_pairs == 1

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            SelfJoin().execute(np.zeros((3, 2)), -1.0)


class TestMetrics:
    def test_wee_in_unit_interval(self, mixed_points):
        for preset in PRESETS.values():
            res = SelfJoin(preset).execute(mixed_points, 0.35)
            assert 0.0 < res.warp_execution_efficiency <= 1.0

    def test_workqueue_raises_wee_on_skewed_data(self, mixed_points):
        base = SelfJoin(PRESETS["gpucalcglobal"], seed=1).execute(mixed_points, 0.35)
        queued = SelfJoin(PRESETS["workqueue"], seed=1).execute(mixed_points, 0.35)
        assert queued.warp_execution_efficiency > base.warp_execution_efficiency

    def test_half_pattern_reduces_kernel_time(self, mixed_points):
        full = SelfJoin(PRESETS["gpucalcglobal"], seed=1).execute(mixed_points, 0.35)
        lid = SelfJoin(PRESETS["lidunicomp"], seed=1).execute(mixed_points, 0.35)
        assert lid.kernel_seconds < full.kernel_seconds

    def test_times_positive_and_pipeline_consistent(self, mixed_points):
        res = SelfJoin().execute(mixed_points, 0.35)
        assert res.total_seconds >= res.kernel_seconds > 0

    def test_selectivity(self, mixed_points):
        res = SelfJoin().execute(mixed_points, 0.35)
        assert res.selectivity == res.num_pairs / len(mixed_points)

    def test_neighbor_lists_cover_pairs(self, mixed_points):
        res = SelfJoin().execute(mixed_points, 0.35)
        lists = res.neighbor_lists()
        assert sum(len(v) for v in lists.values()) == res.num_pairs
        # each point is its own neighbor
        assert all(int(q) in v.tolist() for q, v in list(lists.items())[:10])

    def test_seed_controls_scheduler_only(self, mixed_points):
        a = SelfJoin(seed=1).execute(mixed_points, 0.35)
        b = SelfJoin(seed=2).execute(mixed_points, 0.35)
        np.testing.assert_array_equal(a.sorted_pairs(), b.sorted_pairs())


class TestOverflowRecovery:
    def test_tiny_capacity_still_exact(self, mixed_points, oracle_pairs):
        # capacity below a single cell's output forces re-planning
        cfg = OptimizationConfig(batch_result_capacity=max(64, len(oracle_pairs) // 50))
        res = SelfJoin(cfg).execute(mixed_points, 0.35)
        np.testing.assert_array_equal(res.sorted_pairs(), oracle_pairs)

    def test_impossible_capacity_raises(self):
        # one emission larger than the whole buffer can never fit
        pts = np.zeros((40, 2))  # 40 identical points: 1600 pairs in one cell
        cfg = OptimizationConfig(batch_result_capacity=10)
        with pytest.raises(RuntimeError, match="failed to converge"):
            SelfJoin(cfg).execute(pts, 0.5)


class TestDeviceVariation:
    def test_more_slots_never_slower(self, mixed_points):
        slow = SelfJoin(device=DeviceSpec(num_sms=2), seed=1).execute(
            mixed_points, 0.35
        )
        fast = SelfJoin(device=DeviceSpec(num_sms=56), seed=1).execute(
            mixed_points, 0.35
        )
        assert fast.kernel_seconds <= slow.kernel_seconds
        np.testing.assert_array_equal(fast.sorted_pairs(), slow.sorted_pairs())

"""Pattern coverage and balance in higher dimensions (4-D / 5-D).

The paper generalizes UNICOMP with "an additional loop for each additional
dimension" and claims LID-UNICOMP's constant per-cell comparison count in
any dimension; these tests pin both properties where the offset space is
large (3^4 = 81, 3^5 = 243).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.patterns import pattern_cells_for_query, unicomp_pivot_dims
from repro.core.sortbywl import pattern_workload_components
from repro.grid import GridIndex, neighbor_offsets, neighbor_ranks_of_cell


@pytest.fixture(scope="module", params=[4, 5])
def highdim_index(request):
    ndim = request.param
    rng = np.random.default_rng(ndim)
    pts = rng.uniform(0, 3, size=(400, ndim))
    return GridIndex(pts, 0.9)


class TestHighDimCoverage:
    @pytest.mark.parametrize("pattern", ["unicomp", "lidunicomp"])
    def test_exact_single_coverage(self, highdim_index, pattern):
        idx = highdim_index
        covered = {}
        for r in range(idx.num_nonempty_cells):
            _, ranks = pattern_cells_for_query(pattern, idx, r)
            for nb in ranks[ranks >= 0]:
                key = (min(r, int(nb)), max(r, int(nb)))
                covered[key] = covered.get(key, 0) + 1
        expected = set()
        for r in range(idx.num_nonempty_cells):
            for nb in neighbor_ranks_of_cell(idx, r, include_self=False):
                expected.add((min(r, int(nb)), max(r, int(nb))))
        assert set(covered) == expected
        assert all(v == 1 for v in covered.values())

    def test_lid_half_of_offsets(self, highdim_index):
        idx = highdim_index
        ndim = idx.ndim
        # an inner cell (all coords away from the boundary) selects exactly
        # (3^n - 1) / 2 offsets
        inner = None
        for r in range(idx.num_nonempty_cells):
            c = idx.cell_coords_arr[r]
            if (c > 0).all() and (c < idx.spec.widths - 1).all():
                inner = r
                break
        if inner is None:
            pytest.skip("no inner cell in this draw")
        visited, _ = pattern_cells_for_query("lidunicomp", idx, inner)
        assert len(visited) == (3**ndim - 1) // 2

    def test_unicomp_pivot_covers_all_nonzero_offsets(self, highdim_index):
        ndim = highdim_index.ndim
        pivots = unicomp_pivot_dims(ndim)
        offs = neighbor_offsets(ndim)
        for o, p in zip(offs, pivots):
            if (o == 0).all():
                assert p == -1
            else:
                assert p == max(np.flatnonzero(o != 0))

    def test_workload_halving(self, highdim_index):
        idx = highdim_index
        full = pattern_workload_components(idx, "full")
        own = idx.cell_counts
        cross_full = ((full.candidates - own) * own).sum()
        for pattern in ("unicomp", "lidunicomp"):
            comps = pattern_workload_components(idx, pattern)
            cross = ((comps.candidates - own) * own).sum()
            assert 2 * cross == cross_full

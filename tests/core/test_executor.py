"""The executor seam: pluggable batch execution under SelfJoin/SimilarityJoin."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchOutcome,
    DeviceExecutor,
    OptimizationConfig,
    SelfJoin,
    SimilarityJoin,
)
from repro.data.adversarial import dense_core_sparse_halo
from repro.grid import GridIndex
from repro.simt import DeviceSpec

_EPS = 0.8


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return dense_core_sparse_halo(250, 2, seed=17)


def test_explicit_default_executor_is_identical(points):
    cfg = OptimizationConfig(work_queue=True, k=2)
    index = GridIndex(points, _EPS)
    implicit = SelfJoin(cfg, seed=4).execute_on_index(index)
    explicit = SelfJoin(cfg, seed=4).execute_on_index(
        index, executor=DeviceExecutor(seed=4)
    )
    assert implicit.pairs.tobytes() == explicit.pairs.tobytes()
    assert implicit.kernel_seconds == pytest.approx(explicit.kernel_seconds)
    assert implicit.total_seconds == pytest.approx(explicit.total_seconds)


def test_executor_device_spec_changes_timing_not_answer(points):
    cfg = OptimizationConfig()
    index = GridIndex(points, _EPS)
    base = SelfJoin(cfg).execute_on_index(index)
    small = SelfJoin(cfg).execute_on_index(
        index,
        executor=DeviceExecutor(DeviceSpec(name="small", num_sms=1, warps_per_sm_slot=2)),
    )
    assert np.array_equal(base.sorted_pairs(), small.sorted_pairs())
    # 2 warp slots instead of 112 must serialize the 8 warps of work
    assert small.kernel_seconds > base.kernel_seconds


def test_subset_union_covers_full_result(points):
    """Running a join as disjoint query subsets over one index reproduces
    the full result — the contract repro.multigpu is built on."""
    cfg = OptimizationConfig(pattern="lidunicomp", work_queue=True)
    join = SelfJoin(cfg)
    index = GridIndex(points, _EPS)
    full = join.execute_on_index(index)
    parts = [
        join.execute_on_index(index, subset=np.arange(s, len(points), 3))
        for s in range(3)
    ]
    union = np.concatenate([p.pairs for p in parts])
    union = union[np.lexsort((union[:, 1], union[:, 0]))]
    assert np.array_equal(union, full.sorted_pairs())
    assert sum(p.num_pairs for p in parts) == full.num_pairs


def test_subset_sees_whole_candidate_side(points):
    """Subsets restrict queries only: each pair (a, b) from a shard has a
    in the shard but b anywhere in the dataset."""
    join = SelfJoin(OptimizationConfig())
    index = GridIndex(points, _EPS)
    subset = np.arange(0, 40, dtype=np.int64)
    part = join.execute_on_index(index, subset=subset)
    assert np.all(np.isin(part.pairs[:, 0], subset))
    assert part.pairs[:, 1].max() >= 40  # candidates outside the shard


def test_bipartite_subset_union(rng):
    left = rng.uniform(0, 6, size=(90, 2))
    right = rng.uniform(0, 6, size=(110, 2))
    join = SimilarityJoin(OptimizationConfig(work_queue=True))
    full = join.execute(left, right, 0.7)
    index = GridIndex(right, 0.7)
    halves = [
        join.execute_on_index(index, left, subset=np.arange(s, len(left), 2))
        for s in range(2)
    ]
    union = np.concatenate([h.pairs for h in halves])
    union = union[np.lexsort((union[:, 1], union[:, 0]))]
    assert np.array_equal(union, full.sorted_pairs())


def test_empty_subset_yields_empty_result(points):
    join = SelfJoin(OptimizationConfig())
    index = GridIndex(points, _EPS)
    result = join.execute_on_index(index, subset=np.array([], dtype=np.int64))
    assert result.num_pairs == 0
    assert result.num_batches == 0
    assert result.total_seconds == 0.0


def test_batch_outcome_merge_empty():
    outcome = BatchOutcome(
        pairs_per_batch=[],
        batch_stats=[],
        kernel_seconds=[],
        transfer_seconds=[],
        pipeline=None,
    )
    merged = outcome.merged_pairs()
    assert merged.shape == (0, 2)
    assert outcome.num_batches == 0

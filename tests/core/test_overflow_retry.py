"""Batch-level overflow recovery inside the executor: geometric regrow,
WORKQUEUE counter rollback, and waste accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DeviceExecutor, OptimizationConfig, SelfJoin
from repro.core.executor import OVERFLOW_POLICIES, OverflowRetry
from repro.data.adversarial import dense_core_sparse_halo
from repro.grid import GridIndex
from repro.resilience import FaultPlan, FaultyExecutor, ForcedOverflow

_EPS = 0.8


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return dense_core_sparse_halo(220, 2, seed=23)


def _clamped(executor: DeviceExecutor, *, times=1, cap=8) -> FaultyExecutor:
    return FaultyExecutor(
        executor,
        0,
        FaultPlan(overflows=[ForcedOverflow(0, times=times, clamp_capacity=cap)]),
    )


def test_policy_validation():
    assert "retry" in OVERFLOW_POLICIES
    with pytest.raises(ValueError):
        DeviceExecutor(overflow_policy="panic")
    with pytest.raises(ValueError):
        DeviceExecutor(overflow_growth=1.0)
    with pytest.raises(ValueError):
        DeviceExecutor(max_overflow_retries=-1)
    with pytest.raises(ValueError):
        DeviceExecutor(overflow_backoff_seconds=-0.5)


def test_retry_recovers_exact_result(points):
    index = GridIndex(points, _EPS)
    join = SelfJoin()
    plain = join.execute_on_index(index, executor=DeviceExecutor(seed=0))
    recovered = join.execute_on_index(
        index, executor=_clamped(DeviceExecutor(seed=0, overflow_policy="retry"))
    )
    assert np.array_equal(plain.sorted_pairs(), recovered.sorted_pairs())
    assert recovered.overflow_retries > 0


def test_retry_rolls_back_workqueue_counter(points):
    """The work-queue's atomic head is the one piece of cross-batch device
    state; an aborted launch must not leave fetched-but-unprocessed points
    behind, or retried runs silently drop pairs."""
    cfg = OptimizationConfig(work_queue=True, pattern="lidunicomp")
    index = GridIndex(points, _EPS)
    join = SelfJoin(cfg)
    plain = join.execute_on_index(index, executor=DeviceExecutor(seed=0))
    recovered = join.execute_on_index(
        index,
        executor=_clamped(
            DeviceExecutor(seed=0, overflow_policy="retry"), times=2, cap=16
        ),
    )
    assert recovered.overflow_retries > 0
    assert np.array_equal(plain.sorted_pairs(), recovered.sorted_pairs())


def test_retry_accounts_wasted_time(points):
    index = GridIndex(points, _EPS)
    join = SelfJoin()
    plain = join.execute_on_index(index, executor=DeviceExecutor(seed=0))
    recovered = join.execute_on_index(
        index, executor=_clamped(DeviceExecutor(seed=0, overflow_policy="retry"))
    )
    assert recovered.overflow_wasted_seconds > 0
    # failed attempts inflate the response time — waste is charged, not free
    assert recovered.total_seconds > plain.total_seconds


def test_backoff_adds_to_waste(points):
    index = GridIndex(points, _EPS)
    join = SelfJoin()
    quick = join.execute_on_index(
        index, executor=_clamped(DeviceExecutor(seed=0, overflow_policy="retry"))
    )
    slow = join.execute_on_index(
        index,
        executor=_clamped(
            DeviceExecutor(
                seed=0, overflow_policy="retry", overflow_backoff_seconds=1.0
            )
        ),
    )
    assert slow.overflow_retries == quick.overflow_retries
    assert slow.overflow_wasted_seconds == pytest.approx(
        quick.overflow_wasted_seconds + quick.overflow_retries * 1.0
    )


def test_bounded_retries_give_up(points):
    """An overflow the growth can't fix within the budget must surface,
    not loop forever."""
    index = GridIndex(points, _EPS)
    join = SelfJoin()
    executor = _clamped(
        DeviceExecutor(
            seed=0,
            overflow_policy="retry",
            overflow_growth=1.001,
            max_overflow_retries=2,
        ),
        cap=2,
    )
    # the executor gives up after 2 attempts; SelfJoin's replan loop then
    # doubles the estimate, but the clamp stays (times=1 budget already
    # spent), so the second plan succeeds — exercising both layers
    result = join.execute_on_index(index, executor=executor)
    assert result.num_pairs == join.execute_on_index(
        index, executor=DeviceExecutor(seed=0)
    ).num_pairs


def test_raise_policy_is_default_and_propagates(points):
    index = GridIndex(points, _EPS)
    join = SelfJoin()
    executor = DeviceExecutor(seed=0)
    assert executor.overflow_policy == "raise"
    # under "raise", recovery happens one layer up (SelfJoin re-plans) and
    # no batch-level retries are recorded
    result = join.execute_on_index(index, executor=_clamped(executor))
    assert result.overflow_retries == 0
    assert np.array_equal(
        result.sorted_pairs(),
        join.execute_on_index(index, executor=DeviceExecutor(seed=0)).sorted_pairs(),
    )


def test_overflow_retry_record_shape():
    r = OverflowRetry(batch_index=3, attempts=2, final_capacity=64, wasted_seconds=0.5)
    assert (r.batch_index, r.attempts, r.final_capacity) == (3, 2, 64)

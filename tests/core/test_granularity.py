"""Unit and property tests for the k-thread candidate split."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.granularity import split_candidates, thread_share_counts


class TestSplitCandidates:
    def test_even_split(self):
        cand = np.arange(8)
        a, off_a = split_candidates(cand, 2, 0)
        b, off_b = split_candidates(cand, 2, 1)
        np.testing.assert_array_equal(a, [0, 2, 4, 6])
        np.testing.assert_array_equal(b, [1, 3, 5, 7])
        assert off_a == off_b == 0  # 8 % 2

    def test_union_is_disjoint_cover(self):
        cand = np.arange(13)
        parts = [split_candidates(cand, 4, r)[0] for r in range(4)]
        merged = np.concatenate(parts)
        assert sorted(merged.tolist()) == list(range(13))

    def test_flat_stream_across_cells_balances(self):
        """With a running offset, the k shares of a multi-cell stream
        differ by at most one even when every cell holds one candidate."""
        cells = [np.array([i]) for i in range(10)]  # ten 1-candidate cells
        totals = []
        for r in range(4):
            offset = 0
            mine = []
            for cand in cells:
                got, offset = split_candidates(cand, 4, r, offset)
                mine.extend(got.tolist())
            totals.append(len(mine))
        assert max(totals) - min(totals) <= 1
        assert sum(totals) == 10

    def test_flat_stream_matches_share_counts(self):
        """Per-thread flat-stream lengths equal the ceil split of the
        total — the identity the performance model relies on."""
        rng = np.random.default_rng(0)
        cell_sizes = rng.integers(0, 7, size=20)
        cells = [np.arange(c) for c in cell_sizes]
        total = int(cell_sizes.sum())
        for k in (2, 4, 8):
            expected = thread_share_counts(np.array([total]), k)[:, 0]
            for r in range(k):
                offset = 0
                count = 0
                for cand in cells:
                    got, offset = split_candidates(cand, k, r, offset)
                    count += len(got)
                assert count == expected[r], (k, r)

    def test_bad_rank_and_offset(self):
        with pytest.raises(ValueError):
            split_candidates(np.arange(3), 2, 2)
        with pytest.raises(ValueError):
            split_candidates(np.arange(3), 2, -1)
        with pytest.raises(ValueError):
            split_candidates(np.arange(3), 2, 0, offset=-1)


class TestThreadShareCounts:
    def test_matches_actual_split_lengths(self):
        for cnt in range(0, 20):
            cand = np.arange(cnt)
            shares = thread_share_counts(np.array([cnt]), 4)[:, 0]
            actual = [len(split_candidates(cand, 4, r)[0]) for r in range(4)]
            np.testing.assert_array_equal(shares, actual)

    @given(
        counts=st.lists(st.integers(0, 1000), min_size=1, max_size=50),
        k=st.sampled_from([1, 2, 4, 8, 16, 32]),
    )
    def test_work_conservation(self, counts, k):
        """The k shares of each cell sum to the cell's candidate count."""
        c = np.array(counts, dtype=np.int64)
        shares = thread_share_counts(c, k)
        np.testing.assert_array_equal(shares.sum(axis=0), c)

    @given(
        counts=st.lists(st.integers(0, 1000), min_size=1, max_size=50),
        k=st.sampled_from([2, 4, 8]),
    )
    def test_thread0_holds_max_share(self, counts, k):
        c = np.array(counts, dtype=np.int64)
        shares = thread_share_counts(c, k)
        assert (shares[0] == shares.max(axis=0)).all()
        # shares differ by at most 1 — the balanced split of Figure 4
        assert (shares.max(axis=0) - shares.min(axis=0) <= 1).all()

    def test_k1_identity(self):
        c = np.array([3, 0, 7])
        np.testing.assert_array_equal(thread_share_counts(c, 1)[0], c)

    def test_k_larger_than_count(self):
        shares = thread_share_counts(np.array([2]), 8)[:, 0]
        np.testing.assert_array_equal(shares, [1, 1, 0, 0, 0, 0, 0, 0])

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            thread_share_counts(np.array([1]), 0)

"""`JoinResult.iter_pairs(chunk=)` edge cases.

The streaming serving layer consumes results exclusively through
``iter_pairs`` fragments, so the contract — the concatenation of every
yielded block equals ``pairs`` exactly, rows in order — is pinned here
over every boundary shape: chunk larger than the result, chunk of one,
empty results, and chunks that straddle fragment boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelfJoin
from repro.data.adversarial import dense_core_sparse_halo

_EPS = 0.8


@pytest.fixture(scope="module")
def result():
    points = dense_core_sparse_halo(200, 2, seed=11)
    # small batch capacity → several fragments of uneven sizes
    from repro.core import OptimizationConfig

    cfg = OptimizationConfig(batch_result_capacity=1500)
    return SelfJoin(cfg).execute(points, _EPS)


def _reassemble(blocks):
    blocks = list(blocks)
    if not blocks:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(blocks)


def test_natural_fragments_reassemble_exactly(result):
    assert result.fragments is not None and len(result.fragments) > 1
    np.testing.assert_array_equal(_reassemble(result.iter_pairs()), result.pairs)


def test_chunk_larger_than_result(result):
    blocks = list(result.iter_pairs(chunk=result.num_pairs * 10))
    assert len(blocks) == 1
    np.testing.assert_array_equal(blocks[0], result.pairs)


def test_chunk_exactly_result_size(result):
    blocks = list(result.iter_pairs(chunk=result.num_pairs))
    assert len(blocks) == 1
    np.testing.assert_array_equal(blocks[0], result.pairs)


def test_chunk_of_one(result):
    blocks = list(result.iter_pairs(chunk=1))
    assert len(blocks) == result.num_pairs
    assert all(len(b) == 1 for b in blocks)
    np.testing.assert_array_equal(_reassemble(blocks), result.pairs)


@pytest.mark.parametrize("chunk", [2, 7, 64, 1000])
def test_chunks_straddle_fragment_boundaries(result, chunk):
    # chunk sizes coprime with the fragment sizes force re-slicing across
    # fragment boundaries; every block except the tail is exactly `chunk`
    blocks = list(result.iter_pairs(chunk=chunk))
    assert all(len(b) == chunk for b in blocks[:-1])
    assert 1 <= len(blocks[-1]) <= chunk
    np.testing.assert_array_equal(_reassemble(blocks), result.pairs)


def test_invalid_chunk_raises(result):
    with pytest.raises(ValueError, match="chunk"):
        next(result.iter_pairs(chunk=0))


def test_empty_result_yields_nothing():
    points = np.array([[0.0, 0.0], [100.0, 100.0]])
    result = SelfJoin(include_self=False).execute(points, 0.5)
    assert result.num_pairs == 0
    assert list(result.iter_pairs()) == []
    assert list(result.iter_pairs(chunk=5)) == []


def test_fragmentless_result_falls_back_to_pairs_view(result):
    from dataclasses import replace

    merged = replace(result, fragments=None)
    np.testing.assert_array_equal(_reassemble(merged.iter_pairs()), result.pairs)
    blocks = list(merged.iter_pairs(chunk=37))
    assert all(len(b) == 37 for b in blocks[:-1])
    np.testing.assert_array_equal(_reassemble(blocks), result.pairs)

"""Unit tests for JoinResult methods and kernel argument plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PRESETS, SelfJoin
from repro.core.kernels import KernelArgs, selfjoin_kernel
from repro.grid import GridIndex
from repro.simt import AtomicCounter, DeviceSpec, GpuMachine, ResultBuffer


@pytest.fixture(scope="module")
def small_result():
    rng = np.random.default_rng(2)
    pts = rng.uniform(0, 4, (150, 2))
    return SelfJoin().execute(pts, 0.5), pts


class TestJoinResult:
    def test_sorted_pairs_lexicographic(self, small_result):
        res, _ = small_result
        sp = res.sorted_pairs()
        keys = sp[:, 0] * (10**6) + sp[:, 1]
        assert (np.diff(keys) > 0).all()  # strictly increasing: no dupes

    def test_neighbor_lists_sorted_and_complete(self, small_result):
        res, _ = small_result
        lists = res.neighbor_lists()
        assert set(lists) == set(np.unique(res.pairs[:, 0]).tolist())
        for q, nbs in lists.items():
            assert (np.diff(nbs) > 0).all()
            assert q in nbs  # self pair

    def test_empty_result_paths(self):
        res = SelfJoin(include_self=False).execute(
            np.array([[0.0, 0.0], [100.0, 100.0]]), 0.5
        )
        assert res.num_pairs == 0
        assert res.neighbor_lists() == {}
        assert len(res.sorted_pairs()) == 0
        assert res.selectivity == 0.0
        assert res.warp_execution_efficiency > 0

    def test_selectivity_and_counts(self, small_result):
        res, pts = small_result
        assert res.num_points == len(pts)
        assert res.selectivity == res.num_pairs / len(pts)


class TestKernelArgs:
    def test_queue_fields_must_pair(self, small_result):
        _, pts = small_result
        idx = GridIndex(pts, 0.5)
        with pytest.raises(ValueError, match="together"):
            KernelArgs(index=idx, batch=np.arange(5), queue_counter=AtomicCounter())

    def test_num_threads_scales_with_k(self, small_result):
        _, pts = small_result
        idx = GridIndex(pts, 0.5)
        args = KernelArgs(index=idx, batch=np.arange(10), k=8)
        assert args.num_threads == 80

    def test_invalid_k(self, small_result):
        _, pts = small_result
        idx = GridIndex(pts, 0.5)
        with pytest.raises(ValueError):
            KernelArgs(index=idx, batch=np.arange(3), k=0)

    def test_guard_thread_beyond_batch_is_noop(self, small_result):
        """Algorithm 1 line 3: a thread past the batch returns untraced."""
        _, pts = small_result
        idx = GridIndex(pts, 0.5)
        args = KernelArgs(index=idx, batch=np.arange(3))
        machine = GpuMachine(DeviceSpec(warp_size=4, num_sms=1))
        buf = ResultBuffer(10**6)
        # launch 8 threads for a 3-query batch: lanes 3..7 are guards
        stats = machine.launch(selfjoin_kernel, 8, args, result_buffer=buf)
        assert stats.warp_stats[1].active_cycles == 0.0  # warp of pure guards

    def test_drained_queue_threads_idle(self, small_result):
        """Queue slots beyond |D'| leave threads idle but traced (they paid
        the fetch)."""
        _, pts = small_result
        idx = GridIndex(pts, 0.5)
        order = np.arange(4)
        counter = AtomicCounter()
        args = KernelArgs(
            index=idx,
            batch=np.arange(8),  # 8 fetches for a 4-slot queue
            queue_counter=counter,
            queue_order=order,
        )
        machine = GpuMachine(DeviceSpec(warp_size=8, num_sms=1))
        buf = ResultBuffer(10**6)
        machine.launch(selfjoin_kernel, 8, args, result_buffer=buf)
        assert counter.value == 8  # everyone fetched
        # only the 4 real slots emitted their own-cell self pair
        assert len(np.unique(buf.pairs()[:, 0])) == 4

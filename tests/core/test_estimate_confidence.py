"""Satellite: the result-size estimator reports its own error bar."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batching import (
    ResultSizeEstimate,
    estimate_result_size,
    estimate_result_size_detailed,
)
from repro.core.sortbywl import sort_by_workload
from repro.data.adversarial import dense_core_sparse_halo
from repro.grid import GridIndex

_EPS = 0.8


@pytest.fixture(scope="module")
def uniform_index() -> GridIndex:
    pts = np.random.default_rng(3).uniform(0.0, 10.0, size=(600, 2))
    return GridIndex(pts, _EPS)


@pytest.fixture(scope="module")
def skewed_index() -> GridIndex:
    return GridIndex(dense_core_sparse_halo(600, 2, seed=3), _EPS)


def test_scalar_form_unchanged(uniform_index):
    """estimate_result_size is exactly the detailed estimate's point value."""
    detailed = estimate_result_size_detailed(uniform_index, sample_fraction=0.1)
    assert estimate_result_size(uniform_index, sample_fraction=0.1) == detailed.estimate


def test_full_sample_has_zero_stderr(uniform_index):
    d = estimate_result_size_detailed(uniform_index, sample_fraction=1.0)
    assert d.sample_size == d.population
    assert d.stderr == 0.0
    assert d.confident
    assert d.with_margin(3.0) == d.estimate


def test_uniform_data_is_confident(uniform_index):
    d = estimate_result_size_detailed(uniform_index, sample_fraction=0.1)
    assert d.sample_size >= 30
    assert d.confident
    assert d.relative_stderr <= 0.25


def test_skew_raises_the_error_bar(uniform_index, skewed_index):
    """Same sample size, same ε: the dense-core dataset's per-point counts
    vary far more, and the estimate must say so."""
    u = estimate_result_size_detailed(uniform_index, sample_fraction=0.1)
    s = estimate_result_size_detailed(skewed_index, sample_fraction=0.1)
    assert s.variance_per_point > u.variance_per_point
    assert s.relative_stderr > u.relative_stderr


def test_head_mode_never_confident(skewed_index):
    """The WORKQUEUE head-of-D' sample is deliberately biased upward — it
    is a safe overestimate, not a measurement."""
    order = sort_by_workload(skewed_index, "full")
    head = estimate_result_size_detailed(
        skewed_index, sample_fraction=0.05, mode="head", order=order
    )
    strided = estimate_result_size_detailed(skewed_index, sample_fraction=0.05)
    assert not head.confident
    assert head.estimate >= strided.estimate  # the bias it exists for


def test_with_margin_monotone(skewed_index):
    d = estimate_result_size_detailed(skewed_index, sample_fraction=0.05)
    margins = [d.with_margin(z) for z in (0.0, 1.0, 2.0, 4.0)]
    assert margins[0] == d.estimate
    assert margins == sorted(margins)
    with pytest.raises(ValueError):
        d.with_margin(-1.0)


def test_degenerate_inputs():
    empty = GridIndex(np.empty((0, 2)), _EPS)
    d = estimate_result_size_detailed(empty)
    assert (d.estimate, d.sample_size, d.stderr) == (0, 0, 0.0)
    one = GridIndex(np.zeros((1, 2)), _EPS)
    d1 = estimate_result_size_detailed(one, sample_fraction=1.0)
    assert d1.estimate == 1  # the self-pair
    assert d1.stderr == 0.0


def test_zero_estimate_relative_stderr():
    d = ResultSizeEstimate(
        estimate=0, sample_size=10, population=100, mode="strided",
        mean_per_point=0.0, variance_per_point=0.0,
    )
    assert d.relative_stderr == 0.0
    d2 = ResultSizeEstimate(
        estimate=0, sample_size=10, population=100, mode="strided",
        mean_per_point=0.0, variance_per_point=4.0,
    )
    assert d2.relative_stderr == float("inf")
    assert not d2.confident

"""Unit tests for the result-size estimator and batch planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_neighbor_counts
from repro.core.batching import estimate_result_size, plan_batches
from repro.core.sortbywl import sort_by_workload
from repro.grid import GridIndex


@pytest.fixture
def skewed_index(rng):
    # dense blob + sparse halo: heavy-tailed workload
    dense = rng.normal(2.0, 0.2, size=(400, 2))
    sparse = rng.uniform(0, 10, size=(400, 2))
    return GridIndex(np.concatenate([dense, sparse]), 0.4)


class TestEstimator:
    def test_full_sample_is_exact(self, skewed_index):
        est = estimate_result_size(skewed_index, sample_fraction=1.0)
        true = brute_force_neighbor_counts(skewed_index.points, 0.4).sum()
        assert est == true

    def test_strided_sample_close_to_truth(self, skewed_index):
        est = estimate_result_size(skewed_index, sample_fraction=0.25)
        true = brute_force_neighbor_counts(skewed_index.points, 0.4).sum()
        assert 0.5 * true <= est <= 2.0 * true

    def test_head_sample_overestimates_on_sorted_order(self, skewed_index):
        """Sampling the heaviest 10% of D' must overestimate — that is the
        WORKQUEUE safety property (Section III-D)."""
        order = sort_by_workload(skewed_index, "full")
        est_head = estimate_result_size(
            skewed_index, sample_fraction=0.1, mode="head", order=order
        )
        true = brute_force_neighbor_counts(skewed_index.points, 0.4).sum()
        assert est_head >= true

    def test_head_requires_order(self, skewed_index):
        with pytest.raises(ValueError, match="order"):
            estimate_result_size(skewed_index, mode="head")

    def test_unknown_mode(self, skewed_index):
        with pytest.raises(ValueError, match="unknown estimator"):
            estimate_result_size(skewed_index, mode="oracle")

    def test_bad_fraction(self, skewed_index):
        with pytest.raises(ValueError):
            estimate_result_size(skewed_index, sample_fraction=0.0)

    def test_empty_dataset(self):
        idx = GridIndex(np.empty((0, 2)), 1.0)
        assert estimate_result_size(idx) == 0

    def test_include_self_flag(self, skewed_index):
        with_self = estimate_result_size(skewed_index, sample_fraction=1.0)
        without = estimate_result_size(
            skewed_index, sample_fraction=1.0, include_self=False
        )
        assert with_self == without + skewed_index.num_points


class TestEstimatorDegenerateInputs:
    """Tiny shards must never divide by zero or plan zero batches."""

    def test_empty_subset(self, skewed_index):
        est = estimate_result_size(
            skewed_index, subset=np.array([], dtype=np.int64)
        )
        assert est == 0

    def test_singleton_subset_with_tiny_fraction(self, skewed_index):
        # sample stride would exceed the population; must clamp, not crash
        est = estimate_result_size(
            skewed_index, subset=np.array([0]), sample_fraction=0.01
        )
        true = brute_force_neighbor_counts(skewed_index.points, 0.4)[0]
        assert est == true

    def test_small_subset_strided_sample_never_empty(self, skewed_index):
        for size in (1, 2, 3, 7):
            subset = np.arange(size, dtype=np.int64)
            est = estimate_result_size(
                skewed_index, subset=subset, sample_fraction=0.01
            )
            assert est >= size  # self-matches alone guarantee this

    def test_subset_estimate_scales_to_shard_not_dataset(self, skewed_index):
        subset = np.arange(0, skewed_index.num_points, 2, dtype=np.int64)
        est = estimate_result_size(skewed_index, subset=subset, sample_fraction=1.0)
        true = brute_force_neighbor_counts(skewed_index.points, 0.4)[subset].sum()
        assert est == true

    def test_head_mode_with_empty_order(self, skewed_index):
        est = estimate_result_size(
            skewed_index, mode="head", order=np.array([], dtype=np.int64)
        )
        assert est == 0

    def test_head_mode_on_small_subset(self, skewed_index):
        order = sort_by_workload(skewed_index, "full")[:3]
        est = estimate_result_size(
            skewed_index,
            subset=order,
            mode="head",
            order=order,
            sample_fraction=0.01,
        )
        assert est > 0

    def test_empty_grid_with_subset(self):
        idx = GridIndex(np.empty((0, 2)), 1.0)
        assert estimate_result_size(idx, subset=np.array([], dtype=np.int64)) == 0

    def test_zero_estimate_still_plans_one_batch(self):
        plan = plan_batches(np.arange(5), estimated_total=0, capacity=100)
        assert plan.num_batches == 1
        assert plan.num_points == 5


class TestPlanBatches:
    def test_single_batch_when_estimate_fits(self):
        order = np.arange(100)
        plan = plan_batches(order, estimated_total=50, capacity=1000)
        assert plan.num_batches == 1
        np.testing.assert_array_equal(plan.batches[0], order)

    def test_strided_assignment_matches_figure1(self):
        order = np.arange(12)
        plan = plan_batches(order, estimated_total=30, capacity=10, strided=True)
        assert plan.num_batches == 3
        np.testing.assert_array_equal(plan.batches[0], [0, 3, 6, 9])
        np.testing.assert_array_equal(plan.batches[1], [1, 4, 7, 10])
        np.testing.assert_array_equal(plan.batches[2], [2, 5, 8, 11])

    def test_contiguous_assignment(self):
        order = np.arange(10)
        plan = plan_batches(order, estimated_total=30, capacity=10, strided=False)
        assert plan.num_batches == 3
        np.testing.assert_array_equal(plan.batches[0], [0, 1, 2, 3])
        np.testing.assert_array_equal(plan.batches[-1], [8, 9])

    def test_every_point_in_exactly_one_batch(self):
        order = np.random.default_rng(0).permutation(57)
        for strided in (True, False):
            plan = plan_batches(order, 100, 7, strided=strided)
            merged = np.concatenate(plan.batches)
            assert sorted(merged.tolist()) == sorted(order.tolist())
            assert plan.num_points == 57

    def test_never_more_batches_than_points(self):
        plan = plan_batches(np.arange(3), estimated_total=10**9, capacity=1)
        assert plan.num_batches == 3

    def test_empty_order(self):
        plan = plan_batches(np.array([], dtype=np.int64), 0, 10)
        assert plan.num_batches == 0
        assert plan.num_points == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_batches(np.arange(3), 10, 0)
        with pytest.raises(ValueError):
            plan_batches(np.arange(3), -1, 10)

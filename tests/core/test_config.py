"""Unit tests for OptimizationConfig and the named presets."""

from __future__ import annotations

import pytest

from repro.core import PRESETS, OptimizationConfig


class TestValidation:
    def test_defaults_are_gpucalcglobal(self):
        cfg = OptimizationConfig()
        assert cfg.pattern == "full"
        assert cfg.k == 1
        assert not cfg.sort_by_workload
        assert not cfg.work_queue

    def test_bad_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            OptimizationConfig(pattern="zigzag")

    @pytest.mark.parametrize("k", [0, -1, 3, 5, 6, 7])
    def test_bad_k(self, k):
        with pytest.raises(ValueError):
            OptimizationConfig(k=k)

    @pytest.mark.parametrize("k", [1, 2, 4, 8, 16, 32])
    def test_good_k(self, k):
        assert OptimizationConfig(k=k).k == k

    def test_workqueue_implies_sort(self):
        cfg = OptimizationConfig(work_queue=True)
        assert cfg.sort_by_workload
        assert cfg.uses_sorted_points

    def test_bad_sample_fraction(self):
        with pytest.raises(ValueError):
            OptimizationConfig(sample_fraction=0.0)
        with pytest.raises(ValueError):
            OptimizationConfig(sample_fraction=1.5)

    def test_bad_capacity_and_streams(self):
        with pytest.raises(ValueError):
            OptimizationConfig(batch_result_capacity=0)
        with pytest.raises(ValueError):
            OptimizationConfig(num_streams=0)

    def test_with_creates_modified_copy(self):
        a = OptimizationConfig()
        b = a.with_(k=8)
        assert a.k == 1 and b.k == 8
        assert b.pattern == a.pattern


class TestPresets:
    def test_all_paper_presets_exist(self):
        for name in (
            "gpucalcglobal",
            "unicomp",
            "lidunicomp",
            "sortbywl",
            "workqueue",
            "combined",
        ):
            assert name in PRESETS

    def test_combined_is_the_headline_config(self):
        c = PRESETS["combined"]
        assert c.pattern == "lidunicomp"
        assert c.work_queue
        assert c.k == 8

    def test_describe(self):
        assert PRESETS["gpucalcglobal"].describe() == "full, k=1"
        assert "queue" in PRESETS["combined"].describe()
        assert "sortbywl" in PRESETS["sortbywl"].describe()

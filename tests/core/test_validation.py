"""Satellite: malformed inputs fail loudly at the join entry points, not
as wrong answers (or NaN-poisoned grids) deep inside the pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelfJoin, SimilarityJoin
from repro.multigpu import MultiGpuSelfJoin, MultiGpuSimilarityJoin


@pytest.fixture
def good() -> np.ndarray:
    return np.random.default_rng(1).uniform(0.0, 5.0, size=(60, 2))


def _nan_poisoned(points: np.ndarray, row: int = 7) -> np.ndarray:
    bad = points.copy()
    bad[row, 0] = np.nan
    return bad


_SELF_FACADES = [
    lambda pts, eps: SelfJoin().execute(pts, eps),
    lambda pts, eps: MultiGpuSelfJoin(num_devices=2).execute(pts, eps),
]
_BIPARTITE_FACADES = [
    lambda l, r, eps: SimilarityJoin().execute(l, r, eps),
    lambda l, r, eps: MultiGpuSimilarityJoin(num_devices=2).execute(l, r, eps),
]


@pytest.mark.parametrize("run", _SELF_FACADES)
def test_selfjoin_rejects_nan_points(good, run):
    with pytest.raises(ValueError, match="NaN/inf"):
        run(_nan_poisoned(good), 0.5)


@pytest.mark.parametrize("run", _SELF_FACADES)
def test_selfjoin_rejects_inf_points(good, run):
    bad = good.copy()
    bad[3, 1] = np.inf
    with pytest.raises(ValueError, match="NaN/inf"):
        run(bad, 0.5)


@pytest.mark.parametrize("run", _SELF_FACADES)
@pytest.mark.parametrize("eps", [0.0, -1.0, np.nan, np.inf])
def test_selfjoin_rejects_bad_epsilon(good, run, eps):
    with pytest.raises(ValueError, match="epsilon"):
        run(good, eps)


@pytest.mark.parametrize("run", _BIPARTITE_FACADES)
def test_bipartite_rejects_nan_on_either_side(good, run):
    other = good + 0.1
    with pytest.raises(ValueError, match="NaN/inf"):
        run(_nan_poisoned(good), other, 0.5)
    with pytest.raises(ValueError, match="NaN/inf"):
        run(good, _nan_poisoned(other), 0.5)


@pytest.mark.parametrize("run", _BIPARTITE_FACADES)
@pytest.mark.parametrize("eps", [0.0, -2.5, np.nan])
def test_bipartite_rejects_bad_epsilon(good, run, eps):
    with pytest.raises(ValueError, match="epsilon"):
        run(good, good + 0.1, eps)


def test_error_message_locates_the_bad_row(good):
    bad = _nan_poisoned(good, row=42)
    with pytest.raises(ValueError, match="row: 42"):
        SelfJoin().execute(bad, 0.5)


def test_non_2d_points_rejected(good):
    with pytest.raises(ValueError, match="2-D"):
        SelfJoin().execute(np.zeros((2, 2, 2)), 0.5)
    with pytest.raises(ValueError, match="dimension"):
        SelfJoin().execute(np.zeros((5, 0)), 0.5)

"""End-to-end engine equivalence through the join facades.

The machine-level proof lives in ``tests/simt/test_vectorized_engine.py``;
here the two engines run the *whole* pipeline — planning, batching,
WORKQUEUE state across batches, overflow recovery, the stream pipeline —
and must produce identical results and identical simulated metrics for
every preset the paper evaluates.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DeviceExecutor,
    OptimizationConfig,
    SelfJoin,
    SimilarityJoin,
)
from repro.core.config import PRESETS
from repro.data.adversarial import dense_core_sparse_halo
from repro.grid import GridIndex
from repro.resilience import FaultPlan, FaultyExecutor, ForcedOverflow
from repro.runtime import RuntimeConfig

_EPS = 0.8


def _self_join(cfg, *, seed, engine, **runtime_kw) -> SelfJoin:
    return SelfJoin(
        runtime=RuntimeConfig(
            optimization=cfg, seed=seed, engine=engine, **runtime_kw
        )
    )


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return dense_core_sparse_halo(260, 2, seed=17)


@pytest.fixture(scope="module")
def index(points) -> GridIndex:
    return GridIndex(points, _EPS)


def assert_results_equal(a, b):
    np.testing.assert_array_equal(a.pairs, b.pairs)
    assert len(a.batch_stats) == len(b.batch_stats)
    for sa, sb in zip(a.batch_stats, b.batch_stats):
        assert sa.cycles == sb.cycles
        assert sa.seconds == sb.seconds
        assert sa.warp_execution_efficiency == sb.warp_execution_efficiency
    assert a.total_seconds == b.total_seconds
    assert a.overflow_retries == b.overflow_retries
    assert a.overflow_wasted_seconds == b.overflow_wasted_seconds


class TestSelfJoinPresets:
    @pytest.mark.parametrize("preset", sorted(PRESETS))
    def test_preset_equivalence(self, index, preset):
        # small batch capacity forces a multi-batch plan, so the queue
        # counter's cross-batch persistence is exercised too
        cfg = PRESETS[preset].with_(batch_result_capacity=1500)
        results = [
            _self_join(cfg, seed=3, engine=engine).execute_on_index(index)
            for engine in ("interpreted", "vectorized")
        ]
        assert_results_equal(*results)
        assert len(results[0].pairs) > 0
        assert len(results[0].batch_stats) > 1

    def test_subset_equivalence(self, index):
        cfg = OptimizationConfig(pattern="lidunicomp", k=2, work_queue=True)
        subset = np.arange(0, index.num_points, 3, dtype=np.int64)
        results = [
            _self_join(cfg, seed=5, engine=engine).execute_on_index(
                index, subset=subset
            )
            for engine in ("interpreted", "vectorized")
        ]
        assert_results_equal(*results)

    def test_exclude_self_equivalence(self, index):
        cfg = OptimizationConfig(pattern="unicomp", k=4, work_queue=True)
        results = [
            _self_join(
                cfg, seed=1, engine=engine, include_self=False
            ).execute_on_index(index)
            for engine in ("interpreted", "vectorized")
        ]
        assert_results_equal(*results)
        assert not np.any(results[0].pairs[:, 0] == results[0].pairs[:, 1])


class TestBipartitePresets:
    @pytest.mark.parametrize(
        "cfg",
        [
            OptimizationConfig(),
            OptimizationConfig(k=4),
            OptimizationConfig(sort_by_workload=True),
            OptimizationConfig(work_queue=True, k=2),
            OptimizationConfig(work_queue=True, k=8, balanced_batches=True),
        ],
        ids=["baseline", "k4", "sortbywl", "queue_k2", "balanced_k8"],
    )
    def test_equivalence(self, points, cfg):
        rng = np.random.default_rng(9)
        queries = rng.uniform(-1.0, 9.0, size=(140, 2))
        cfg = cfg.with_(batch_result_capacity=1200)
        results = [
            SimilarityJoin(
                runtime=RuntimeConfig(optimization=cfg, seed=2, engine=engine)
            ).execute(queries, points, _EPS)
            for engine in ("interpreted", "vectorized")
        ]
        assert_results_equal(*results)
        assert len(results[0].pairs) > 0


class TestOverflowEquivalence:
    def _clamped(self, engine, *, times=1, cap=16) -> FaultyExecutor:
        return FaultyExecutor(
            DeviceExecutor(seed=0, overflow_policy="retry", engine=engine),
            0,
            FaultPlan(overflows=[ForcedOverflow(0, times=times, clamp_capacity=cap)]),
        )

    def test_replan_on_raise_policy(self, index):
        # capacity honored: the vectorized engine must overflow exactly
        # where the interpreter does, propagate under the "raise" policy,
        # and the doubled re-plan must converge to the same answer
        cfg = OptimizationConfig(
            pattern="lidunicomp", work_queue=True, k=2, batch_result_capacity=4000
        )
        results = []
        for engine in ("interpreted", "vectorized"):
            executor = FaultyExecutor(
                DeviceExecutor(seed=0, engine=engine),
                0,
                FaultPlan(overflows=[ForcedOverflow(0, times=1, clamp_capacity=16)]),
            )
            results.append(
                _self_join(cfg, seed=3, engine=engine).execute_on_index(
                    index, executor=executor
                )
            )
        assert_results_equal(*results)

    def test_retry_policy_rolls_back_workqueue(self, index):
        # batch-level recovery: the aborted launch's queue fetches are
        # rolled back, so the retried batch sees the same queue state on
        # both engines and the outcomes match retry-for-retry
        cfg = OptimizationConfig(work_queue=True, k=2, batch_result_capacity=4000)
        join = SelfJoin(cfg, seed=0)
        results = [
            join.execute_on_index(
                index, executor=self._clamped(engine, times=2, cap=16)
            )
            for engine in ("interpreted", "vectorized")
        ]
        assert_results_equal(*results)
        assert results[0].overflow_retries > 0


class TestPatternPlanMemoization:
    def test_plan_cached_per_pattern(self, index):
        from repro.core.patterns import get_pattern_plan

        plan = get_pattern_plan("lidunicomp", index)
        assert get_pattern_plan("lidunicomp", index) is plan
        assert get_pattern_plan("full", index) is not plan

    def test_cells_for_rank_matches_uncached_computation(self, index):
        from repro.core.patterns import PatternPlan, pattern_cells_for_query

        for pattern in ("full", "unicomp", "lidunicomp"):
            fresh = PatternPlan(pattern, index)
            for rank in range(0, index.num_nonempty_cells, 7):
                visited, ranks = pattern_cells_for_query(pattern, index, rank)
                v2, r2 = fresh.cells_for_rank(rank)
                np.testing.assert_array_equal(visited, v2)
                np.testing.assert_array_equal(ranks, r2)

    def test_counts_match_offset_visits(self, index):
        from repro.core.patterns import get_pattern_plan

        plan = get_pattern_plan("unicomp", index)
        vc = plan.visited_counts()
        cc = plan.candidate_counts()
        for rank in range(0, index.num_nonempty_cells, 5):
            visited, ranks = plan.cells_for_rank(rank)
            assert vc[rank] == len(visited)
            expected = index.cell_counts[rank] + sum(
                index.cell_counts[r] for r in ranks if r >= 0
            )
            assert cc[rank] == expected


class TestDensePointCellRank:
    def test_matches_lookup(self, points):
        index = GridIndex(points, _EPS)
        coords = index.spec.cell_coords(index.points)
        expected = index.lookup(index.spec.linearize(coords))
        np.testing.assert_array_equal(index.point_cell_rank, expected)
        assert index.point_cell_rank.dtype == np.int64

"""Tests for the bipartite similarity join (VM, model, and grid helpers)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PRESETS, SimilarityJoin
from repro.core.join import BipartiteKernelArgs
from repro.grid import GridIndex
from repro.grid.bipartite import (
    bipartite_neighbor_counts,
    bipartite_pairs,
    bipartite_workloads,
)
from repro.perfmodel import PerformanceModel
from repro.simt import CostParams


def oracle_pairs(A, B, eps):
    d2 = ((A[:, None, :] - B[None, :, :]) ** 2).sum(axis=-1)
    i, j = np.nonzero(d2 <= eps * eps)
    return np.stack([i, j], axis=1).astype(np.int64)


@pytest.fixture(scope="module")
def datasets():
    rng = np.random.default_rng(17)
    A = rng.uniform(0, 5, (350, 2))
    B = np.concatenate([rng.normal(2, 0.3, (250, 2)), rng.uniform(-1, 6, (250, 2))])
    return A, B


class TestGridBipartite:
    def test_counts_match_oracle(self, datasets):
        A, B = datasets
        idx = GridIndex(B, 0.3)
        counts = bipartite_neighbor_counts(idx, A)
        d2 = ((A[:, None, :] - B[None, :, :]) ** 2).sum(axis=-1)
        np.testing.assert_array_equal(counts, (d2 <= 0.09).sum(axis=1))

    def test_pairs_match_oracle(self, datasets):
        A, B = datasets
        idx = GridIndex(B, 0.3)
        got = bipartite_pairs(idx, A)
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        np.testing.assert_array_equal(got, oracle_pairs(A, B, 0.3))

    def test_queries_outside_box(self):
        """Queries beyond B's bounding box: near ones match boundary cells,
        far ones match nothing."""
        B = np.array([[0.0, 0.0], [1.0, 1.0]])
        idx = GridIndex(B, 0.5)
        A = np.array([[-0.3, 0.0], [50.0, 50.0], [1.2, 1.2]])
        counts = bipartite_neighbor_counts(idx, A)
        np.testing.assert_array_equal(counts, [1, 0, 1])

    def test_empty_sides(self):
        idx = GridIndex(np.empty((0, 2)), 1.0)
        assert bipartite_neighbor_counts(idx, np.zeros((3, 2))).sum() == 0
        idx2 = GridIndex(np.zeros((3, 2)), 1.0)
        assert len(bipartite_pairs(idx2, np.empty((0, 2)))) == 0

    def test_workloads_bound_counts(self, datasets):
        A, B = datasets
        idx = GridIndex(B, 0.3)
        cand, visited = bipartite_workloads(idx, A)
        counts = bipartite_neighbor_counts(idx, A)
        assert (cand >= counts).all()
        assert (visited <= 3 ** idx.ndim).all()

    @given(seed=st.integers(0, 2**31 - 1), ndim=st.integers(1, 3))
    @settings(max_examples=15)
    def test_property_pairs_exact(self, seed, ndim):
        rng = np.random.default_rng(seed)
        A = rng.uniform(0, 3, (60, ndim))
        B = rng.uniform(-0.5, 3.5, (60, ndim))
        idx = GridIndex(B, 0.6)
        got = bipartite_pairs(idx, A)
        got = got[np.lexsort((got[:, 1], got[:, 0]))] if len(got) else got
        np.testing.assert_array_equal(got.reshape(-1, 2), oracle_pairs(A, B, 0.6))


class TestSimilarityJoinVM:
    @pytest.mark.parametrize(
        "preset", ["gpucalcglobal", "k8", "sortbywl", "workqueue", "workqueue_k8"]
    )
    def test_exactness(self, preset, datasets):
        A, B = datasets
        res = SimilarityJoin(PRESETS[preset]).execute(A, B, 0.3)
        np.testing.assert_array_equal(res.sorted_pairs(), oracle_pairs(A, B, 0.3))

    def test_balanced_batches_exact(self, datasets):
        A, B = datasets
        cfg = PRESETS["workqueue"].with_(
            balanced_batches=True, batch_result_capacity=1500
        )
        res = SimilarityJoin(cfg).execute(A, B, 0.3)
        assert res.num_batches > 1
        np.testing.assert_array_equal(res.sorted_pairs(), oracle_pairs(A, B, 0.3))

    def test_multibatch_exact(self, datasets):
        A, B = datasets
        cfg = PRESETS["workqueue_k8"].with_(batch_result_capacity=800)
        res = SimilarityJoin(cfg).execute(A, B, 0.3)
        assert res.num_batches > 3
        np.testing.assert_array_equal(res.sorted_pairs(), oracle_pairs(A, B, 0.3))

    def test_rejects_half_patterns(self):
        with pytest.raises(ValueError, match="pattern='full'"):
            SimilarityJoin(PRESETS["lidunicomp"])

    def test_self_bipartite_equals_selfjoin_pairs(self, datasets):
        """A ⋈ A equals the self-join's result set (with self pairs)."""
        from repro import SelfJoin

        A, _ = datasets
        bi = SimilarityJoin().execute(A, A, 0.25)
        self_join = SelfJoin().execute(A, 0.25)
        np.testing.assert_array_equal(bi.sorted_pairs(), self_join.sorted_pairs())

    def test_disjoint_datasets(self):
        A = np.zeros((10, 2))
        B = np.full((10, 2), 100.0)
        res = SimilarityJoin().execute(A, B, 1.0)
        assert res.num_pairs == 0

    def test_invalid_epsilon(self, datasets):
        A, B = datasets
        with pytest.raises(ValueError):
            SimilarityJoin().execute(A, B, 0.0)

    def test_kernel_args_validation(self, datasets):
        A, B = datasets
        idx = GridIndex(B, 0.3)
        with pytest.raises(ValueError, match="together"):
            BipartiteKernelArgs(
                index=idx,
                queries=A,
                batch=np.arange(3),
                queue_order=np.arange(3),
            )
        with pytest.raises(ValueError, match="k"):
            BipartiteKernelArgs(index=idx, queries=A, batch=np.arange(3), k=0)


class TestSimilarityJoinModel:
    @pytest.mark.parametrize(
        "preset", ["gpucalcglobal", "k8", "workqueue", "workqueue_k8"]
    )
    def test_model_matches_vm(self, preset, datasets):
        A, B = datasets
        cfg = PRESETS[preset].with_(batch_result_capacity=2500)
        costs = CostParams(c_emit=0.0)
        vm = SimilarityJoin(cfg, costs=costs, seed=9).execute(A, B, 0.3)
        model = PerformanceModel(costs=costs, seed=9)
        run = model.estimate_bipartite(model.profile_bipartite(A, B, 0.3), cfg)
        assert run.num_batches == vm.num_batches
        assert run.kernel_seconds == pytest.approx(vm.kernel_seconds, rel=1e-12)
        assert run.warp_execution_efficiency == pytest.approx(
            vm.warp_execution_efficiency, rel=1e-12
        )
        assert run.total_result_rows == vm.num_pairs

    def test_model_rejects_half_pattern(self, datasets):
        A, B = datasets
        model = PerformanceModel()
        profile = model.profile_bipartite(A, B, 0.3)
        with pytest.raises(ValueError, match="pattern='full'"):
            model.estimate_bipartite(profile, PRESETS["lidunicomp"])

    def test_workqueue_improves_wee_on_skewed_inner(self, datasets):
        A, B = datasets
        model = PerformanceModel(seed=2)
        profile = model.profile_bipartite(A, B, 0.3)
        base = model.estimate_bipartite(profile, PRESETS["gpucalcglobal"])
        queue = model.estimate_bipartite(profile, PRESETS["workqueue_k8"])
        assert queue.warp_execution_efficiency > base.warp_execution_efficiency


class TestBipartiteBalancedModel:
    def test_balanced_model_matches_vm(self, datasets):
        A, B = datasets
        cfg = PRESETS["workqueue"].with_(
            balanced_batches=True, batch_result_capacity=1500
        )
        costs = CostParams(c_emit=0.0)
        vm = SimilarityJoin(cfg, costs=costs, seed=6).execute(A, B, 0.3)
        model = PerformanceModel(costs=costs, seed=6)
        run = model.estimate_bipartite(model.profile_bipartite(A, B, 0.3), cfg)
        assert run.num_batches == vm.num_batches > 1
        assert run.kernel_seconds == pytest.approx(vm.kernel_seconds, rel=1e-12)

    def test_profile_reuse_across_configs(self, datasets):
        A, B = datasets
        model = PerformanceModel(seed=0)
        profile = model.profile_bipartite(A, B, 0.3)
        runs = [
            model.estimate_bipartite(profile, PRESETS[p])
            for p in ("gpucalcglobal", "workqueue", "workqueue_k8")
        ]
        assert len({r.total_result_rows for r in runs}) == 1

    def test_estimate_validation(self, datasets):
        A, B = datasets
        model = PerformanceModel()
        profile = model.profile_bipartite(A, B, 0.3)
        with pytest.raises(ValueError):
            profile.estimate(0.0, head=False)

"""Unit and property tests for the cell access patterns.

The load-bearing invariant: for any dataset, every adjacent (unordered)
cell pair must be covered by *exactly one* direction under UNICOMP and
LID-UNICOMP — that is what makes mirrored emission produce the exact
result set with half the distance computations.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.patterns import (
    PATTERN_NAMES,
    pattern_cells_for_query,
    pattern_offset_selector,
    unicomp_pivot_dims,
)
from repro.grid import GridIndex, neighbor_offsets, neighbor_ranks_of_cell


def build_index(seed: int, ndim: int, n: int = 120, eps: float = 0.8) -> GridIndex:
    rng = np.random.default_rng(seed)
    return GridIndex(rng.uniform(0, 4, size=(n, ndim)), eps)


class TestUnicompPivots:
    def test_2d_matches_algorithm2(self):
        offs = neighbor_offsets(2)
        pivots = unicomp_pivot_dims(2)
        for o, p in zip(offs, pivots):
            if o[1] != 0:
                assert p == 1  # red arrows: y decides
            elif o[0] != 0:
                assert p == 0  # green arrows: x decides
            else:
                assert p == -1

    def test_zero_offset_has_no_pivot(self):
        for n in (1, 2, 3):
            pivots = unicomp_pivot_dims(n)
            assert pivots[3**n // 2] == -1
            assert (np.delete(pivots, 3**n // 2) >= 0).all()


class TestSelectorShapes:
    @pytest.mark.parametrize("pattern", PATTERN_NAMES)
    def test_zero_offset_never_selected(self, pattern):
        idx = build_index(0, 2)
        sel = pattern_offset_selector(pattern, idx)
        zero = 3**2 // 2
        assert not sel(zero).any()

    def test_unknown_pattern(self):
        idx = build_index(0, 2)
        with pytest.raises(ValueError, match="unknown pattern"):
            pattern_offset_selector("spiral", idx)
        with pytest.raises(ValueError, match="unknown pattern"):
            pattern_cells_for_query("spiral", idx, 0)

    def test_full_selects_all_nonzero(self):
        idx = build_index(1, 2)
        sel = pattern_offset_selector("full", idx)
        for oi in range(9):
            if oi == 4:  # zero offset
                assert not sel(oi).any()
            else:
                assert sel(oi).all()

    def test_lid_is_cell_independent_half(self):
        idx = build_index(2, 3)
        sel = pattern_offset_selector("lidunicomp", idx)
        chosen = [oi for oi in range(27) if sel(oi).any()]
        for oi in chosen:
            assert sel(oi).all()  # same for every cell
        assert len(chosen) == 13  # (3^3 - 1) / 2

    def test_unicomp_depends_on_parity(self):
        idx = build_index(3, 2)
        sel = pattern_offset_selector("unicomp", idx)
        pivots = unicomp_pivot_dims(2)
        coords = idx.cell_coords_arr
        for oi in range(9):
            if pivots[oi] < 0:
                continue
            expected = (coords[:, pivots[oi]] & 1) == 1
            np.testing.assert_array_equal(sel(oi), expected)


class TestCoverage:
    """Every adjacent unordered cell pair covered exactly once."""

    @pytest.mark.parametrize("pattern", ["unicomp", "lidunicomp"])
    @pytest.mark.parametrize("ndim", [1, 2, 3])
    def test_exact_single_coverage(self, pattern, ndim):
        idx = build_index(11 + ndim, ndim)
        covered: dict[tuple[int, int], int] = {}
        for r in range(idx.num_nonempty_cells):
            _, ranks = pattern_cells_for_query(pattern, idx, r)
            for nb in ranks[ranks >= 0]:
                key = (min(r, int(nb)), max(r, int(nb)))
                covered[key] = covered.get(key, 0) + 1
        # expected: all adjacent non-empty unordered pairs (excluding self)
        expected = set()
        for r in range(idx.num_nonempty_cells):
            for nb in neighbor_ranks_of_cell(idx, r, include_self=False):
                expected.add((min(r, int(nb)), max(r, int(nb))))
        assert set(covered) == expected
        assert all(v == 1 for v in covered.values()), "double coverage detected"

    @given(seed=st.integers(0, 2**31 - 1), ndim=st.integers(1, 3))
    def test_property_single_coverage_lid(self, seed, ndim):
        idx = build_index(seed, ndim, n=60, eps=1.0)
        seen = set()
        for r in range(idx.num_nonempty_cells):
            _, ranks = pattern_cells_for_query("lidunicomp", idx, r)
            for nb in ranks[ranks >= 0]:
                key = (min(r, int(nb)), max(r, int(nb)))
                assert key not in seen
                seen.add(key)

    def test_full_covers_both_directions(self):
        idx = build_index(5, 2)
        covered: dict[tuple[int, int], int] = {}
        for r in range(idx.num_nonempty_cells):
            _, ranks = pattern_cells_for_query("full", idx, r)
            for nb in ranks[ranks >= 0]:
                key = (min(r, int(nb)), max(r, int(nb)))
                covered[key] = covered.get(key, 0) + 1
        assert all(v == 2 for v in covered.values()), "full must cover both ways"


class TestBalanceProperties:
    def test_lid_inner_cells_visit_constant_cell_count(self):
        # dense grid: every inner cell selects exactly (3^2-1)/2 = 4 offsets
        pts = np.array(
            [[x + 0.5, y + 0.5] for x in range(6) for y in range(6)], dtype=float
        )
        idx = GridIndex(pts, 1.0)
        counts = []
        for r in range(idx.num_nonempty_cells):
            c = idx.cell_coords_arr[r]
            if (c > 0).all() and (c < 5).all():  # inner cells
                visited, _ = pattern_cells_for_query("lidunicomp", idx, r)
                counts.append(len(visited))
        assert counts and all(v == 4 for v in counts)

    def test_unicomp_has_zero_and_full_cells(self):
        # same dense grid: even-even cells visit 0 neighbors, odd-odd all 8
        pts = np.array(
            [[x + 0.5, y + 0.5] for x in range(6) for y in range(6)], dtype=float
        )
        idx = GridIndex(pts, 1.0)
        by_parity = {}
        for r in range(idx.num_nonempty_cells):
            c = idx.cell_coords_arr[r]
            if (c > 0).all() and (c < 5).all():
                visited, _ = pattern_cells_for_query("unicomp", idx, r)
                by_parity[(int(c[0]) % 2, int(c[1]) % 2)] = len(visited)
        assert by_parity[(0, 0)] == 0
        assert by_parity[(1, 1)] == 8
        assert by_parity[(1, 0)] == 2  # green arrows only
        assert by_parity[(0, 1)] == 6  # red arrows only

    def test_unicomp_variance_exceeds_lid_variance(self):
        """The paper's motivation: LID-UNICOMP equalizes visited-cell counts."""
        idx = build_index(17, 2, n=400, eps=0.5)
        var = {}
        for pattern in ("unicomp", "lidunicomp"):
            counts = [
                len(pattern_cells_for_query(pattern, idx, r)[0])
                for r in range(idx.num_nonempty_cells)
            ]
            var[pattern] = np.var(counts)
        assert var["lidunicomp"] <= var["unicomp"]

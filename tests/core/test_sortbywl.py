"""Unit and property tests for workload quantification and SORTBYWL."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import brute_force_neighbor_counts
from repro.core.sortbywl import (
    cell_workloads,
    pattern_workload_components,
    point_workloads,
    sort_by_workload,
)
from repro.grid import GridIndex, neighbor_ranks_of_cell


def build_index(seed: int, ndim: int = 2, n: int = 150, eps: float = 0.6):
    rng = np.random.default_rng(seed)
    return GridIndex(rng.exponential(0.7, size=(n, ndim)), eps)


class TestWorkloadComponents:
    def test_full_candidates_match_neighbor_populations(self):
        idx = build_index(0)
        comps = pattern_workload_components(idx, "full")
        for r in range(idx.num_nonempty_cells):
            nbrs = neighbor_ranks_of_cell(idx, r)  # includes self
            expected = idx.cell_counts[nbrs].sum()
            assert comps.candidates[r] == expected

    def test_candidates_upper_bound_neighbor_counts(self):
        """Candidates are a superset of true neighbors: workload >= result."""
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 5, (200, 2))
        idx = GridIndex(pts, 0.5)
        wl = point_workloads(idx, "full")
        true = brute_force_neighbor_counts(pts, 0.5)
        assert (wl >= true).all()

    def test_half_patterns_halve_cross_cell_work(self):
        """Summed over all points, unicomp/lid candidate work equals
        own-cell work plus exactly half the cross-cell work of full."""
        idx = build_index(1)
        full = pattern_workload_components(idx, "full")
        own = idx.cell_counts
        cross_full = (full.candidates - own) * idx.cell_counts  # per-point x points
        for pattern in ("unicomp", "lidunicomp"):
            comps = pattern_workload_components(idx, pattern)
            cross = (comps.candidates - own) * idx.cell_counts
            assert cross.sum() * 2 == cross_full.sum()

    def test_visited_cells_include_own(self):
        idx = build_index(2)
        for pattern in ("full", "unicomp", "lidunicomp"):
            comps = pattern_workload_components(idx, pattern)
            assert (comps.visited_cells >= 1).all()

    def test_full_visited_counts_in_bounds_neighbors(self):
        # single occupied cell in the middle of its own bounding box:
        # the box degenerates to one cell, so only the own cell is in bounds
        idx = GridIndex(np.array([[0.5, 0.5], [0.6, 0.6]]), 1.0)
        comps = pattern_workload_components(idx, "full")
        assert comps.visited_cells[0] == 1


class TestSortByWorkload:
    def test_is_a_permutation(self):
        idx = build_index(3)
        order = sort_by_workload(idx, "full")
        assert sorted(order.tolist()) == list(range(idx.num_points))

    def test_point_workloads_non_increasing_along_order(self):
        idx = build_index(4)
        for pattern in ("full", "lidunicomp"):
            order = sort_by_workload(idx, pattern)
            wl = point_workloads(idx, pattern)[order]
            assert (np.diff(wl) <= 0).all()

    def test_points_stay_grouped_by_cell(self):
        idx = build_index(5)
        order = sort_by_workload(idx, "full")
        ranks = idx.point_cell_rank[order]
        # each cell's points are contiguous in the sorted order
        changes = np.flatnonzero(np.diff(ranks) != 0)
        assert len(np.unique(ranks[np.append(changes, len(ranks) - 1)])) == len(
            np.unique(ranks)
        )

    @given(seed=st.integers(0, 2**31 - 1), ndim=st.integers(1, 3))
    def test_property_permutation_and_monotonicity(self, seed, ndim):
        idx = build_index(seed, ndim=ndim, n=80, eps=0.9)
        order = sort_by_workload(idx, "full")
        assert sorted(order.tolist()) == list(range(idx.num_points))
        wl = point_workloads(idx, "full")[order]
        assert (np.diff(wl) <= 0).all()

    def test_uniform_single_cell_noop(self):
        idx = GridIndex(np.ones((20, 2)) * 0.5, 1.0)
        order = sort_by_workload(idx)
        np.testing.assert_array_equal(order, np.arange(20))

    def test_empty_dataset(self):
        idx = GridIndex(np.empty((0, 2)), 1.0)
        assert len(sort_by_workload(idx)) == 0
        assert len(cell_workloads(idx)) == 0

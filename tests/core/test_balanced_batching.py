"""Tests for the balanced (future-work) batch grouping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines import brute_force_pairs
from repro.core import PRESETS, OptimizationConfig, SelfJoin, plan_batches_balanced
from repro.core.sortbywl import point_workloads, sort_by_workload
from repro.grid import GridIndex


class TestPlanBatchesBalanced:
    def test_every_point_once_contiguous(self):
        order = np.arange(100)
        w = np.ones(100)
        plan = plan_batches_balanced(order, w, estimated_total=1000, capacity=100)
        merged = np.concatenate(plan.batches)
        np.testing.assert_array_equal(merged, order)

    def test_heavy_head_gets_smaller_batches(self):
        """Decreasing weights (sorted D') => batch sizes grow along D'."""
        order = np.arange(1000)
        w = np.linspace(100, 1, 1000)
        plan = plan_batches_balanced(order, w, estimated_total=50_000, capacity=2000)
        sizes = [len(b) for b in plan.batches]
        assert len(sizes) > 2
        assert sizes[0] < sizes[-1]

    def test_estimated_rows_per_batch_bounded(self):
        order = np.arange(500)
        rng = np.random.default_rng(0)
        w = rng.exponential(1.0, 500)
        est = 10_000
        cap = 1500
        plan = plan_batches_balanced(order, w, est, cap, fill_target=0.8)
        rows = w * (est / w.sum())
        start = 0
        for b in plan.batches[:-1]:
            batch_rows = rows[start : start + len(b)].sum()
            # each batch fills the budget but exceeds it by at most one point
            assert batch_rows <= 0.8 * cap + rows[start : start + len(b)].max()
            start += len(b)

    def test_single_batch_when_everything_fits(self):
        order = np.arange(10)
        plan = plan_batches_balanced(order, np.ones(10), 50, 1000)
        assert plan.num_batches == 1

    def test_zero_weight_or_estimate(self):
        order = np.arange(5)
        plan = plan_batches_balanced(order, np.zeros(5), 100, 10)
        assert plan.num_batches == 1
        plan = plan_batches_balanced(order, np.ones(5), 0, 10)
        assert plan.num_batches == 1

    def test_empty(self):
        plan = plan_batches_balanced(np.array([], dtype=np.int64), np.array([]), 0, 10)
        assert plan.num_batches == 0

    def test_validation(self):
        order = np.arange(4)
        with pytest.raises(ValueError, match="align"):
            plan_batches_balanced(order, np.ones(3), 10, 10)
        with pytest.raises(ValueError):
            plan_batches_balanced(order, np.ones(4), 10, 0)
        with pytest.raises(ValueError):
            plan_batches_balanced(order, np.ones(4), -1, 10)
        with pytest.raises(ValueError):
            plan_batches_balanced(order, np.ones(4), 10, 10, fill_target=0.0)

    @given(seed=st.integers(0, 2**31 - 1), cap=st.integers(10, 5000))
    def test_property_partition(self, seed, cap):
        rng = np.random.default_rng(seed)
        n = rng.integers(1, 200)
        order = rng.permutation(n)
        w = rng.exponential(1.0, n)
        plan = plan_batches_balanced(order, w, int(w.sum() * 10), cap)
        merged = np.concatenate(plan.batches) if plan.batches else np.array([])
        np.testing.assert_array_equal(merged, order)


class TestConfigIntegration:
    def test_requires_work_queue(self):
        with pytest.raises(ValueError, match="requires work_queue"):
            OptimizationConfig(balanced_batches=True)

    def test_preset_exists(self):
        cfg = PRESETS["combined_balanced"]
        assert cfg.balanced_batches and cfg.work_queue and cfg.k == 8

    def test_exactness_with_balanced_batches(self):
        rng = np.random.default_rng(4)
        pts = np.concatenate(
            [rng.normal(1, 0.15, (250, 2)), rng.uniform(0, 5, (250, 2))]
        )
        cfg = PRESETS["combined_balanced"].with_(batch_result_capacity=3000)
        res = SelfJoin(cfg).execute(pts, 0.3)
        assert res.num_batches > 1
        np.testing.assert_array_equal(res.sorted_pairs(), brute_force_pairs(pts, 0.3))

    def test_result_size_variance_reduced_vs_plain_queue(self):
        """The future-work goal: per-batch result sizes become similar."""
        rng = np.random.default_rng(9)
        pts = np.concatenate(
            [rng.normal(1, 0.1, (400, 2)), rng.uniform(0, 6, (400, 2))]
        )
        cap = 8000
        plain = SelfJoin(PRESETS["workqueue"].with_(batch_result_capacity=cap)).execute(
            pts, 0.3
        )
        balanced = SelfJoin(
            PRESETS["workqueue"].with_(batch_result_capacity=cap, balanced_batches=True)
        ).execute(pts, 0.3)
        assert plain.num_batches > 1 and balanced.num_batches > 1

        # per-batch emitted rows are not kept on JoinResult; recover them
        # from the pipeline transfer times, which are proportional to rows
        plain_rows = _batch_rows(plain)
        bal_rows = _batch_rows(balanced)
        rel_spread = lambda a: a.std() / a.mean()
        assert rel_spread(bal_rows) < rel_spread(plain_rows)


def _batch_rows(result):
    """Per-batch emitted rows, recovered from the pipeline transfer times."""
    xfer = result.pipeline.transfer_end - np.maximum(
        result.pipeline.kernel_end,
        np.concatenate([[0.0], result.pipeline.transfer_end[:-1]]),
    )
    return xfer  # proportional to rows (bytes / bandwidth)

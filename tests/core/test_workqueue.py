"""Unit tests for the work-queue protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.workqueue import WorkQueue, fetch_query_slot
from repro.simt import AtomicCounter, DeviceSpec, GpuMachine


def tiny_device():
    return DeviceSpec(num_sms=2, warps_per_sm_slot=1, warp_size=8)


class TestFetchQuerySlot:
    def test_k1_each_thread_gets_unique_slot(self):
        counter = AtomicCounter()
        slots = {}

        def kernel(ctx):
            slots[ctx.tid] = fetch_query_slot(ctx, 1, counter)

        GpuMachine(tiny_device()).launch(kernel, 16)
        assert sorted(slots.values()) == list(range(16))

    def test_k4_groups_share_slots(self):
        counter = AtomicCounter()
        slots = {}

        def kernel(ctx):
            slots[ctx.tid] = fetch_query_slot(ctx, 4, counter)

        GpuMachine(tiny_device()).launch(kernel, 16, coop_groups=True)
        for g in range(4):
            group_slots = {slots[4 * g + r] for r in range(4)}
            assert group_slots == {g}
        assert counter.num_ops == 4

    def test_fifo_hands_out_slots_in_warp_order(self):
        counter = AtomicCounter()
        slots = {}

        def kernel(ctx):
            slots[ctx.tid] = fetch_query_slot(ctx, 1, counter)

        GpuMachine(tiny_device(), issue_order="fifo").launch(kernel, 24)
        # thread t fetches slot t: most-work-first is preserved end to end
        assert all(slots[t] == t for t in range(24))


class TestWorkQueue:
    def test_drained_and_remaining(self):
        q = WorkQueue(np.arange(5))
        assert not q.drained
        assert q.remaining == 5
        for _ in range(5):
            q.counter.fetch_add()
        assert q.drained
        assert q.remaining == 0

    def test_over_fetch_clamps_remaining(self):
        q = WorkQueue(np.arange(2))
        for _ in range(4):
            q.counter.fetch_add()
        assert q.remaining == 0
        assert q.drained

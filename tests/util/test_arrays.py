"""Unit tests for repro.util.arrays."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import (
    as_points_array,
    ceil_div,
    check_epsilon,
    pairs_to_set,
    stable_argsort_desc,
)


class TestAsPointsArray:
    def test_list_input_becomes_float64(self):
        arr = as_points_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.shape == (2, 2)
        assert arr.flags.c_contiguous

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            as_points_array([1.0, 2.0, 3.0])

    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError, match="dimension"):
            as_points_array(np.empty((5, 0)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_points_array([[np.nan, 0.0]])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            as_points_array([[np.inf, 0.0]])

    def test_empty_list_is_zero_points(self):
        arr = as_points_array([])
        assert arr.shape[0] == 0

    def test_no_copy_when_canonical(self):
        src = np.zeros((3, 2), dtype=np.float64, order="C")
        out = as_points_array(src)
        assert out is src or np.shares_memory(out, src)

    def test_copy_flag_forces_copy(self):
        src = np.zeros((3, 2), dtype=np.float64, order="C")
        out = as_points_array(src, copy=True)
        assert not np.shares_memory(out, src)


class TestCheckEpsilon:
    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects_nonpositive_or_nonfinite(self, bad):
        with pytest.raises(ValueError):
            check_epsilon(bad)

    def test_accepts_positive(self):
        assert check_epsilon(0.5) == 0.5

    def test_coerces_to_float(self):
        assert isinstance(check_epsilon(1), float)


class TestCeilDiv:
    @given(st.integers(0, 10**6), st.integers(1, 10**4))
    def test_matches_math(self, a, b):
        assert ceil_div(a, b) == -(-a // b) == (a + b - 1) // b

    def test_array_input(self):
        a = np.array([0, 1, 7, 8, 9])
        np.testing.assert_array_equal(ceil_div(a, 4), [0, 1, 2, 2, 3])


class TestStableArgsortDesc:
    def test_descending(self):
        v = np.array([3, 1, 4, 1, 5])
        out = v[stable_argsort_desc(v)]
        assert list(out) == sorted(v, reverse=True)

    def test_ties_keep_original_order(self):
        v = np.array([2, 5, 2, 5, 2])
        order = stable_argsort_desc(v)
        # the two 5s must appear in index order 1, 3; the 2s in order 0, 2, 4
        assert list(order) == [1, 3, 0, 2, 4]

    @given(st.lists(st.integers(-1000, 1000), max_size=100))
    def test_property_sorted_desc(self, xs):
        v = np.array(xs, dtype=np.int64)
        out = v[stable_argsort_desc(v)] if len(xs) else v
        assert all(out[i] >= out[i + 1] for i in range(len(out) - 1))

    def test_float_values(self):
        v = np.array([0.5, 2.5, 1.5])
        assert list(stable_argsort_desc(v)) == [1, 2, 0]


class TestPairsToSet:
    def test_roundtrip(self):
        pairs = np.array([[0, 1], [1, 0], [2, 2]])
        assert pairs_to_set(pairs) == {(0, 1), (1, 0), (2, 2)}

    def test_empty(self):
        assert pairs_to_set(np.empty((0, 2), dtype=np.int64)) == set()

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pairs_to_set(np.zeros((3, 3)))

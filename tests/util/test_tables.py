"""Unit tests for the table renderer and duration formatting."""

from __future__ import annotations

import pytest

from repro.util import Table, format_seconds


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (5e-7, "0.5us"),
            (2e-3, "2.0ms"),
            (1.234, "1.23s"),
            (250.0, "250s"),
        ],
    )
    def test_magnitude_buckets(self, value, expected):
        assert format_seconds(value) == expected

    def test_nan(self):
        assert format_seconds(float("nan")) == "n/a"


class TestTable:
    def test_render_aligns_columns(self):
        t = Table(["a", "longcolumn"], title="T")
        t.add_row(["x", 1])
        t.add_row(["yyyy", 2.5])
        out = t.render()
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "longcolumn" in lines[1]
        # all data lines have the same width
        assert len(lines[3]) == len(lines[4])

    def test_row_length_mismatch_raises(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([1234.5])
        t.add_row([0.25])
        t.add_row([0.0])
        assert t.rows[0] == ["1.23e+03"]
        assert t.rows[1] == ["0.25"]
        assert t.rows[2] == ["0"]

    def test_str_matches_render(self):
        t = Table(["a"])
        t.add_row([1])
        assert str(t) == t.render()

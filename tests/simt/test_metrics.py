"""Tests for the profiler post-analysis (trace-based metrics)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simt import DeviceSpec, GpuMachine, profile_kernel


def tiny_device(**kw):
    defaults = dict(num_sms=2, warps_per_sm_slot=1, warp_size=4)
    defaults.update(kw)
    return DeviceSpec(**defaults)


def traced_launch(kernel, n, device=None):
    machine = GpuMachine(device or tiny_device())
    return machine.launch(kernel, n, keep_traces=True), machine.device


class TestProfileKernel:
    def test_requires_traces(self):
        machine = GpuMachine(tiny_device())
        stats = machine.launch(lambda ctx: ctx.work("a", 1.0), 4)
        with pytest.raises(ValueError, match="keep_traces"):
            profile_kernel(stats, machine.device)

    def test_breakdown_partitions_cycles(self):
        def kernel(ctx):
            ctx.work("alpha", 3.0)
            ctx.work("beta", 2.0 * (ctx.lane + 1))

        stats, device = traced_launch(kernel, 8)
        prof = profile_kernel(stats, device)
        by_label = {b.label: b for b in prof.breakdown}
        assert set(by_label) == {"alpha", "beta"}
        # alpha is uniform: region WEE == 1
        assert by_label["alpha"].efficiency == pytest.approx(1.0)
        # beta is skewed: region WEE < 1
        assert by_label["beta"].efficiency < 1.0
        # totals consistent with the warp stats
        total_busy = sum(b.busy_cycles for b in prof.breakdown)
        assert total_busy == pytest.approx(
            sum(w.warp_cycles for w in stats.warp_stats)
        )

    def test_wee_matches_kernel_stats(self):
        def kernel(ctx):
            ctx.work("dist", float(ctx.tid % 5 + 1))

        stats, device = traced_launch(kernel, 16)
        prof = profile_kernel(stats, device)
        assert prof.warp_execution_efficiency == pytest.approx(
            stats.warp_execution_efficiency
        )

    def test_occupancy_bounds(self):
        def kernel(ctx):
            ctx.work("dist", 10.0)

        stats, device = traced_launch(kernel, 64)
        prof = profile_kernel(stats, device)
        assert 0.0 < prof.achieved_occupancy <= 1.0

    def test_uniform_work_zero_cv(self):
        def kernel(ctx):
            ctx.work("dist", 7.0)

        stats, device = traced_launch(kernel, 16)
        prof = profile_kernel(stats, device)
        assert prof.warp_cycles_cv == pytest.approx(0.0)

    def test_render_contains_regions(self):
        def kernel(ctx):
            ctx.work("dist", 2.0)
            ctx.work("setup", 1.0)

        stats, device = traced_launch(kernel, 4)
        out = profile_kernel(stats, device).render()
        assert "dist" in out and "setup" in out
        assert "occupancy" in out


class TestEndToEndProfile:
    def test_selfjoin_kernel_regions(self, rng):
        """A real self-join launch exposes the expected regions and the
        refinement region dominates on a dense workload."""
        from repro.core.kernels import KernelArgs, selfjoin_kernel
        from repro.grid import GridIndex
        from repro.simt import ResultBuffer

        pts = rng.normal(0, 0.4, (300, 2))
        index = GridIndex(pts, 0.3)
        args = KernelArgs(index=index, batch=np.arange(300))
        machine = GpuMachine(DeviceSpec())
        stats = machine.launch(
            selfjoin_kernel,
            args.num_threads,
            args,
            result_buffer=ResultBuffer(10**6),
            keep_traces=True,
        )
        prof = profile_kernel(stats, machine.device)
        labels = {b.label for b in prof.breakdown}
        assert {"setup", "cells", "dist", "emit"} <= labels
        by = {b.label: b for b in prof.breakdown}
        assert by["dist"].busy_cycles > by["setup"].busy_cycles

"""Unit and property tests for lock-step warp replay."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simt.context import ThreadTrace
from repro.simt.warp import replay_warp


def trace_of(*events) -> ThreadTrace:
    t = ThreadTrace()
    for label, cycles in events:
        t.add(label, cycles)
    return t


class TestAggregateReplay:
    def test_single_thread(self):
        s = replay_warp([trace_of(("dist", 10.0))], 32)
        assert s.warp_cycles == 10.0
        assert s.active_cycles == 10.0
        assert s.wee == pytest.approx(10.0 / (32 * 10.0))

    def test_warp_time_is_max_per_label(self):
        a = trace_of(("setup", 2.0), ("dist", 10.0))
        b = trace_of(("setup", 2.0), ("dist", 30.0))
        s = replay_warp([a, b], 32)
        assert s.warp_cycles == 2.0 + 30.0
        assert s.active_cycles == 44.0

    def test_balanced_warp_full_wee(self):
        traces = [trace_of(("dist", 5.0)) for _ in range(32)]
        s = replay_warp(traces, 32)
        assert s.wee == pytest.approx(1.0)

    def test_unbalanced_warp_low_wee(self):
        traces = [trace_of(("dist", 1.0)) for _ in range(31)]
        traces.append(trace_of(("dist", 100.0)))
        s = replay_warp(traces, 32)
        assert s.warp_cycles == 100.0
        assert s.wee == pytest.approx((31 + 100) / (32 * 100))

    def test_disjoint_labels_serialize(self):
        a = trace_of(("x", 5.0))
        b = trace_of(("y", 7.0))
        s = replay_warp([a, b], 32)
        assert s.warp_cycles == 12.0

    def test_empty_warp(self):
        s = replay_warp([], 32)
        assert s.warp_cycles == 0.0
        assert s.wee == 1.0

    def test_too_many_lanes_rejected(self):
        with pytest.raises(ValueError):
            replay_warp([trace_of(("a", 1.0))] * 33, 32)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            replay_warp([trace_of(("a", 1.0))], 32, mode="quantum")


class TestLockstepReplay:
    def test_equal_iteration_costs_match_aggregate(self):
        # same per-event cost => lockstep == aggregate == max trip count
        a = trace_of(*[("dist", 2.0)] * 3)
        b = trace_of(*[("dist", 2.0)] * 7)
        agg = replay_warp([a, b], 32, "aggregate")
        lock = replay_warp([a, b], 32, "lockstep")
        assert agg.warp_cycles == lock.warp_cycles == 14.0

    def test_divergent_labels_serialize_stepwise(self):
        a = trace_of(("p", 1.0), ("p", 1.0))
        b = trace_of(("q", 1.0))
        lock = replay_warp([a, b], 32, "lockstep")
        # steps: p (a), p (a), q (b) -> order depends on min(label); either
        # way all 3 events serialize
        assert lock.warp_cycles == 3.0

    @given(
        st.lists(
            st.lists(
                st.tuples(st.sampled_from(["u", "v", "w"]), st.floats(0.1, 10.0)),
                min_size=1,
                max_size=12,
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_lockstep_never_faster_than_aggregate(self, lanes):
        traces = [trace_of(*events) for events in lanes]
        agg = replay_warp(traces, 32, "aggregate")
        lock = replay_warp(traces, 32, "lockstep")
        assert lock.warp_cycles >= agg.warp_cycles - 1e-9
        assert lock.active_cycles == pytest.approx(agg.active_cycles)

    @given(
        st.lists(
            st.lists(st.floats(0.0, 50.0), min_size=0, max_size=10),
            min_size=1,
            max_size=32,
        )
    )
    def test_wee_bounds(self, lane_costs):
        traces = []
        for costs in lane_costs:
            t = ThreadTrace()
            for c in costs:
                t.add("dist", c)
            traces.append(t)
        for mode in ("aggregate", "lockstep"):
            s = replay_warp(traces, 32, mode)
            assert 0.0 <= s.wee <= 1.0 + 1e-12

    def test_aggregate_warp_time_lower_bounded_by_longest_lane(self):
        a = trace_of(("x", 3.0), ("y", 4.0))
        b = trace_of(("x", 5.0), ("y", 1.0))
        s = replay_warp([a, b], 32)
        assert s.warp_cycles >= max(a.total_cycles, b.total_cycles)


class TestThreadTrace:
    def test_label_totals_order(self):
        t = trace_of(("b", 1.0), ("a", 2.0), ("b", 3.0))
        assert list(t.label_totals().items()) == [("b", 4.0), ("a", 2.0)]

    def test_negative_cycles_rejected(self):
        t = ThreadTrace()
        with pytest.raises(ValueError):
            t.add("x", -1.0)

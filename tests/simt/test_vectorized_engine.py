"""Equivalence proof of the bulk-lane engine against the interpreter.

The vectorized engine's contract (repro.simt.vectorized) is that an
``aggregate``-mode launch is indistinguishable from thread-by-thread
interpretation: identical pairs *in buffer order*, identical cycle totals
and warp statistics, identical queue-counter side effects. These tests
sweep the optimization space at machine level — pattern × k × queue ×
issue order × seed — and assert exact equality, not approximation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.join import BipartiteKernelArgs, bipartite_kernel
from repro.core.kernels import KernelArgs, selfjoin_kernel
from repro.grid import GridIndex
from repro.simt import (
    AtomicCounter,
    BufferOverflowError,
    DeviceSpec,
    GpuMachine,
    ResultBuffer,
    bulk_kernel_for,
    profile_kernel,
)
from repro.simt.vectorized import thread_issue_positions

_EPS = 0.8


def small_device(**kw) -> DeviceSpec:
    defaults = dict(num_sms=2, warps_per_sm_slot=2, warp_size=8)
    defaults.update(kw)
    return DeviceSpec(**defaults)


@pytest.fixture(scope="module")
def index() -> GridIndex:
    rng = np.random.default_rng(7)
    return GridIndex(rng.uniform(0.0, 6.0, size=(150, 2)), _EPS)


def make_args(index, *, k=1, pattern="full", use_queue=False, queue_len=None):
    order = np.arange(index.num_points, dtype=np.int64)
    counter = AtomicCounter() if use_queue else None
    queue = order[: queue_len if queue_len is not None else len(order)]
    return KernelArgs(
        index=index,
        batch=order,
        k=k,
        pattern=pattern,
        queue_counter=counter,
        queue_order=queue if use_queue else None,
    )


def launch(engine, kernel, args, *, issue_order="fifo", seed=0, num_threads=None,
           capacity=200_000, coop=None, keep_traces=False, replay_mode="aggregate"):
    machine = GpuMachine(
        small_device(),
        issue_order=issue_order,
        seed=seed,
        replay_mode=replay_mode,
        engine=engine,
    )
    buf = ResultBuffer(capacity)
    nt = args.num_threads if num_threads is None else num_threads
    if coop is None:
        coop = args.uses_queue and args.k > 1
    stats = machine.launch(
        kernel, nt, args, result_buffer=buf, coop_groups=coop,
        keep_traces=keep_traces,
    )
    return stats, buf.pairs()


def assert_stats_equal(a, b):
    assert a.num_threads == b.num_threads
    assert a.num_warps == b.num_warps
    assert a.cycles == b.cycles
    assert a.seconds == b.seconds
    assert a.warp_execution_efficiency == b.warp_execution_efficiency
    assert len(a.warp_stats) == len(b.warp_stats)
    for wa, wb in zip(a.warp_stats, b.warp_stats):
        assert wa.warp_cycles == wb.warp_cycles
        assert wa.active_cycles == wb.active_cycles
        assert wa.lanes == wb.lanes
        assert wa.warp_size == wb.warp_size
    np.testing.assert_array_equal(a.schedule.start_cycles, b.schedule.start_cycles)


def run_both(index, *, kernel=selfjoin_kernel, args_kw=None, **launch_kw):
    args_kw = args_kw or {}
    res = {}
    for engine in ("interpreted", "vectorized"):
        args = make_args(index, **args_kw)
        res[engine] = (*launch(engine, kernel, args, **launch_kw), args)
    (si, pi, ai), (sv, pv, av) = res["interpreted"], res["vectorized"]
    np.testing.assert_array_equal(pi, pv)
    assert_stats_equal(si, sv)
    if ai.uses_queue:
        assert ai.queue_counter.value == av.queue_counter.value
        assert ai.queue_counter.num_ops == av.queue_counter.num_ops
    assert si.engine == "interpreted"
    assert sv.engine == "vectorized"
    return si, sv


class TestSelfjoinEquivalence:
    @pytest.mark.parametrize("pattern", ["full", "unicomp", "lidunicomp"])
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    @pytest.mark.parametrize("use_queue", [False, True])
    def test_static_and_queue_sweep(self, index, pattern, k, use_queue):
        run_both(
            index,
            args_kw=dict(pattern=pattern, k=k, use_queue=use_queue),
            issue_order="fifo",
        )

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("use_queue", [False, True])
    def test_random_issue_order(self, index, seed, use_queue):
        # the WORKQUEUE closed form must track the leaders' issue ranks,
        # not assume warp 0 fetches first
        run_both(
            index,
            args_kw=dict(pattern="lidunicomp", k=2, use_queue=use_queue),
            issue_order="random",
            seed=seed,
        )

    def test_queue_drained_tail(self, index):
        # more thread groups than queue slots: drained groups still pay
        # the fetch (atomic + shfl) and nothing else
        run_both(
            index,
            args_kw=dict(k=2, use_queue=True, queue_len=index.num_points // 3),
        )

    def test_launch_wider_than_batch(self, index):
        # guard threads beyond args.num_threads never run
        args_kw = dict(pattern="unicomp", k=2)
        nt = make_args(index, **args_kw).num_threads
        run_both(index, args_kw=args_kw, num_threads=nt + 13)

    def test_launch_narrower_than_batch(self, index):
        # a width cutting a query group mid-way: the missing threads'
        # candidate shares are never refined or charged
        args_kw = dict(pattern="full", k=4)
        nt = make_args(index, **args_kw).num_threads
        run_both(index, args_kw=args_kw, num_threads=nt // 2 + 1)

    def test_exclude_self(self, index):
        res = {}
        for engine in ("interpreted", "vectorized"):
            args = make_args(index, k=2, pattern="lidunicomp")
            args.include_self = False
            res[engine] = launch(engine, selfjoin_kernel, args)
        np.testing.assert_array_equal(res["interpreted"][1], res["vectorized"][1])
        assert_stats_equal(res["interpreted"][0], res["vectorized"][0])


class TestBipartiteEquivalence:
    @pytest.mark.parametrize("k", [1, 4])
    @pytest.mark.parametrize("use_queue", [False, True])
    def test_sweep(self, index, k, use_queue):
        # queries deliberately straddle the index bounds: out-of-grid cells
        # exercise the per-offset bounds handling
        rng = np.random.default_rng(5)
        queries = rng.uniform(-1.5, 7.5, size=(80, 2))
        order = np.arange(len(queries), dtype=np.int64)
        res = {}
        for engine in ("interpreted", "vectorized"):
            counter = AtomicCounter() if use_queue else None
            args = BipartiteKernelArgs(
                index=index,
                queries=queries,
                batch=order,
                k=k,
                queue_counter=counter,
                queue_order=order if use_queue else None,
            )
            res[engine] = launch(engine, bipartite_kernel, args)
        np.testing.assert_array_equal(res["interpreted"][1], res["vectorized"][1])
        assert_stats_equal(res["interpreted"][0], res["vectorized"][0])


class TestFallbacks:
    def test_lockstep_replay_uses_interpreter(self, index):
        args = make_args(index)
        stats, _ = launch("vectorized", selfjoin_kernel, args, replay_mode="lockstep")
        assert stats.engine == "interpreted"

    def test_unregistered_kernel_uses_interpreter(self):
        def custom_kernel(ctx, arg):
            ctx.work("body", 1.0)

        assert bulk_kernel_for(custom_kernel) is None
        machine = GpuMachine(small_device(), engine="vectorized")
        stats = machine.launch(custom_kernel, 8, object())
        assert stats.engine == "interpreted"
        assert stats.cycles > 0

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            GpuMachine(small_device(), engine="jit")


class TestDeviceSideEffects:
    def test_overflow_raises_on_both_engines(self, index):
        for engine in ("interpreted", "vectorized"):
            args = make_args(index)
            with pytest.raises(BufferOverflowError):
                launch(engine, selfjoin_kernel, args, capacity=7)

    def test_queue_without_coop_table_raises_on_both(self, index):
        for engine in ("interpreted", "vectorized"):
            args = make_args(index, k=2, use_queue=True)
            with pytest.raises(RuntimeError, match="cooperative-group"):
                launch(engine, selfjoin_kernel, args, coop=False)

    def test_group_size_must_divide_warp_on_both(self, index):
        for engine in ("interpreted", "vectorized"):
            args = make_args(index, k=16, use_queue=True)  # warp size is 8
            with pytest.raises(ValueError, match="divide"):
                launch(engine, selfjoin_kernel, args, coop=True)

    def test_fetch_add_bulk_matches_individual_fetches(self):
        a, b = AtomicCounter(), AtomicCounter()
        starts = [a.fetch_add() for _ in range(5)]
        assert b.fetch_add_bulk(5) == 0
        assert (a.value, a.num_ops) == (b.value, b.num_ops)
        assert starts[0] == 0
        with pytest.raises(ValueError):
            b.fetch_add_bulk(-1)


class TestProfilerEquivalence:
    def test_profile_kernel_matches(self, index):
        device = small_device()
        res = {}
        for engine in ("interpreted", "vectorized"):
            args = make_args(index, k=2, pattern="lidunicomp", use_queue=True)
            stats, _ = launch(engine, selfjoin_kernel, args, keep_traces=True)
            res[engine] = profile_kernel(stats, device)
        pi, pv = res["interpreted"], res["vectorized"]
        assert pi.warp_execution_efficiency == pv.warp_execution_efficiency
        assert pi.achieved_occupancy == pv.achieved_occupancy
        assert pi.total_cycles == pv.total_cycles
        bi = {b.label: (b.active_cycles, b.busy_cycles) for b in pi.breakdown}
        bv = {b.label: (b.active_cycles, b.busy_cycles) for b in pv.breakdown}
        assert bi == bv


class TestIssuePositions:
    def test_fifo_is_identity(self):
        pos = thread_issue_positions(np.arange(3), 4, 10)
        np.testing.assert_array_equal(pos, np.arange(10))

    def test_permuted_warps_keep_lane_order(self):
        # warp order [2, 0, 1] on warp size 4, 10 threads: warp 2 (tids
        # 8, 9) executes first, then warp 0, then warp 1
        pos = thread_issue_positions(np.array([2, 0, 1]), 4, 10)
        np.testing.assert_array_equal(pos, [2, 3, 4, 5, 6, 7, 8, 9, 0, 1])

"""Unit and property tests for the warp scheduler / makespan model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simt import issue_order_permutation, makespan


class TestIssueOrder:
    def test_fifo(self):
        d = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(issue_order_permutation(d, "fifo"), [0, 1, 2])

    def test_workload_desc(self):
        d = np.array([1.0, 3.0, 2.0])
        np.testing.assert_array_equal(
            issue_order_permutation(d, "workload_desc"), [1, 2, 0]
        )

    def test_random_is_seeded(self):
        d = np.arange(20, dtype=float)
        a = issue_order_permutation(d, "random", seed=42)
        b = issue_order_permutation(d, "random", seed=42)
        np.testing.assert_array_equal(a, b)
        assert sorted(a.tolist()) == list(range(20))

    def test_unknown_order(self):
        with pytest.raises(ValueError, match="unknown issue order"):
            issue_order_permutation(np.ones(3), "chaotic")


class TestMakespan:
    def test_single_slot_is_sum(self):
        r = makespan(np.array([3.0, 1.0, 2.0]), 1)
        assert r.makespan_cycles == 6.0

    def test_fewer_warps_than_slots_is_max(self):
        r = makespan(np.array([3.0, 1.0, 2.0]), 8)
        assert r.makespan_cycles == 3.0

    def test_empty(self):
        r = makespan(np.array([]), 4)
        assert r.makespan_cycles == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            makespan(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            makespan(np.array([-1.0]), 2)

    def test_classic_lpt_beats_bad_order(self):
        # one giant warp last in FIFO order creates a long tail
        d = np.array([1.0] * 8 + [8.0])
        fifo = makespan(d, 2, order="fifo").makespan_cycles
        lpt = makespan(d, 2, order="workload_desc").makespan_cycles
        assert lpt < fifo

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=60),
        st.integers(1, 8),
        st.integers(0, 2**31 - 1),
    )
    def test_lower_bounds_hold(self, durations, slots, seed):
        d = np.array(durations)
        for order in ("fifo", "random", "workload_desc"):
            r = makespan(d, slots, order=order, seed=seed)
            assert r.makespan_cycles >= d.max() - 1e-9
            assert r.makespan_cycles >= d.sum() / slots - 1e-9
            # greedy is a 2-approximation regardless of order
            lower = max(d.max(), d.sum() / slots)
            assert r.makespan_cycles <= 2 * lower + 1e-9

    @given(
        st.lists(st.floats(0.1, 50.0), min_size=2, max_size=60),
        st.integers(2, 6),
    )
    def test_greedy_bound_holds(self, durations, slots):
        """Any greedy list schedule satisfies makespan <= sum/m + max:
        when the last-finishing warp starts, every slot is busy."""
        d = np.array(durations)
        for order in ("fifo", "workload_desc"):
            r = makespan(d, slots, order=order)
            assert r.makespan_cycles <= d.sum() / slots + d.max() + 1e-9

    def test_slot_finish_accounting(self):
        d = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        r = makespan(d, 2)
        assert r.slot_finish_cycles.sum() >= 0
        assert r.makespan_cycles == r.slot_finish_cycles.max()

    def test_start_times_consistent(self):
        d = np.array([2.0, 2.0, 2.0, 2.0])
        r = makespan(d, 2, order="fifo")
        # first two start at 0, next two at 2
        assert sorted(r.start_cycles.tolist()) == [0.0, 0.0, 2.0, 2.0]

"""Unit tests for GpuMachine kernel launches, atomics, coop groups, buffers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simt import (
    AtomicCounter,
    BufferOverflowError,
    CostParams,
    DeviceSpec,
    GpuMachine,
    ResultBuffer,
)


def tiny_device(**kw) -> DeviceSpec:
    defaults = dict(num_sms=2, warps_per_sm_slot=1, warp_size=4)
    defaults.update(kw)
    return DeviceSpec(**defaults)


class TestLaunchBasics:
    def test_every_thread_runs_once(self):
        seen = []

        def kernel(ctx):
            seen.append(ctx.tid)
            ctx.work("body", 1.0)

        machine = GpuMachine(tiny_device())
        stats = machine.launch(kernel, 10)
        assert sorted(seen) == list(range(10))
        assert stats.num_threads == 10
        assert stats.num_warps == 3  # warp size 4

    def test_zero_threads(self):
        machine = GpuMachine(tiny_device())
        stats = machine.launch(lambda ctx: None, 0)
        assert stats.num_warps == 0
        assert stats.cycles == 0.0

    def test_lane_and_warp_ids(self):
        ids = {}

        def kernel(ctx):
            ids[ctx.tid] = (ctx.lane, ctx.warp_id)

        GpuMachine(tiny_device()).launch(kernel, 6)
        assert ids[0] == (0, 0)
        assert ids[3] == (3, 0)
        assert ids[4] == (0, 1)
        assert ids[5] == (1, 1)

    def test_seconds_track_cycles(self):
        def kernel(ctx):
            ctx.work("body", 100.0)

        machine = GpuMachine(tiny_device(clock_hz=1e6))
        stats = machine.launch(kernel, 4)
        assert stats.seconds == pytest.approx(stats.cycles / 1e6)

    def test_negative_threads_rejected(self):
        with pytest.raises(ValueError):
            GpuMachine(tiny_device()).launch(lambda ctx: None, -1)

    def test_workload_desc_issue_order_rejected_at_launch(self):
        machine = GpuMachine(tiny_device(), issue_order="workload_desc")
        with pytest.raises(ValueError, match="sorted input data"):
            machine.launch(lambda ctx: None, 4)


class TestWarpMetrics:
    def test_imbalanced_kernel_has_low_wee(self):
        def kernel(ctx):
            # one heavy lane per warp
            ctx.work("dist", 100.0 if ctx.lane == 0 else 1.0)

        stats = GpuMachine(tiny_device()).launch(kernel, 8)
        assert stats.warp_execution_efficiency < 0.5

    def test_balanced_kernel_has_full_wee(self):
        def kernel(ctx):
            ctx.work("dist", 10.0)

        stats = GpuMachine(tiny_device()).launch(kernel, 8)
        assert stats.warp_execution_efficiency == pytest.approx(1.0)

    def test_tail_warp_counts_inactive_lanes(self):
        def kernel(ctx):
            ctx.work("dist", 10.0)

        # 5 threads on warp_size=4: warp 1 has a single lane => wee 1/4
        stats = GpuMachine(tiny_device()).launch(kernel, 5)
        per_warp = [w.wee for w in stats.warp_stats]
        assert per_warp[0] == pytest.approx(1.0)
        assert per_warp[1] == pytest.approx(0.25)

    def test_makespan_uses_warp_slots(self):
        def kernel(ctx):
            ctx.work("dist", 10.0)

        costs = CostParams(c_warp_launch=0.0)
        # 4 warps on 2 slots of equal work: makespan = 2 rounds
        stats = GpuMachine(tiny_device(), costs).launch(kernel, 16)
        assert stats.cycles == pytest.approx(20.0)


class TestAtomicsAndOrder:
    def test_atomic_values_are_dense_and_unique(self):
        counter = AtomicCounter()
        got = []

        def kernel(ctx):
            got.append(ctx.atomic_add(counter))

        GpuMachine(tiny_device()).launch(kernel, 10)
        assert sorted(got) == list(range(10))
        assert counter.num_ops == 10

    def test_fifo_order_fetches_in_tid_order(self):
        counter = AtomicCounter()
        fetched = {}

        def kernel(ctx):
            fetched[ctx.tid] = ctx.atomic_add(counter)

        GpuMachine(tiny_device(), issue_order="fifo").launch(kernel, 8)
        assert all(fetched[t] == t for t in range(8))

    def test_random_order_permutes_warps_not_lanes(self):
        counter = AtomicCounter()
        fetched = {}

        def kernel(ctx):
            fetched[ctx.tid] = ctx.atomic_add(counter)

        GpuMachine(tiny_device(), issue_order="random", seed=3).launch(kernel, 12)
        # lanes inside one warp stay in lane order
        for w in range(3):
            vals = [fetched[w * 4 + lane] for lane in range(4)]
            assert vals == sorted(vals)

    def test_counter_persists_across_launches(self):
        counter = AtomicCounter()

        def kernel(ctx):
            ctx.atomic_add(counter)

        m = GpuMachine(tiny_device())
        m.launch(kernel, 4)
        m.launch(kernel, 4)
        assert counter.value == 8


class TestCoopGroups:
    def test_leader_fetch_shared_within_group(self):
        counter = AtomicCounter()
        got = {}

        def kernel(ctx):
            group = ctx.coop_group(2)
            got[ctx.tid] = group.leader_fetch_add(ctx, counter)

        GpuMachine(tiny_device()).launch(kernel, 8, coop_groups=True)
        # threads 0,1 share value 0; 2,3 share 1; ...
        for gid in range(4):
            assert got[2 * gid] == got[2 * gid + 1] == gid
        assert counter.num_ops == 4  # one atomic per group, not per thread

    def test_group_size_must_divide_warp(self):
        def kernel(ctx):
            ctx.coop_group(3)

        with pytest.raises(ValueError, match="divide"):
            GpuMachine(tiny_device()).launch(kernel, 4, coop_groups=True)

    def test_groups_require_flag(self):
        def kernel(ctx):
            ctx.coop_group(2)

        with pytest.raises(RuntimeError, match="cooperative-group"):
            GpuMachine(tiny_device()).launch(kernel, 4)


class TestResultBuffer:
    def test_emit_accumulates(self):
        buf = ResultBuffer(100)

        def kernel(ctx):
            ctx.emit_pairs(np.array([[ctx.tid, ctx.tid]]))

        GpuMachine(tiny_device()).launch(kernel, 8, result_buffer=buf)
        assert buf.size == 8
        np.testing.assert_array_equal(np.sort(buf.pairs()[:, 0]), np.arange(8))

    def test_overflow_raises(self):
        buf = ResultBuffer(3)

        def kernel(ctx):
            ctx.emit_pairs(np.array([[ctx.tid, ctx.tid]]))

        with pytest.raises(BufferOverflowError):
            GpuMachine(tiny_device()).launch(kernel, 8, result_buffer=buf)

    def test_emit_without_buffer_raises(self):
        def kernel(ctx):
            ctx.emit_pairs(np.array([[0, 0]]))

        with pytest.raises(RuntimeError, match="without a result buffer"):
            GpuMachine(tiny_device()).launch(kernel, 1)

    def test_drain_empties(self):
        buf = ResultBuffer(10)
        buf.append_pairs(np.array([[1, 2]]))
        out = buf.drain()
        assert len(out) == 1
        assert buf.size == 0
        assert len(buf.pairs()) == 0

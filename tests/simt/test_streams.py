"""Unit and property tests for the stream pipeline model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simt import simulate_stream_pipeline


class TestPipeline:
    def test_single_batch(self):
        r = simulate_stream_pipeline([2.0], [1.0])
        assert r.total_seconds == 3.0

    def test_transfers_hide_behind_kernels(self):
        # transfers shorter than kernels: total = kernels + last transfer
        r = simulate_stream_pipeline([5.0, 5.0, 5.0], [1.0, 1.0, 1.0])
        assert r.total_seconds == pytest.approx(15.0 + 1.0)
        assert r.transfer_overlap_fraction > 0.6

    def test_transfer_bound_pipeline(self):
        # transfers much longer than kernels: copy engine is the bottleneck
        r = simulate_stream_pipeline([1.0, 1.0, 1.0], [10.0, 10.0, 10.0])
        assert r.total_seconds >= 30.0

    def test_buffer_reuse_gates_kernels(self):
        # 1 stream: strict serialization kernel->transfer->kernel->...
        r = simulate_stream_pipeline([2.0, 2.0], [3.0, 3.0], num_streams=1)
        assert r.total_seconds == pytest.approx(10.0)
        # 2 streams: kernel 2 runs during transfer 1
        r2 = simulate_stream_pipeline([2.0, 2.0], [3.0, 3.0], num_streams=2)
        assert r2.total_seconds < 10.0

    def test_empty(self):
        r = simulate_stream_pipeline([], [])
        assert r.total_seconds == 0.0
        assert r.transfer_overlap_fraction == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_stream_pipeline([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            simulate_stream_pipeline([1.0], [1.0], num_streams=0)
        with pytest.raises(ValueError):
            simulate_stream_pipeline([-1.0], [1.0])

    @given(
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20),
        st.lists(st.floats(0.0, 10.0), min_size=1, max_size=20),
        st.integers(1, 4),
    )
    def test_bounds(self, kern, xfer, ns):
        m = min(len(kern), len(xfer))
        kern, xfer = kern[:m], xfer[:m]
        r = simulate_stream_pipeline(kern, xfer, num_streams=ns)
        # never faster than all kernels serialized, never slower than full
        # serialization of everything
        assert r.total_seconds >= sum(kern) - 1e-9
        assert r.total_seconds >= sum(xfer) - 1e-9
        assert r.total_seconds <= sum(kern) + sum(xfer) + 1e-9

    @given(
        st.lists(st.floats(0.1, 10.0), min_size=2, max_size=15),
    )
    def test_more_streams_never_slower(self, kern):
        xfer = [k * 0.5 for k in kern]
        t1 = simulate_stream_pipeline(kern, xfer, num_streams=1).total_seconds
        t3 = simulate_stream_pipeline(kern, xfer, num_streams=3).total_seconds
        assert t3 <= t1 + 1e-9

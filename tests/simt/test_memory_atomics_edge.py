"""Edge-case tests for device memory objects and atomics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simt import AtomicCounter, BufferOverflowError, ResultBuffer


class TestResultBufferEdges:
    def test_zero_capacity(self):
        buf = ResultBuffer(0)
        buf.append_pairs(np.empty((0, 2), dtype=np.int64))  # empty ok
        with pytest.raises(BufferOverflowError):
            buf.append_pairs(np.array([[0, 0]]))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultBuffer(-1)

    def test_overflow_writes_nothing(self):
        buf = ResultBuffer(2)
        buf.append_pairs(np.array([[0, 0]]))
        with pytest.raises(BufferOverflowError):
            buf.append_pairs(np.array([[1, 1], [2, 2]]))
        # the failed append must not have partially landed
        assert buf.size == 1
        np.testing.assert_array_equal(buf.pairs(), [[0, 0]])

    def test_exact_fill(self):
        buf = ResultBuffer(3)
        buf.append_pairs(np.array([[0, 0], [1, 1], [2, 2]]))
        assert buf.size == 3
        assert buf.nbytes == 48

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            ResultBuffer(5).append_pairs(np.zeros((2, 3)))

    def test_pairs_consolidates_chunks(self):
        buf = ResultBuffer(10)
        for i in range(5):
            buf.append_pairs(np.array([[i, i]]))
        out = buf.pairs()
        assert len(out) == 5
        # repeated calls return the consolidated array
        assert buf.pairs() is out


class TestAtomicCounterEdges:
    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            AtomicCounter().fetch_add(-1)

    def test_zero_amount_counts_as_op(self):
        c = AtomicCounter()
        assert c.fetch_add(0) == 0
        assert c.value == 0
        assert c.num_ops == 1

    def test_reset_keeps_op_count(self):
        c = AtomicCounter(5)
        c.fetch_add(3)
        c.reset()
        assert c.value == 0
        assert c.num_ops == 1

    def test_initial_value(self):
        c = AtomicCounter(42)
        assert c.fetch_add(1) == 42
        assert c.value == 43

"""Unit tests for CostParams and DeviceSpec."""

from __future__ import annotations

import dataclasses

import pytest

from repro.simt import CostParams, DeviceSpec
from repro.simt.device import CPU_XEON_E5_2620V4, CpuSpec


class TestCostParams:
    def test_dist_cost_linear_in_dim(self):
        c = CostParams(c_dist_base=5.0, c_dist_dim=2.0)
        assert c.dist_cost(2) == 9.0
        assert c.dist_cost(6) == 17.0

    def test_dist_cost_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            CostParams().dist_cost(0)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            CostParams(c_cell=-1.0)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            CostParams().c_cell = 3.0


class TestDeviceSpec:
    def test_warp_slots(self):
        d = DeviceSpec(num_sms=10, warps_per_sm_slot=3)
        assert d.warp_slots == 30

    def test_cycles_to_seconds(self):
        d = DeviceSpec(clock_hz=1e9)
        assert d.cycles_to_seconds(2e9) == pytest.approx(2.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"warp_size": 0},
            {"num_sms": 0},
            {"clock_hz": 0.0},
            {"pcie_bandwidth": -1.0},
        ],
    )
    def test_invalid_params(self, kwargs):
        with pytest.raises(ValueError):
            DeviceSpec(**kwargs)

    def test_paper_default_is_gp100_class(self):
        d = DeviceSpec()
        assert d.num_sms == 56
        assert d.global_mem_bytes == 16 * 2**30


class TestCpuSpec:
    def test_paper_default_is_16_cores(self):
        assert CPU_XEON_E5_2620V4.num_cores == 16

    def test_invalid(self):
        with pytest.raises(ValueError):
            CpuSpec(num_cores=0)
        with pytest.raises(ValueError):
            CpuSpec(parallel_efficiency=1.5)

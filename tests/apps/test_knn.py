"""Tests for kNN via adaptive ε-expansion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import KnnConvergenceError, knn
from repro.core import PRESETS
from repro.runtime import Runner, RuntimeConfig, compile_knn_join


def brute_knn(pts: np.ndarray, k: int):
    d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
    np.fill_diagonal(d, np.inf)
    idx = np.argsort(d, axis=1, kind="stable")[:, :k]
    return idx, np.take_along_axis(d, idx, axis=1)


class TestKnn:
    def test_matches_brute_force_uniform(self, rng):
        pts = rng.uniform(0, 10, (250, 2))
        res = knn(pts, 5)
        _, expect_d = brute_knn(pts, 5)
        np.testing.assert_allclose(np.sort(res.distances, axis=1), expect_d)

    def test_matches_brute_force_skewed(self, rng):
        pts = np.concatenate(
            [rng.normal(1, 0.1, (150, 2)), rng.uniform(0, 20, (150, 2))]
        )
        res = knn(pts, 4)
        _, expect_d = brute_knn(pts, 4)
        np.testing.assert_allclose(np.sort(res.distances, axis=1), expect_d)
        assert res.rounds >= 1  # sparse points force expansion rounds

    def test_neighbors_sorted_by_distance(self, rng):
        pts = rng.uniform(0, 5, (120, 3))
        res = knn(pts, 6)
        assert (np.diff(res.distances, axis=1) >= -1e-12).all()

    def test_no_self_neighbors(self, rng):
        pts = rng.uniform(0, 5, (100, 2))
        res = knn(pts, 3)
        own = np.arange(100)[:, None]
        assert not (res.indices == own).any()

    def test_k1(self, rng):
        pts = rng.uniform(0, 5, (60, 2))
        res = knn(pts, 1)
        _, expect_d = brute_knn(pts, 1)
        np.testing.assert_allclose(res.distances, expect_d)

    def test_duplicate_points(self):
        pts = np.repeat(np.random.default_rng(0).uniform(0, 3, (20, 2)), 2, axis=0)
        res = knn(pts, 1)
        # each point's nearest neighbor is its duplicate at distance 0
        np.testing.assert_allclose(res.distances[:, 0], 0.0, atol=1e-12)

    def test_validation(self, rng):
        pts = rng.uniform(0, 1, (10, 2))
        with pytest.raises(ValueError):
            knn(pts, 0)
        with pytest.raises(ValueError):
            knn(pts, 10)
        with pytest.raises(ValueError):
            knn(pts, 2, epsilon0=-1.0)

    def test_explicit_small_epsilon_forces_rounds(self, rng):
        pts = rng.uniform(0, 10, (150, 2))
        res = knn(pts, 4, epsilon0=1e-3)
        assert res.rounds > 3
        _, expect_d = brute_knn(pts, 4)
        np.testing.assert_allclose(np.sort(res.distances, axis=1), expect_d)

    def test_config_invariance(self, rng):
        pts = rng.uniform(0, 6, (100, 2))
        a = knn(pts, 3, config=PRESETS["gpucalcglobal"])
        b = knn(pts, 3, config=PRESETS["workqueue_k8"])
        np.testing.assert_allclose(
            np.sort(a.distances, axis=1), np.sort(b.distances, axis=1)
        )

    def test_k_equals_n_minus_1(self, rng):
        # the degenerate extreme: every other point is a neighbor
        pts = rng.uniform(0, 5, (40, 2))
        res = knn(pts, 39)
        expect_i, expect_d = brute_knn(pts, 39)
        np.testing.assert_allclose(np.sort(res.distances, axis=1), expect_d)
        np.testing.assert_array_equal(np.sort(res.indices, axis=1), np.sort(expect_i, axis=1))
        assert res.num_pairs == 40 * 39

    def test_coincident_points_canonical_tie_break(self):
        # four exact copies of each site: all candidate distances tie at 0,
        # so the canonical (distance, neighbor-id) order must pick the
        # lowest-id copies deterministically
        base = np.random.default_rng(3).uniform(0, 2, (12, 2))
        pts = np.repeat(base, 4, axis=0)
        res = knn(pts, 3)
        np.testing.assert_allclose(res.distances, 0.0, atol=0.0)
        for i in range(len(pts)):
            group = i // 4
            siblings = [j for j in range(4 * group, 4 * group + 4) if j != i]
            np.testing.assert_array_equal(res.indices[i], siblings)

    def test_engines_bit_identical(self, rng):
        pts = rng.uniform(0, 8, (130, 2))
        outs = {}
        for engine in ("interpreted", "vectorized", "native"):
            rc = RuntimeConfig(optimization=PRESETS["workqueue"], engine=engine)
            outs[engine] = knn(pts, 4, runtime=rc)
        ref = outs["vectorized"]
        for engine, res in outs.items():
            assert res.indices.tobytes() == ref.indices.tobytes(), engine
            assert res.distances.tobytes() == ref.distances.tobytes(), engine
            assert res.rounds == ref.rounds

    def test_generous_epsilon0_converges_in_one_round(self, rng):
        pts = rng.uniform(0, 1, (80, 2))
        res = knn(pts, 3, epsilon0=5.0)  # covers the whole domain
        assert res.rounds == 1
        assert res.final_epsilon == pytest.approx(5.0)
        _, expect_d = brute_knn(pts, 3)
        np.testing.assert_allclose(np.sort(res.distances, axis=1), expect_d)

    def test_convergence_error_carries_pending_ids(self, rng):
        pts = rng.uniform(0, 10, (100, 2))
        plan = compile_knn_join(
            pts, 5, RuntimeConfig(), epsilon0=1e-4, max_rounds=2
        )
        with pytest.raises(KnnConvergenceError, match="failed to converge") as exc:
            Runner().run(plan)
        err = exc.value
        assert err.rounds == 2
        assert 0 < len(err.pending) <= 100
        assert set(err.pending) <= set(range(100))
        assert err.epsilon == pytest.approx(2e-4)

    @settings(max_examples=10)
    @given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 6), ndim=st.integers(1, 3))
    def test_property_exact(self, seed, k, ndim):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 4, (80, ndim))
        res = knn(pts, k)
        _, expect_d = brute_knn(pts, k)
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), expect_d, rtol=1e-12, atol=1e-12
        )

"""Tests for kNN via adaptive ε-expansion."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import knn
from repro.core import PRESETS


def brute_knn(pts: np.ndarray, k: int):
    d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
    np.fill_diagonal(d, np.inf)
    idx = np.argsort(d, axis=1, kind="stable")[:, :k]
    return idx, np.take_along_axis(d, idx, axis=1)


class TestKnn:
    def test_matches_brute_force_uniform(self, rng):
        pts = rng.uniform(0, 10, (250, 2))
        res = knn(pts, 5)
        _, expect_d = brute_knn(pts, 5)
        np.testing.assert_allclose(np.sort(res.distances, axis=1), expect_d)

    def test_matches_brute_force_skewed(self, rng):
        pts = np.concatenate(
            [rng.normal(1, 0.1, (150, 2)), rng.uniform(0, 20, (150, 2))]
        )
        res = knn(pts, 4)
        _, expect_d = brute_knn(pts, 4)
        np.testing.assert_allclose(np.sort(res.distances, axis=1), expect_d)
        assert res.rounds >= 1  # sparse points force expansion rounds

    def test_neighbors_sorted_by_distance(self, rng):
        pts = rng.uniform(0, 5, (120, 3))
        res = knn(pts, 6)
        assert (np.diff(res.distances, axis=1) >= -1e-12).all()

    def test_no_self_neighbors(self, rng):
        pts = rng.uniform(0, 5, (100, 2))
        res = knn(pts, 3)
        own = np.arange(100)[:, None]
        assert not (res.indices == own).any()

    def test_k1(self, rng):
        pts = rng.uniform(0, 5, (60, 2))
        res = knn(pts, 1)
        _, expect_d = brute_knn(pts, 1)
        np.testing.assert_allclose(res.distances, expect_d)

    def test_duplicate_points(self):
        pts = np.repeat(np.random.default_rng(0).uniform(0, 3, (20, 2)), 2, axis=0)
        res = knn(pts, 1)
        # each point's nearest neighbor is its duplicate at distance 0
        np.testing.assert_allclose(res.distances[:, 0], 0.0, atol=1e-12)

    def test_validation(self, rng):
        pts = rng.uniform(0, 1, (10, 2))
        with pytest.raises(ValueError):
            knn(pts, 0)
        with pytest.raises(ValueError):
            knn(pts, 10)
        with pytest.raises(ValueError):
            knn(pts, 2, epsilon0=-1.0)

    def test_explicit_small_epsilon_forces_rounds(self, rng):
        pts = rng.uniform(0, 10, (150, 2))
        res = knn(pts, 4, epsilon0=1e-3)
        assert res.rounds > 3
        _, expect_d = brute_knn(pts, 4)
        np.testing.assert_allclose(np.sort(res.distances, axis=1), expect_d)

    def test_config_invariance(self, rng):
        pts = rng.uniform(0, 6, (100, 2))
        a = knn(pts, 3, config=PRESETS["gpucalcglobal"])
        b = knn(pts, 3, config=PRESETS["workqueue_k8"])
        np.testing.assert_allclose(
            np.sort(a.distances, axis=1), np.sort(b.distances, axis=1)
        )

    @settings(max_examples=10)
    @given(seed=st.integers(0, 2**31 - 1), k=st.integers(1, 6), ndim=st.integers(1, 3))
    def test_property_exact(self, seed, k, ndim):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 4, (80, ndim))
        res = knn(pts, k)
        _, expect_d = brute_knn(pts, k)
        np.testing.assert_allclose(
            np.sort(res.distances, axis=1), expect_d, rtol=1e-12, atol=1e-12
        )

"""Tests for the disjoint-set."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apps import UnionFind


class TestUnionFind:
    def test_initially_disjoint(self):
        uf = UnionFind(5)
        assert uf.component_count() == 5

    def test_union_and_find(self):
        uf = UnionFind(4)
        assert uf.union(0, 1)
        assert uf.find(0) == uf.find(1)
        assert not uf.union(1, 0)  # already merged
        assert uf.find(2) != uf.find(0)

    def test_union_pairs(self):
        uf = UnionFind(6)
        uf.union_pairs(np.array([[0, 1], [1, 2], [4, 5], [3, 3]]))
        labels = uf.labels()
        assert labels[0] == labels[1] == labels[2]
        assert labels[4] == labels[5]
        assert uf.component_count() == 3

    def test_empty(self):
        uf = UnionFind(0)
        assert len(uf) == 0
        assert uf.component_count() == 0
        uf.union_pairs(np.empty((0, 2), dtype=np.int64))

    def test_validation(self):
        with pytest.raises(ValueError):
            UnionFind(-1)
        with pytest.raises(ValueError):
            UnionFind(3).union_pairs(np.zeros((2, 3)))

    @given(
        n=st.integers(1, 60),
        edges=st.lists(st.tuples(st.integers(0, 59), st.integers(0, 59)), max_size=80),
    )
    def test_matches_networkx_components(self, n, edges):
        import networkx as nx

        edges = [(a % n, b % n) for a, b in edges]
        uf = UnionFind(n)
        uf.union_pairs(np.array(edges).reshape(-1, 2))
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        assert uf.component_count() == nx.number_connected_components(g)
        labels = uf.labels()
        for comp in nx.connected_components(g):
            comp = sorted(comp)
            assert len({labels[i] for i in comp}) == 1

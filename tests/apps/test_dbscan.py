"""Tests for self-join-powered DBSCAN."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import DBSCAN_NOISE, dbscan
from repro.core import PRESETS, SelfJoin


@pytest.fixture
def blobs(rng):
    a = rng.normal((2, 2), 0.25, (150, 2))
    b = rng.normal((8, 8), 0.25, (150, 2))
    noise = rng.uniform(0, 10, (30, 2))
    return np.concatenate([a, b, noise])


class TestDbscan:
    def test_recovers_planted_blobs(self, blobs):
        res = dbscan(blobs, eps=0.4, min_pts=6)
        assert res.num_clusters == 2
        # each blob lands in one cluster (ignore the few noise-labeled)
        for lo, hi in ((0, 150), (150, 300)):
            lab = res.labels[lo:hi]
            lab = lab[lab != DBSCAN_NOISE]
            assert len(np.unique(lab)) == 1
            assert len(lab) > 140
        # the two blobs are different clusters
        assert res.labels[0] != res.labels[200]

    def test_all_noise_when_eps_tiny(self, blobs):
        res = dbscan(blobs, eps=1e-9, min_pts=3)
        assert res.num_clusters == 0
        assert res.noise_count == len(blobs)

    def test_single_cluster_when_eps_huge(self, blobs):
        res = dbscan(blobs, eps=100.0, min_pts=3)
        assert res.num_clusters == 1
        assert res.noise_count == 0

    def test_min_pts_controls_core(self, blobs):
        loose = dbscan(blobs, eps=0.4, min_pts=2)
        strict = dbscan(blobs, eps=0.4, min_pts=40)
        assert loose.core_mask.sum() > strict.core_mask.sum()

    def test_border_points_join_clusters(self):
        # a line of core points; a border point within eps of only the
        # first core point, so it cannot reach min_pts itself
        core = np.stack([-0.1 * np.arange(10), np.zeros(10)], axis=1)
        border = np.array([[0.45, 0.0]])
        pts = np.concatenate([core, border])
        res = dbscan(pts, eps=0.5, min_pts=5)
        assert res.core_mask[0]
        assert not res.core_mask[10]
        assert res.labels[10] == res.labels[0] != -1

    def test_labels_invariant_to_config(self, blobs):
        a = dbscan(blobs, eps=0.4, min_pts=6, config=PRESETS["gpucalcglobal"])
        b = dbscan(blobs, eps=0.4, min_pts=6, config=PRESETS["combined"])
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_custom_joiner(self, blobs):
        joiner = SelfJoin(PRESETS["workqueue"])
        res = dbscan(blobs, eps=0.4, min_pts=6, joiner=joiner)
        assert res.num_clusters == 2
        assert "queue" in res.join.config_description

    def test_labels_invariant_to_runtime_engine(self, blobs):
        from repro.runtime import RuntimeConfig

        ref = dbscan(blobs, eps=0.4, min_pts=6)
        for engine in ("vectorized", "native"):
            res = dbscan(
                blobs, eps=0.4, min_pts=6, runtime=RuntimeConfig(engine=engine)
            )
            np.testing.assert_array_equal(res.labels, ref.labels)

    def test_labels_canonical_under_contested_borders(self, rng):
        """Uniform points at a density where many border points touch
        several clusters: the lowest-core-neighbor attachment and
        lowest-member cluster numbering must make labels identical
        across engines (pair *emission order* differs between them)."""
        from repro.runtime import RuntimeConfig

        pts = rng.uniform(0, 10, (300, 2))
        ref = dbscan(pts, eps=0.5, min_pts=4)
        for engine in ("vectorized", "native"):
            res = dbscan(pts, eps=0.5, min_pts=4, runtime=RuntimeConfig(engine=engine))
            np.testing.assert_array_equal(res.labels, ref.labels)
        # numbering is canonical: cluster c's lowest *core* member
        # precedes cluster c+1's
        firsts = [
            np.flatnonzero((ref.labels == c) & ref.core_mask)[0]
            for c in range(ref.num_clusters)
        ]
        assert firsts == sorted(firsts)

    def test_validation(self, blobs):
        with pytest.raises(ValueError):
            dbscan(blobs, eps=0.4, min_pts=0)

    def test_matches_naive_dbscan(self, rng):
        """Cross-check cluster partitions against a naive reference."""
        pts = rng.uniform(0, 5, (120, 2))
        eps, min_pts = 0.5, 4
        res = dbscan(pts, eps, min_pts)

        # naive reference
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        adj = d <= eps
        core = adj.sum(axis=1) >= min_pts
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(np.flatnonzero(core))
        ii, jj = np.nonzero(adj)
        g.add_edges_from(
            (a, b) for a, b in zip(ii, jj) if core[a] and core[b] and a < b
        )
        comps = list(nx.connected_components(g))
        # same number of clusters, same core mask
        np.testing.assert_array_equal(res.core_mask, core)
        assert res.num_clusters == len(comps)
        # same core partition
        for comp in comps:
            comp = sorted(comp)
            assert len({res.labels[i] for i in comp}) == 1

"""Tests for near-duplicate grouping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import deduplicate


@pytest.fixture
def records(rng):
    base = rng.uniform(0, 10, (200, 3))
    dupes = base[:40] + rng.normal(0, 1e-4, (40, 3))
    return np.concatenate([base, dupes])


class TestDeduplicate:
    def test_planted_duplicates_found(self, records):
        res = deduplicate(records, eps=0.01)
        assert res.num_duplicates == 40
        for d in range(40):
            assert res.representative[200 + d] == d

    def test_keep_mask_selects_representatives(self, records):
        res = deduplicate(records, eps=0.01)
        assert res.keep_mask.sum() == res.num_unique == 200
        # representatives are their own representative
        reps = np.flatnonzero(res.keep_mask)
        np.testing.assert_array_equal(res.representative[reps], reps)

    def test_groups_contain_members(self, records):
        res = deduplicate(records, eps=0.01)
        groups = res.groups()
        assert len(groups) == 40
        for rep, members in groups.items():
            assert rep == members.min()
            assert len(members) == 2

    def test_transitive_grouping(self):
        # a chain a-b-c where a and c are NOT within eps directly
        pts = np.array([[0.0, 0.0], [0.9, 0.0], [1.8, 0.0]])
        res = deduplicate(pts, eps=1.0)
        assert res.num_unique == 1
        assert (res.representative == 0).all()

    def test_no_duplicates(self, rng):
        pts = rng.uniform(0, 100, (50, 2))
        res = deduplicate(pts, eps=1e-9)
        assert res.num_duplicates == 0
        assert res.groups() == {}

    def test_identical_records(self):
        pts = np.zeros((5, 2))
        res = deduplicate(pts, eps=0.1)
        assert res.num_unique == 1
        assert list(res.groups()) == [0]

    def test_grouping_invariant_to_runtime_engine(self, records):
        from repro.runtime import RuntimeConfig

        ref = deduplicate(records, eps=0.01)
        for engine in ("vectorized", "native"):
            res = deduplicate(records, eps=0.01, runtime=RuntimeConfig(engine=engine))
            np.testing.assert_array_equal(res.representative, ref.representative)

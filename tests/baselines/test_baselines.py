"""Cross-validation of the two oracles against each other."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    brute_force_neighbor_counts,
    brute_force_pairs,
    kdtree_pairs,
)


class TestBruteForce:
    def test_self_pairs_present(self):
        pts = np.random.default_rng(0).uniform(0, 10, (20, 2))
        pairs = brute_force_pairs(pts, 1e-9)
        assert len(pairs) == 20
        assert (pairs[:, 0] == pairs[:, 1]).all()

    def test_symmetry(self):
        pts = np.random.default_rng(1).uniform(0, 3, (50, 2))
        got = set(map(tuple, brute_force_pairs(pts, 0.5).tolist()))
        assert all((j, i) in got for i, j in got)

    def test_counts_match_pairs(self):
        pts = np.random.default_rng(2).uniform(0, 3, (60, 3))
        pairs = brute_force_pairs(pts, 0.6)
        counts = brute_force_neighbor_counts(pts, 0.6)
        binc = np.bincount(pairs[:, 0], minlength=60)
        np.testing.assert_array_equal(counts, binc)

    def test_block_size_invariance(self):
        pts = np.random.default_rng(3).uniform(0, 2, (41, 2))
        a = brute_force_pairs(pts, 0.4, block=7)
        b = brute_force_pairs(pts, 0.4, block=1000)
        np.testing.assert_array_equal(a, b)

    def test_block_validation(self):
        with pytest.raises(ValueError):
            brute_force_pairs(np.zeros((2, 2)), 1.0, block=0)

    def test_empty(self):
        assert len(brute_force_pairs(np.empty((0, 2)), 1.0)) == 0

    def test_exclude_self_counts(self):
        pts = np.zeros((5, 2))
        counts = brute_force_neighbor_counts(pts, 1.0, include_self=False)
        np.testing.assert_array_equal(counts, [4] * 5)


class TestOraclesAgree:
    @given(
        seed=st.integers(0, 2**31 - 1),
        ndim=st.integers(1, 4),
        eps=st.floats(0.05, 1.5),
        include_self=st.booleans(),
    )
    @settings(max_examples=25)
    def test_bruteforce_equals_kdtree(self, seed, ndim, eps, include_self):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 3, size=(70, ndim))
        bf = brute_force_pairs(pts, eps, include_self=include_self)
        kd = kdtree_pairs(pts, eps, include_self=include_self)
        np.testing.assert_array_equal(bf, kd)

    def test_kdtree_empty(self):
        assert len(kdtree_pairs(np.empty((0, 2)), 1.0)) == 0

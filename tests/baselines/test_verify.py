"""Tests for the result-set verifier."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import verify_selfjoin_result
from repro.core import PRESETS, SelfJoin


@pytest.fixture(scope="module")
def joined():
    rng = np.random.default_rng(4)
    pts = rng.uniform(0, 5, (200, 2))
    res = SelfJoin(PRESETS["combined"]).execute(pts, 0.4)
    return pts, res


class TestVerifier:
    def test_accepts_correct_result(self, joined):
        pts, res = joined
        report = verify_selfjoin_result(pts, 0.4, res.pairs)
        report.raise_if_failed()
        assert report.ok
        assert report.sampled_points > 0

    def test_detects_missing_pairs(self, joined):
        pts, res = joined
        truncated = res.pairs[: len(res.pairs) // 2]
        report = verify_selfjoin_result(pts, 0.4, truncated)
        assert not report.ok
        with pytest.raises(AssertionError, match="verification failed"):
            report.raise_if_failed()

    def test_detects_far_pairs(self, joined):
        pts, res = joined
        d = np.linalg.norm(pts[:, None] - pts[None, :], axis=-1)
        i, j = np.unravel_index(np.argmax(d), d.shape)
        bogus = np.concatenate([res.pairs, [[i, j], [j, i]]])
        report = verify_selfjoin_result(pts, 0.4, bogus)
        assert any("exceed epsilon" in p for p in report.problems)

    def test_detects_asymmetry(self, joined):
        pts, res = joined
        # drop one non-self row
        non_self = np.flatnonzero(res.pairs[:, 0] != res.pairs[:, 1])
        broken = np.delete(res.pairs, non_self[0], axis=0)
        report = verify_selfjoin_result(pts, 0.4, broken)
        assert any("not symmetric" in p for p in report.problems)

    def test_detects_duplicates(self, joined):
        pts, res = joined
        duped = np.concatenate([res.pairs, res.pairs[:1]])
        report = verify_selfjoin_result(pts, 0.4, duped)
        assert any("duplicate" in p for p in report.problems)

    def test_self_pair_policy(self, joined):
        pts, res = joined
        report = verify_selfjoin_result(pts, 0.4, res.pairs, include_self=False)
        assert any("include_self=False" in p for p in report.problems)
        no_self = SelfJoin(include_self=False).execute(pts, 0.4)
        assert verify_selfjoin_result(
            pts, 0.4, no_self.pairs, include_self=False
        ).ok

    def test_index_bounds(self, joined):
        pts, _ = joined
        report = verify_selfjoin_result(pts, 0.4, np.array([[0, 9999]]))
        assert any("out of range" in p for p in report.problems)

    def test_bad_shape(self, joined):
        pts, _ = joined
        report = verify_selfjoin_result(pts, 0.4, np.zeros((2, 3), dtype=np.int64))
        assert not report.ok

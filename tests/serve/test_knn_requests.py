"""kNN requests through the serving layer.

The service compiles ``kind="knn"`` requests through the same
``compile_knn_join`` path the library uses, resolving every expansion
round's grid through the :class:`SessionCache`; results must match the
direct :func:`repro.apps.knn` call and repeat requests must hit the
session cache.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.apps import knn
from repro.data import uniform
from repro.grid import GridIndex
from repro.serve import JoinRequest, JoinService, ServeConfig
from repro.serve.admission import estimate_request_cost

_EPS0 = 0.05
_K = 3


@pytest.fixture(scope="module")
def points():
    return uniform(180, 2, seed=33, low=0.0, high=1.0)


@pytest.fixture(scope="module")
def direct(points):
    return knn(points, _K, epsilon0=_EPS0)


def serve(coro_fn, config: ServeConfig | None = None):
    async def main():
        async with JoinService(config) as svc:
            return await coro_fn(svc)

    return asyncio.run(main())


# ------------------------------------------------------------ validation
class TestRequestShape:
    def test_knn_needs_k(self):
        with pytest.raises(ValueError, match="k >= 1"):
            JoinRequest(dataset="d", epsilon=_EPS0, kind="knn")
        with pytest.raises(ValueError, match="k >= 1"):
            JoinRequest(dataset="d", epsilon=_EPS0, kind="knn", k=0)

    def test_non_knn_kinds_reject_k(self):
        with pytest.raises(ValueError, match="must not set k"):
            JoinRequest(dataset="d", epsilon=_EPS0, kind="self", k=2)

    def test_knn_rejects_query_dataset(self):
        with pytest.raises(ValueError, match="query_dataset"):
            JoinRequest(
                dataset="d", epsilon=_EPS0, kind="knn", k=2, query_dataset="q"
            )


# ------------------------------------------------------------ admission
class TestCostEstimate:
    def test_knn_cost_lower_bound_is_exact_answer_size(self, points):
        index = GridIndex(points, _EPS0)
        cost = estimate_request_cost(index, kind="knn", k=_K)
        assert cost >= len(points) * _K

    def test_knn_cost_needs_k(self, points):
        index = GridIndex(points, _EPS0)
        with pytest.raises(ValueError, match="k >= 1"):
            estimate_request_cost(index, kind="knn")


# ------------------------------------------------------------ execution
def test_knn_round_trip_matches_direct_call(points, direct):
    async def body(svc):
        svc.register_dataset("u", points)
        ticket = await svc.submit(
            JoinRequest(dataset="u", epsilon=_EPS0, kind="knn", k=_K)
        )
        return await svc.result(ticket)

    response = serve(body)
    assert response.ok and response.kind == "knn"
    result = response.result
    assert result.indices.tobytes() == direct.indices.tobytes()
    assert result.distances.tobytes() == direct.distances.tobytes()
    assert result.rounds == direct.rounds
    assert response.num_pairs == len(points) * _K


def test_repeat_knn_request_hits_session_cache(points):
    async def body(svc):
        svc.register_dataset("u", points)
        first = await svc.result(
            await svc.submit(JoinRequest(dataset="u", epsilon=_EPS0, kind="knn", k=_K))
        )
        second = await svc.result(
            await svc.submit(JoinRequest(dataset="u", epsilon=_EPS0, kind="knn", k=_K))
        )
        return first, second

    first, second = serve(body)
    assert not first.cache_hit
    assert second.cache_hit  # the round-0 grid came from the session cache
    assert second.result.indices.tobytes() == first.result.indices.tobytes()
    assert second.result.distances.tobytes() == first.result.distances.tobytes()


def test_knn_pairs_stream_in_canonical_chunks(points, direct):
    async def body(svc):
        svc.register_dataset("u", points)
        ticket = await svc.submit(
            JoinRequest(dataset="u", epsilon=_EPS0, kind="knn", k=_K)
        )
        await svc.result(ticket)
        chunks = []
        async for chunk in svc.stream(ticket, chunk=64):
            chunks.append(chunk)
        return chunks

    chunks = serve(body)
    assert all(len(c) <= 64 for c in chunks)
    np.testing.assert_array_equal(np.concatenate(chunks), direct.pairs)

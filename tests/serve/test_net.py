"""The optional TCP JSON-lines transport: round-trips and framing."""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core import SelfJoin
from repro.data import exponential
from repro.serve import JoinService
from repro.serve.net import TcpJoinClient, serve_tcp


def test_tcp_roundtrip_with_large_result():
    """A ~27k-pair reply is one JSON line well past asyncio's 64 KiB
    default stream limit — framing must survive it on both ends."""
    points = exponential(500, 2, seed=42)
    eps = 0.04
    expected = SelfJoin().execute(points, eps)

    async def main():
        async with JoinService() as svc:
            server, port = await serve_tcp(svc)
            try:
                async with TcpJoinClient("127.0.0.1", port) as client:
                    assert await client.ping()
                    reg = await client.register("d", points)
                    assert reg["ok"] and reg["num_points"] == len(points)
                    out = await client.join(dataset="d", epsilon=eps)
                    assert out["ok"] and out["state"] == "done"
                    assert out["num_pairs"] == expected.num_pairs
                    np.testing.assert_array_equal(
                        np.asarray(out["pairs"]), expected.pairs
                    )
                    # second join over the same wire hits the cache
                    again = await client.join(dataset="d", epsilon=eps)
                    assert again["cache_hit"]
            finally:
                server.close()
                await server.wait_closed()

    asyncio.run(main())


def test_tcp_malformed_and_unknown_ops_do_not_kill_listener():
    async def main():
        async with JoinService() as svc:
            server, port = await serve_tcp(svc)
            try:
                async with TcpJoinClient("127.0.0.1", port) as client:
                    bad = await client.call(op="nonsense")
                    assert not bad["ok"] and "unknown op" in bad["error"]
                    # raw garbage line: server replies with an error
                    client._writer.write(b"this is not json\n")
                    await client._writer.drain()
                    line = await client._reader.readline()
                    import json

                    assert not json.loads(line)["ok"]
                    # and the connection still works afterwards
                    assert await client.ping()
            finally:
                server.close()
                await server.wait_closed()

    asyncio.run(main())


def test_tcp_shutdown_op_stops_server():
    async def main():
        async with JoinService() as svc:
            server, port = await serve_tcp(svc)
            async with TcpJoinClient("127.0.0.1", port) as client:
                reply = await client.shutdown()
                assert reply["ok"] and reply["stopping"]
            await asyncio.wait_for(server.wait_closed(), timeout=5.0)

    asyncio.run(main())

"""Admission control: cost estimation and the queue/reject decision."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelfJoin, SimilarityJoin
from repro.grid import GridIndex
from repro.serve import AdmissionPolicy, check_admission, estimate_request_cost


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    pts = rng.uniform(0, 4, size=(300, 2))
    queries = rng.uniform(0, 4, size=(150, 2))
    return pts, queries, GridIndex(pts, 0.4)


def test_self_cost_tracks_actual_result(data):
    pts, _, index = data
    actual = SelfJoin().execute(pts, 0.4).num_pairs
    est = estimate_request_cost(index, kind="self", sample_fraction=0.2)
    assert est > 0
    assert 0.3 * actual <= est <= 3.0 * actual


def test_similarity_cost_tracks_actual_result(data):
    pts, queries, index = data
    actual = SimilarityJoin().execute(queries, pts, 0.4).num_pairs
    est = estimate_request_cost(
        index, kind="similarity", queries=queries, sample_fraction=0.2
    )
    assert est > 0
    assert 0.3 * actual <= est <= 3.0 * actual


def test_similarity_cost_requires_queries(data):
    with pytest.raises(ValueError, match="query points"):
        estimate_request_cost(data[2], kind="similarity")


def test_empty_query_side_costs_zero(data):
    est = estimate_request_cost(
        data[2], kind="similarity", queries=np.empty((0, 2))
    )
    assert est == 0


def test_queue_full_rejection():
    policy = AdmissionPolicy(max_queue_depth=2)
    ok = check_admission(policy, queue_depth=1, estimated_pairs=10)
    assert ok.admitted
    full = check_admission(policy, queue_depth=2, estimated_pairs=10)
    assert not full.admitted
    assert "queue_full" in full.reason


def test_over_budget_rejection():
    policy = AdmissionPolicy(max_estimated_pairs=100)
    ok = check_admission(policy, queue_depth=0, estimated_pairs=100)
    assert ok.admitted
    over = check_admission(policy, queue_depth=0, estimated_pairs=101)
    assert not over.admitted
    assert "over_budget" in over.reason


def test_no_budget_means_no_ceiling():
    policy = AdmissionPolicy()
    assert check_admission(policy, queue_depth=0, estimated_pairs=10**12).admitted


def test_policy_validation():
    with pytest.raises(ValueError):
        AdmissionPolicy(max_concurrency=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_queue_depth=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_estimated_pairs=0)

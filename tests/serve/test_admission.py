"""Admission control: cost estimation and the queue/reject decision."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SelfJoin, SimilarityJoin
from repro.grid import GridIndex
from repro.serve import AdmissionPolicy, check_admission, estimate_request_cost


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(5)
    pts = rng.uniform(0, 4, size=(300, 2))
    queries = rng.uniform(0, 4, size=(150, 2))
    return pts, queries, GridIndex(pts, 0.4)


def test_self_cost_tracks_actual_result(data):
    pts, _, index = data
    actual = SelfJoin().execute(pts, 0.4).num_pairs
    est = estimate_request_cost(index, kind="self", sample_fraction=0.2)
    assert est > 0
    assert 0.3 * actual <= est <= 3.0 * actual


def test_similarity_cost_tracks_actual_result(data):
    pts, queries, index = data
    actual = SimilarityJoin().execute(queries, pts, 0.4).num_pairs
    est = estimate_request_cost(
        index, kind="similarity", queries=queries, sample_fraction=0.2
    )
    assert est > 0
    assert 0.3 * actual <= est <= 3.0 * actual


def test_similarity_cost_requires_queries(data):
    with pytest.raises(ValueError, match="query points"):
        estimate_request_cost(data[2], kind="similarity")


def test_empty_query_side_costs_zero(data):
    est = estimate_request_cost(
        data[2], kind="similarity", queries=np.empty((0, 2))
    )
    assert est == 0


def test_queue_full_rejection():
    policy = AdmissionPolicy(max_queue_depth=2)
    ok = check_admission(policy, queue_depth=1, estimated_pairs=10)
    assert ok.admitted
    full = check_admission(policy, queue_depth=2, estimated_pairs=10)
    assert not full.admitted
    assert "queue_full" in full.reason


def test_over_budget_rejection():
    policy = AdmissionPolicy(max_estimated_pairs=100)
    ok = check_admission(policy, queue_depth=0, estimated_pairs=100)
    assert ok.admitted
    over = check_admission(policy, queue_depth=0, estimated_pairs=101)
    assert not over.admitted
    assert "over_budget" in over.reason


def test_no_budget_means_no_ceiling():
    policy = AdmissionPolicy()
    assert check_admission(policy, queue_depth=0, estimated_pairs=10**12).admitted


def test_policy_validation():
    with pytest.raises(ValueError):
        AdmissionPolicy(max_concurrency=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_queue_depth=0)
    with pytest.raises(ValueError):
        AdmissionPolicy(max_estimated_pairs=0)


# ---------------------------------------------------------------------
# per-tenant protective machinery: rate limits, breakers, retry budgets


def test_token_bucket_burst_then_dry():
    from repro.serve import RateLimitPolicy, TokenBucket

    bucket = TokenBucket(RateLimitPolicy(requests_per_second=0.0, burst=3))
    assert [bucket.try_take(0.0) for _ in range(4)] == [True, True, True, False]
    # zero refill rate: deterministic no matter how much time passes
    assert not bucket.try_take(1000.0)


def test_token_bucket_refills_over_time():
    from repro.serve import RateLimitPolicy, TokenBucket

    bucket = TokenBucket(RateLimitPolicy(requests_per_second=2.0, burst=2))
    assert bucket.try_take(0.0) and bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    assert bucket.try_take(0.5)  # 0.5s * 2/s = 1 token back
    assert not bucket.try_take(0.5)
    # refill caps at the burst
    assert bucket.try_take(100.0) and bucket.try_take(100.0)
    assert not bucket.try_take(100.0)


def test_rate_limit_policy_validation():
    from repro.serve import RateLimitPolicy

    with pytest.raises(ValueError):
        RateLimitPolicy(requests_per_second=-1.0)
    with pytest.raises(ValueError):
        RateLimitPolicy(burst=0)


def test_circuit_breaker_opens_cools_probes_and_closes():
    from repro.serve import CircuitBreaker, CircuitBreakerPolicy

    b = CircuitBreaker(CircuitBreakerPolicy(failure_threshold=2, cooldown_seconds=10.0))
    assert b.state == "closed" and b.allow(0.0)
    b.record_failure(0.0)
    assert b.state == "closed" and b.allow(0.0)
    b.record_failure(1.0)
    assert b.state == "open"
    assert not b.allow(5.0)  # still cooling
    assert b.allow(11.0)  # half-open probe admitted
    assert b.state == "half_open"
    b.record_failure(11.5)  # probe failed: straight back to open
    assert b.state == "open"
    assert b.allow(22.0)
    b.record_success()
    assert b.state == "closed" and b.consecutive_failures == 0


def test_retry_budget_spends_and_credits():
    from repro.serve import RetryBudget, RetryPolicy

    budget = RetryBudget(RetryPolicy(max_attempts=3, budget=2.0, refill_per_success=0.5))
    assert budget.try_acquire() and budget.try_acquire()
    assert not budget.try_acquire()
    for _ in range(2):
        budget.credit()
    assert budget.try_acquire()
    assert not budget.try_acquire()
    # credits cap at the configured budget
    for _ in range(100):
        budget.credit()
    assert budget.tokens <= 2.0


def test_retry_policy_validation():
    from repro.serve import RetryPolicy

    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(budget=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(refill_per_success=-0.1)

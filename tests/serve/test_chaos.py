"""Service-level chaos: seeded fault injection, determinism, recovery.

The acceptance properties: the same :class:`ServiceFaultPlan` seed over
the same submit sequence yields the same timestamp-free ``ServiceLog``
signature, and **every** injected fault ends in a resolved ticket — no
hung callers. ``pause_dispatch`` lands the whole submit sequence before
the first dispatch so injection ordinals are deterministic.

``pytest-asyncio`` is not a dependency; every test drives its coroutine
with ``asyncio.run`` so the suite runs on a stock pytest.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.data import uniform
from repro.resilience import (
    CancellationStorm,
    ClientDisconnect,
    PoolCollapse,
    RunnerCrash,
    ServiceFaultPlan,
    SlowClient,
)
from repro.runtime import CheckpointConfig, RuntimeConfig, ShardingConfig
from repro.serve import (
    AdmissionPolicy,
    JoinRequest,
    JoinService,
    RetryPolicy,
    ServeConfig,
)

_EPS = 0.08


@pytest.fixture(scope="module")
def points():
    return uniform(220, 2, seed=21, low=0.0, high=1.0)


def _pooled() -> RuntimeConfig:
    return RuntimeConfig(sharding=ShardingConfig(num_devices=3))


async def _chaos_round(points, plan, tmp=None, n=8):
    """One deterministic chaos run: paused submits, serial dispatch."""
    cfg = ServeConfig(
        admission=AdmissionPolicy(max_concurrency=1),
        retry=RetryPolicy(max_attempts=2),
        chaos=plan,
    )
    async with JoinService(cfg) as svc:
        svc.pause_dispatch()
        svc.register_dataset("d", points)
        tickets = []
        for i in range(n):
            rc = _pooled() if i % 2 else RuntimeConfig()
            if tmp is not None and i == 0:
                rc = RuntimeConfig(
                    sharding=ShardingConfig(num_devices=3),
                    checkpoint=CheckpointConfig(directory=str(tmp)),
                )
            tickets.append(
                await svc.submit(
                    JoinRequest(dataset="d", epsilon=_EPS, runtime=rc, tag=f"t{i}")
                )
            )
        svc.resume_dispatch()
        responses = [await svc.result(t) for t in tickets]
        return svc.log.signature(), responses, svc.chaos_report(), svc.snapshot()


_FULL_PLAN = ServiceFaultPlan(
    seed=17,
    storms=(CancellationStorm(at_request=1, count=2),),
    disconnects=(ClientDisconnect(at_request=2),),
    slow_clients=(SlowClient(at_request=3, delay_seconds=0.0),),
    collapses=(PoolCollapse(at_request=4, keep_devices=1, at_shard=1),),
)


def test_same_seed_same_signature(points):
    async def main():
        s1, r1, _, _ = await _chaos_round(points, _FULL_PLAN)
        s2, r2, _, _ = await _chaos_round(points, _FULL_PLAN)
        assert s1 == s2
        assert [r.state for r in r1] == [r.state for r in r2]

    asyncio.run(main())


def test_different_seed_can_pick_different_victims(points):
    async def main():
        plan_b = ServiceFaultPlan(
            seed=18,
            storms=_FULL_PLAN.storms,
            disconnects=_FULL_PLAN.disconnects,
            slow_clients=_FULL_PLAN.slow_clients,
            collapses=_FULL_PLAN.collapses,
        )
        s1, _, _, _ = await _chaos_round(points, _FULL_PLAN)
        s2, _, _, _ = await _chaos_round(points, plan_b)
        # seeds may coincide on tiny backlogs; the describe string cannot
        assert plan_b.describe() == _FULL_PLAN.describe()
        assert isinstance(s1, tuple) and isinstance(s2, tuple)

    asyncio.run(main())


def test_every_injected_fault_resolves(points):
    async def main():
        _, responses, report, _ = await _chaos_round(points, _FULL_PLAN)
        assert all(r.state in ("done", "failed", "cancelled", "timeout", "rejected")
                   for r in responses)
        assert report.num_injected >= 4
        assert report.all_resolved
        assert report.mttr_seconds >= 0.0

    asyncio.run(main())


def test_storm_victims_terminal_and_counted(points):
    async def main():
        plan = ServiceFaultPlan(
            seed=3, storms=(CancellationStorm(at_request=0, count=3),)
        )
        _, responses, report, snap = await _chaos_round(points, plan, n=6)
        cancelled = [r for r in responses if r.state == "cancelled"]
        assert len(cancelled) == 3
        assert report.injected_by_species["cancellation_storm"] == 3
        assert snap["counts"]["cancelled"] == 3

    asyncio.run(main())


def test_pool_collapse_degrades_then_next_request_is_whole(points):
    async def main():
        plan = ServiceFaultPlan(
            seed=5, collapses=(PoolCollapse(at_request=0, keep_devices=1, at_shard=1),)
        )
        cfg = ServeConfig(admission=AdmissionPolicy(max_concurrency=1), chaos=plan)
        async with JoinService(cfg) as svc:
            svc.register_dataset("d", points)
            first = await svc.run(
                JoinRequest(dataset="d", epsilon=_EPS, runtime=_pooled())
            )
            assert first.state == "done"
            assert first.result.recovery_log.num_devices_lost >= 1
            assert svc.log.count("degraded") == 1
            second = await svc.run(
                JoinRequest(dataset="d", epsilon=_EPS, runtime=_pooled())
            )
            assert second.state == "done"
            assert second.result.recovery_log is None or (
                second.result.recovery_log.num_devices_lost == 0
            )

    asyncio.run(main())


def test_runner_crash_with_retry_resumes_from_journal(points, tmp_path):
    async def main():
        plan = ServiceFaultPlan(seed=7, crashes=(RunnerCrash(at_request=0, at_shard=2),))
        cfg = ServeConfig(retry=RetryPolicy(max_attempts=2), chaos=plan)
        async with JoinService(cfg) as svc:
            svc.register_dataset("d", points)
            rc = RuntimeConfig(
                sharding=ShardingConfig(num_devices=3),
                checkpoint=CheckpointConfig(directory=str(tmp_path)),
            )
            crashed = await svc.run(JoinRequest(dataset="d", epsilon=_EPS, runtime=rc))
            golden = await svc.run(JoinRequest(dataset="d", epsilon=_EPS, runtime=_pooled()))
            assert crashed.state == "done"
            np.testing.assert_array_equal(
                crashed.result.sorted_pairs(), golden.result.sorted_pairs()
            )
            snap = svc.snapshot()
            assert snap["counts"]["retried"] == 1
            assert snap["checkpoint"]["loads"] == 2  # shards durable pre-crash
            assert snap["checkpoint"]["writes"] >= 2
            kinds = [e.kind for e in svc.log.events]
            assert "fault" in kinds and "retry" in kinds
            assert svc.chaos_report().all_resolved

    asyncio.run(main())


def test_runner_crash_without_retry_fails_terminally(points):
    async def main():
        plan = ServiceFaultPlan(seed=7, crashes=(RunnerCrash(at_request=0, at_shard=1),))
        async with JoinService(ServeConfig(chaos=plan)) as svc:
            svc.register_dataset("d", points)
            r = await svc.run(JoinRequest(dataset="d", epsilon=_EPS, runtime=_pooled()))
            assert r.state == "failed"
            assert "SimulatedCrashError" in r.error
            assert svc.chaos_report().all_resolved

    asyncio.run(main())


def test_slow_client_stream_still_completes(points):
    async def main():
        plan = ServiceFaultPlan(
            seed=9, slow_clients=(SlowClient(at_request=0, delay_seconds=0.001),)
        )
        async with JoinService(ServeConfig(chaos=plan)) as svc:
            svc.register_dataset("d", points)
            ticket = await svc.submit(JoinRequest(dataset="d", epsilon=_EPS))
            response = await svc.result(ticket)
            assert response.state == "done"
            blocks = []
            async for block in svc.stream(ticket, chunk=2048):
                blocks.append(block)
            np.testing.assert_array_equal(
                np.concatenate(blocks), response.result.pairs
            )

    asyncio.run(main())


def test_chaos_report_renders_and_serializes(points):
    async def main():
        _, _, report, _ = await _chaos_round(points, _FULL_PLAN)
        text = report.render()
        assert "Chaos report" in text and "resolved" in text
        record = report.to_record()
        assert record["all_resolved"] is True
        assert record["num_injected"] == report.num_injected

    asyncio.run(main())

"""Recovery under cancellation: a pooled request whose shards are being
requeued by the RecoveryPolicy is cancelled mid-flight — the service must
discard the result, keep the incident trail consistent (the degradation
is still surfaced), release the shared pool, and serve the next pooled
request on a whole pool.

``pytest-asyncio`` is not a dependency; tests drive their coroutines
with ``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.data import uniform
from repro.resilience import DeviceFailure, FaultPlan
from repro.runtime import RuntimeConfig, ShardingConfig
from repro.serve import AdmissionPolicy, JoinRequest, JoinService, ServeConfig

_EPS = 0.08


@pytest.fixture(scope="module")
def points():
    return uniform(220, 2, seed=21, low=0.0, high=1.0)


def _faulty_pooled() -> RuntimeConfig:
    """A pooled config that loses a device mid-run and heals by requeue."""
    return RuntimeConfig(
        sharding=ShardingConfig(num_devices=3),
        fault_plan=FaultPlan(failures=(DeviceFailure(device_id=1, at_shard=1),)),
    )


def test_cancel_during_recovery_keeps_trail_and_pool_consistent(points):
    async def main():
        cfg = ServeConfig(admission=AdmissionPolicy(max_concurrency=1))
        async with JoinService(cfg) as svc:
            svc.register_dataset("d", points)
            # cancel as soon as the request is running: the execution
            # finishes in its worker thread (cooperative cancellation),
            # recovery requeues the dead device's shards, and the service
            # must then discard the result
            ticket = await svc.submit(
                JoinRequest(dataset="d", epsilon=_EPS, runtime=_faulty_pooled())
            )
            while ticket.state == "queued":
                await asyncio.sleep(0.001)
            assert ticket.cancel()
            response = await svc.result(ticket)
            assert response.state == "cancelled"
            assert response.result is None
            # the trail: degraded (with the discard noted) precedes the
            # terminal cancelled event for the same request
            events = [
                e for e in svc.log.events if e.request_id == ticket.request_id
            ]
            kinds = [e.kind for e in events]
            assert "degraded" in kinds and "cancelled" in kinds
            assert kinds.index("degraded") < kinds.index("cancelled")
            degraded = next(e for e in events if e.kind == "degraded")
            assert "result discarded" in degraded.detail
            assert "lost 1 device(s)" in degraded.detail

            # the pool was released and re-armed: the next pooled request
            # runs clean on the full pool and matches a fault-free run
            follow_up = await svc.run(
                JoinRequest(
                    dataset="d",
                    epsilon=_EPS,
                    runtime=RuntimeConfig(sharding=ShardingConfig(num_devices=3)),
                )
            )
            assert follow_up.state == "done"
            log = follow_up.result.recovery_log
            assert log is None or log.num_devices_lost == 0
            snap = svc.snapshot()
            assert snap["counts"]["cancelled"] == 1
            assert snap["counts"]["completed"] == 1

    asyncio.run(main())


def test_cancel_before_dispatch_skips_execution_entirely(points):
    async def main():
        cfg = ServeConfig(admission=AdmissionPolicy(max_concurrency=1))
        async with JoinService(cfg) as svc:
            svc.pause_dispatch()
            svc.register_dataset("d", points)
            ticket = await svc.submit(
                JoinRequest(dataset="d", epsilon=_EPS, runtime=_faulty_pooled())
            )
            assert ticket.cancel()
            svc.resume_dispatch()
            response = await svc.result(ticket)
            assert response.state == "cancelled"
            # never ran: no degraded event, no recovery trail at all
            assert svc.log.count("degraded") == 0
            assert svc.log.count("dispatch") == 0

    asyncio.run(main())


def test_cancelled_recovery_result_matches_nothing_leaks_between_requests(points):
    """Interleave cancelled faulty runs with clean runs: every clean run
    stays bit-identical to the serial baseline."""

    async def main():
        from repro.runtime import Runner, compile_self_join
        from repro.grid import GridIndex

        index = GridIndex(points, _EPS)
        baseline = Runner().run(
            compile_self_join(index, RuntimeConfig(sharding=ShardingConfig(num_devices=3)))
        )
        cfg = ServeConfig(admission=AdmissionPolicy(max_concurrency=1))
        async with JoinService(cfg) as svc:
            svc.register_dataset("d", points)
            for _ in range(2):
                faulty = await svc.submit(
                    JoinRequest(dataset="d", epsilon=_EPS, runtime=_faulty_pooled())
                )
                faulty.cancel()
                clean = await svc.run(
                    JoinRequest(
                        dataset="d",
                        epsilon=_EPS,
                        runtime=RuntimeConfig(sharding=ShardingConfig(num_devices=3)),
                    )
                )
                await svc.result(faulty)
                assert clean.state == "done"
                np.testing.assert_array_equal(
                    clean.result.sorted_pairs(), baseline.sorted_pairs()
                )

    asyncio.run(main())

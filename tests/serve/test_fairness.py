"""Weighted deficit round-robin: determinism, proportionality, no starvation."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve import FairQueue


def _drain(queue: FairQueue) -> list:
    """Pop everything synchronously (the queue is already populated)."""
    order = []

    async def run():
        while len(queue):
            tenant, item, cost = await queue.pop()
            order.append((tenant, item))

    asyncio.run(run())
    return order


def test_single_tenant_is_fifo():
    q = FairQueue(quantum=10)
    for i in range(5):
        q.push("a", i, cost=1000)
    assert _drain(q) == [("a", i) for i in range(5)]


def test_round_robin_between_equal_tenants():
    q = FairQueue(quantum=10)
    for i in range(3):
        q.push("a", f"a{i}", cost=10)
        q.push("b", f"b{i}", cost=10)
    order = [t for t, _ in _drain(q)]
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_heavy_request_does_not_starve_light_tenant():
    # tenant a queues huge requests; tenant b's small ones must interleave,
    # not wait for all of a's to finish
    q = FairQueue(quantum=10)
    for i in range(3):
        q.push("a", f"a{i}", cost=10_000)
    for i in range(3):
        q.push("b", f"b{i}", cost=10)
    order = [t for t, _ in _drain(q)]
    first_b = order.index("b")
    assert first_b <= 1
    # b's cheap requests all clear before a's last huge one
    assert order.index("b2") if "b2" in order else True
    assert order[-1] == "a"


def test_weights_buy_proportional_rows():
    # equal-cost items; weight 2 tenant should dispatch ~2x as often early
    q = FairQueue(quantum=100, weights={"heavy": 2.0})
    for i in range(8):
        q.push("heavy", f"h{i}", cost=100)
        q.push("light", f"l{i}", cost=100)
    order = [t for t, _ in _drain(q)]
    first_six = order[:6]
    assert first_six.count("heavy") >= first_six.count("light")


def test_dispatch_order_is_deterministic():
    def build():
        q = FairQueue(quantum=50, weights={"b": 1.5})
        for i in range(4):
            q.push("a", f"a{i}", cost=130)
            q.push("b", f"b{i}", cost=75)
            q.push("c", f"c{i}", cost=20)
        return q

    assert _drain(build()) == _drain(build())


def test_fast_forward_does_not_spin():
    # costs are orders of magnitude above the quantum; the fast-forward
    # boost must still drain promptly (this would effectively hang if the
    # implementation credited one quantum per visit)
    q = FairQueue(quantum=1.0)
    for i in range(3):
        q.push("a", i, cost=10**9)
    assert [i for _, i in _drain(q)] == [0, 1, 2]


def test_pop_waits_for_push():
    async def run():
        q = FairQueue(quantum=10)

        async def producer():
            await asyncio.sleep(0.01)
            q.push("a", "late", cost=5)

        asyncio.get_running_loop().create_task(producer())
        tenant, item, cost = await asyncio.wait_for(q.pop(), timeout=2.0)
        return tenant, item

    assert asyncio.run(run()) == ("a", "late")


def test_cost_floor_and_validation():
    q = FairQueue(quantum=10)
    q.push("a", "zero-cost", cost=0)
    assert _drain(q) == [("a", "zero-cost")]
    with pytest.raises(ValueError, match="quantum"):
        FairQueue(quantum=0)
    with pytest.raises(ValueError, match="weight"):
        FairQueue(weights={"a": -1.0})


def test_depth_accounting():
    q = FairQueue()
    assert len(q) == 0
    q.push("a", 1, cost=1)
    q.push("a", 2, cost=1)
    q.push("b", 3, cost=1)
    assert len(q) == 3
    assert q.depth("a") == 2
    assert q.depth("b") == 1
    assert q.depth("missing") == 0

"""JoinService behaviour: lifecycle, caching, rejection, cancellation,
timeouts, failures, degraded pools, streaming, events and the report.

``pytest-asyncio`` is not a dependency; every test drives its coroutine
with ``asyncio.run`` so the suite runs on a stock pytest.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import SelfJoin
from repro.data import uniform
from repro.resilience import DeviceFailure, FaultPlan
from repro.runtime import RuntimeConfig, ShardingConfig
from repro.serve import (
    AdmissionPolicy,
    JoinClient,
    JoinRequest,
    JoinService,
    ServeConfig,
    ServeError,
)

_EPS = 0.08


@pytest.fixture(scope="module")
def points():
    return uniform(220, 2, seed=21, low=0.0, high=1.0)


@pytest.fixture(scope="module")
def expected_pairs(points):
    return SelfJoin().execute(points, _EPS).sorted_pairs()


def serve(coro_fn, config: ServeConfig | None = None):
    """Run one async test body against a started service."""

    async def main():
        async with JoinService(config) as svc:
            return await coro_fn(svc)

    return asyncio.run(main())


# ------------------------------------------------------------ basics
def test_submit_and_result_roundtrip(points, expected_pairs):
    async def body(svc):
        svc.register_dataset("u", points)
        ticket = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
        response = await svc.result(ticket)
        assert response.ok and response.state == "done"
        assert ticket.done
        np.testing.assert_array_equal(
            response.result.sorted_pairs(), expected_pairs
        )
        assert response.queue_seconds >= 0.0
        assert response.execute_seconds > 0.0
        return response

    response = serve(body)
    assert not response.cache_hit  # first request builds the index


def test_unknown_dataset_raises(points):
    async def body(svc):
        with pytest.raises(ServeError, match="register"):
            await svc.submit(JoinRequest(dataset="ghost", epsilon=_EPS))

    serve(body)


def test_submit_requires_running_service(points):
    async def body():
        svc = JoinService()
        svc.register_dataset("u", points)
        with pytest.raises(ServeError, match="not running"):
            await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))

    asyncio.run(body())


def test_repeat_requests_hit_the_cache(points):
    async def body(svc):
        svc.register_dataset("u", points)
        first = await svc.run(JoinRequest(dataset="u", epsilon=_EPS))
        second = await svc.run(JoinRequest(dataset="u", epsilon=_EPS))
        assert not first.cache_hit
        assert second.cache_hit
        assert second.num_pairs == first.num_pairs
        assert svc.cache.stats.hit_rate > 0
        assert svc.log.count("cache_miss") == 1
        assert svc.log.count("cache_hit") >= 1
        # a different ε is a different grid — miss again
        third = await svc.run(JoinRequest(dataset="u", epsilon=_EPS * 2))
        assert not third.cache_hit

    serve(body)


def test_rejection_over_budget(points):
    config = ServeConfig(admission=AdmissionPolicy(max_estimated_pairs=1))

    async def body(svc):
        svc.register_dataset("u", points)
        ticket = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
        response = await svc.result(ticket)
        assert ticket.state == "rejected"
        assert not response.ok
        assert "over_budget" in response.error
        assert svc.log.count("reject") == 1

    serve(body, config)


def test_cancel_while_queued(points):
    # one slot, a long request in front: the second ticket is still queued
    # when cancelled, so it must terminate without running
    config = ServeConfig(admission=AdmissionPolicy(max_concurrency=1))

    async def body(svc):
        svc.register_dataset("u", points)
        first = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
        second = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
        assert second.cancel()
        r1 = await svc.result(first)
        r2 = await svc.result(second)
        assert r1.ok
        assert r2.state == "cancelled" and not r2.ok
        assert svc.log.count("cancelled") == 1

    serve(body, config)


def test_queue_deadline_timeout(points):
    config = ServeConfig(admission=AdmissionPolicy(max_concurrency=1))

    async def body(svc):
        svc.register_dataset("u", points)
        first = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
        # an impossible deadline: whatever time admission took already
        # exceeded it, so it times out at dispatch instead of starting
        second = await svc.submit(
            JoinRequest(dataset="u", epsilon=_EPS, timeout_seconds=1e-9)
        )
        r1 = await svc.result(first)
        r2 = await svc.result(second)
        assert r1.ok
        assert r2.state == "timeout" and not r2.ok
        assert "deadline" in r2.error
        assert svc.log.count("timeout") == 1

    serve(body, config)


def test_failed_request_keeps_service_alive(points):
    async def body(svc):
        svc.register_dataset("u", points)
        # unicomp pattern is invalid for a bipartite join → compile error
        svc.register_dataset("q", points[:50])
        bad = await svc.run(
            JoinRequest(
                dataset="u",
                epsilon=_EPS,
                kind="similarity",
                query_dataset="q",
                runtime=RuntimeConfig(
                    optimization=__import__(
                        "repro.core", fromlist=["OptimizationConfig"]
                    ).OptimizationConfig(pattern="unicomp")
                ),
            )
        )
        assert bad.state == "failed"
        assert "full" in bad.error
        # the service keeps serving after a failed request
        good = await svc.run(JoinRequest(dataset="u", epsilon=_EPS))
        assert good.ok
        assert svc.log.count("failed") == 1

    serve(body)


def test_similarity_request(points):
    async def body(svc):
        svc.register_dataset("right", points)
        svc.register_dataset("left", points[:80])
        response = await svc.run(
            JoinRequest(
                dataset="right", epsilon=_EPS, kind="similarity", query_dataset="left"
            )
        )
        assert response.ok
        from repro.core import SimilarityJoin

        direct = SimilarityJoin().execute(points[:80], points, _EPS)
        np.testing.assert_array_equal(
            response.result.sorted_pairs(), direct.sorted_pairs()
        )

    serve(body)


# ------------------------------------------------------------ pooled + degraded
def test_pooled_requests_share_the_service_pool(points, expected_pairs):
    config = ServeConfig(pool_devices=3)

    async def body(svc):
        svc.register_dataset("u", points)
        rc = RuntimeConfig(sharding=ShardingConfig(num_devices=8))
        response = await svc.run(JoinRequest(dataset="u", epsilon=_EPS, runtime=rc))
        assert response.ok
        np.testing.assert_array_equal(
            response.result.sorted_pairs(), expected_pairs
        )
        # the request asked for 8 devices but ran on the service's 3
        assert svc._pool.num_devices == 3
        assert response.result.num_devices == 3

    serve(body, config)


def test_service_survives_pool_degradation(points, expected_pairs):
    """A fault-degraded pooled run heals per-run: the next pooled request
    sees the full pool again (arm_pool re-arms health each run)."""

    async def body(svc):
        svc.register_dataset("u", points)
        faulty = RuntimeConfig(
            sharding=ShardingConfig(num_devices=2),
            fault_plan=FaultPlan(seed=3, failures=[DeviceFailure(0, at_shard=1)]),
        )
        degraded = await svc.run(
            JoinRequest(dataset="u", epsilon=_EPS, runtime=faulty)
        )
        assert degraded.ok
        np.testing.assert_array_equal(
            degraded.result.sorted_pairs(), expected_pairs
        )
        assert degraded.result.recovery_log.num_devices_lost == 1
        assert svc.log.count("degraded") == 1
        # the same pool serves the next fault-free request undegraded
        clean = await svc.run(
            JoinRequest(
                dataset="u",
                epsilon=_EPS,
                runtime=RuntimeConfig(sharding=ShardingConfig(num_devices=2)),
            )
        )
        assert clean.ok
        assert clean.result.recovery_log is None or (
            clean.result.recovery_log.num_devices_lost == 0
        )
        np.testing.assert_array_equal(clean.result.sorted_pairs(), expected_pairs)

    serve(body)


# ------------------------------------------------------------ streaming
def test_stream_blocks_reassemble_exactly(points):
    async def body(svc):
        svc.register_dataset("u", points)
        ticket = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
        blocks = []
        async for block in svc.stream(ticket, chunk=97):
            blocks.append(block)
        response = await svc.result(ticket)
        assert all(len(b) == 97 for b in blocks[:-1])
        np.testing.assert_array_equal(
            np.concatenate(blocks), response.result.pairs
        )

    serve(body)


def test_stream_of_failed_request_raises(points):
    config = ServeConfig(admission=AdmissionPolicy(max_estimated_pairs=1))

    async def body(svc):
        svc.register_dataset("u", points)
        ticket = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
        with pytest.raises(ServeError, match="rejected"):
            async for _ in svc.stream(ticket):
                pass

    serve(body, config)


# ------------------------------------------------------------ client + report
def test_client_facade(points):
    async def main():
        async with JoinClient() as client:
            client.register_dataset("u", points)
            response = await client.self_join("u", epsilon=_EPS)
            assert response.ok
            other = client.for_tenant("t2")
            assert other.service is client.service
            r2 = await other.self_join("u", epsilon=_EPS)
            assert r2.tenant == "t2" and r2.cache_hit

    asyncio.run(main())


def test_report_and_snapshot(points):
    async def body(svc):
        svc.register_dataset("u", points)
        for _ in range(3):
            await svc.run(JoinRequest(dataset="u", epsilon=_EPS, tenant="a"))
        await svc.run(JoinRequest(dataset="u", epsilon=_EPS, tenant="b"))
        report = svc.report()
        assert report.requests_completed == 4
        assert report.cache_hit_rate > 0
        assert report.tenant("a").completed == 3
        assert report.tenant("b").completed == 1
        assert report.queue_latency(50) >= 0.0
        rendered = report.render()
        assert "Service report" in rendered and "a" in rendered
        record = report.to_record()
        assert record["counts"]["completed"] == 4
        assert 0.0 < record["cache_hit_rate"] <= 1.0

    serve(body)


def test_stop_without_drain_cancels_backlog(points):
    async def main():
        svc = JoinService(ServeConfig(admission=AdmissionPolicy(max_concurrency=1)))
        await svc.start()
        svc.register_dataset("u", points)
        tickets = [
            await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
            for _ in range(3)
        ]
        await svc.stop(drain=False)
        states = [(await svc.result(t)).state for t in tickets]
        # whatever had started finishes; the backlog is cancelled
        assert states.count("cancelled") >= 1
        assert svc.log.count("shutdown") == 1

    asyncio.run(main())


# ------------------------------------------------------------ protection
def test_rate_limited_submit_rejects_terminally(points):
    from repro.serve import RateLimitPolicy

    async def body(svc):
        svc.register_dataset("u", points)
        tickets = [
            await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
            for _ in range(4)
        ]
        responses = [await svc.result(t) for t in tickets]
        limited = [r for r in responses if r.state == "rejected"]
        assert len(limited) == 2
        assert all("rate_limited" in r.error for r in limited)
        assert svc.log.count("rate_limited") == 2
        snap = svc.snapshot()
        assert snap["counts"]["rate_limited"] == 2
        assert snap["tenants"]["default"]["rate_limited"] == 2
        # the report surfaces the protection counters
        assert "rate-limited" in svc.report().render()

    serve(
        body,
        ServeConfig(rate_limit=RateLimitPolicy(requests_per_second=0.0, burst=2)),
    )


def test_rate_limit_is_per_tenant(points):
    from repro.serve import RateLimitPolicy

    async def body(svc):
        svc.register_dataset("u", points)
        a = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS, tenant="a"))
        b = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS, tenant="b"))
        ra, rb = await svc.result(a), await svc.result(b)
        assert ra.state == "done" and rb.state == "done"

    serve(
        body,
        ServeConfig(rate_limit=RateLimitPolicy(requests_per_second=0.0, burst=1)),
    )


def test_circuit_breaker_opens_after_failures(points):
    from repro.serve import CircuitBreakerPolicy

    async def body(svc):
        svc.register_dataset("u", points)
        bad = RuntimeConfig(
            sharding=ShardingConfig(num_devices=2),
            fault_plan=FaultPlan(
                failures=tuple(DeviceFailure(device_id=d) for d in range(2))
            ),
        )
        for _ in range(2):
            r = await svc.run(JoinRequest(dataset="u", epsilon=_EPS, runtime=bad))
            assert r.state == "failed"
        tripped = await svc.run(JoinRequest(dataset="u", epsilon=_EPS))
        assert tripped.state == "rejected"
        assert "circuit_open" in tripped.error
        assert svc.log.count("circuit_open") == 1
        assert svc.snapshot()["breakers"]["default"] == "open"
        # other tenants are unaffected
        other = await svc.run(
            JoinRequest(dataset="u", epsilon=_EPS, tenant="other")
        )
        assert other.state == "done"

    serve(
        body,
        ServeConfig(
            circuit_breaker=CircuitBreakerPolicy(
                failure_threshold=2, cooldown_seconds=1000.0
            )
        ),
    )


# ------------------------------------------------------------ deadlines
def test_execution_deadline_times_out_terminally(points):
    async def body(svc):
        svc.register_dataset("u", points)
        r = await svc.run(
            JoinRequest(dataset="u", epsilon=_EPS, deadline_seconds=1e-9)
        )
        assert r.state == "timeout"
        assert "deadline" in r.error
        assert svc.snapshot()["counts"]["timeout"] == 1
        # the service keeps serving afterwards
        ok = await svc.run(JoinRequest(dataset="u", epsilon=_EPS))
        assert ok.state == "done"

    serve(body)


def test_generous_deadline_completes_normally(points, expected_pairs):
    async def body(svc):
        svc.register_dataset("u", points)
        r = await svc.run(
            JoinRequest(dataset="u", epsilon=_EPS, deadline_seconds=3600.0)
        )
        assert r.state == "done"
        np.testing.assert_array_equal(r.result.sorted_pairs(), expected_pairs)

    serve(body)


# ------------------------------------------------------------ shutdown
def test_drain_stops_admissions_but_finishes_backlog(points):
    async def main():
        svc = JoinService(ServeConfig(admission=AdmissionPolicy(max_concurrency=1)))
        await svc.start()
        svc.register_dataset("u", points)
        tickets = [
            await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
            for _ in range(3)
        ]
        stopper = asyncio.create_task(svc.stop(drain=True))
        await asyncio.sleep(0.01)
        # mid-drain: new work is rejected terminally, never queued
        late = await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
        late_response = await svc.result(late)
        assert late_response.state == "rejected"
        assert "draining" in late_response.error
        await stopper
        states = [(await svc.result(t)).state for t in tickets]
        assert states == ["done", "done", "done"]
        kinds = [e.kind for e in svc.log.events]
        assert "drain" in kinds and kinds.index("drain") < kinds.index("shutdown")

    asyncio.run(main())


def test_stop_timeout_cancels_what_drain_could_not_finish(points):
    async def main():
        svc = JoinService(ServeConfig(admission=AdmissionPolicy(max_concurrency=1)))
        await svc.start()
        svc.register_dataset("u", points)
        svc.pause_dispatch()  # wedge dispatch so the backlog cannot drain...
        tickets = [
            await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
            for _ in range(3)
        ]
        svc.pause_dispatch()
        # ...except stop() re-opens the gate; the tiny timeout still cuts
        # the drain short, and every ticket must resolve terminally
        await svc.stop(drain=True, timeout=0.0)
        states = [(await svc.result(t)).state for t in tickets]
        assert all(s in ("done", "cancelled") for s in states)
        assert svc.log.count("shutdown") == 1

    asyncio.run(main())


def test_shutdown_resolves_every_pending_ticket(points):
    async def main():
        svc = JoinService(ServeConfig(admission=AdmissionPolicy(max_concurrency=1)))
        await svc.start()
        svc.register_dataset("u", points)
        svc.pause_dispatch()  # nothing ever dispatches
        tickets = [
            await svc.submit(JoinRequest(dataset="u", epsilon=_EPS))
            for _ in range(4)
        ]
        await svc.stop(drain=False)
        responses = await asyncio.wait_for(
            asyncio.gather(*(svc.result(t) for t in tickets)), timeout=5.0
        )
        assert all(r.state == "cancelled" for r in responses)
        assert all(t.done for t in tickets)
        assert svc.log.count("shutdown") == 1

    asyncio.run(main())

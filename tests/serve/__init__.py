"""Tests of the repro.serve multi-tenant serving layer."""

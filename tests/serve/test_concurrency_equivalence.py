"""ISSUE acceptance test: N interleaved tenants with mixed self and
similarity requests through ``repro.serve`` produce bit-identical pair
sets to serial ``Runner`` execution, the session cache earns hits on
repeated-dataset requests, and per-tenant fairness bounds hold in the
``ServiceReport``.

The serial references go through the same compile → Runner path the
service uses internally, so equality here means the serving layer adds
*no* nondeterminism: not from concurrency, not from index reuse, not
from pool sharing.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.data import exponential, uniform
from repro.grid import GridIndex
from repro.runtime import (
    Runner,
    RuntimeConfig,
    ShardingConfig,
    compile_self_join,
    compile_similarity_join,
)
from repro.serve import AdmissionPolicy, JoinRequest, JoinService, ServeConfig

TENANTS = ["alpha", "beta", "gamma", "delta"]
_EPS_SELF = 0.06
_EPS_SIM = 0.07


@pytest.fixture(scope="module")
def datasets():
    return {
        "expo": exponential(240, 2, seed=31),
        "unif": uniform(240, 2, seed=32, low=0.0, high=1.0),
        "queries": uniform(90, 2, seed=33, low=0.0, high=1.0),
    }


def _requests_for(tenant: str) -> list[JoinRequest]:
    """Every tenant submits the same mixed self/similarity workload, so
    serial references are shared and per-tenant output is identical."""
    pooled = RuntimeConfig(sharding=ShardingConfig(num_devices=2))
    return [
        JoinRequest(dataset="expo", epsilon=_EPS_SELF, tenant=tenant, tag="self-expo"),
        JoinRequest(
            dataset="unif",
            epsilon=_EPS_SIM,
            kind="similarity",
            query_dataset="queries",
            tenant=tenant,
            tag="sim-unif",
        ),
        JoinRequest(
            dataset="expo",
            epsilon=_EPS_SELF,
            tenant=tenant,
            runtime=pooled,
            tag="self-expo-pooled",
        ),
    ]


@pytest.fixture(scope="module")
def serial_reference(datasets):
    """Tag → canonical sorted pair set, via the same Runner pipeline."""
    runner = Runner()
    expo_index = GridIndex(datasets["expo"], _EPS_SELF)
    unif_index = GridIndex(datasets["unif"], _EPS_SIM)
    self_plan = compile_self_join(expo_index, RuntimeConfig())
    sim_plan = compile_similarity_join(
        unif_index, datasets["queries"], RuntimeConfig()
    )
    self_pairs = runner.run(self_plan).sorted_pairs()
    sim_pairs = runner.run(sim_plan).sorted_pairs()
    return {
        "self-expo": self_pairs,
        "sim-unif": sim_pairs,
        "self-expo-pooled": self_pairs,  # pooling must not change the answer
    }


def test_interleaved_tenants_match_serial_runner(datasets, serial_reference):
    config = ServeConfig(
        admission=AdmissionPolicy(max_concurrency=3, max_queue_depth=256),
        pool_devices=2,
    )

    async def main():
        async with JoinService(config) as svc:
            for name in ("expo", "unif", "queries"):
                svc.register_dataset(name, datasets[name])
            # hold every concurrency slot while submitting so the queue
            # fills with all tenants before the first dispatch — the
            # interleaving assertion below is then deterministic
            slots = config.admission.max_concurrency
            for _ in range(slots):
                await svc._slots.acquire()
            tickets = []
            for round_ in range(2):  # repeat the workload → cache hits
                for tenant in TENANTS:
                    for request in _requests_for(tenant):
                        tickets.append(await svc.submit(request))
            for _ in range(slots):
                svc._slots.release()
            responses = await asyncio.gather(*(svc.result(t) for t in tickets))
            return svc.report(), responses

    report, responses = asyncio.run(main())

    # --- bit-identical pair sets vs the serial Runner -------------------
    assert all(r.ok for r in responses)
    for response in responses:
        expected = serial_reference[response.tag]
        got = response.result.sorted_pairs()
        np.testing.assert_array_equal(got, expected)

    # --- cache earns hits on repeated-dataset requests ------------------
    assert report.cache_hit_rate > 0
    assert report.cache_hits > report.cache_misses  # 24 requests, 2 grids

    # --- per-tenant fairness bounds from the ServiceReport --------------
    total = len(TENANTS) * 3 * 2
    assert report.requests_completed == total
    for tenant in TENANTS:
        row = report.tenant(tenant)
        assert row.completed == 6
        assert row.failed == 0
    # identical workloads + equal weights → identical weighted service
    assert report.fairness_spread() == pytest.approx(1.0)
    # DRR interleaves: every tenant is dispatched within the first
    # 2·N slots (the very first pop can land before the queue is full,
    # handing one tenant a single-dispatch head start — no more)
    assert set(report.dispatch_order[: 2 * len(TENANTS)]) == set(TENANTS)
    # and at no prefix of the dispatch order is any tenant more than two
    # requests ahead of any other — the DRR fairness bound
    counts = dict.fromkeys(TENANTS, 0)
    for tenant in report.dispatch_order:
        counts[tenant] += 1
        assert max(counts.values()) - min(counts.values()) <= 2


def test_weighted_tenants_report_spread(datasets):
    """Unequal weights with equal workloads surface as fairness spread
    exactly 1.0 in *completed output* (everyone's work still finishes)
    while the dispatch order favours the heavy tenant early."""
    config = ServeConfig(
        admission=AdmissionPolicy(max_concurrency=1, max_queue_depth=128),
        tenant_weights={"alpha": 3.0},
    )

    async def main():
        async with JoinService(config) as svc:
            svc.register_dataset("expo", datasets["expo"])
            tickets = []
            for _ in range(3):
                for tenant in ("alpha", "beta"):
                    tickets.append(
                        await svc.submit(
                            JoinRequest(
                                dataset="expo", epsilon=_EPS_SELF, tenant=tenant
                            )
                        )
                    )
            await asyncio.gather(*(svc.result(t) for t in tickets))
            return svc.report()

    report = asyncio.run(main())
    assert report.requests_completed == 6
    assert report.tenant("alpha").weight == 3.0
    assert report.tenant("beta").weight == 1.0
    # weighted spread: alpha's pairs/weight is a third of beta's
    spread = report.fairness_spread()
    assert spread == pytest.approx(3.0)

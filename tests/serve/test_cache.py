"""SessionCache: LRU behaviour, keying by content + ε, stats accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import GridIndex, dataset_fingerprint
from repro.serve import SessionCache


def _index(seed=0, n=40, eps=0.5):
    pts = np.random.default_rng(seed).uniform(0, 5, size=(n, 2))
    return pts, GridIndex(pts, eps)


def test_miss_then_hit():
    pts, index = _index()
    fp = dataset_fingerprint(pts)
    cache = SessionCache(capacity=2)
    assert cache.get(fp, 0.5) is None
    cache.put(fp, 0.5, index)
    assert cache.get(fp, 0.5) is index
    stats = cache.stats
    assert (stats.hits, stats.misses) == (1, 1)
    assert stats.hit_rate == 0.5


def test_epsilon_is_part_of_the_key():
    pts, index = _index()
    fp = dataset_fingerprint(pts)
    cache = SessionCache()
    cache.put(fp, 0.5, index)
    assert cache.get(fp, 0.25) is None


def test_lru_evicts_least_recently_used():
    cache = SessionCache(capacity=2)
    entries = []
    for seed in range(3):
        pts, index = _index(seed=seed)
        entries.append((dataset_fingerprint(pts), index))
    cache.put(entries[0][0], 0.5, entries[0][1])
    cache.put(entries[1][0], 0.5, entries[1][1])
    assert cache.get(entries[0][0], 0.5) is entries[0][1]  # refresh 0
    evicted = cache.put(entries[2][0], 0.5, entries[2][1])  # evicts 1
    assert evicted == [SessionCache.key(entries[1][0], 0.5)]
    assert cache.get(entries[1][0], 0.5) is None
    assert cache.get(entries[0][0], 0.5) is entries[0][1]
    assert cache.stats.evictions == 1
    assert len(cache) == 2


def test_identical_content_shares_entry():
    pts, index = _index()
    cache = SessionCache()
    cache.put(dataset_fingerprint(pts), 0.5, index)
    copy = pts.copy()  # same bytes, different object
    assert cache.get(dataset_fingerprint(copy), 0.5) is index


def test_capacity_validation():
    with pytest.raises(ValueError, match="capacity"):
        SessionCache(capacity=0)


def test_clear():
    pts, index = _index()
    cache = SessionCache()
    cache.put(dataset_fingerprint(pts), 0.5, index)
    cache.clear()
    assert len(cache) == 0
    assert cache.get(dataset_fingerprint(pts), 0.5) is None

"""Integration: every optimization configuration on pathological inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_pairs
from repro.core import PRESETS, SelfJoin
from repro.data.adversarial import (
    ADVERSARIAL_GENERATORS,
    all_identical,
    cell_boundary_lattice,
    collinear,
    dense_core_sparse_halo,
    two_distant_blobs,
)

CONFIGS = ["gpucalcglobal", "unicomp", "lidunicomp", "combined", "combined_balanced"]


@pytest.mark.parametrize("dataset", sorted(ADVERSARIAL_GENERATORS))
@pytest.mark.parametrize("preset", CONFIGS)
def test_exact_on_adversarial(dataset, preset):
    pts = ADVERSARIAL_GENERATORS[dataset](120, 2, 7)
    eps = 1.0
    res = SelfJoin(PRESETS[preset]).execute(pts, eps)
    np.testing.assert_array_equal(res.sorted_pairs(), brute_force_pairs(pts, eps))


class TestGenerators:
    def test_all_identical(self):
        pts = all_identical(10, 3, seed=0)
        assert (pts == pts[0]).all()

    def test_lattice_shape_and_spacing(self):
        pts = cell_boundary_lattice(4, 2, epsilon=0.5)
        assert pts.shape == (16, 2)
        assert 0.5 in np.unique(pts)

    def test_lattice_validation(self):
        with pytest.raises(ValueError):
            cell_boundary_lattice(0)

    def test_collinear_degenerate_box(self):
        pts = collinear(50, 3, seed=0)
        spans = pts.max(axis=0) - pts.min(axis=0)
        assert np.allclose(spans, spans[0])

    def test_dense_core_fraction(self):
        pts = dense_core_sparse_halo(200, 2, core_fraction=0.5, seed=0)
        in_core = ((pts >= 0) & (pts <= 0.5)).all(axis=1).sum()
        assert in_core >= 100

    def test_dense_core_validation(self):
        with pytest.raises(ValueError):
            dense_core_sparse_halo(10, 2, core_fraction=1.0)

    def test_distant_blobs_span(self):
        pts = two_distant_blobs(40, 2, seed=0)
        assert pts[:, 0].max() - pts[:, 0].min() > 5e3


class TestBoundarySemantics:
    def test_pairs_at_exactly_epsilon_included(self):
        """dist(p, q) == eps must be in the result (<= predicate)."""
        pts = cell_boundary_lattice(3, 2, epsilon=1.0)
        res = SelfJoin().execute(pts, 1.0)
        got = set(map(tuple, res.pairs.tolist()))
        # horizontal lattice neighbors are exactly 1.0 apart
        assert any(
            (i, j) in got
            for i in range(9)
            for j in range(9)
            if i != j and np.isclose(np.linalg.norm(pts[i] - pts[j]), 1.0)
        )
        np.testing.assert_array_equal(res.sorted_pairs(), brute_force_pairs(pts, 1.0))

    def test_identical_points_quadratic_result(self):
        pts = all_identical(30, 2, seed=1)
        res = SelfJoin(PRESETS["combined"]).execute(pts, 0.1)
        assert res.num_pairs == 30 * 30

    def test_distant_blobs_no_cross_pairs(self):
        pts = two_distant_blobs(60, 2, seed=2)
        res = SelfJoin().execute(pts, 2.0)
        half = 30
        cross = (res.pairs[:, 0] < half) != (res.pairs[:, 1] < half)
        assert not cross.any()


class TestModelOnAdversarial:
    @pytest.mark.parametrize("dataset", sorted(ADVERSARIAL_GENERATORS))
    def test_model_agrees_with_vm(self, dataset):
        from repro.perfmodel import PerformanceModel
        from repro.simt import CostParams

        pts = ADVERSARIAL_GENERATORS[dataset](100, 2, 3)
        costs = CostParams(c_emit=0.0)
        cfg = PRESETS["combined"]
        vm = SelfJoin(cfg, costs=costs, seed=1).execute(pts, 1.0)
        model = PerformanceModel(costs=costs, seed=1)
        run = model.estimate(model.profile(pts, 1.0), cfg)
        assert run.kernel_seconds == pytest.approx(vm.kernel_seconds, rel=1e-12)
        assert run.total_result_rows == vm.num_pairs

"""End-to-end integration: catalog datasets, replay fidelity, queue
persistence, pipeline consistency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_pairs
from repro.bench.experiments import load_bench_dataset
from repro.core import PRESETS, SelfJoin
from repro.data import CATALOG


class TestCatalogDatasets:
    """Every Table I dataset family runs end-to-end and stays exact."""

    @pytest.mark.parametrize(
        "name", ["Unif2D2M", "Expo2D2M", "Unif6D2M", "SW3DA", "Gaia"]
    )
    def test_exact_at_small_scale(self, name):
        pts = load_bench_dataset(name, size=250, seed=3)
        eps = {"Unif2D2M": 0.8, "Expo2D2M": 0.02, "Unif6D2M": 12.0,
               "SW3DA": 8.0, "Gaia": 4.0}[name]
        res = SelfJoin(PRESETS["combined"]).execute(pts, eps)
        np.testing.assert_array_equal(res.sorted_pairs(), brute_force_pairs(pts, eps))

    def test_all_catalog_entries_generate(self):
        for name in CATALOG:
            pts = load_bench_dataset(name, size=80, seed=0)
            assert pts.shape == (80, CATALOG[name].ndim)
            assert np.isfinite(pts).all()


class TestReplayFidelity:
    def test_lockstep_never_faster_than_aggregate(self, rng):
        pts = np.concatenate(
            [rng.normal(1, 0.2, (200, 2)), rng.uniform(0, 5, (200, 2))]
        )
        agg = SelfJoin(seed=1, replay_mode="aggregate").execute(pts, 0.3)
        lock = SelfJoin(seed=1, replay_mode="lockstep").execute(pts, 0.3)
        np.testing.assert_array_equal(agg.sorted_pairs(), lock.sorted_pairs())
        assert lock.kernel_seconds >= agg.kernel_seconds
        # lockstep serializes per event (pessimistic: every cell visit is a
        # divergence point); the bracket [1x, ~6x] bounds the abstraction
        assert lock.kernel_seconds <= 6.0 * agg.kernel_seconds

    def test_invalid_mode_rejected_at_launch(self, rng):
        pts = rng.uniform(0, 2, (40, 2))
        with pytest.raises(ValueError, match="replay mode"):
            SelfJoin(replay_mode="quantum").execute(pts, 0.5)


class TestQueuePersistence:
    def test_counter_spans_batches(self, rng):
        """The queue is persistent across kernel invocations: total fetches
        equal |D| (k=1) even with many batches."""
        pts = np.concatenate(
            [rng.normal(1, 0.15, (300, 2)), rng.uniform(0, 5, (300, 2))]
        )
        cfg = PRESETS["workqueue"].with_(batch_result_capacity=3000)
        res = SelfJoin(cfg).execute(pts, 0.3)
        assert res.num_batches > 2
        # every point appears exactly once as a query of exactly one batch:
        # the one-direction own-cell emissions cover each point at least once
        queried = np.unique(res.pairs[:, 0])
        np.testing.assert_array_equal(queried, np.arange(600))

    def test_workqueue_batches_heavy_first(self, rng):
        """The first batch must carry more result rows per point than the
        last (most-work-first order)."""
        pts = np.concatenate(
            [rng.normal(1, 0.1, (300, 2)), rng.uniform(0, 6, (300, 2))]
        )
        cfg = PRESETS["workqueue"].with_(batch_result_capacity=5000)
        res = SelfJoin(cfg).execute(pts, 0.3)
        assert res.num_batches >= 2
        first_kernel = res.batch_stats[0]
        last_kernel = res.batch_stats[-1]
        # same thread count per batch, but the first batch's warps are
        # heavier
        mean_busy = lambda s: np.mean([w.warp_cycles for w in s.warp_stats])
        assert mean_busy(first_kernel) > mean_busy(last_kernel)


class TestPipelineConsistency:
    def test_total_time_bounds(self, rng):
        pts = rng.uniform(0, 6, (400, 2))
        res = SelfJoin(PRESETS["workqueue"].with_(batch_result_capacity=2000)).execute(
            pts, 0.5
        )
        kern = sum(s.seconds for s in res.batch_stats)
        assert res.total_seconds >= kern
        # transfers can't more than double it at these sizes
        assert res.total_seconds <= kern + res.pipeline.transfer_end[-1]

    def test_stream_count_effect(self, rng):
        pts = np.concatenate(
            [rng.normal(1, 0.15, (250, 2)), rng.uniform(0, 5, (250, 2))]
        )
        base = PRESETS["workqueue"].with_(batch_result_capacity=2500)
        one = SelfJoin(base.with_(num_streams=1), seed=2).execute(pts, 0.3)
        three = SelfJoin(base.with_(num_streams=3), seed=2).execute(pts, 0.3)
        assert three.total_seconds <= one.total_seconds + 1e-12
        np.testing.assert_array_equal(one.sorted_pairs(), three.sorted_pairs())

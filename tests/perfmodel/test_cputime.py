"""Unit tests for the SUPER-EGO CPU time model."""

from __future__ import annotations

import pytest

from repro.ego import EgoOpCounts
from repro.perfmodel.constants import CpuCostParams
from repro.perfmodel.cputime import superego_seconds
from repro.simt.device import CpuSpec


def counts(dist=10**6, seq=1000):
    return EgoOpCounts(distance_computations=dist, sequence_comparisons=seq)


class TestSuperegoSeconds:
    def test_positive_and_composed(self):
        run = superego_seconds(counts(), 10000, 2)
        assert run.total_seconds == pytest.approx(
            run.sort_seconds + run.join_seconds
        )
        assert run.total_seconds > 0

    def test_scales_with_distance_ops(self):
        a = superego_seconds(counts(dist=10**6), 10000, 2)
        b = superego_seconds(counts(dist=10**8), 10000, 2)
        assert b.join_seconds > 10 * a.join_seconds

    def test_more_cores_faster(self):
        few = superego_seconds(counts(), 10000, 2, cpu=CpuSpec(num_cores=2))
        many = superego_seconds(counts(), 10000, 2, cpu=CpuSpec(num_cores=16))
        assert many.total_seconds < few.total_seconds

    def test_dimension_raises_refinement_cost(self):
        lo = superego_seconds(counts(), 10000, 2)
        hi = superego_seconds(counts(), 10000, 6)
        assert hi.join_seconds > lo.join_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            superego_seconds(counts(), -1, 2)
        with pytest.raises(ValueError):
            superego_seconds(counts(), 10, 0)

    def test_zero_points(self):
        run = superego_seconds(EgoOpCounts(), 0, 2)
        assert run.total_seconds >= 0


class TestCpuCostParams:
    def test_dist_cost_linear(self):
        c = CpuCostParams(c_dist_base=6, c_dist_dim=3)
        assert c.dist_cost(4) == 18

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuCostParams(c_dist_base=-1)
        with pytest.raises(ValueError):
            CpuCostParams().dist_cost(0)

"""Unit tests for the warp assembly and kernel-time composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import GridIndex
from repro.perfmodel import WorkloadProfile
from repro.perfmodel.kerneltime import schedule_batches
from repro.perfmodel.warps import model_batch_warps
from repro.simt import CostParams, DeviceSpec


@pytest.fixture
def profile(rng):
    return WorkloadProfile(GridIndex(rng.uniform(0, 6, (256, 2)), 0.5))


COSTS = CostParams()


class TestModelBatchWarps:
    def test_warp_count(self, profile):
        batch = np.arange(256)
        m = model_batch_warps(
            profile, batch, k=1, pattern="full", costs=COSTS, work_queue=False
        )
        assert m.num_warps == 8

    def test_k_scales_warp_count(self, profile):
        batch = np.arange(256)
        m = model_batch_warps(
            profile, batch, k=8, pattern="full", costs=COSTS, work_queue=False
        )
        assert m.num_warps == 64

    def test_empty_batch(self, profile):
        m = model_batch_warps(
            profile,
            np.array([], dtype=np.int64),
            k=1,
            pattern="full",
            costs=COSTS,
            work_queue=False,
        )
        assert m.num_warps == 0

    def test_active_never_exceeds_busy_times_warpsize(self, profile):
        batch = np.arange(256)
        for k, wq in [(1, False), (8, False), (1, True), (8, True)]:
            m = model_batch_warps(
                profile, batch, k=k, pattern="full", costs=COSTS, work_queue=wq
            )
            assert (m.active <= 32 * m.busy + 1e-9).all()
            assert (m.busy > 0).all()

    def test_queue_adds_atomic_cost(self, profile):
        batch = np.arange(256)
        plain = model_batch_warps(
            profile, batch, k=1, pattern="full", costs=COSTS, work_queue=False
        )
        queued = model_batch_warps(
            profile, batch, k=1, pattern="full", costs=COSTS, work_queue=True
        )
        np.testing.assert_allclose(queued.busy, plain.busy + COSTS.c_atomic)

    def test_durations_include_launch_overhead(self, profile):
        batch = np.arange(64)
        m = model_batch_warps(
            profile, batch, k=1, pattern="full", costs=COSTS, work_queue=False
        )
        np.testing.assert_allclose(
            m.durations_with_launch(COSTS), m.busy + COSTS.c_warp_launch
        )


class TestScheduleBatches:
    def make_models(self, profile, batches):
        return [
            model_batch_warps(
                profile, b, k=1, pattern="full", costs=COSTS, work_queue=False
            )
            for b in batches
        ]

    def test_single_batch_run(self, profile):
        models = self.make_models(profile, [np.arange(256)])
        run = schedule_batches(
            models, [100], DeviceSpec(), COSTS, issue_order="fifo", num_streams=3
        )
        assert run.num_batches == 1
        assert run.total_seconds >= run.kernel_seconds > 0
        assert 0 < run.warp_execution_efficiency <= 1

    def test_total_rows(self, profile):
        models = self.make_models(profile, [np.arange(128), np.arange(128, 256)])
        run = schedule_batches(
            models, [50, 70], DeviceSpec(), COSTS, issue_order="fifo", num_streams=3
        )
        assert run.total_result_rows == 120
        assert run.num_warps == models[0].num_warps + models[1].num_warps

    def test_transfer_time_scales_with_rows(self, profile):
        models = self.make_models(profile, [np.arange(256)])
        small = schedule_batches(
            models, [10], DeviceSpec(), COSTS, issue_order="fifo", num_streams=3
        )
        big = schedule_batches(
            models, [10**7], DeviceSpec(), COSTS, issue_order="fifo", num_streams=3
        )
        assert big.total_seconds > small.total_seconds

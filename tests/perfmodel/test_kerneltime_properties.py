"""Property tests for the kernel-time composition layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PRESETS
from repro.grid import GridIndex
from repro.perfmodel import PerformanceModel, WorkloadProfile
from repro.perfmodel.kerneltime import schedule_batches
from repro.perfmodel.warps import model_batch_warps
from repro.simt import CostParams, DeviceSpec


def make_profile(seed: int, n: int = 300) -> WorkloadProfile:
    rng = np.random.default_rng(seed)
    pts = rng.uniform(0, 5, (n, 2))
    return WorkloadProfile(GridIndex(pts, 0.5))


class TestScheduleProperties:
    @given(seed=st.integers(0, 2**31 - 1), slots=st.sampled_from([1, 4, 28, 112]))
    @settings(max_examples=10, deadline=None)
    def test_more_slots_never_slower(self, seed, slots):
        profile = make_profile(seed % 7)
        costs = CostParams()
        m = model_batch_warps(
            profile,
            np.arange(profile.index.num_points),
            k=1,
            pattern="full",
            costs=costs,
            work_queue=False,
        )
        device_small = DeviceSpec(num_sms=1, warps_per_sm_slot=slots)
        device_big = DeviceSpec(num_sms=2, warps_per_sm_slot=slots)
        run_small = schedule_batches(
            [m], [100], device_small, costs, issue_order="fifo", num_streams=3
        )
        run_big = schedule_batches(
            [m], [100], device_big, costs, issue_order="fifo", num_streams=3
        )
        assert run_big.kernel_seconds <= run_small.kernel_seconds + 1e-12

    def test_kernel_time_lower_bound_is_total_work_over_slots(self):
        profile = make_profile(1)
        costs = CostParams()
        m = model_batch_warps(
            profile,
            np.arange(profile.index.num_points),
            k=1,
            pattern="full",
            costs=costs,
            work_queue=False,
        )
        device = DeviceSpec()
        run = schedule_batches(
            [m], [0], device, costs, issue_order="fifo", num_streams=3
        )
        lower = m.durations_with_launch(costs).sum() / device.warp_slots
        assert run.kernel_seconds >= device.cycles_to_seconds(lower) - 1e-15


class TestModelMonotonicity:
    @pytest.mark.parametrize("preset", ["gpucalcglobal", "workqueue"])
    def test_time_grows_with_epsilon(self, preset):
        """More workload (larger ε) must never model faster."""
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 6, (2000, 2))
        model = PerformanceModel(device=DeviceSpec(num_sms=14), seed=0)
        times = []
        for eps in (0.2, 0.4, 0.8):
            run = model.estimate(model.profile(pts, eps), PRESETS[preset])
            times.append(run.total_seconds)
        assert times[0] < times[1] < times[2]

    def test_wee_invariant_to_clock(self):
        """WEE is a ratio of cycles: clock frequency cannot move it."""
        profile = make_profile(2)
        slow = PerformanceModel(device=DeviceSpec(clock_hz=1e8), seed=0)
        fast = PerformanceModel(device=DeviceSpec(clock_hz=2e9), seed=0)
        cfg = PRESETS["combined"]
        a = slow.estimate(profile, cfg)
        b = fast.estimate(profile, cfg)
        assert a.warp_execution_efficiency == pytest.approx(
            b.warp_execution_efficiency
        )
        # times scale inversely with clock (kernel part)
        assert a.kernel_seconds > b.kernel_seconds

    def test_k_conserves_total_active_cycles_dist_only(self):
        """Candidate work is conserved under k-splitting: total active dist
        cycles identical for k=1 and k=8 (only overheads differ)."""
        profile = make_profile(3)
        costs = CostParams(c_setup=0, c_cell=0, c_emit=0, c_warp_launch=0)
        points = np.arange(profile.index.num_points)
        m1 = model_batch_warps(
            profile, points, k=1, pattern="full", costs=costs, work_queue=False
        )
        m8 = model_batch_warps(
            profile, points, k=8, pattern="full", costs=costs, work_queue=False
        )
        assert m1.active.sum() == pytest.approx(m8.active.sum())

"""Tests for the cost-constant sensitivity sweep."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PRESETS
from repro.perfmodel import PerformanceModel
from repro.perfmodel.sensitivity import sweep_cost_sensitivity
from repro.simt import CostParams, DeviceSpec


# Device scaled with the test datasets so kernels span several scheduling
# waves (see EXPERIMENTS.md on device scaling).
DEVICE = DeviceSpec(num_sms=14, warps_per_sm_slot=2)


@pytest.fixture(scope="module")
def skewed_profile():
    rng = np.random.default_rng(8)
    pts = np.concatenate([rng.normal(1, 0.15, (2000, 2)), rng.uniform(0, 6, (2000, 2))])
    return PerformanceModel(device=DEVICE).profile(pts, 0.3)


class TestSensitivity:
    def test_queue_vs_baseline_ordering_robust(self, skewed_profile):
        """The headline conclusion must not depend on the calibrated
        constants: workqueue < gpucalcglobal on skewed data under every
        2x up/down perturbation of every cost constant."""
        report = sweep_cost_sensitivity(
            skewed_profile,
            {
                "gpucalcglobal": PRESETS["gpucalcglobal"],
                "workqueue": PRESETS["workqueue"],
            },
            device=DEVICE,
        )
        assert report.baseline_order == ["workqueue", "gpucalcglobal"]
        assert report.is_robust, report.render()

    def test_lid_vs_full_ordering_robust(self, skewed_profile):
        report = sweep_cost_sensitivity(
            skewed_profile,
            {
                "gpucalcglobal": PRESETS["gpucalcglobal"],
                "lidunicomp": PRESETS["lidunicomp"],
            },
            device=DEVICE,
        )
        assert report.baseline_order == ["lidunicomp", "gpucalcglobal"]
        assert report.is_robust, report.render()

    def test_detects_fragile_ordering(self):
        """The k=1 vs k=8 ordering on high-dimensional uniform data hinges
        on the cell-traversal cost — the sweep must detect that (proving
        it can find fragility at all)."""
        rng = np.random.default_rng(3)
        pts6 = rng.uniform(0, 8, (3000, 6))
        profile = PerformanceModel(device=DEVICE).profile(pts6, 1.5)
        report = sweep_cost_sensitivity(
            profile,
            {"k8": PRESETS["k8"], "k1": PRESETS["gpucalcglobal"]},
            device=DEVICE,
            factors=(0.001, 50.0),
            fields=("c_cell",),
        )
        # at baseline k=1 wins (the Unif6D anomaly); with the traversal
        # cost removed, k=8's better balance wins
        assert report.baseline_order[0] == "k1"
        assert not report.is_robust

    def test_validation(self, skewed_profile):
        with pytest.raises(ValueError):
            sweep_cost_sensitivity(skewed_profile, {})

    def test_render(self, skewed_profile):
        report = sweep_cost_sensitivity(
            skewed_profile,
            {"a": PRESETS["gpucalcglobal"], "b": PRESETS["workqueue"]},
            fields=("c_emit",),
        )
        out = report.render()
        assert "baseline order" in out

    def test_custom_base_costs(self, skewed_profile):
        report = sweep_cost_sensitivity(
            skewed_profile,
            {"a": PRESETS["gpucalcglobal"], "b": PRESETS["workqueue"]},
            base_costs=CostParams(c_emit=0.0),
            fields=("c_dist_base",),
        )
        assert report.cells_checked == 2

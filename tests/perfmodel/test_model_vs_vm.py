"""Cross-validation: the analytic model must match the VM cycle for cycle.

Emission cost is the one quantity the model estimates rather than measures
(it distributes a point's result rows evenly over its k threads), so the
agreement tests run with ``c_emit = 0``; a separate test bounds the
emission-cost discrepancy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PRESETS, SelfJoin
from repro.perfmodel import PerformanceModel
from repro.simt import CostParams, DeviceSpec


def datasets():
    rng = np.random.default_rng(7)
    return {
        "uniform2d": rng.uniform(0, 6, (300, 2)),
        "expo2d": rng.exponential(0.5, (300, 2)),
        "uniform3d": rng.uniform(0, 3, (200, 3)),
    }


NO_EMIT = CostParams(c_emit=0.0)
EPS = 0.45

# presets that exercise every code path of the model
CHECKED = [
    "gpucalcglobal",
    "unicomp",
    "lidunicomp",
    "k8",
    "sortbywl",
    "workqueue",
    "workqueue_k8",
    "combined",
    "combined_balanced",
]


@pytest.mark.parametrize("preset", CHECKED)
@pytest.mark.parametrize("dsname", sorted(datasets()))
def test_model_matches_vm_exactly(preset, dsname):
    pts = datasets()[dsname]
    cfg = PRESETS[preset]
    device = DeviceSpec()
    vm = SelfJoin(cfg, device=device, costs=NO_EMIT, seed=11).execute(pts, EPS)
    model = PerformanceModel(device=device, costs=NO_EMIT, seed=11)
    run = model.estimate(model.profile(pts, EPS), cfg)

    assert run.num_batches == vm.num_batches
    # warp-level totals
    vm_busy = sum(w.warp_cycles for s in vm.batch_stats for w in s.warp_stats)
    vm_active = sum(w.active_cycles for s in vm.batch_stats for w in s.warp_stats)
    model_busy = sum(b.busy_cycles for b in run.batches)
    model_active = sum(b.active_cycles for b in run.batches)
    assert model_busy == pytest.approx(vm_busy, rel=1e-12)
    assert model_active == pytest.approx(vm_active, rel=1e-12)
    assert run.warp_execution_efficiency == pytest.approx(
        vm.warp_execution_efficiency, rel=1e-12
    )
    # scheduled kernel time
    assert run.kernel_seconds == pytest.approx(vm.kernel_seconds, rel=1e-12)
    # end-to-end time differs only through transfer sizes, which the model
    # knows exactly (counts are exact): totals must agree too
    assert run.total_seconds == pytest.approx(vm.total_seconds, rel=1e-9)


def test_multibatch_agreement():
    rng = np.random.default_rng(3)
    pts = np.concatenate([rng.normal(2, 0.2, (250, 2)), rng.uniform(0, 6, (250, 2))])
    for preset in ("gpucalcglobal", "workqueue", "combined"):
        cfg = PRESETS[preset].with_(batch_result_capacity=4000)
        vm = SelfJoin(cfg, costs=NO_EMIT, seed=5).execute(pts, 0.4)
        assert vm.num_batches > 1
        model = PerformanceModel(costs=NO_EMIT, seed=5)
        run = model.estimate(model.profile(pts, 0.4), cfg)
        assert run.num_batches == vm.num_batches
        assert run.kernel_seconds == pytest.approx(vm.kernel_seconds, rel=1e-12)


def test_emission_model_error_is_small():
    """With emission costed, the model's even-split approximation must stay
    within a few percent of the VM on kernel time."""
    rng = np.random.default_rng(9)
    pts = rng.exponential(0.5, (400, 2))
    cfg = PRESETS["combined"]
    vm = SelfJoin(cfg, seed=2).execute(pts, 0.4)
    model = PerformanceModel(seed=2)
    run = model.estimate(model.profile(pts, 0.4), cfg)
    assert run.kernel_seconds == pytest.approx(vm.kernel_seconds, rel=0.05)
    assert run.warp_execution_efficiency == pytest.approx(
        vm.warp_execution_efficiency, abs=0.05
    )


def test_model_total_result_rows_exact():
    rng = np.random.default_rng(1)
    pts = rng.uniform(0, 5, (300, 2))
    vm = SelfJoin(seed=0).execute(pts, 0.5)
    model = PerformanceModel(seed=0)
    run = model.estimate(model.profile(pts, 0.5))
    assert run.total_result_rows == vm.num_pairs

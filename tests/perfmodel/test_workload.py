"""Unit tests for WorkloadProfile."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_neighbor_counts
from repro.grid import GridIndex
from repro.perfmodel import WorkloadProfile


@pytest.fixture
def profile(rng):
    pts = np.concatenate(
        [rng.normal(2, 0.3, (300, 2)), rng.uniform(0, 8, (300, 2))]
    )
    return WorkloadProfile(GridIndex(pts, 0.4))


class TestNeighborCounts:
    def test_exact(self, profile):
        np.testing.assert_array_equal(
            profile.neighbor_counts(),
            brute_force_neighbor_counts(profile.index.points, 0.4),
        )

    def test_cached(self, profile):
        a = profile.neighbor_counts()
        assert profile.neighbor_counts() is a

    def test_total_result_size(self, profile):
        assert profile.total_result_size() == profile.neighbor_counts().sum()


class TestEstimators:
    def test_full_fraction_exact(self, profile):
        assert profile.estimate_strided(1.0) == profile.total_result_size()

    def test_head_overestimates(self, profile):
        assert profile.estimate_head(0.05, "full") >= profile.total_result_size()

    def test_strided_reasonable(self, profile):
        est = profile.estimate_strided(0.1)
        true = profile.total_result_size()
        assert 0.4 * true <= est <= 2.5 * true


class TestEmittedRows:
    def test_full_equals_neighbor_counts(self, profile):
        np.testing.assert_array_equal(
            profile.emitted_rows("full"), profile.neighbor_counts()
        )

    @pytest.mark.parametrize("pattern", ["unicomp", "lidunicomp"])
    def test_half_pattern_totals_match_result_size(self, profile, pattern):
        """Mirroring redistributes rows across points but conserves the sum."""
        assert profile.emitted_rows(pattern).sum() == profile.total_result_size()

    def test_half_pattern_distribution_differs(self, profile):
        full = profile.emitted_rows("full")
        lid = profile.emitted_rows("lidunicomp")
        assert (full != lid).any()

    def test_own_cell_hits_bounded(self, profile):
        own = profile._own_cell_hits()
        assert (own >= 1).all()  # self pair at minimum
        assert (own <= profile.neighbor_counts()).all()

    def test_exclude_self(self, rng):
        pts = rng.uniform(0, 4, (200, 2))
        p = WorkloadProfile(GridIndex(pts, 0.5), include_self=False)
        np.testing.assert_array_equal(
            p.neighbor_counts(),
            brute_force_neighbor_counts(pts, 0.5, include_self=False),
        )
        assert p.emitted_rows("lidunicomp").sum() == p.total_result_size()


class TestComponentsCache:
    def test_components_cached_per_pattern_k(self, profile):
        a = profile.components("full", 1)
        assert profile.components("full", 1) is a
        b = profile.components("full", 8)
        assert b is not a
        assert b.thread_candidates.shape[0] == 8

    def test_sorted_order_cached(self, profile):
        a = profile.sorted_order("full")
        assert profile.sorted_order("full") is a

    def test_total_candidates_halved_by_patterns(self, profile):
        full = profile.total_candidates("full")
        lid = profile.total_candidates("lidunicomp")
        uni = profile.total_candidates("unicomp")
        assert lid == uni  # both take exactly half the cross-cell work
        assert lid < full

"""Unit and property tests for EGO-join and the SUPER-EGO driver."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import brute_force_pairs
from repro.ego import SuperEgo, ego_join, ego_preprocess


class TestEgoJoinCore:
    def test_exact_on_skewed_data(self):
        rng = np.random.default_rng(0)
        pts = np.concatenate(
            [rng.normal(1, 0.15, (200, 2)), rng.uniform(0, 6, (200, 2))]
        )
        res = SuperEgo().join(pts, 0.3)
        np.testing.assert_array_equal(res.sorted_pairs(), brute_force_pairs(pts, 0.3))

    @settings(max_examples=15)
    @given(
        seed=st.integers(0, 2**31 - 1),
        ndim=st.integers(1, 4),
        eps=st.floats(0.1, 1.0),
        thr=st.sampled_from([1, 4, 16, 64]),
    )
    def test_property_exact(self, seed, ndim, eps, thr):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 3, (100, ndim))
        res = SuperEgo(simple_join_size=thr).join(pts, eps)
        np.testing.assert_array_equal(res.sorted_pairs(), brute_force_pairs(pts, eps))

    def test_counting_mode_matches_collect_mode(self):
        rng = np.random.default_rng(5)
        pts = rng.uniform(0, 4, (300, 2))
        collected = SuperEgo().join(pts, 0.4, collect_pairs=True)
        counted = SuperEgo().join(pts, 0.4, collect_pairs=False)
        assert counted.num_pairs == 0
        assert counted.counts.result_pairs == collected.counts.result_pairs
        assert (
            counted.counts.distance_computations
            == collected.counts.distance_computations
        )
        # ordered rows implied by counts equal the collected result
        se = SuperEgo()
        assert se.result_rows(counted.counts, 300) == collected.num_pairs

    def test_exclude_self(self):
        rng = np.random.default_rng(6)
        pts = rng.uniform(0, 3, (80, 2))
        res = SuperEgo(include_self=False).join(pts, 0.5)
        assert not (res.pairs[:, 0] == res.pairs[:, 1]).any()
        np.testing.assert_array_equal(
            res.sorted_pairs(), brute_force_pairs(pts, 0.5, include_self=False)
        )

    def test_empty_and_single(self):
        assert SuperEgo().join(np.empty((0, 2)), 1.0).num_pairs == 0
        res = SuperEgo().join(np.array([[1.0, 1.0]]), 1.0)
        assert res.num_pairs == 1

    def test_invalid_threshold(self):
        s = ego_preprocess(np.zeros((4, 2)), 1.0)
        with pytest.raises(ValueError):
            ego_join(s, simple_join_size=0)


class TestPruningBehavior:
    def test_distant_clusters_prune(self):
        rng = np.random.default_rng(7)
        a = rng.normal(0, 0.1, (100, 2))
        b = rng.normal(50, 0.1, (100, 2))
        res = SuperEgo().join(np.concatenate([a, b]), 0.3, collect_pairs=False)
        assert res.counts.prunes > 0
        # pruning must prevent the N^2 cross work
        assert res.counts.distance_computations < 100 * 100 * 2

    def test_dist_ops_at_least_result_pairs(self):
        rng = np.random.default_rng(8)
        pts = rng.uniform(0, 4, (200, 2))
        res = SuperEgo().join(pts, 0.4, collect_pairs=False)
        assert res.counts.distance_computations >= res.counts.result_pairs

    def test_smaller_threshold_fewer_dist_ops(self):
        rng = np.random.default_rng(9)
        pts = rng.uniform(0, 8, (400, 2))
        big = SuperEgo(simple_join_size=64).join(pts, 0.3, collect_pairs=False)
        small = SuperEgo(simple_join_size=4).join(pts, 0.3, collect_pairs=False)
        assert small.counts.distance_computations <= big.counts.distance_computations
        assert small.counts.result_pairs == big.counts.result_pairs

    def test_merge_op_counts(self):
        from repro.ego import EgoOpCounts

        a = EgoOpCounts(1, 2, 3, 4, 5)
        b = EgoOpCounts(10, 20, 30, 40, 50)
        a.merge(b)
        assert (
            a.distance_computations,
            a.sequence_comparisons,
            a.simple_joins,
            a.prunes,
            a.result_pairs,
        ) == (11, 22, 33, 44, 55)

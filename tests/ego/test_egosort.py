"""Unit tests for EGO-sort."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ego import ego_preprocess


class TestDimensionReordering:
    def test_most_selective_dimension_first(self):
        rng = np.random.default_rng(0)
        pts = np.stack(
            [rng.uniform(0, 1, 200), rng.uniform(0, 100, 200)], axis=1
        )
        s = ego_preprocess(pts, 0.5)
        # dimension 1 spans far more cells -> must come first
        assert list(s.dim_order) == [1, 0]

    def test_points_consistent_with_order_and_dims(self):
        rng = np.random.default_rng(1)
        pts = rng.uniform(0, 10, (50, 3))
        s = ego_preprocess(pts, 0.7)
        np.testing.assert_allclose(s.points, pts[s.order][:, s.dim_order])


class TestLexicographicOrder:
    @given(seed=st.integers(0, 2**31 - 1), ndim=st.integers(1, 4))
    def test_cells_lexicographically_nondecreasing(self, seed, ndim):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 5, (80, ndim))
        s = ego_preprocess(pts, 0.6)
        cells = s.cells
        for i in range(len(cells) - 1):
            assert tuple(cells[i]) <= tuple(cells[i + 1])

    def test_order_is_permutation(self):
        rng = np.random.default_rng(2)
        pts = rng.uniform(0, 5, (60, 2))
        s = ego_preprocess(pts, 0.5)
        assert sorted(s.order.tolist()) == list(range(60))

    def test_cell_width_is_epsilon(self):
        pts = np.array([[0.0], [0.49], [0.51], [1.2]])
        s = ego_preprocess(pts, 0.5)
        np.testing.assert_array_equal(np.unique(s.cells), [0, 1, 2])

    def test_empty_dataset(self):
        s = ego_preprocess(np.empty((0, 2)), 1.0)
        assert s.num_points == 0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            ego_preprocess(np.zeros((3, 2)), 0.0)

"""Property tests for dataset persistence round-trips."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.io import load_points, save_points

finite_points = hnp.arrays(
    np.float64,
    shape=st.tuples(st.integers(1, 40), st.integers(1, 5)),
    elements=st.floats(
        min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
    ),
)


class TestRoundTripProperties:
    @given(points=finite_points)
    @settings(max_examples=20, deadline=None)
    def test_npy_roundtrip_bitexact(self, points, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "pts.npy"
        save_points(path, points)
        np.testing.assert_array_equal(load_points(path), points)

    @given(points=finite_points)
    @settings(max_examples=20, deadline=None)
    def test_npz_roundtrip_bitexact(self, points, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "pts.npz"
        save_points(path, points)
        np.testing.assert_array_equal(load_points(path), points)

    @given(points=finite_points)
    @settings(max_examples=15, deadline=None)
    def test_csv_roundtrip_close(self, points, tmp_path_factory):
        """CSV is decimal text: round-trip within repr precision."""
        path = tmp_path_factory.mktemp("io") / "pts.csv"
        save_points(path, points)
        loaded = load_points(path)
        assert loaded.shape == points.shape
        np.testing.assert_allclose(loaded, points, rtol=1e-5, atol=1e-12)

    def test_single_column_csv(self, tmp_path):
        path = tmp_path / "one.csv"
        save_points(path, np.array([[1.5], [2.5]]))
        loaded = load_points(path)
        assert loaded.shape == (2, 1)

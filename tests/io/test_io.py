"""Tests for dataset/result persistence and the repro-join CLI."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SelfJoin
from repro.io import (
    load_points,
    load_result_bundle,
    save_points,
    save_result_bundle,
    write_pairs_csv,
)
from repro.io.cli import main


@pytest.fixture
def points(rng):
    return rng.uniform(0, 4, (120, 2))


class TestDatasetIO:
    @pytest.mark.parametrize("suffix", [".csv", ".npy", ".npz"])
    def test_roundtrip(self, tmp_path, points, suffix):
        path = tmp_path / f"pts{suffix}"
        save_points(path, points)
        loaded = load_points(path)
        np.testing.assert_allclose(loaded, points, rtol=1e-12)

    def test_csv_without_header(self, tmp_path):
        path = tmp_path / "raw.csv"
        np.savetxt(path, np.ones((3, 2)), delimiter=",")
        assert load_points(path).shape == (3, 2)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_points(tmp_path / "nope.csv")

    def test_bad_format(self, tmp_path, points):
        with pytest.raises(ValueError, match="unsupported"):
            save_points(tmp_path / "pts.parquet", points)
        (tmp_path / "pts.xyz").write_text("1,2\n")
        with pytest.raises(ValueError, match="unsupported"):
            load_points(tmp_path / "pts.xyz")

    def test_npz_without_points_key(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.ones(3))
        with pytest.raises(ValueError, match="points"):
            load_points(path)


class TestResultIO:
    def test_bundle_roundtrip(self, tmp_path, points):
        result = SelfJoin().execute(points, 0.4)
        path = tmp_path / "res.npz"
        save_result_bundle(path, result)
        pairs, meta = load_result_bundle(path)
        np.testing.assert_array_equal(pairs, result.pairs)
        assert meta["epsilon"] == 0.4
        assert meta["num_points"] == len(points)
        assert meta["config"] == "full, k=1"

    def test_bundle_requires_npz(self, tmp_path, points):
        result = SelfJoin().execute(points, 0.4)
        with pytest.raises(ValueError, match=".npz"):
            save_result_bundle(tmp_path / "res.csv", result)

    def test_load_non_bundle(self, tmp_path):
        path = tmp_path / "x.npz"
        np.savez(path, other=np.ones(2))
        with pytest.raises(ValueError, match="not a result bundle"):
            load_result_bundle(path)

    def test_pairs_csv(self, tmp_path):
        path = tmp_path / "pairs.csv"
        write_pairs_csv(path, np.array([[0, 1], [2, 3]]))
        text = path.read_text().strip().splitlines()
        assert text[0] == "left,right"
        assert text[1] == "0,1"

    def test_pairs_csv_bad_shape(self, tmp_path):
        with pytest.raises(ValueError):
            write_pairs_csv(tmp_path / "p.csv", np.zeros((2, 3)))


class TestJoinCli:
    def test_self_join_end_to_end(self, tmp_path, points, capsys):
        data = tmp_path / "pts.csv"
        save_points(data, points)
        bundle = tmp_path / "out.npz"
        pairs_csv = tmp_path / "pairs.csv"
        rc = main(
            [
                "self",
                str(data),
                "--eps",
                "0.4",
                "--preset",
                "workqueue",
                "--out",
                str(bundle),
                "--pairs-csv",
                str(pairs_csv),
            ]
        )
        assert rc == 0
        pairs, meta = load_result_bundle(bundle)
        oracle = SelfJoin().execute(points, 0.4)
        assert len(pairs) == oracle.num_pairs
        assert pairs_csv.read_text().startswith("left,right")

    def test_bipartite_falls_back_to_full_pattern(self, tmp_path, rng, capsys):
        A = rng.uniform(0, 2, (60, 2))
        B = rng.uniform(0, 2, (60, 2))
        pa, pb = tmp_path / "a.npy", tmp_path / "b.npy"
        save_points(pa, A)
        save_points(pb, B)
        rc = main(
            ["bipartite", str(pa), str(pb), "--eps", "0.3", "--preset", "combined"]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "falling back" in err

"""``load_dataset(..., mmap=True)``: memory-mapped dataset IO.

The mmap path must hand back a read-only view of the ``.npy`` file that
the grid build, the sampled result-size estimator and the native engine
can all consume without ever materializing a full resident copy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import PRESETS, Runner, RuntimeConfig, compile_self_join
from repro.core.batching import estimate_result_size_detailed
from repro.grid import GridIndex
from repro.grid.query import grid_neighbor_counts
from repro.io import load_dataset, save_dataset


@pytest.fixture
def points(rng):
    return rng.uniform(0.0, 6.0, (400, 2))


@pytest.fixture
def mapped(tmp_path, points):
    path = tmp_path / "pts.npy"
    save_dataset(path, points)
    return load_dataset(path, mmap=True)


class TestLoadDatasetMmap:
    def test_roundtrip_returns_readonly_memmap(self, mapped, points):
        assert isinstance(mapped, np.memmap)
        assert not mapped.flags.writeable
        np.testing.assert_array_equal(np.asarray(mapped), points)

    def test_mmap_false_delegates_to_load_points(self, tmp_path, points):
        path = tmp_path / "pts.csv"
        save_dataset(path, points)
        loaded = load_dataset(path)
        np.testing.assert_allclose(loaded, points, rtol=1e-12)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_dataset(tmp_path / "nope.npy", mmap=True)

    def test_non_npy_rejected(self, tmp_path, points):
        path = tmp_path / "pts.npz"
        save_dataset(path, points)
        with pytest.raises(ValueError, match="npy"):
            load_dataset(path, mmap=True)

    def test_wrong_dtype_rejected(self, tmp_path):
        path = tmp_path / "f32.npy"
        np.save(path, np.zeros((8, 2), dtype=np.float32))
        with pytest.raises(ValueError, match="float64"):
            load_dataset(path, mmap=True)

    def test_wrong_shape_rejected(self, tmp_path):
        path = tmp_path / "flat.npy"
        np.save(path, np.zeros(16))
        with pytest.raises(ValueError, match="2-D"):
            load_dataset(path, mmap=True)


class TestMmapConsumers:
    def test_grid_build_preserves_backing(self, mapped):
        idx = GridIndex(mapped, 0.5)
        base = idx.points
        while base is not None and not isinstance(base, np.memmap):
            base = getattr(base, "base", None)
        assert isinstance(base, np.memmap)

    def test_estimator_matches_resident_copy(self, mapped, points):
        mm_idx = GridIndex(mapped, 0.5)
        res_idx = GridIndex(points, 0.5)
        a = estimate_result_size_detailed(mm_idx, sample_fraction=0.1)
        b = estimate_result_size_detailed(res_idx, sample_fraction=0.1)
        assert a.estimate == b.estimate

    def test_neighbor_counts_stay_sample_sized(self, mapped, points):
        # duplicate query ids must each receive the accumulated count —
        # the sample-sized accumulation path, not an O(N) scratch array
        idx = GridIndex(mapped, 0.5)
        sample = np.array([7, 3, 7, 120, 3], dtype=np.int64)
        counts = grid_neighbor_counts(idx, sample)
        ref = grid_neighbor_counts(GridIndex(points, 0.5), sample)
        assert counts.shape == sample.shape
        assert np.array_equal(counts, ref)
        assert counts[0] == counts[2] and counts[1] == counts[4]

    def test_native_join_on_mmap_matches_resident(self, mapped, points):
        rc = RuntimeConfig(optimization=PRESETS["combined"], engine="native")
        mm = Runner().run(compile_self_join(GridIndex(mapped, 0.5), rc))
        res = Runner().run(compile_self_join(GridIndex(points, 0.5), rc))
        assert np.array_equal(mm.canonical_pairs(), res.canonical_pairs())

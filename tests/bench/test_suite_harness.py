"""The unified suite harness end to end: registry, CLI, gates, smoke run.

The smoke test executes **every registered suite** at ``--size tiny``
through the real CLI — the same invocation CI's bench-gate job uses —
and asserts the machine-readable ``BENCH_<suite>.json`` trajectories
appear with passing correctness cross-checks.
"""

import json

import pytest

from repro.bench import cli
from repro.bench.gates import Budget
from repro.bench.suites import (
    SIZE_CLASSES,
    SUITES,
    BenchExperiment,
    BenchSuite,
    get_suite,
    register_suite,
    size_at_least,
)


class TestRegistry:
    def test_expected_suites_registered(self):
        assert {"paper", "ablations", "core", "multigpu", "resilience", "serve", "checkpoint"} <= set(SUITES)

    def test_experiment_ids_unique_within_suite(self):
        for suite in SUITES.values():
            ids = [e.exp_id for e in suite.experiments]
            assert len(ids) == len(set(ids)), suite.suite_id

    def test_every_experiment_kind_has_executor(self):
        from repro.bench.executors import EXECUTORS

        for suite in SUITES.values():
            for exp in suite.experiments:
                assert exp.kind in EXECUTORS, f"{suite.suite_id}/{exp.exp_id}"

    def test_get_suite_unknown_raises(self):
        with pytest.raises(KeyError):
            get_suite("no-such-suite")

    def test_size_ordering(self):
        assert SIZE_CLASSES == ("tiny", "small", "full")
        assert size_at_least("full", "tiny")
        assert not size_at_least("tiny", "small")

    def test_select_filters_by_substring(self):
        paper = get_suite("paper")
        picked = [e.exp_id for e in paper.select("fig9,table5")]
        assert picked == ["fig9", "table5"]
        assert len(paper.select(None)) == len(paper.experiments)


@pytest.fixture(scope="module")
def tiny_run(tmp_path_factory):
    """One full tiny run of every registered suite via the real CLI."""
    results_dir = tmp_path_factory.mktemp("bench")
    rc = cli.main(
        ["suite", "run", "--size", "tiny", "--seed", "0", "--results-dir", str(results_dir)]
    )
    return rc, results_dir


class TestTinySmoke:
    def test_exit_code_clean(self, tiny_run):
        rc, _ = tiny_run
        assert rc == 0

    def test_every_suite_writes_bench_json(self, tiny_run):
        _, results_dir = tiny_run
        for suite_id in SUITES:
            path = results_dir / f"BENCH_{suite_id}.json"
            assert path.exists(), f"missing {path.name}"

    def test_bench_core_payload_shape(self, tiny_run):
        _, results_dir = tiny_run
        data = json.loads((results_dir / "BENCH_core.json").read_text())
        assert data["suite"] == "core"
        (entry,) = data["entries"]
        assert entry["size"] == "tiny" and entry["seed"] == 0
        for exp_id, exp in entry["experiments"].items():
            assert exp["wall_seconds"] > 0, exp_id
            assert exp["checks_passed"] is True, exp_id
            assert len(exp["digest"]) == 64
            assert exp["metrics"]["presets"], exp_id

    def test_all_checks_passed_everywhere(self, tiny_run):
        _, results_dir = tiny_run
        failures = []
        for suite_id in SUITES:
            data = json.loads((results_dir / f"BENCH_{suite_id}.json").read_text())
            for entry in data["entries"]:
                for exp_id, exp in entry["experiments"].items():
                    for check in exp["checks"]:
                        if not check["passed"]:
                            failures.append(f"{suite_id}/{exp_id}:{check['name']}")
        assert not failures

    def test_gate_passes_against_fresh_history(self, tiny_run, capsys):
        rc, results_dir = tiny_run
        gate_rc = cli.main(
            [
                "suite",
                "gate",
                "ablations",
                "--size",
                "tiny",
                "--results-dir",
                str(results_dir),
            ]
        )
        assert gate_rc == 0
        assert "gate passed" in capsys.readouterr().out

    def test_history_renders(self, tiny_run, capsys):
        _, results_dir = tiny_run
        assert cli.main(["suite", "history", "core", "--results-dir", str(results_dir)]) == 0
        assert "BENCH_core" in capsys.readouterr().out


@pytest.fixture
def broken_budget_suite():
    """A registered suite whose budget is impossible to meet."""
    suite = BenchSuite(
        suite_id="brokenbudget",
        title="deliberately broken budget",
        description="test fixture",
        experiments=(
            BenchExperiment(
                exp_id="abl_scheduler_broken",
                title="scheduler ablation under an impossible budget",
                kind="ablation",
                budget=Budget(wall_seconds={"tiny": 1e-9}, tolerance=0.0),
                params={"ablation": "scheduler"},
            ),
        ),
    )
    register_suite(suite)
    yield suite
    SUITES.pop("brokenbudget", None)


class TestGateFailure:
    def test_broken_budget_exits_nonzero(self, broken_budget_suite, tmp_path, capsys):
        """Acceptance demo: `suite gate` must fail on a budget violation."""
        rc = cli.main(
            [
                "suite",
                "gate",
                "brokenbudget",
                "--size",
                "tiny",
                "--results-dir",
                str(tmp_path),
            ]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "GATE FAILED" in out and "[tier B]" in out

    def test_same_suite_passes_without_gate_only_run(self, broken_budget_suite, tmp_path):
        # `suite run` enforces only tier A, so the broken budget does not
        # fail the run — exactly the tier separation the gates promise.
        rc = cli.main(
            [
                "suite",
                "run",
                "brokenbudget",
                "--size",
                "tiny",
                "--no-record",
                "--results-dir",
                str(tmp_path),
            ]
        )
        assert rc == 0

    def test_strict_gate_enforces_trajectory(self, tmp_path, capsys):
        from repro.bench.history import bench_path, make_entry, record_entry
        from repro.bench.suites import ExperimentResult

        # seed history with a fabricated, much-faster entry so tier C trips
        fake = ExperimentResult(
            suite_id="ablations",
            exp_id="abl_scheduler",
            title="t",
            wall_seconds=1e-9,
            throughput=None,
            metrics={"planted": True},
            checks=[],
        )
        record_entry(
            bench_path(tmp_path, "ablations"),
            "ablations",
            make_entry([fake], size="tiny", seed=0, trials=1),
        )
        argv = [
            "suite",
            "gate",
            "ablations",
            "--size",
            "tiny",
            "--filter",
            "abl_scheduler",
            "--results-dir",
            str(tmp_path),
        ]
        assert cli.main(argv) == 0  # advisory by default
        assert "advisory" in capsys.readouterr().out
        assert cli.main([*argv, "--strict"]) == 1  # enforced under --strict

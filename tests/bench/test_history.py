"""BENCH_<suite>.json trajectory files: record, load, compare."""

import json

import pytest

from repro.bench.gates import CheckResult
from repro.bench.history import (
    MAX_ENTRIES,
    SCHEMA_VERSION,
    bench_path,
    deltas,
    deterministic_payload,
    entry_digest,
    latest_comparable,
    load_history,
    make_entry,
    record_entry,
    render_history,
)
from repro.bench.suites import ExperimentResult


def make_result(exp_id="e", wall=1.0, throughput=None, metrics=None, checks=()):
    return ExperimentResult(
        suite_id="s",
        exp_id=exp_id,
        title="t",
        wall_seconds=wall,
        throughput=throughput,
        metrics=metrics if metrics is not None else {"k": 1},
        checks=list(checks),
    )


class TestDigest:
    def test_stable_under_key_order(self):
        assert entry_digest({"a": 1, "b": 2}) == entry_digest({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert entry_digest({"a": 1}) != entry_digest({"a": 2})


class TestMakeEntry:
    def test_round_trip_fields(self):
        res = make_result(
            exp_id="x",
            wall=1.23456789,
            throughput=1000.5,
            checks=[CheckResult("c", True, "d")],
        )
        entry = make_entry([res], size="tiny", seed=7, trials=2)
        exp = entry["experiments"]["x"]
        assert exp["wall_seconds"] == pytest.approx(1.234568)
        assert exp["throughput"] == pytest.approx(1000.5)
        assert exp["checks_passed"] is True
        assert exp["digest"] == entry_digest(res.metrics)
        assert entry["size"] == "tiny" and entry["seed"] == 7 and entry["trials"] == 2

    def test_failed_check_recorded(self):
        entry = make_entry(
            [make_result(checks=[CheckResult("c", False)])], size="tiny", seed=0, trials=1
        )
        assert entry["experiments"]["e"]["checks_passed"] is False


class TestRecordLoad:
    def test_missing_file_gives_empty_history(self, tmp_path):
        history = load_history(bench_path(tmp_path, "core"))
        assert history["entries"] == [] and history["suite"] == "core"

    def test_record_appends_and_persists(self, tmp_path):
        path = bench_path(tmp_path, "core")
        e1 = make_entry([make_result(wall=1.0)], size="tiny", seed=0, trials=1)
        e2 = make_entry([make_result(wall=2.0)], size="tiny", seed=0, trials=1)
        record_entry(path, "core", e1)
        history = record_entry(path, "core", e2)
        assert len(history["entries"]) == 2
        on_disk = json.loads(path.read_text())
        assert on_disk["schema"] == SCHEMA_VERSION
        assert len(on_disk["entries"]) == 2

    def test_history_is_bounded(self, tmp_path):
        path = bench_path(tmp_path, "core")
        entry = make_entry([make_result()], size="tiny", seed=0, trials=1)
        for _ in range(MAX_ENTRIES + 5):
            history = record_entry(path, "core", entry)
        assert len(history["entries"]) == MAX_ENTRIES

    def test_unknown_schema_rejected(self, tmp_path):
        path = bench_path(tmp_path, "core")
        path.write_text(json.dumps({"schema": 999, "entries": []}))
        with pytest.raises(ValueError, match="schema"):
            load_history(path)


class TestLatestComparable:
    def test_matches_size_and_seed(self, tmp_path):
        path = bench_path(tmp_path, "core")
        for size, seed in (("tiny", 0), ("small", 0), ("tiny", 1)):
            record_entry(
                path, "core", make_entry([make_result()], size=size, seed=seed, trials=1)
            )
        history = load_history(path)
        assert latest_comparable(history, size="tiny", seed=0)["seed"] == 0
        assert latest_comparable(history, size="small")["size"] == "small"
        assert latest_comparable(history, size="full") is None

    def test_skip_last_ignores_newest(self, tmp_path):
        path = bench_path(tmp_path, "core")
        record_entry(path, "c", make_entry([make_result(wall=1)], size="tiny", seed=0, trials=1))
        record_entry(path, "c", make_entry([make_result(wall=2)], size="tiny", seed=0, trials=1))
        history = load_history(path)
        prev = latest_comparable(history, size="tiny", skip_last=True)
        assert prev["experiments"]["e"]["wall_seconds"] == 1


class TestDeltas:
    def test_ratios_and_drift(self):
        prev = make_entry(
            [make_result(wall=1.0, throughput=100.0, metrics={"v": 1})],
            size="tiny", seed=0, trials=1,
        )
        cur = make_entry(
            [make_result(wall=2.0, throughput=50.0, metrics={"v": 2})],
            size="tiny", seed=0, trials=1,
        )
        d = deltas(cur, prev)["e"]
        assert d["wall_ratio"] == pytest.approx(2.0)
        assert d["throughput_ratio"] == pytest.approx(0.5)
        assert d["metrics_changed"] is True

    def test_no_previous(self):
        cur = make_entry([make_result()], size="tiny", seed=0, trials=1)
        assert deltas(cur, None) == {}


class TestDeterministicPayload:
    def test_excludes_measurements(self):
        payload = deterministic_payload(
            "s", [make_result(wall=123.0, throughput=9.0)], size="tiny", seed=0
        )
        blob = json.dumps(payload)
        assert "wall" not in blob and "throughput" not in blob
        assert payload["experiments"]["e"]["digest"] == entry_digest({"k": 1})

    def test_identical_for_identical_results(self):
        a = deterministic_payload("s", [make_result(wall=1.0)], size="tiny", seed=0)
        b = deterministic_payload("s", [make_result(wall=99.0)], size="tiny", seed=0)
        assert a == b


def test_render_history_smoke(tmp_path):
    path = bench_path(tmp_path, "core")
    record_entry(path, "core", make_entry([make_result()], size="tiny", seed=0, trials=1))
    out = render_history(load_history(path))
    assert "BENCH_core" in out

"""Tiered gate evaluation: budgets, tolerance bands, trajectory deltas."""

import pytest

from repro.bench.gates import (
    Budget,
    CheckResult,
    GateReport,
    evaluate_budget,
    evaluate_tier_a,
    evaluate_tier_b,
    evaluate_tier_c,
)
from repro.bench.suites import ExperimentResult


def make_result(**kw) -> ExperimentResult:
    base = dict(
        suite_id="s",
        exp_id="e",
        title="t",
        wall_seconds=1.0,
        throughput=None,
        metrics={},
        checks=[],
    )
    base.update(kw)
    return ExperimentResult(**base)


class TestBudget:
    def test_tolerance_widens_wall_ceiling(self):
        b = Budget(wall_seconds={"tiny": 10.0}, tolerance=0.25)
        assert b.wall_limit("tiny") == pytest.approx(12.5)
        assert b.wall_limit("full") is None

    def test_tolerance_lowers_throughput_floor(self):
        b = Budget(min_throughput={"tiny": 100.0}, tolerance=0.25)
        assert b.throughput_floor("tiny") == pytest.approx(80.0)
        assert b.throughput_floor("small") is None

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            Budget(tolerance=-0.1)
        with pytest.raises(ValueError):
            Budget(wall_seconds={"tiny": 0.0})
        with pytest.raises(ValueError):
            Budget(min_throughput={"tiny": -5.0})

    def test_within_band_passes(self):
        b = Budget(wall_seconds={"tiny": 10.0}, tolerance=0.25)
        assert not evaluate_budget(
            suite_id="s", exp_id="e", budget=b, size="tiny",
            wall_seconds=12.4, throughput=None,
        )

    def test_beyond_band_fails(self):
        b = Budget(wall_seconds={"tiny": 10.0}, tolerance=0.25)
        out = evaluate_budget(
            suite_id="s", exp_id="e", budget=b, size="tiny",
            wall_seconds=12.6, throughput=None,
        )
        assert len(out) == 1 and out[0].tier == "B"

    def test_throughput_floor_enforced(self):
        b = Budget(min_throughput={"tiny": 100.0}, tolerance=0.0)
        assert evaluate_budget(
            suite_id="s", exp_id="e", budget=b, size="tiny",
            wall_seconds=0.1, throughput=99.0,
        )
        assert not evaluate_budget(
            suite_id="s", exp_id="e", budget=b, size="tiny",
            wall_seconds=0.1, throughput=101.0,
        )

    def test_ungated_size_never_fails(self):
        b = Budget(wall_seconds={"full": 1.0})
        assert not evaluate_budget(
            suite_id="s", exp_id="e", budget=b, size="tiny",
            wall_seconds=1e9, throughput=None,
        )

    def test_no_budget_no_violations(self):
        assert not evaluate_budget(
            suite_id="s", exp_id="e", budget=None, size="tiny",
            wall_seconds=1e9, throughput=0.0,
        )


class TestTierA:
    def test_failed_check_becomes_violation(self):
        res = make_result(
            checks=[CheckResult("good", True), CheckResult("bad", False, "boom")]
        )
        out = evaluate_tier_a([res])
        assert len(out) == 1
        assert out[0].tier == "A"
        assert "bad" in out[0].message and "boom" in out[0].message

    def test_all_passing_is_clean(self):
        assert not evaluate_tier_a([make_result(checks=[CheckResult("ok", True)])])


class TestTierB:
    def test_deliberately_broken_budget_fails_the_gate(self):
        """The acceptance demo: an impossible budget must trip tier B."""
        broken = Budget(wall_seconds={"tiny": 1e-9}, tolerance=0.0)
        res = make_result(wall_seconds=0.5, budget=broken)
        out = evaluate_tier_b([res], "tiny")
        assert len(out) == 1 and out[0].tier == "B"
        report = GateReport()
        report.extend(out)
        assert not report.ok
        assert "GATE FAILED" in report.render()


def entry(exp_id="e", wall=1.0, digest="d1"):
    return {"experiments": {exp_id: {"wall_seconds": wall, "digest": digest}}}


class TestTierC:
    def test_no_previous_no_trajectory(self):
        assert not evaluate_tier_c("s", entry(), None)

    def test_wall_within_band_ok(self):
        assert not evaluate_tier_c("s", entry(wall=1.7), entry(wall=1.0), band=0.75)

    def test_wall_regression_flagged(self):
        out = evaluate_tier_c("s", entry(wall=1.8), entry(wall=1.0), band=0.75)
        assert len(out) == 1 and out[0].tier == "C" and "regressed" in out[0].message

    def test_metrics_drift_flagged(self):
        out = evaluate_tier_c("s", entry(digest="d2"), entry(digest="d1"))
        assert len(out) == 1 and "deterministic metrics changed" in out[0].message

    def test_new_experiment_not_compared(self):
        prev = {"experiments": {"other": {"wall_seconds": 1.0, "digest": "x"}}}
        assert not evaluate_tier_c("s", entry(wall=100.0), prev)


class TestGateReport:
    def test_advisories_do_not_fail(self):
        report = GateReport()
        report.extend(evaluate_tier_c("s", entry(wall=9.0), entry(wall=1.0)), advisory=True)
        assert report.ok
        assert report.advisories and "advisory" in report.render()

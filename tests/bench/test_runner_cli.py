"""Tests for the experiment runner and the repro-bench CLI (tiny sizes)."""

from __future__ import annotations

import math

import pytest

from repro.bench.cli import main
from repro.bench.experiments import EXPERIMENTS, ExperimentSpec
from repro.bench.runner import run_experiment, run_superego_row
from repro.data import gaia_like


@pytest.fixture(scope="module")
def tiny_spec() -> ExperimentSpec:
    return ExperimentSpec(
        exp_id="tiny",
        title="tiny test experiment",
        datasets=("Expo2D2M", "Unif2D2M"),
        eps={"Expo2D2M": (0.02, 0.04), "Unif2D2M": (1.0,)},
        configs=("gpucalcglobal", "workqueue", "superego"),
        selected_eps={"Expo2D2M": 0.02},
    )


class TestRunner:
    def test_full_grid(self, tiny_spec):
        report = run_experiment(tiny_spec, size=400, seed=1)
        # 2 eps * 3 configs + 1 eps * 3 configs = 9 rows
        assert len(report.rows) == 9
        assert {r.config for r in report.rows} == {
            "gpucalcglobal",
            "workqueue",
            "superego",
        }

    def test_selected_only(self, tiny_spec):
        report = run_experiment(tiny_spec, size=400, seed=1, selected_only=True)
        expo_rows = [r for r in report.rows if r.dataset == "Expo2D2M"]
        assert {r.epsilon for r in expo_rows} == {0.02}

    def test_superego_rows_have_nan_wee(self, tiny_spec):
        report = run_experiment(tiny_spec, size=300, seed=1)
        for r in report.rows:
            if r.config == "superego":
                assert math.isnan(r.wee_percent)
            else:
                assert 0 < r.wee_percent <= 100

    def test_result_rows_agree_across_configs(self, tiny_spec):
        """All configs (GPU and CPU) must report the same result size."""
        report = run_experiment(tiny_spec, size=500, seed=2)
        by_cell = {}
        for r in report.rows:
            by_cell.setdefault((r.dataset, r.epsilon), set()).add(r.result_rows)
        for cell, sizes in by_cell.items():
            assert len(sizes) == 1, cell

    def test_progress_callback(self, tiny_spec):
        seen = []
        run_experiment(
            tiny_spec, size=200, seed=1, selected_only=True, progress=seen.append
        )
        assert len(seen) == 6  # (1+1) eps-cells * 3 configs
        assert all("tiny:" in msg for msg in seen)

    def test_dataset_restriction(self, tiny_spec):
        report = run_experiment(tiny_spec, size=200, datasets=["Unif2D2M"])
        assert {r.dataset for r in report.rows} == {"Unif2D2M"}

    def test_superego_row_direct(self):
        row = run_superego_row(gaia_like(300, seed=0), 2.0, dataset="Gaia")
        assert row.config == "superego"
        assert row.result_rows >= 300  # at least the self pairs


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Gaia" in out and "paper |D|" in out

    def test_run_unknown(self, capsys):
        assert main(["run", "nosuchexp"]) == 2

    def test_run_small_experiment(self, capsys, tmp_path):
        out_file = tmp_path / "out.txt"
        rc = main(
            [
                "run",
                "abl_scheduler",
                "--size",
                "400",
                "--selected-only",
                "--out",
                str(out_file),
            ]
        )
        assert rc == 0
        assert "Ablation" in out_file.read_text()


class TestValidateCommand:
    def test_validate_passes(self, capsys):
        from repro.bench.cli import main as bench_main

        rc = bench_main(["validate", "--size", "200"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validation passed" in out


class TestTrials:
    def test_trials_average_only_stochastic_configs(self, tiny_spec):
        """Work-queue runs are deterministic (forced order); baseline runs
        vary with the scheduler seed, and trials average them."""
        one = run_experiment(tiny_spec, size=600, seed=1, trials=1)
        many = run_experiment(tiny_spec, size=600, seed=1, trials=5)
        for r1, rN in zip(one.rows, many.rows):
            assert (r1.dataset, r1.epsilon, r1.config) == (
                rN.dataset,
                rN.epsilon,
                rN.config,
            )
            if r1.config == "workqueue":
                assert rN.seconds == pytest.approx(r1.seconds, rel=1e-12)

    def test_trials_validation(self, tiny_spec):
        with pytest.raises(ValueError):
            run_experiment(tiny_spec, size=100, trials=0)

    def test_compare_command(self, capsys):
        from repro.bench.cli import main as bench_main

        rc = bench_main(
            ["compare", "Unif2D2M", "--eps", "0.6", "--size", "500",
             "gpucalcglobal", "lidunicomp"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "speedup vs first" in out

    def test_compare_unknown_preset(self, capsys):
        from repro.bench.cli import main as bench_main

        rc = bench_main(
            ["compare", "Unif2D2M", "--eps", "0.6", "nosuchpreset"]
        )
        assert rc == 2

    def test_compare_unknown_dataset(self, capsys):
        from repro.bench.cli import main as bench_main

        rc = bench_main(
            ["compare", "Borg9D", "--eps", "0.6", "gpucalcglobal"]
        )
        assert rc == 2

    def test_json_output(self, tmp_path, capsys):
        from repro.bench.cli import main as bench_main

        path = tmp_path / "rows.json"
        rc = bench_main(
            ["run", "abl_scheduler", "--size", "300", "--trials", "1",
             "--json", str(path)]
        )
        assert rc == 0
        import json

        data = json.loads(path.read_text())
        assert data["experiment"] == "abl_scheduler"
        assert len(data["rows"]) == 3
        row = data["rows"][0]
        assert {"dataset", "epsilon", "config", "seconds"} <= set(row)

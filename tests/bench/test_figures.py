"""Unit tests for the ASCII figure renderer."""

from __future__ import annotations

from repro.bench.figures import render_figure, render_series_plot
from repro.profiling import ProfileReport, ProfileRow


class TestSeriesPlot:
    def test_contains_glyphs_and_legend(self):
        out = render_series_plot(
            "t",
            {"a": [(0.1, 1.0), (0.2, 2.0)], "b": [(0.1, 3.0), (0.2, 0.5)]},
        )
        assert "o=a" in out and "x=b" in out
        assert "o" in out.replace("o=a", "") and "x" in out.replace("x=b", "")

    def test_empty(self):
        assert "(no data)" in render_series_plot("t", {})

    def test_single_point(self):
        out = render_series_plot("t", {"a": [(0.5, 1.0)]})
        assert "o" in out

    def test_extremes_on_borders(self):
        out = render_series_plot(
            "t", {"a": [(0.0, 1e-3), (1.0, 10.0)]}, width=20, height=8, log_y=True
        )
        lines = out.splitlines()
        plot_lines = [l for l in lines if "|" in l]
        # min lands on the bottom plot row, max on the top one
        assert "o" in plot_lines[0]
        assert "o" in plot_lines[-1]

    def test_linear_scale(self):
        out = render_series_plot("t", {"a": [(0, 1.0), (1, 2.0)]}, log_y=False)
        assert "o" in out


class TestFigure:
    def test_one_subplot_per_dataset(self):
        rep = ProfileReport("Fig X")
        for ds in ("A", "B"):
            for eps in (0.1, 0.2):
                rep.add(ProfileRow(ds, eps, "cfg", 50.0, eps * 2))
        out = render_figure(rep)
        assert "Fig X" in out
        assert "-- A --" in out and "-- B --" in out

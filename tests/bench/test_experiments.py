"""Unit tests for the experiment registry and bench scaling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.experiments import (
    DEFAULT_SIZES,
    EXPERIMENTS,
    bench_scale,
    bench_size,
    load_bench_dataset,
)
from repro.core import PRESETS
from repro.data import CATALOG


class TestRegistry:
    def test_every_paper_artifact_present(self):
        for exp_id in (
            "table1",
            "fig9",
            "table3",
            "fig10",
            "table4",
            "fig11",
            "table5",
            "fig12",
            "table6",
            "fig13",
        ):
            assert exp_id in EXPERIMENTS

    def test_ablations_present(self):
        assert {e for e in EXPERIMENTS if e.startswith("abl_")} == {
            "abl_scheduler",
            "abl_estimator",
            "abl_buffer",
            "abl_warpsize",
        }

    def test_configs_resolve_to_presets(self):
        for spec in EXPERIMENTS.values():
            for config in spec.configs:
                assert config == "superego" or config in PRESETS, (
                    spec.exp_id,
                    config,
                )

    def test_datasets_resolve_to_catalog(self):
        for spec in EXPERIMENTS.values():
            for ds in spec.datasets:
                assert ds in CATALOG, (spec.exp_id, ds)

    def test_eps_defined_for_every_dataset(self):
        for spec in EXPERIMENTS.values():
            if spec.exp_id == "table1":
                continue
            for ds in spec.datasets:
                assert len(spec.eps[ds]) >= 1, (spec.exp_id, ds)

    def test_selected_eps_in_sweep_or_annotated(self):
        for spec in EXPERIMENTS.values():
            for ds, eps in spec.selected_eps.items():
                assert eps in spec.eps[ds], (spec.exp_id, ds, eps)

    def test_sweep_selected_only(self):
        spec = EXPERIMENTS["table3"]
        ds = spec.datasets[0]
        assert len(spec.sweep(ds, selected_only=True)) == 1
        assert len(spec.sweep(ds, selected_only=False)) == len(spec.eps[ds])

    def test_fig13_covers_synth_and_real(self):
        spec = EXPERIMENTS["fig13"]
        assert any(d.startswith("Unif") for d in spec.datasets)
        assert any(d.startswith("SW") for d in spec.datasets)
        assert "superego" in spec.configs


class TestScaling:
    def test_default_scale_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "2.5")
        assert bench_scale() == 2.5
        assert bench_size("Gaia") == int(DEFAULT_SIZES["Gaia"] * 2.5)

    def test_bad_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "zero")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()

    def test_uniform_density_preserved(self):
        """The documented rule: paper density == bench density."""
        entry = CATALOG["Unif2D2M"]
        pts = load_bench_dataset("Unif2D2M", size=5000, seed=0)
        span = pts.max(axis=0) - pts.min(axis=0)
        bench_density = 5000 / np.prod(span)
        paper_density = entry.paper_size / 100.0**2
        assert bench_density == pytest.approx(paper_density, rel=0.05)

    def test_non_uniform_unscaled_domain(self):
        pts = load_bench_dataset("Gaia", size=3000, seed=0)
        assert pts[:, 0].max() > 90  # full longitude range retained

    def test_minimum_size_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1e-9")
        assert bench_size("Unif2D2M") == 64

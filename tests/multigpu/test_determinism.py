"""Satellite: same seed + config ⇒ byte-identical merged results and
identical scheduler traces across repeated runs, including under work
stealing (dynamic mode with more shards than devices)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OptimizationConfig
from repro.data.adversarial import stride_aliased_hotspots
from repro.multigpu import (
    SCHEDULE_MODES,
    SHARD_PLANNERS,
    DevicePool,
    MultiGpuSelfJoin,
    MultiGpuSimilarityJoin,
)

_EPS = 1.5


@pytest.fixture(scope="module")
def points() -> np.ndarray:
    return stride_aliased_hotspots(400, 2, period=8, seed=23)


def _run(points, *, planner, schedule, seed=7):
    cfg = OptimizationConfig(work_queue=True, k=2)
    join = MultiGpuSelfJoin(
        cfg,
        num_devices=3,
        planner=planner,
        schedule=schedule,
        shards_per_device=2,
        seed=seed,
    )
    return join.execute(points, _EPS)


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
@pytest.mark.parametrize("schedule", SCHEDULE_MODES)
def test_repeated_runs_are_byte_identical(points, planner, schedule):
    first = _run(points, planner=planner, schedule=schedule)
    second = _run(points, planner=planner, schedule=schedule)
    assert first.pairs.tobytes() == second.pairs.tobytes()
    assert first.trace.signature() == second.trace.signature()
    assert first.makespan_seconds == second.makespan_seconds
    assert first.pool_stats.device_execution_efficiency == pytest.approx(
        second.pool_stats.device_execution_efficiency
    )


def test_work_stealing_trace_is_reproducible(points):
    """Dynamic scheduling resolves ties deterministically: the trace — which
    device fetched which shard, and when — must replay exactly."""
    traces = [
        _run(points, planner="strided", schedule="dynamic").trace for _ in range(3)
    ]
    assert traces[0].signature() == traces[1].signature() == traces[2].signature()
    # every device's per-shard assignment is stable, not just the totals
    assignments = [
        tuple((e.shard_id, e.device_id) for e in t.events) for t in traces
    ]
    assert assignments[0] == assignments[1] == assignments[2]


def test_random_issue_order_is_seeded_per_device(points):
    """Shard kernels issue warps in seeded-random order; the per-device seed
    (seed + device_id) must make that reproducible run-to-run."""
    cfg = OptimizationConfig()  # no work queue → "random" issue order
    a = MultiGpuSelfJoin(cfg, num_devices=2, planner="balanced", seed=13).execute(
        points, _EPS
    )
    b = MultiGpuSelfJoin(cfg, num_devices=2, planner="balanced", seed=13).execute(
        points, _EPS
    )
    assert a.pairs.tobytes() == b.pairs.tobytes()
    assert a.trace.signature() == b.trace.signature()


def test_explicit_pool_reuse_is_deterministic(points):
    """Reusing one DevicePool across runs must not leak state between them."""
    pool = DevicePool(2, seed=3)
    join = MultiGpuSelfJoin(OptimizationConfig(work_queue=True), pool=pool)
    first = join.execute(points, _EPS)
    second = join.execute(points, _EPS)
    assert first.pairs.tobytes() == second.pairs.tobytes()
    assert first.trace.signature() == second.trace.signature()


def test_bipartite_determinism(rng):
    left = rng.uniform(0, 8, size=(120, 2))
    right = rng.uniform(0, 8, size=(150, 2))
    runs = [
        MultiGpuSimilarityJoin(
            OptimizationConfig(work_queue=True),
            num_devices=3,
            planner="balanced",
            schedule="dynamic",
            seed=5,
        ).execute(left, right, 0.9)
        for _ in range(2)
    ]
    assert runs[0].pairs.tobytes() == runs[1].pairs.tobytes()
    assert runs[0].trace.signature() == runs[1].trace.signature()


def test_different_seeds_same_pairs(points):
    """The seed changes scheduling randomness, never the join answer."""
    a = _run(points, planner="balanced", schedule="dynamic", seed=1)
    b = _run(points, planner="balanced", schedule="dynamic", seed=2)
    assert np.array_equal(a.sorted_pairs(), b.sorted_pairs())

"""Merging, pool metrics, and the MultiJoinResult surface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import OptimizationConfig
from repro.data.adversarial import stride_aliased_hotspots
from repro.multigpu import (
    DeviceStats,
    MultiGpuSelfJoin,
    PoolStats,
    ScheduleTrace,
    ShardEvent,
    merge_pairs,
    pipeline_from_trace,
    pool_stats_from_trace,
)
from repro.profiling import DeviceReport, device_profile_row


def test_merge_pairs_is_order_independent():
    a = np.array([[3, 4], [0, 1]], dtype=np.int64)
    b = np.array([[2, 2], [0, 5]], dtype=np.int64)
    merged_ab = merge_pairs([a, b])
    merged_ba = merge_pairs([b, a])
    assert np.array_equal(merged_ab, merged_ba)
    assert np.array_equal(
        merged_ab, np.array([[0, 1], [0, 5], [2, 2], [3, 4]], dtype=np.int64)
    )


def test_merge_pairs_dedup_and_empty():
    dup = np.array([[1, 2], [1, 2], [0, 0]], dtype=np.int64)
    assert np.array_equal(
        merge_pairs([dup, dup], dedup=True),
        np.array([[0, 0], [1, 2]], dtype=np.int64),
    )
    empty = merge_pairs([])
    assert empty.shape == (0, 2)
    assert empty.dtype == np.int64
    assert merge_pairs([np.empty((0, 2), dtype=np.int64)]).shape == (0, 2)


def _trace() -> ScheduleTrace:
    events = [
        ShardEvent(0, 0, 0.0, 3.0, num_pairs=10, num_points=5),
        ShardEvent(1, 1, 0.0, 2.0, num_pairs=6, num_points=4),
        ShardEvent(2, 1, 2.0, 3.5, num_pairs=4, num_points=3),
    ]
    return ScheduleTrace(events=events, mode="dynamic", num_devices=2)


def test_pipeline_from_trace_windows():
    pipe = pipeline_from_trace(_trace())
    assert pipe.total_seconds == pytest.approx(3.5)
    assert np.allclose(pipe.kernel_start, [0.0, 0.0, 2.0])
    assert np.allclose(pipe.kernel_end, [3.0, 2.0, 3.5])
    assert np.allclose(pipe.transfer_end, pipe.kernel_end)


def test_pool_stats_math():
    stats = pool_stats_from_trace(_trace(), [None, None, None], planner="balanced")
    assert stats.num_devices == 2
    assert stats.total_busy_seconds == pytest.approx(6.5)
    # DEE = 6.5 / (2 × 3.5)
    assert stats.device_execution_efficiency == pytest.approx(6.5 / 7.0)
    assert stats.busy_imbalance == pytest.approx(3.5 / 3.25)
    d0, d1 = stats.devices
    assert (d0.num_shards, d1.num_shards) == (1, 2)
    assert d1.num_pairs == 10
    assert d0.utilization(stats.makespan_seconds) == pytest.approx(3.0 / 3.5)
    rendered = stats.render()
    assert "device execution efficiency" in rendered
    assert "balanced" in rendered


def test_pool_stats_degenerate_cases():
    empty = PoolStats(devices=[], makespan_seconds=0.0)
    assert empty.device_execution_efficiency == 1.0
    assert empty.busy_imbalance == 1.0
    idle = DeviceStats(0, 0, 0.0, 0.0, 0)
    assert idle.utilization(0.0) == 1.0


@pytest.fixture(scope="module")
def multi_run():
    pts = stride_aliased_hotspots(300, 2, period=8, seed=9)
    join = MultiGpuSelfJoin(
        OptimizationConfig(work_queue=True),
        num_devices=2,
        planner="balanced",
        schedule="dynamic",
    )
    return join.execute(pts, 1.5)


def test_multi_join_result_surface(multi_run):
    r = multi_run
    assert r.num_devices == 2
    assert r.planner == "balanced"
    assert r.schedule_mode == "dynamic"
    assert 0.0 < r.device_execution_efficiency <= 1.0
    assert r.makespan_seconds == pytest.approx(r.total_seconds)
    assert r.serial_seconds == pytest.approx(r.pool_stats.total_busy_seconds)
    # the pool can't beat perfect scaling of its own busy time
    assert r.makespan_seconds >= r.serial_seconds / r.num_devices - 1e-12
    assert 0.0 < r.warp_execution_efficiency <= 1.0
    assert "multigpu[2dev balanced/dynamic]" in r.config_description
    assert r.shard_plan.num_shards == len(r.trace.events)


def test_facade_validates_eagerly():
    with pytest.raises(ValueError, match="unknown planner"):
        MultiGpuSelfJoin(planner="zigzag")
    with pytest.raises(ValueError, match="unknown schedule mode"):
        MultiGpuSelfJoin(schedule="adaptive")
    with pytest.raises(ValueError, match="shards_per_device"):
        MultiGpuSelfJoin(shards_per_device=0)


def test_device_profile_row_and_report(multi_run):
    row = device_profile_row(multi_run, dataset="stride_aliased", epsilon=1.5)
    assert row.num_devices == 2
    assert row.dee_percent == pytest.approx(
        100 * multi_run.device_execution_efficiency
    )
    assert row.speedup_vs_serial == pytest.approx(
        multi_run.serial_seconds / multi_run.makespan_seconds
    )
    report = DeviceReport()
    report.add_run(multi_run, dataset="stride_aliased", epsilon=1.5)
    rendered = report.render()
    assert "stride_aliased" in rendered
    scaling = report.scaling("stride_aliased", 1.5, "balanced", "dynamic")
    assert scaling == {2: pytest.approx(multi_run.makespan_seconds)}

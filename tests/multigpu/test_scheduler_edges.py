"""Satellite: host-scheduler edge cases — empty plans, one-device pools,
deep queues, and trace-signature determinism under requeue."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.multigpu import (
    DevicePool,
    HostScheduler,
    Shard,
    ShardPlan,
)
from repro.resilience import DeviceLostError, RecoveryPolicy


@dataclass
class _StubResult:
    total_seconds: float
    num_pairs: int = 0


def _plan(works):
    shards = [
        Shard(shard_id=i, points=np.arange(1), estimated_work=float(w))
        for i, w in enumerate(works)
    ]
    return ShardPlan(shards=shards, planner="stub", num_queries=len(works))


def _runner(seconds_by_shard):
    def run_shard(device, shard):
        return _StubResult(total_seconds=seconds_by_shard[shard.shard_id])

    return run_shard


@pytest.mark.parametrize("mode", ["static", "dynamic"])
@pytest.mark.parametrize("recovery", [None, RecoveryPolicy()])
def test_empty_shard_plan(mode, recovery):
    pool = DevicePool(2)
    results, trace = HostScheduler(pool, mode, recovery=recovery).run(
        _plan([]), _runner({})
    )
    assert results == []
    assert trace.events == []
    assert trace.makespan_seconds == 0.0
    assert trace.signature() == ()


@pytest.mark.parametrize("mode", ["static", "dynamic"])
def test_single_device_pool_serializes(mode):
    pool = DevicePool(1)
    plan = _plan([3, 1, 2])
    results, trace = HostScheduler(pool, mode).run(
        plan, _runner({0: 3.0, 1: 1.0, 2: 2.0})
    )
    assert all(e.device_id == 0 for e in trace.events)
    assert trace.makespan_seconds == pytest.approx(6.0)
    # back-to-back, no gaps
    events = sorted(trace.events, key=lambda e: e.start_seconds)
    for prev, nxt in zip(events, events[1:]):
        assert nxt.start_seconds == pytest.approx(prev.end_seconds)


def test_many_more_shards_than_devices():
    pool = DevicePool(2)
    works = list(range(10, 0, -1))
    plan = _plan(works)
    seconds = {i: float(w) for i, w in enumerate(works)}
    results, trace = HostScheduler(pool, "dynamic").run(plan, _runner(seconds))
    assert len(trace.events) == 10
    assert all(r is not None for r in results)
    busy = trace.device_busy_seconds()
    # 55s of work over 2 devices: the dynamic queue must land close to level
    assert trace.makespan_seconds < 0.6 * sum(seconds.values())
    assert busy.sum() == pytest.approx(sum(seconds.values()))


def test_signature_deterministic_under_requeue():
    """The same fault fired twice gives byte-identical traces — including
    the lost-attempt event and the requeue target."""

    def build():
        pool = DevicePool(3)
        calls = {"n": 0}

        def run_shard(device, shard):
            calls["n"] += 1
            if device.device_id == 1 and device.health.shards_started == 1:
                raise DeviceLostError(1, wasted_seconds=0.25)
            return _StubResult(total_seconds=1.0 + shard.shard_id * 0.125)

        return HostScheduler(pool, "dynamic", recovery=RecoveryPolicy()).run(
            _plan([5, 4, 3, 2, 1, 1]), run_shard
        )

    r1, t1 = build()
    r2, t2 = build()
    assert t1.signature() == t2.signature()
    assert any(e.kind == "lost" for e in t1.events)
    assert t1.recovery.num_requeues == 1
    # the requeued shard still produced its result
    assert all(r is not None for r in r1)
    # signatures reflect recovery fields: kind and attempt are part of them
    lost = [s for s in t1.signature() if s[5] == "lost"]
    assert len(lost) == 1 and lost[0][1] == 1


def test_static_mode_fails_over_preassignment():
    """Static recovery keeps the i % N pre-assignment but skips dead
    devices deterministically."""
    pool = DevicePool(2)

    def run_shard(device, shard):
        if device.device_id == 0 and device.health.shards_started == 1:
            raise DeviceLostError(0, wasted_seconds=0.5)
        return _StubResult(total_seconds=1.0)

    results, trace = HostScheduler(pool, "static", recovery=RecoveryPolicy()).run(
        _plan([1, 1, 1, 1]), run_shard
    )
    assert all(r is not None for r in results)
    productive = [e for e in trace.events if e.kind == "run"]
    assert {e.device_id for e in productive} == {1}
    assert trace.recovery.num_devices_lost == 1


def test_recovery_none_trace_has_no_recovery_log():
    pool = DevicePool(2)
    _, trace = HostScheduler(pool, "dynamic").run(
        _plan([2, 1]), _runner({0: 2.0, 1: 1.0})
    )
    assert trace.recovery is None
    # legacy events carry the new defaulted fields
    assert all(e.kind == "run" and e.attempt == 0 for e in trace.events)

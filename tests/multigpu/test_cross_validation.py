"""Satellite: multi-device results are pair-for-pair identical to the
single-device join and to the brute-force oracle, for every shard planner
× access pattern combination (self-join and bipartite)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.bruteforce import brute_force_pairs
from repro.core import OptimizationConfig, SelfJoin, SimilarityJoin
from repro.data.adversarial import dense_core_sparse_halo
from repro.multigpu import (
    SCHEDULE_MODES,
    SHARD_PLANNERS,
    MultiGpuSelfJoin,
    MultiGpuSimilarityJoin,
)

_EPS = 0.9


@pytest.fixture(scope="module")
def skewed_points() -> np.ndarray:
    return dense_core_sparse_halo(220, 2, seed=5)


@pytest.fixture(scope="module")
def oracle(skewed_points) -> np.ndarray:
    return brute_force_pairs(skewed_points, _EPS)


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
@pytest.mark.parametrize("pattern", ["full", "unicomp", "lidunicomp"])
def test_selfjoin_matches_single_device_and_oracle(
    skewed_points, oracle, planner, pattern
):
    cfg = OptimizationConfig(pattern=pattern)
    single = SelfJoin(cfg).execute(skewed_points, _EPS)
    multi = MultiGpuSelfJoin(
        cfg, num_devices=3, planner=planner, schedule="dynamic"
    ).execute(skewed_points, _EPS)
    assert np.array_equal(multi.sorted_pairs(), single.sorted_pairs())
    assert np.array_equal(multi.sorted_pairs(), oracle)


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
@pytest.mark.parametrize("schedule", SCHEDULE_MODES)
def test_optimized_config_matches_everywhere(skewed_points, oracle, planner, schedule):
    """The paper's headline stack (queue + k + half-pattern) inside shards."""
    cfg = OptimizationConfig(pattern="lidunicomp", work_queue=True, k=4)
    single = SelfJoin(cfg).execute(skewed_points, _EPS)
    multi = MultiGpuSelfJoin(
        cfg, num_devices=2, planner=planner, schedule=schedule, shards_per_device=3
    ).execute(skewed_points, _EPS)
    assert np.array_equal(multi.sorted_pairs(), single.sorted_pairs())
    assert np.array_equal(multi.sorted_pairs(), oracle)


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
def test_exclude_self_matches(skewed_points, planner):
    cfg = OptimizationConfig(pattern="full")
    single = SelfJoin(cfg, include_self=False).execute(skewed_points, _EPS)
    multi = MultiGpuSelfJoin(
        cfg, num_devices=3, planner=planner, include_self=False
    ).execute(skewed_points, _EPS)
    assert np.array_equal(multi.sorted_pairs(), single.sorted_pairs())
    assert np.array_equal(
        multi.sorted_pairs(), brute_force_pairs(skewed_points, _EPS, include_self=False)
    )


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
def test_multibatch_shards_match(skewed_points, oracle, planner):
    """Tiny per-batch capacity forces several batches inside every shard."""
    cfg = OptimizationConfig(work_queue=True, batch_result_capacity=2_000)
    single = SelfJoin(cfg).execute(skewed_points, _EPS)
    multi = MultiGpuSelfJoin(cfg, num_devices=2, planner=planner).execute(
        skewed_points, _EPS
    )
    assert multi.num_batches >= multi.trace.num_devices
    assert np.array_equal(multi.sorted_pairs(), single.sorted_pairs())
    assert np.array_equal(multi.sorted_pairs(), oracle)


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
@pytest.mark.parametrize("config", [
    OptimizationConfig(),
    OptimizationConfig(work_queue=True, k=2),
])
def test_bipartite_matches_single_device(rng, planner, config):
    left = rng.uniform(0, 10, size=(130, 2))
    right = np.concatenate(
        [rng.uniform(0, 10, size=(120, 2)), rng.uniform(0, 0.6, size=(60, 2))]
    )
    single = SimilarityJoin(config).execute(left, right, 0.8)
    multi = MultiGpuSimilarityJoin(config, num_devices=3, planner=planner).execute(
        left, right, 0.8
    )
    assert np.array_equal(multi.sorted_pairs(), single.sorted_pairs())
    assert multi.num_pairs == single.num_pairs


def test_single_device_pool_degenerates_to_selfjoin(skewed_points):
    """N=1 with one shard is byte-for-byte the plain SelfJoin result."""
    cfg = OptimizationConfig(work_queue=True)
    single = SelfJoin(cfg).execute(skewed_points, _EPS)
    multi = MultiGpuSelfJoin(
        cfg, num_devices=1, planner="balanced", shards_per_device=1
    ).execute(skewed_points, _EPS)
    assert np.array_equal(multi.sorted_pairs(), single.sorted_pairs())
    assert multi.kernel_seconds == pytest.approx(single.kernel_seconds)

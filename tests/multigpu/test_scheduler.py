"""Host scheduler: static assignment, dynamic stealing, trace accounting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.multigpu import DevicePool, HostScheduler, Shard, ShardPlan
from repro.simt import DeviceSpec


@dataclass
class _StubResult:
    total_seconds: float
    num_pairs: int = 0


def _plan(works):
    shards = [
        Shard(shard_id=i, points=np.arange(1), estimated_work=float(w))
        for i, w in enumerate(works)
    ]
    return ShardPlan(shards=shards, planner="stub", num_queries=len(works))


def _runner(seconds_by_shard):
    def run_shard(device, shard):
        return _StubResult(total_seconds=seconds_by_shard[shard.shard_id])

    return run_shard


def test_static_round_robin_assignment():
    pool = DevicePool(2)
    plan = _plan([4, 3, 2, 1])
    results, trace = HostScheduler(pool, "static").run(
        plan, _runner({0: 4.0, 1: 3.0, 2: 2.0, 3: 1.0})
    )
    assert [e.device_id for e in sorted(trace.events, key=lambda e: e.shard_id)] == [
        0, 1, 0, 1,
    ]
    # device 0 runs shards 0 then 2 back to back
    busy = trace.device_busy_seconds()
    assert busy[0] == pytest.approx(6.0)
    assert busy[1] == pytest.approx(4.0)
    assert trace.makespan_seconds == pytest.approx(6.0)
    assert all(r is not None for r in results)


def test_dynamic_dispatches_most_work_first():
    pool = DevicePool(2)
    plan = _plan([1, 10, 5, 7])  # estimated work
    seen = []

    def run_shard(device, shard):
        seen.append(shard.shard_id)
        return _StubResult(total_seconds=float(shard.estimated_work))

    HostScheduler(pool, "dynamic").run(plan, run_shard)
    assert seen == [1, 3, 2, 0]  # desc estimated work


def test_dynamic_steals_onto_free_device():
    """One long shard pins a device; the other device drains the rest."""
    pool = DevicePool(2)
    plan = _plan([100, 1, 1, 1])  # dispatch order: 0 first
    results, trace = HostScheduler(pool, "dynamic").run(
        plan, _runner({0: 100.0, 1: 1.0, 2: 1.0, 3: 1.0})
    )
    by_shard = {e.shard_id: e for e in trace.events}
    assert by_shard[0].device_id == 0
    # everything else lands on device 1 while device 0 is pinned
    assert {by_shard[s].device_id for s in (1, 2, 3)} == {1}
    assert trace.makespan_seconds == pytest.approx(100.0)
    # static would have put shards 2 on device 0 behind the pin
    _, static_trace = HostScheduler(pool, "static").run(
        plan, _runner({0: 100.0, 1: 1.0, 2: 1.0, 3: 1.0})
    )
    assert static_trace.makespan_seconds == pytest.approx(101.0)


def test_trace_event_times_are_consistent():
    pool = DevicePool(3)
    plan = _plan([3, 2, 2, 1, 1])
    secs = {i: float(s.estimated_work) for i, s in enumerate(plan.shards)}
    _, trace = HostScheduler(pool, "dynamic").run(plan, _runner(secs))
    for e in trace.events:
        assert e.end_seconds >= e.start_seconds
    # per-device events never overlap
    for d in range(pool.num_devices):
        evs = sorted(
            (e for e in trace.events if e.device_id == d),
            key=lambda e: e.start_seconds,
        )
        for a, b in zip(evs, evs[1:]):
            assert b.start_seconds >= a.end_seconds - 1e-12
    assert trace.makespan_seconds == max(e.end_seconds for e in trace.events)


def test_heterogeneous_pool_is_allowed():
    fast = DeviceSpec(name="fast")
    slow = DeviceSpec(name="slow", clock_hz=0.65e9)
    pool = DevicePool(specs=[fast, slow])
    assert pool.num_devices == 2
    assert pool[0].spec.name == "fast"
    assert pool[1].executor.device.name == "slow"


def test_invalid_mode_and_pool_args():
    with pytest.raises(ValueError, match="unknown schedule mode"):
        HostScheduler(DevicePool(1), "adaptive")
    with pytest.raises(ValueError, match="num_devices"):
        DevicePool(0)
    with pytest.raises(ValueError, match="at least one device"):
        DevicePool(specs=[])

"""Shard planners: exact partition, balance properties, degenerate inputs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.adversarial import stride_aliased_hotspots
from repro.grid import GridIndex
from repro.multigpu import SHARD_PLANNERS, plan_query_shards, plan_shards


@pytest.fixture
def skewed_index(rng) -> GridIndex:
    pts = stride_aliased_hotspots(600, 2, period=8, seed=11)
    return GridIndex(pts, 2.0)


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
@pytest.mark.parametrize("num_shards", [1, 3, 8])
def test_planners_partition_exactly(skewed_index, planner, num_shards):
    plan = plan_shards(skewed_index, num_shards, planner)
    assert plan.num_shards == num_shards
    all_ids = np.concatenate([s.points for s in plan.shards])
    assert len(all_ids) == skewed_index.num_points
    # every query id exactly once
    assert np.array_equal(np.sort(all_ids), np.arange(skewed_index.num_points))


@pytest.mark.parametrize("planner", SHARD_PLANNERS)
def test_more_shards_than_points(planner):
    pts = np.array([[0.0, 0.0], [5.0, 5.0], [9.0, 9.0]])
    plan = plan_shards(GridIndex(pts, 1.0), 8, planner)
    all_ids = np.concatenate([s.points for s in plan.shards])
    assert np.array_equal(np.sort(all_ids), np.arange(3))
    assert sum(s.num_points == 0 for s in plan.shards) == 5  # empties are legal


def test_empty_dataset_plans_empty_shards():
    index = GridIndex(np.empty((0, 2)), 1.0)
    for planner in SHARD_PLANNERS:
        plan = plan_shards(index, 4, planner)
        assert plan.num_shards == 4
        assert all(s.num_points == 0 for s in plan.shards)
        assert plan.total_work == 0.0
        assert plan.estimated_imbalance == 1.0


def test_balanced_levels_stride_aliased_skew(skewed_index):
    """LPT must beat point-strided on id-correlated skew — the planner's
    reason to exist."""
    strided = plan_shards(skewed_index, 4, "strided")
    balanced = plan_shards(skewed_index, 4, "balanced")
    assert balanced.estimated_imbalance < strided.estimated_imbalance
    # LPT's guarantee: within 4/3 - 1/(3m) of the level optimum; allow the
    # loose classical bound rather than the tight constant
    assert balanced.estimated_imbalance <= 4.0 / 3.0 + 1e-9


def test_cell_blocks_keep_cells_whole(skewed_index):
    plan = plan_shards(skewed_index, 4, "cell_blocks")
    rank_sets = [
        set(skewed_index.point_cell_rank[s.points]) for s in plan.shards if s.num_points
    ]
    for a in range(len(rank_sets)):
        for b in range(a + 1, len(rank_sets)):
            assert not (rank_sets[a] & rank_sets[b]), "cell split across shards"


def test_cell_blocks_flags_dedup_only_for_half_patterns(skewed_index):
    assert plan_shards(skewed_index, 4, "cell_blocks", pattern="full").may_duplicate is False
    assert plan_shards(skewed_index, 4, "cell_blocks", pattern="lidunicomp").may_duplicate
    assert plan_shards(skewed_index, 4, "balanced", pattern="lidunicomp").may_duplicate is False


def test_dispatch_order_is_most_work_first(skewed_index):
    plan = plan_shards(skewed_index, 5, "cell_blocks")
    order = plan.dispatch_order()
    works = [plan.shards[i].estimated_work for i in order]
    assert works == sorted(works, reverse=True)
    assert sorted(order) == list(range(plan.num_shards))


def test_query_shards_balanced_and_strided():
    weights = np.array([100.0, 1.0, 1.0, 1.0, 100.0, 1.0, 1.0, 1.0])
    strided = plan_query_shards(weights, 2, "strided")
    balanced = plan_query_shards(weights, 2, "balanced")
    # stride 2 aliases both heavy queries (ids 0 and 4) onto shard 0
    assert strided.estimated_imbalance > 1.5
    assert balanced.estimated_imbalance == pytest.approx(1.0, abs=0.05)
    # contiguous blocks cover everything too
    blocks = plan_query_shards(weights, 3, "cell_blocks")
    assert np.array_equal(
        np.sort(np.concatenate([s.points for s in blocks.shards])), np.arange(8)
    )


def test_invalid_arguments_raise(skewed_index):
    with pytest.raises(ValueError, match="unknown planner"):
        plan_shards(skewed_index, 2, "zigzag")
    with pytest.raises(ValueError, match="num_shards"):
        plan_shards(skewed_index, 0, "strided")
    with pytest.raises(ValueError, match="unknown planner"):
        plan_query_shards(np.ones(4), 2, "zigzag")
    with pytest.raises(ValueError, match="non-negative"):
        plan_query_shards(np.array([1.0, -1.0]), 2, "balanced")

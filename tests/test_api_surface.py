"""The public API surface must match the checked-in manifest.

``api_manifest.txt`` pins every public export with its call signature, so
an execution knob added to (or removed from) any layer fails here — and
in the CI ``api-surface`` job — until the manifest change is reviewed.
Regenerate after an intentional change::

    PYTHONPATH=src python -m repro --api-dump > api_manifest.txt
"""

from __future__ import annotations

import pathlib

from repro.__main__ import api_surface

MANIFEST = pathlib.Path(__file__).parent.parent / "api_manifest.txt"


def test_api_surface_matches_manifest():
    recorded = MANIFEST.read_text().splitlines()
    current = api_surface()
    added = sorted(set(current) - set(recorded))
    removed = sorted(set(recorded) - set(current))
    assert current == recorded, (
        "public API surface drifted from api_manifest.txt\n"
        f"added/changed: {added}\n"
        f"removed/changed: {removed}\n"
        "if intentional: PYTHONPATH=src python -m repro --api-dump > api_manifest.txt"
    )

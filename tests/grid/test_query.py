"""Unit and property tests for the vectorized grid range-query path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    brute_force_neighbor_counts,
    brute_force_pairs,
    kdtree_pairs,
)
from repro.grid import GridIndex
from repro.grid.query import (
    grid_neighbor_counts,
    grid_selfjoin_pairs,
    iter_candidate_blocks,
)


def canon(pairs):
    if len(pairs) == 0:
        return np.empty((0, 2), dtype=np.int64)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


class TestCandidateBlocks:
    def test_blocks_cover_each_candidate_once(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        seen = {}
        for qi, cj in iter_candidate_blocks(idx):
            for a, b in zip(qi.tolist(), cj.tolist()):
                key = (a, b)
                seen[key] = seen.get(key, 0) + 1
        assert all(v == 1 for v in seen.values())
        # identity candidates always present
        for i in range(idx.num_points):
            assert (i, i) in seen

    def test_chunking_preserves_coverage(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        big = sum(len(qi) for qi, _ in iter_candidate_blocks(idx, chunk_pairs=10**9))
        small = sum(len(qi) for qi, _ in iter_candidate_blocks(idx, chunk_pairs=17))
        assert big == small

    def test_restricted_queries(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        subset = np.array([3, 10, 50])
        for qi, _ in iter_candidate_blocks(idx, subset):
            assert np.isin(qi, subset).all()

    def test_empty_index(self):
        idx = GridIndex(np.empty((0, 2)), 1.0)
        assert list(iter_candidate_blocks(idx)) == []

    def test_invalid_chunk(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        with pytest.raises(ValueError):
            list(iter_candidate_blocks(idx, chunk_pairs=0))


class TestNeighborCounts:
    def test_matches_brute_force(self, small_expo_2d):
        idx = GridIndex(small_expo_2d, 0.3)
        np.testing.assert_array_equal(
            grid_neighbor_counts(idx),
            brute_force_neighbor_counts(small_expo_2d, 0.3),
        )

    def test_subset_alignment(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        subset = np.array([7, 3, 11])
        counts = grid_neighbor_counts(idx, subset)
        full = brute_force_neighbor_counts(small_uniform_2d, 1.0)
        np.testing.assert_array_equal(counts, full[subset])

    def test_exclude_self(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        with_self = grid_neighbor_counts(idx)
        without = grid_neighbor_counts(idx, include_self=False)
        np.testing.assert_array_equal(with_self, without + 1)


class TestSelfJoinPairs:
    @given(
        seed=st.integers(0, 2**31 - 1),
        ndim=st.integers(1, 4),
        eps=st.floats(0.1, 1.2),
    )
    @settings(max_examples=20)
    def test_property_matches_brute_force(self, seed, ndim, eps):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 3, size=(100, ndim))
        idx = GridIndex(pts, eps)
        got = canon(grid_selfjoin_pairs(idx))
        np.testing.assert_array_equal(got, brute_force_pairs(pts, eps))

    def test_matches_kdtree(self, small_expo_2d):
        idx = GridIndex(small_expo_2d, 0.25)
        np.testing.assert_array_equal(
            canon(grid_selfjoin_pairs(idx)), kdtree_pairs(small_expo_2d, 0.25)
        )

    def test_boundary_distance_inclusive(self):
        pts = np.array([[0.0, 0.0], [0.5, 0.0]])
        idx = GridIndex(pts, 0.5)
        pairs = canon(grid_selfjoin_pairs(idx))
        assert (0, 1) in set(map(tuple, pairs.tolist()))

    def test_small_chunks_same_result(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        a = canon(grid_selfjoin_pairs(idx))
        b = canon(grid_selfjoin_pairs(idx, chunk_pairs=13))
        np.testing.assert_array_equal(a, b)

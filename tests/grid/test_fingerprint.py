"""Fingerprint stability: equal inputs hash equal, perturbed inputs don't.

The fingerprints are the cache identity of the serving layer's
``SessionCache`` — a false positive would silently serve one dataset's
neighbors for another, so these tests pin the contract bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import get_pattern_plan
from repro.grid import GridIndex, GridSpec, dataset_fingerprint


def points(n=60, seed=0):
    return np.random.default_rng(seed).uniform(0.0, 10.0, size=(n, 2))


# ------------------------------------------------------- dataset hashes
def test_equal_datasets_fingerprint_equal():
    assert dataset_fingerprint(points()) == dataset_fingerprint(points())


def test_copy_and_noncontiguous_view_fingerprint_equal():
    pts = points()
    assert dataset_fingerprint(pts) == dataset_fingerprint(pts.copy())
    # a Fortran-ordered copy holds the same values — identity is content
    assert dataset_fingerprint(pts) == dataset_fingerprint(np.asfortranarray(pts))


def test_single_coordinate_perturbation_changes_fingerprint():
    pts = points()
    bumped = pts.copy()
    bumped[17, 1] += 1e-9
    assert dataset_fingerprint(pts) != dataset_fingerprint(bumped)


def test_shape_is_part_of_the_identity():
    flat = np.zeros((4, 2))
    assert dataset_fingerprint(flat) != dataset_fingerprint(np.zeros((2, 4)))


# ------------------------------------------------------- index hashes
def test_equal_indexes_fingerprint_equal():
    a = GridIndex(points(), 0.5)
    b = GridIndex(points(), 0.5)
    assert a.fingerprint() == b.fingerprint()


def test_fingerprint_is_memoized_and_stable():
    idx = GridIndex(points(), 0.5)
    assert idx.fingerprint() == idx.fingerprint()


def test_epsilon_changes_index_fingerprint():
    pts = points()
    assert GridIndex(pts, 0.5).fingerprint() != GridIndex(pts, 0.7).fingerprint()


def test_dataset_changes_index_fingerprint():
    assert (
        GridIndex(points(seed=0), 0.5).fingerprint()
        != GridIndex(points(seed=1), 0.5).fingerprint()
    )


def test_explicit_spec_changes_index_fingerprint():
    pts = points()
    default = GridIndex(pts, 0.5)
    widened = GridIndex(
        pts, 0.5, spec=GridSpec(0.5, pts.min(axis=0) - 1.0, pts.max(axis=0) + 1.0)
    )
    assert default.fingerprint() != widened.fingerprint()


# ------------------------------------------------------- pattern plans
def test_pattern_plan_fingerprints_separate_patterns():
    idx = GridIndex(points(), 0.5)
    fps = {get_pattern_plan(p, idx).fingerprint() for p in ("full", "unicomp", "lidunicomp")}
    assert len(fps) == 3


def test_pattern_plan_fingerprint_tracks_index_identity():
    a = get_pattern_plan("lidunicomp", GridIndex(points(), 0.5))
    b = get_pattern_plan("lidunicomp", GridIndex(points(), 0.5))
    c = get_pattern_plan("lidunicomp", GridIndex(points(seed=2), 0.5))
    assert a.fingerprint() == b.fingerprint()
    assert a.fingerprint() != c.fingerprint()

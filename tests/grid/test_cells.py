"""Unit and property tests for GridSpec geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.grid import GridSpec


def make_points(ndim: int, n: int, rng: np.random.Generator, scale=10.0):
    return rng.uniform(0, scale, size=(n, ndim))


class TestConstruction:
    def test_widths_cover_bounding_box(self):
        spec = GridSpec(1.0, np.array([0.0, 0.0]), np.array([10.0, 5.0]))
        assert list(spec.widths) == [11, 6]
        assert spec.total_cells == 66

    def test_strides_row_major(self):
        spec = GridSpec(1.0, np.zeros(3), np.array([3.0, 4.0, 5.0]))
        w = spec.widths
        assert spec.strides[2] == 1
        assert spec.strides[1] == w[2]
        assert spec.strides[0] == w[1] * w[2]

    def test_rejects_inverted_box(self):
        with pytest.raises(ValueError, match=">= mins"):
            GridSpec(1.0, np.array([1.0]), np.array([0.0]))

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            GridSpec(0.0, np.zeros(2), np.ones(2))

    def test_tiny_epsilon_coarsens_instead_of_overflowing(self):
        # 1e6 cells per dim in 6-D would overflow int64 linearization;
        # the spec coarsens cells (adjacency only needs length >= eps)
        spec = GridSpec(1e-6, np.zeros(6), np.ones(6))
        assert spec.is_coarsened
        assert spec.cell_length >= 1e-6
        assert spec.total_cells <= np.iinfo(np.int64).max // 4
        # coarsening is by doubling: cell_length = eps * 2^k
        ratio = spec.cell_length / 1e-6
        assert np.isclose(np.log2(ratio), round(np.log2(ratio)))

    def test_normal_epsilon_not_coarsened(self):
        spec = GridSpec(1.0, np.zeros(2), np.full(2, 10.0))
        assert not spec.is_coarsened
        assert spec.cell_length == 1.0

    def test_coarsened_grid_still_exact(self):
        """Joins remain exact under coarsening (bigger candidate sets only)."""
        from repro.baselines import brute_force_pairs
        from repro.grid import GridIndex
        from repro.grid.query import grid_selfjoin_pairs

        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 1, (80, 4))
        eps = 1e-7  # would need (1e7)^4 cells uncoarsened
        idx = GridIndex(pts, eps)
        assert idx.spec.is_coarsened
        got = grid_selfjoin_pairs(idx)
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        np.testing.assert_array_equal(got, brute_force_pairs(pts, eps))

    def test_from_points_empty_dataset(self):
        spec = GridSpec.from_points(np.empty((0, 3)), 0.5)
        assert spec.ndim == 3
        assert spec.total_cells == 1


class TestCoordinateMapping:
    def test_cell_coords_basic(self):
        spec = GridSpec(1.0, np.zeros(2), np.array([10.0, 10.0]))
        pts = np.array([[0.0, 0.0], [0.999, 0.0], [1.0, 2.5], [10.0, 10.0]])
        coords = spec.cell_coords(pts)
        np.testing.assert_array_equal(coords, [[0, 0], [0, 0], [1, 2], [10, 10]])

    def test_boundary_point_in_bounds(self):
        spec = GridSpec(0.3, np.zeros(1), np.array([1.0]))
        coords = spec.cell_coords(np.array([[1.0]]))
        assert spec.in_bounds(coords).all()

    def test_dimension_mismatch_raises(self):
        spec = GridSpec(1.0, np.zeros(2), np.ones(2))
        with pytest.raises(ValueError, match="dimensions"):
            spec.cell_coords(np.zeros((3, 3)))

    def test_external_points_clamped(self):
        spec = GridSpec(1.0, np.zeros(1), np.array([5.0]))
        coords = spec.cell_coords(np.array([[-3.0], [99.0]]))
        assert spec.in_bounds(coords).all()

    @given(
        ndim=st.integers(1, 4),
        seed=st.integers(0, 2**32 - 1),
        eps=st.floats(0.05, 3.0),
    )
    def test_linearize_roundtrip(self, ndim, seed, eps):
        rng = np.random.default_rng(seed)
        pts = make_points(ndim, 50, rng)
        spec = GridSpec.from_points(pts, eps)
        coords = spec.cell_coords(pts)
        ids = spec.linearize(coords)
        np.testing.assert_array_equal(spec.delinearize(ids), coords)

    @given(ndim=st.integers(1, 4), seed=st.integers(0, 2**32 - 1))
    def test_linear_ids_unique_per_cell(self, ndim, seed):
        """Distinct cell coordinates must map to distinct linear ids."""
        rng = np.random.default_rng(seed)
        pts = make_points(ndim, 100, rng)
        spec = GridSpec.from_points(pts, 0.7)
        coords = spec.cell_coords(pts)
        ids = spec.linearize(coords)
        uniq_coords = np.unique(coords, axis=0)
        uniq_ids = np.unique(ids)
        assert len(uniq_coords) == len(uniq_ids)

    @given(
        data=hnp.arrays(
            np.float64,
            shape=st.tuples(st.integers(1, 60), st.integers(1, 3)),
            elements=st.floats(-50, 50, allow_nan=False),
        )
    )
    def test_every_point_lands_in_bounds(self, data):
        spec = GridSpec.from_points(data, 1.0)
        coords = spec.cell_coords(data)
        assert spec.in_bounds(coords).all()

    def test_points_within_eps_are_in_adjacent_cells(self):
        """Core grid guarantee: a neighbor within eps differs by <=1 per dim."""
        rng = np.random.default_rng(7)
        pts = make_points(3, 300, rng, scale=4.0)
        eps = 0.5
        spec = GridSpec.from_points(pts, eps)
        coords = spec.cell_coords(pts)
        d = np.linalg.norm(pts[:, None, :] - pts[None, :, :], axis=-1)
        close_i, close_j = np.nonzero(d <= eps)
        delta = np.abs(coords[close_i] - coords[close_j])
        assert delta.max() <= 1

"""Unit and property tests for neighbor-cell enumeration."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.grid import (
    GridIndex,
    neighbor_offsets,
    neighbor_ranks_for_offset,
    neighbor_ranks_of_cell,
)
from repro.grid.neighbors import offset_linear_deltas


class TestNeighborOffsets:
    def test_count_is_3_pow_n(self):
        for n in range(1, 5):
            assert neighbor_offsets(n).shape == (3**n, n)

    def test_zero_offset_is_middle_row(self):
        for n in range(1, 5):
            offs = neighbor_offsets(n)
            assert (offs[3**n // 2] == 0).all()

    def test_offsets_unique(self):
        offs = neighbor_offsets(3)
        assert len(np.unique(offs, axis=0)) == 27

    def test_cached_and_readonly(self):
        a = neighbor_offsets(2)
        b = neighbor_offsets(2)
        assert a is b
        assert not a.flags.writeable


class TestOffsetLinearDeltas:
    def test_antisymmetric(self):
        rng = np.random.default_rng(1)
        idx = GridIndex(rng.uniform(0, 8, (100, 3)), 1.0)
        offs = neighbor_offsets(3)
        deltas = offset_linear_deltas(idx, offs)
        # delta(-off) == -delta(off); offsets array is symmetric under reversal
        np.testing.assert_array_equal(deltas, -deltas[::-1])

    def test_exactly_half_positive(self):
        rng = np.random.default_rng(2)
        for ndim in (1, 2, 3, 4):
            idx = GridIndex(rng.uniform(0, 6, (60, ndim)), 1.0)
            deltas = offset_linear_deltas(idx)
            nonzero = deltas[deltas != 0]
            assert len(nonzero) == 3**ndim - 1
            assert (nonzero > 0).sum() == (3**ndim - 1) // 2


class TestNeighborRanks:
    def test_self_always_included(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        for r in range(idx.num_nonempty_cells):
            assert r in neighbor_ranks_of_cell(idx, r)

    def test_include_self_false(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        assert 0 not in neighbor_ranks_of_cell(idx, 0, include_self=False)

    def test_per_offset_agrees_with_per_cell(self, small_expo_2d):
        idx = GridIndex(small_expo_2d, 0.3)
        offs = neighbor_offsets(2)
        per_offset = np.stack(
            [neighbor_ranks_for_offset(idx, o) for o in offs], axis=1
        )
        for r in range(idx.num_nonempty_cells):
            expected = set(neighbor_ranks_of_cell(idx, r).tolist())
            got = set(per_offset[r][per_offset[r] >= 0].tolist())
            assert got == expected

    @given(seed=st.integers(0, 2**32 - 1), ndim=st.integers(1, 3))
    def test_neighbor_relation_symmetric(self, seed, ndim):
        """If cell b is a's neighbor then a is b's neighbor."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 4, size=(60, ndim))
        idx = GridIndex(pts, 0.9)
        neigh = [
            set(neighbor_ranks_of_cell(idx, r).tolist())
            for r in range(idx.num_nonempty_cells)
        ]
        for a in range(idx.num_nonempty_cells):
            for b in neigh[a]:
                assert a in neigh[b]

    @given(seed=st.integers(0, 2**32 - 1))
    def test_neighbors_differ_by_at_most_one_per_dim(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 5, size=(80, 2))
        idx = GridIndex(pts, 0.7)
        for r in range(0, idx.num_nonempty_cells, 5):
            mine = idx.cell_coords_arr[r]
            for nb in neighbor_ranks_of_cell(idx, r):
                assert np.abs(idx.cell_coords_arr[nb] - mine).max() <= 1

    def test_boundary_cells_have_fewer_neighbors(self):
        # a dense 5x5 block: corner cell has 4 candidate positions,
        # inner cell has 9
        pts = np.array(
            [[x + 0.5, y + 0.5] for x in range(5) for y in range(5)], dtype=float
        )
        idx = GridIndex(pts, 1.0)
        corner = idx.lookup(idx.spec.linearize(np.array([[0, 0]])))[0]
        inner = idx.lookup(idx.spec.linearize(np.array([[2, 2]])))[0]
        assert len(neighbor_ranks_of_cell(idx, int(corner))) == 4
        assert len(neighbor_ranks_of_cell(idx, int(inner))) == 9

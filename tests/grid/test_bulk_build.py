"""``GridIndex.build(method="sorted")``: the vectorized bulk construction.

The sorted build derives cell boundaries from one stable argsort instead
of per-cell ``np.unique`` bookkeeping; the ``"unique"`` path stays as the
oracle. Every derived array must be byte-identical between the two.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import BUILD_METHODS, GridIndex

_ARRAYS = ("point_order", "cell_ids", "cell_starts", "cell_counts", "point_cell_rank")


def _datasets():
    rng = np.random.default_rng(42)
    return {
        "uniform_2d": rng.uniform(0.0, 10.0, (500, 2)),
        "uniform_3d": rng.uniform(0.0, 4.0, (300, 3)),
        "clustered": np.concatenate(
            [rng.normal(1.0, 0.05, (200, 2)), rng.uniform(0.0, 9.0, (200, 2))]
        ),
        "single_point": rng.uniform(0.0, 1.0, (1, 2)),
        "duplicates": np.repeat(rng.uniform(0.0, 5.0, (20, 2)), 10, axis=0),
    }


class TestSortedMatchesUnique:
    @pytest.mark.parametrize("name", sorted(_datasets()))
    def test_identical_arrays(self, name):
        points = _datasets()[name]
        built = {
            method: GridIndex(points, 0.5, method=method) for method in BUILD_METHODS
        }
        for attr in _ARRAYS:
            a = getattr(built["sorted"], attr)
            b = getattr(built["unique"], attr)
            assert a.dtype == b.dtype, attr
            assert np.array_equal(a, b), f"{name}: {attr} diverges between builds"

    def test_all_points_in_one_cell(self):
        # epsilon larger than the extent: the whole dataset collapses into
        # a single grid cell — the degenerate boundary case of the
        # flatnonzero boundary derivation (no interior boundaries at all)
        points = np.random.default_rng(7).uniform(0.0, 0.5, (64, 2))
        for method in BUILD_METHODS:
            idx = GridIndex(points, 10.0, method=method)
            assert idx.num_nonempty_cells == 1
            assert idx.cell_counts.tolist() == [64]
            assert idx.cell_starts.tolist() == [0]
            assert np.array_equal(idx.point_cell_rank, np.zeros(64, dtype=np.int64))
        sorted_idx = GridIndex(points, 10.0, method="sorted")
        unique_idx = GridIndex(points, 10.0, method="unique")
        assert np.array_equal(sorted_idx.point_order, unique_idx.point_order)


class TestBuildApi:
    def test_classmethod_equals_constructor(self):
        points = np.random.default_rng(3).uniform(0.0, 6.0, (200, 2))
        a = GridIndex.build(points, 0.7)
        b = GridIndex(points, 0.7)
        for attr in _ARRAYS:
            assert np.array_equal(getattr(a, attr), getattr(b, attr))

    def test_default_method_is_sorted(self):
        assert BUILD_METHODS[0] == "sorted"

    def test_unknown_method_rejected(self):
        points = np.zeros((4, 2))
        with pytest.raises(ValueError, match="method"):
            GridIndex(points, 1.0, method="hashed")

    def test_selfjoin_pairs_identical_between_methods(self):
        from repro.grid.query import grid_selfjoin_pairs

        points = np.random.default_rng(9).uniform(0.0, 5.0, (300, 2))
        pair_sets = {
            method: grid_selfjoin_pairs(GridIndex(points, 0.4, method=method))
            for method in BUILD_METHODS
        }
        assert np.array_equal(pair_sets["sorted"], pair_sets["unique"])

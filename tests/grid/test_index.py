"""Unit and property tests for GridIndex."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grid import GridIndex, GridSpec


class TestBuild:
    def test_partition_is_total_and_disjoint(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        seen = np.concatenate(
            [idx.points_in_cell(r) for r in range(idx.num_nonempty_cells)]
        )
        assert sorted(seen.tolist()) == list(range(idx.num_points))

    def test_cell_ids_sorted_unique(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        ids = idx.cell_ids
        assert (np.diff(ids) > 0).all()

    def test_counts_sum_to_n(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        assert idx.cell_counts.sum() == idx.num_points

    def test_point_cell_rank_consistent(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        for i in range(0, idx.num_points, 17):
            rank = idx.cell_of_point(i)
            assert i in idx.points_in_cell(rank)

    def test_single_point(self):
        idx = GridIndex(np.array([[1.0, 2.0]]), 0.5)
        assert idx.num_nonempty_cells == 1
        assert list(idx.points_in_cell(0)) == [0]

    def test_all_points_identical(self):
        pts = np.ones((50, 3))
        idx = GridIndex(pts, 0.1)
        assert idx.num_nonempty_cells == 1
        assert idx.cell_counts[0] == 50

    def test_explicit_spec_epsilon_mismatch(self, small_uniform_2d):
        spec = GridSpec.from_points(small_uniform_2d, 1.0)
        with pytest.raises(ValueError, match="disagrees"):
            GridIndex(small_uniform_2d, 2.0, spec=spec)

    def test_memory_is_linear_in_n(self):
        rng = np.random.default_rng(0)
        small = GridIndex(rng.uniform(0, 10, (500, 2)), 1.0)
        big = GridIndex(rng.uniform(0, 10, (5000, 2)), 1.0)
        # O(N + C) with C <= N: 10x points => at most ~10x index bytes + slack
        assert big.memory_bytes() <= 12 * small.memory_bytes()


class TestLookup:
    def test_lookup_hits_and_misses(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        ranks = idx.lookup(idx.cell_ids)
        np.testing.assert_array_equal(ranks, np.arange(idx.num_nonempty_cells))
        # an id guaranteed absent
        assert idx.lookup(np.array([idx.cell_ids.max() + 1]))[0] == -1
        assert idx.lookup(np.array([-5]))[0] == -1

    def test_lookup_empty_index(self):
        idx = GridIndex(np.empty((0, 2)), 1.0)
        assert idx.lookup(np.array([0, 1]))[0] == -1
        assert idx.num_nonempty_cells == 0

    def test_points_in_cell_bad_rank(self, small_uniform_2d):
        idx = GridIndex(small_uniform_2d, 1.0)
        with pytest.raises(IndexError):
            idx.points_in_cell(idx.num_nonempty_cells)

    @given(seed=st.integers(0, 2**32 - 1), ndim=st.integers(1, 3))
    def test_lookup_matches_membership(self, seed, ndim):
        rng = np.random.default_rng(seed)
        pts = rng.uniform(0, 5, size=(80, ndim))
        idx = GridIndex(pts, 0.8)
        coords = idx.spec.cell_coords(pts)
        ids = idx.spec.linearize(coords)
        ranks = idx.lookup(ids)
        assert (ranks >= 0).all()
        np.testing.assert_array_equal(idx.cell_ids[ranks], ids)

"""ε-grid spatial index (Gowanlock & Karsin 2018 style).

The index partitions an ``n``-dimensional dataset into cells of side length
``epsilon`` and stores **only the non-empty cells**, giving the O(|D|) memory
footprint the paper relies on for GPU residency. A range query around a point
only needs the ≤ 3**n cells adjacent to (and including) the point's own cell.

Public surface:

- :class:`GridSpec` — pure geometry: coordinates ↔ cell coordinates ↔ linear
  cell ids.
- :class:`GridIndex` — the built index: sorted unique linear ids of non-empty
  cells, per-cell point ranges, and point lookup.
- :mod:`repro.grid.neighbors` — neighbor-offset enumeration and vectorized
  per-cell neighbor resolution used by both the kernels and the performance
  model.
"""

from repro.grid.cells import GridSpec
from repro.grid.index import BUILD_METHODS, GridIndex, dataset_fingerprint
from repro.grid.neighbors import (
    neighbor_offsets,
    neighbor_ranks_for_offset,
    neighbor_ranks_of_cell,
)

__all__ = [
    "BUILD_METHODS",
    "GridIndex",
    "GridSpec",
    "dataset_fingerprint",
    "neighbor_offsets",
    "neighbor_ranks_for_offset",
    "neighbor_ranks_of_cell",
]

"""The non-empty-cell ε-grid index.

Array layout mirrors the GPU index of Gowanlock & Karsin (2018):

- ``cell_ids``      — sorted unique linear ids of the non-empty cells
                      (``C`` of them), so a cell lookup is a binary search;
- ``cell_starts`` / ``cell_counts``
                    — per non-empty cell, the slice of ``point_order`` that
                      holds its points;
- ``point_order``   — a permutation of ``range(N)`` grouping points by cell;
- ``point_cell_rank`` — for each point, the rank (index into ``cell_ids``)
                      of its cell.

Total extra storage is ``O(N + C)`` with ``C <= N`` — the O(|D|) footprint
the paper relies on.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.grid.cells import GridSpec
from repro.util import as_points_array

__all__ = ["BUILD_METHODS", "GridIndex", "dataset_fingerprint"]

#: grid build strategies: ``"sorted"`` is the vectorized bulk build
#: (sort by cell rank + run-length encode via boundary scan, after
#: "Building An Efficient Grid On GPU"); ``"unique"`` is the original
#: ``np.unique``-based build, kept as a cross-check oracle. Both produce
#: byte-identical index arrays.
BUILD_METHODS = ("sorted", "unique")


def dataset_fingerprint(points) -> str:
    """Stable content hash of a dataset: shape, dtype and every byte.

    Two arrays fingerprint equal iff they hold the same values in the
    same shape — independent of contiguity or of *when* the hash is
    taken. This is the cache identity of a registered dataset (see
    :class:`repro.serve.SessionCache`); a single perturbed coordinate
    changes the digest.
    """
    pts = np.ascontiguousarray(as_points_array(points))
    h = hashlib.sha256()
    h.update(str(pts.shape).encode())
    h.update(str(pts.dtype).encode())
    h.update(pts.tobytes())
    return h.hexdigest()


class GridIndex:
    """ε-grid over a dataset, storing only non-empty cells.

    Parameters
    ----------
    points:
        ``(N, n)`` array of points.
    epsilon:
        Cell edge length / query distance threshold.
    spec:
        Optional pre-built :class:`GridSpec`; by default the spec is derived
        from the dataset's bounding box.
    method:
        Build strategy, one of :data:`BUILD_METHODS`. ``"sorted"``
        (default) run-length encodes the cell-sorted ids with a boundary
        scan — a single pass with no re-sorting, the fastest path on
        large datasets. ``"unique"`` is the original ``np.unique`` build;
        the two produce identical arrays and ``"unique"`` survives as the
        oracle the equivalence tests compare against.
    """

    def __init__(
        self,
        points,
        epsilon: float,
        *,
        spec: GridSpec | None = None,
        method: str = "sorted",
    ):
        if method not in BUILD_METHODS:
            raise ValueError(f"unknown build method {method!r}; expected one of {BUILD_METHODS}")
        self.points = as_points_array(points)
        self.spec = spec if spec is not None else GridSpec.from_points(self.points, epsilon)
        if spec is not None and float(spec.epsilon) != float(epsilon):
            raise ValueError("explicit spec epsilon disagrees with epsilon argument")

        coords = self.spec.cell_coords(self.points)
        linear = self.spec.linearize(coords)

        # Group points by cell: one stable sort, then run-length encode.
        order = np.argsort(linear, kind="stable")
        sorted_ids = linear[order]
        if method == "sorted":
            # Bulk build: cell boundaries fall wherever the sorted ids
            # change, so starts/counts/ranks all come from one boundary
            # scan — no second sort, no hash table. Handles the degenerate
            # all-points-in-one-cell case (no boundaries → a single run).
            n = len(sorted_ids)
            if n == 0:
                starts = np.empty(0, dtype=np.int64)
                cell_ids = np.empty(0, dtype=np.int64)
                counts = np.empty(0, dtype=np.int64)
                ranks_sorted = np.empty(0, dtype=np.int64)
            else:
                boundaries = np.flatnonzero(sorted_ids[1:] != sorted_ids[:-1]) + 1
                starts = np.concatenate(([0], boundaries)).astype(np.int64)
                cell_ids = sorted_ids[starts]
                counts = np.diff(np.append(starts, n)).astype(np.int64)
                ranks_sorted = np.repeat(np.arange(len(starts), dtype=np.int64), counts)
            inverse = ranks_sorted
        else:
            cell_ids, starts, inverse, counts = np.unique(
                sorted_ids, return_index=True, return_inverse=True, return_counts=True
            )

        self.point_order: np.ndarray = order
        self.cell_ids: np.ndarray = np.asarray(cell_ids, dtype=np.int64)
        self.cell_starts: np.ndarray = np.asarray(starts, dtype=np.int64)
        self.cell_counts: np.ndarray = np.asarray(counts, dtype=np.int64)
        # dense point → cell-rank array, scattered from the per-sorted-slot
        # ranks so the hot-path cell_of_point lookup never binary-searches
        rank_of_point = np.empty(len(order), dtype=np.int64)
        rank_of_point[order] = np.asarray(inverse, dtype=np.int64).reshape(-1)
        self.point_cell_rank: np.ndarray = rank_of_point
        self.cell_coords_arr: np.ndarray = self.spec.delinearize(cell_ids)
        # memoized per-pattern geometry (see repro.core.patterns.PatternPlan);
        # a plain dict so plans live exactly as long as the index they describe
        self.plan_cache: dict = {}
        self._fingerprint: str | None = None

    @classmethod
    def build(
        cls,
        points,
        epsilon: float,
        *,
        spec: GridSpec | None = None,
        method: str = "sorted",
    ) -> "GridIndex":
        """Construct an index explicitly naming the build strategy.

        Equivalent to ``GridIndex(points, epsilon, spec=spec,
        method=method)``; exists so call sites that care about the build
        path (benchmarks, the native engine's worker processes) read
        explicitly.
        """
        return cls(points, epsilon, spec=spec, method=method)

    # ------------------------------------------------------------------
    @property
    def num_points(self) -> int:
        return self.points.shape[0]

    @property
    def ndim(self) -> int:
        return self.spec.ndim

    @property
    def epsilon(self) -> float:
        return self.spec.epsilon

    @property
    def num_nonempty_cells(self) -> int:
        return len(self.cell_ids)

    # ------------------------------------------------------------------
    def lookup(self, linear_ids: np.ndarray) -> np.ndarray:
        """Rank of each linear id among the non-empty cells, or -1 if empty.

        Vectorized binary search; accepts any shape and returns the same
        shape of int64 ranks.
        """
        ids = np.asarray(linear_ids, dtype=np.int64)
        pos = np.searchsorted(self.cell_ids, ids)
        pos_clipped = np.minimum(pos, len(self.cell_ids) - 1) if len(self.cell_ids) else pos
        if len(self.cell_ids) == 0:
            return np.full(ids.shape, -1, dtype=np.int64)
        found = self.cell_ids[pos_clipped] == ids
        return np.where(found, pos_clipped, -1).astype(np.int64)

    def points_in_cell(self, rank: int) -> np.ndarray:
        """Original indices of the points stored in non-empty cell ``rank``."""
        if not 0 <= rank < self.num_nonempty_cells:
            raise IndexError(f"cell rank {rank} out of range")
        s = self.cell_starts[rank]
        return self.point_order[s : s + self.cell_counts[rank]]

    def cell_of_point(self, i: int) -> int:
        """Rank of the non-empty cell containing point ``i``."""
        return int(self.point_cell_rank[i])

    def fingerprint(self) -> str:
        """Stable cache key of this built index.

        Combines the dataset's content hash with every grid parameter
        that shapes the build (ε, bounding-box origin, cell counts), so
        equal inputs fingerprint equal and any perturbation — a moved
        point, a different ε, an explicit non-default spec — does not.
        Memoized: the arrays are immutable once built.
        """
        if self._fingerprint is None:
            h = hashlib.sha256()
            h.update(dataset_fingerprint(self.points).encode())
            h.update(repr(float(self.spec.epsilon)).encode())
            h.update(repr(float(self.spec.cell_length)).encode())
            h.update(np.ascontiguousarray(self.spec.mins).tobytes())
            h.update(np.ascontiguousarray(self.spec.maxs).tobytes())
            h.update(np.ascontiguousarray(self.spec.widths).tobytes())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def memory_bytes(self) -> int:
        """Bytes used by the index arrays (excluding the point data itself)."""
        arrays = (
            self.point_order,
            self.cell_ids,
            self.cell_starts,
            self.cell_counts,
            self.point_cell_rank,
            self.cell_coords_arr,
        )
        return int(sum(a.nbytes for a in arrays))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GridIndex(N={self.num_points}, n={self.ndim}, eps={self.epsilon}, "
            f"nonempty_cells={self.num_nonempty_cells})"
        )

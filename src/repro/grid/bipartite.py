"""Bipartite (two-dataset) range queries over the ε-grid.

The self-join is the special case A = B of the general similarity join
A ⋈_ε B. Here the grid indexes the inner dataset B and the queries come
from an external dataset A: query cell coordinates are *unclamped*, so
queries outside B's bounding box probe exactly the boundary cells their
ε-ball can reach (or nothing, if they are farther than one cell away).

These vectorized helpers power the bipartite join's estimator, workload
quantification and reference results, mirroring :mod:`repro.grid.query`.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.grid.index import GridIndex
from repro.grid.neighbors import neighbor_offsets
from repro.util import as_points_array, gather_slices

__all__ = [
    "bipartite_neighbor_counts",
    "bipartite_pairs",
    "bipartite_workloads",
    "iter_bipartite_blocks",
]

_DEFAULT_CHUNK = 4_000_000


def _query_neighbor_ranks_per_offset(
    index: GridIndex, coords: np.ndarray
) -> Iterator[np.ndarray]:
    """For each neighbor offset, the non-empty B-cell rank behind each
    query (or -1). ``coords`` are unclamped query cell coordinates."""
    for off in neighbor_offsets(index.ndim):
        probe = coords + off
        inside = index.spec.in_bounds(probe)
        ranks = np.full(len(coords), -1, dtype=np.int64)
        if inside.any():
            ranks[inside] = index.lookup(index.spec.linearize(probe[inside]))
        yield ranks


def iter_bipartite_blocks(
    index: GridIndex,
    queries: np.ndarray,
    query_ids: np.ndarray | None = None,
    *,
    chunk_pairs: int = _DEFAULT_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(query_id, b_point_idx)`` candidate blocks for A ⋈ B.

    ``queries`` are A's coordinates (``query_ids`` defaults to their row
    numbers); every (query, candidate) pair appears exactly once.
    """
    if chunk_pairs < 1:
        raise ValueError("chunk_pairs must be >= 1")
    queries = as_points_array(queries)
    if query_ids is None:
        query_ids = np.arange(len(queries), dtype=np.int64)
    else:
        query_ids = np.asarray(query_ids, dtype=np.int64)
    if len(queries) == 0 or index.num_points == 0:
        return
    coords = index.spec.cell_coords(queries, clamp=False)

    for ranks in _query_neighbor_ranks_per_offset(index, coords):
        valid = ranks >= 0
        if not valid.any():
            continue
        q_sel = query_ids[valid]
        n_sel = ranks[valid]
        lengths = index.cell_counts[n_sel]
        csum = np.cumsum(lengths)
        start = 0
        while start < len(q_sel):
            base = csum[start - 1] if start > 0 else 0
            stop = int(np.searchsorted(csum, base + chunk_pairs, side="right"))
            stop = min(max(stop, start + 1), len(q_sel))
            sl = slice(start, stop)
            lens = lengths[sl]
            qi = np.repeat(q_sel[sl], lens)
            cj = gather_slices(index.point_order, index.cell_starts[n_sel[sl]], lens)
            if qi.size:
                yield qi, cj
            start = stop


def bipartite_neighbor_counts(
    index: GridIndex,
    queries: np.ndarray,
    *,
    chunk_pairs: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """Exact |{b ∈ B : dist(a, b) <= ε}| for each query ``a``."""
    queries = as_points_array(queries)
    counts = np.zeros(len(queries), dtype=np.int64)
    eps2 = index.epsilon**2
    for qi, cj in iter_bipartite_blocks(index, queries, chunk_pairs=chunk_pairs):
        d2 = ((queries[qi] - index.points[cj]) ** 2).sum(axis=1)
        np.add.at(counts, qi[d2 <= eps2], 1)
    return counts


def bipartite_pairs(
    index: GridIndex,
    queries: np.ndarray,
    *,
    chunk_pairs: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """All pairs ``(a_idx, b_idx)`` with ``dist <= ε``, shape ``(M, 2)``."""
    queries = as_points_array(queries)
    eps2 = index.epsilon**2
    found: list[np.ndarray] = []
    for qi, cj in iter_bipartite_blocks(index, queries, chunk_pairs=chunk_pairs):
        d2 = ((queries[qi] - index.points[cj]) ** 2).sum(axis=1)
        hit = d2 <= eps2
        if hit.any():
            found.append(np.stack([qi[hit], cj[hit]], axis=1))
    if not found:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(found, axis=0)


def bipartite_workloads(
    index: GridIndex, queries: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-query ``(candidates, visited_cells)`` — the workload ingredients.

    ``visited_cells`` counts the in-bounds neighbor probes (probing an
    empty B-cell still costs the binary search), matching the kernel.
    """
    queries = as_points_array(queries)
    nq = len(queries)
    cand = np.zeros(nq, dtype=np.int64)
    visited = np.zeros(nq, dtype=np.int64)
    if nq == 0 or index.num_points == 0:
        return cand, visited
    coords = index.spec.cell_coords(queries, clamp=False)
    for off in neighbor_offsets(index.ndim):
        probe = coords + off
        inside = index.spec.in_bounds(probe)
        visited += inside
        if not inside.any():
            continue
        ranks = index.lookup(index.spec.linearize(probe[inside]))
        hit = ranks >= 0
        idx = np.flatnonzero(inside)[hit]
        cand[idx] += index.cell_counts[ranks[hit]]
    return cand, visited

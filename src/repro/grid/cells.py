"""Grid geometry: mapping points to cells and cells to linear ids.

A :class:`GridSpec` is pure arithmetic — it knows the bounding box, the cell
edge length (ε) and the per-dimension cell counts, and converts between point
coordinates, n-D cell coordinates, and row-major linear cell ids. It holds no
point data; :class:`repro.grid.index.GridIndex` layers the non-empty-cell
storage on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import as_points_array, check_epsilon

__all__ = ["GridSpec"]

# Safety margin below 2**63 when checking that the virtual (dense) grid's cell
# count is linearizable in int64. The grid is never materialized densely; the
# bound only protects the linear-id arithmetic.
_MAX_LINEAR_CELLS = np.iinfo(np.int64).max // 4


@dataclass(frozen=True)
class GridSpec:
    """Geometry of an ε-grid over a bounding box.

    Attributes
    ----------
    epsilon:
        The query distance threshold.
    cell_length:
        Cell edge length. Normally equals ``epsilon``; when ε is so small
        that the virtual dense grid would not linearize in int64 (e.g.
        ε = 1e-9 over a unit box), cells are *coarsened* — the 3**n
        adjacency guarantee only needs ``cell_length >= epsilon``, so
        results stay exact while candidate sets grow (an honest cost the
        performance model then charges).
    mins, maxs:
        Bounding box of the indexed data, shape ``(n,)`` each.
    widths:
        Number of cells along each dimension, shape ``(n,)`` int64.
    strides:
        Row-major strides such that ``linear_id = coords @ strides``.
    """

    epsilon: float
    mins: np.ndarray
    maxs: np.ndarray
    cell_length: float = field(init=False)
    widths: np.ndarray = field(init=False)
    strides: np.ndarray = field(init=False)

    def __post_init__(self):
        eps = check_epsilon(self.epsilon)
        mins = np.asarray(self.mins, dtype=np.float64)
        maxs = np.asarray(self.maxs, dtype=np.float64)
        if mins.ndim != 1 or mins.shape != maxs.shape:
            raise ValueError("mins and maxs must be 1-D arrays of equal length")
        if np.any(maxs < mins):
            raise ValueError("maxs must be >= mins in every dimension")
        object.__setattr__(self, "epsilon", eps)
        object.__setattr__(self, "mins", mins)
        object.__setattr__(self, "maxs", maxs)

        spans = maxs - mins
        length = eps
        for _ in range(128):
            # At least one cell per dimension; +1 guards the point sitting
            # exactly on the upper boundary.
            widths = np.floor(spans / length).astype(np.int64) + 1
            total = 1
            for w in widths.tolist():
                total *= int(w)
                if total > _MAX_LINEAR_CELLS:
                    break
            if total <= _MAX_LINEAR_CELLS:
                break
            length *= 2.0  # coarsen until the virtual grid linearizes
        else:  # pragma: no cover - 2**128 coarsening always suffices
            raise ValueError("could not coarsen the grid to a linearizable size")
        strides = np.empty_like(widths)
        strides[-1] = 1
        for j in range(len(widths) - 2, -1, -1):
            strides[j] = strides[j + 1] * widths[j + 1]
        object.__setattr__(self, "cell_length", float(length))
        object.__setattr__(self, "widths", widths)
        object.__setattr__(self, "strides", strides)

    @property
    def is_coarsened(self) -> bool:
        """True when cells are larger than ε (tiny-ε degradation mode)."""
        return self.cell_length > self.epsilon

    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points, epsilon: float) -> "GridSpec":
        """Build the spec from a dataset's bounding box."""
        pts = as_points_array(points)
        if pts.shape[0] == 0:
            n = pts.shape[1]
            return cls(epsilon, np.zeros(n), np.zeros(n))
        return cls(epsilon, pts.min(axis=0), pts.max(axis=0))

    @property
    def ndim(self) -> int:
        """Dimensionality of the indexed space."""
        return len(self.widths)

    @property
    def total_cells(self) -> int:
        """Number of cells of the *virtual* dense grid (never materialized)."""
        return int(np.prod(self.widths))

    # ------------------------------------------------------------------
    def cell_coords(self, points: np.ndarray, *, clamp: bool = True) -> np.ndarray:
        """n-D cell coordinates of each point, shape ``(N, n)`` int64.

        With ``clamp=True`` (the default, used when indexing), points
        outside the bounding box are clamped to the boundary cells. Pass
        ``clamp=False`` for *external query points* (the bipartite join):
        their true — possibly out-of-grid — coordinates are returned, so a
        query just outside the box still probes the boundary cells via its
        in-bounds neighbor offsets, while a far-away query probes nothing.
        """
        pts = as_points_array(points)
        if pts.shape[1] != self.ndim:
            raise ValueError(
                f"points have {pts.shape[1]} dimensions, grid has {self.ndim}"
            )
        coords = np.floor((pts - self.mins) / self.cell_length).astype(np.int64)
        if clamp:
            np.clip(coords, 0, self.widths - 1, out=coords)
        return coords

    def linearize(self, coords: np.ndarray) -> np.ndarray:
        """Row-major linear id of cell coordinates (``(..., n)`` → ``(...,)``).

        This is the unique linear id the LID-UNICOMP pattern orders cells by.
        """
        coords = np.asarray(coords, dtype=np.int64)
        return coords @ self.strides

    def delinearize(self, linear_ids: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`linearize` (``(...,)`` → ``(..., n)``)."""
        ids = np.asarray(linear_ids, dtype=np.int64)
        out = np.empty(ids.shape + (self.ndim,), dtype=np.int64)
        rem = ids
        for j in range(self.ndim):
            out[..., j] = rem // self.strides[j]
            rem = rem % self.strides[j]
        return out

    def in_bounds(self, coords: np.ndarray) -> np.ndarray:
        """Boolean mask of cell coordinates inside the grid, shape ``(...,)``."""
        coords = np.asarray(coords)
        return np.logical_and(coords >= 0, coords < self.widths).all(axis=-1)

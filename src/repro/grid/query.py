"""Vectorized exact range queries over the ε-grid.

This is the host-side (NumPy) reference path: it produces exact candidate
blocks, neighbor counts and the full self-join pair set using the FULL
access pattern. It serves three roles:

1. the batching scheme's result-size estimator (Section II-C2) runs it on a
   sample of points;
2. tests cross-check every VM kernel against it;
3. examples use it when they only need results, not simulated hardware
   metrics.

The pair construction is loop-free: for each of the 3**n neighbor offsets,
all (query point, candidate) index pairs are materialized with
repeat/gather arithmetic and refined with one vectorized distance pass.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.grid.index import GridIndex
from repro.grid.neighbors import neighbor_offsets, neighbor_ranks_for_offset
from repro.util import gather_slices

__all__ = [
    "grid_neighbor_counts",
    "grid_selfjoin_pairs",
    "iter_candidate_blocks",
]

_DEFAULT_CHUNK = 4_000_000  # candidate pairs per processed block


def iter_candidate_blocks(
    index: GridIndex,
    point_ids: np.ndarray | None = None,
    *,
    chunk_pairs: int = _DEFAULT_CHUNK,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(query_idx, candidate_idx)`` blocks covering all candidates.

    Every (query, candidate-in-adjacent-cell) index pair — including the
    query's own cell and the identity pair — appears in exactly one yielded
    block. ``point_ids`` restricts the query side (default: all points).
    Blocks are bounded by ``chunk_pairs`` to cap peak memory.
    """
    if chunk_pairs < 1:
        raise ValueError("chunk_pairs must be >= 1")
    if point_ids is None:
        queries = np.arange(index.num_points, dtype=np.int64)
    else:
        queries = np.asarray(point_ids, dtype=np.int64)
    if queries.size == 0 or index.num_points == 0:
        return
    q_rank = index.point_cell_rank[queries]

    for off in neighbor_offsets(index.ndim):
        nbr_of_cell = neighbor_ranks_for_offset(index, off)
        nbr = nbr_of_cell[q_rank]
        valid = nbr >= 0
        if not valid.any():
            continue
        q_sel = queries[valid]
        n_sel = nbr[valid]
        lengths = index.cell_counts[n_sel]
        # emit in chunks of queries whose cumulative candidate count fits
        csum = np.cumsum(lengths)
        start = 0
        while start < len(q_sel):
            base = csum[start - 1] if start > 0 else 0
            # largest stop with csum[stop-1] - base <= chunk_pairs, but at
            # least one query per block so oversized cells still progress
            stop = int(np.searchsorted(csum, base + chunk_pairs, side="right"))
            stop = min(max(stop, start + 1), len(q_sel))
            sl = slice(start, stop)
            lens = lengths[sl]
            qi = np.repeat(q_sel[sl], lens)
            cj = gather_slices(
                index.point_order, index.cell_starts[n_sel[sl]], lens
            )
            if qi.size:
                yield qi, cj
            start = stop


def grid_neighbor_counts(
    index: GridIndex,
    point_ids: np.ndarray | None = None,
    *,
    include_self: bool = True,
    chunk_pairs: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """Exact ε-neighbor count of each requested point (result-set row count).

    Returned counts align with ``point_ids`` order (or all points).
    """
    if point_ids is None:
        queries = np.arange(index.num_points, dtype=np.int64)
    else:
        queries = np.asarray(point_ids, dtype=np.int64)
    # Accumulate over the sample only, not all N points: the estimator
    # calls this on a ~1% sample, and an O(N) scratch array would force a
    # full-resident allocation even for memory-mapped datasets.
    unique_queries, inverse = np.unique(queries, return_inverse=True)
    counts_unique = np.zeros(len(unique_queries), dtype=np.int64)
    eps2 = index.epsilon * index.epsilon
    pts = index.points
    for qi, cj in iter_candidate_blocks(index, queries, chunk_pairs=chunk_pairs):
        d2 = ((pts[qi] - pts[cj]) ** 2).sum(axis=1)
        hit = d2 <= eps2
        if not include_self:
            hit &= qi != cj
        slots = np.searchsorted(unique_queries, qi[hit])
        np.add.at(counts_unique, slots, 1)
    return counts_unique[inverse]


def grid_selfjoin_pairs(
    index: GridIndex,
    *,
    include_self: bool = True,
    chunk_pairs: int = _DEFAULT_CHUNK,
) -> np.ndarray:
    """The exact self-join result: all ordered pairs within ε, shape (M, 2)."""
    eps2 = index.epsilon * index.epsilon
    pts = index.points
    found: list[np.ndarray] = []
    for qi, cj in iter_candidate_blocks(index, chunk_pairs=chunk_pairs):
        d2 = ((pts[qi] - pts[cj]) ** 2).sum(axis=1)
        hit = d2 <= eps2
        if not include_self:
            hit &= qi != cj
        if hit.any():
            found.append(np.stack([qi[hit], cj[hit]], axis=1))
    if not found:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(found, axis=0)

"""Neighbor-cell enumeration for ε-grid range queries.

In ``n`` dimensions a query point's ε-neighborhood is contained in the
≤ 3**n cells whose coordinates differ from the query's cell by -1/0/+1 in
every dimension. Two access paths are provided:

- per-cell (:func:`neighbor_ranks_of_cell`) — used by the SIMT-VM kernels,
  which walk one query point at a time;
- per-offset over *all* cells at once (:func:`neighbor_ranks_for_offset`) —
  used by the vectorized workload/performance model, which streams the 3**n
  offsets instead of materializing a (cells × 3**n) table.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.grid.index import GridIndex

__all__ = [
    "neighbor_offsets",
    "neighbor_ranks_for_offset",
    "neighbor_ranks_of_cell",
    "offset_linear_deltas",
]


@lru_cache(maxsize=None)
def _neighbor_offsets_cached(ndim: int) -> np.ndarray:
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    grids = np.meshgrid(*([np.array([-1, 0, 1], dtype=np.int64)] * ndim), indexing="ij")
    out = np.stack([g.ravel() for g in grids], axis=1)
    out.setflags(write=False)
    return out


def neighbor_offsets(ndim: int) -> np.ndarray:
    """All ``3**ndim`` coordinate offsets in canonical row-major order.

    Row ``3**ndim // 2`` is the zero offset (the cell itself). The returned
    array is cached and read-only.
    """
    return _neighbor_offsets_cached(ndim)


def offset_linear_deltas(index: GridIndex, offsets: np.ndarray | None = None) -> np.ndarray:
    """Linear-id delta contributed by each offset: ``delta = offset @ strides``.

    Because linear ids are affine in cell coordinates, the sign of an
    offset's delta alone decides whether a neighbor has a higher linear id
    than the origin cell — the fact LID-UNICOMP exploits.
    """
    if offsets is None:
        offsets = neighbor_offsets(index.ndim)
    return np.asarray(offsets, dtype=np.int64) @ index.spec.strides


def neighbor_ranks_for_offset(index: GridIndex, offset: np.ndarray) -> np.ndarray:
    """For every non-empty cell, the rank of the cell at ``coords + offset``.

    Returns an int64 array of length ``num_nonempty_cells`` where entries are
    -1 when the neighbor is outside the grid or empty.
    """
    offset = np.asarray(offset, dtype=np.int64)
    coords = index.cell_coords_arr + offset
    inside = index.spec.in_bounds(coords)
    ranks = np.full(index.num_nonempty_cells, -1, dtype=np.int64)
    if inside.any():
        ids = index.spec.linearize(coords[inside])
        ranks[inside] = index.lookup(ids)
    return ranks


def neighbor_ranks_of_cell(index: GridIndex, rank: int, *, include_self: bool = True) -> np.ndarray:
    """Ranks of the non-empty cells adjacent to non-empty cell ``rank``.

    The kernel-facing single-cell variant. ``include_self`` controls whether
    the origin cell itself appears in the result (it does for the standard
    3**n search).
    """
    offsets = neighbor_offsets(index.ndim)
    coords = index.cell_coords_arr[rank] + offsets
    inside = index.spec.in_bounds(coords)
    ids = index.spec.linearize(coords[inside])
    ranks = index.lookup(ids)
    ranks = ranks[ranks >= 0]
    if not include_self:
        ranks = ranks[ranks != rank]
    return ranks

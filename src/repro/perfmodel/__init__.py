"""Vectorized performance model — the VM's analytic twin at scale.

The SIMT VM executes real kernels thread by thread, which is exact but
Python-speed. For paper-scale datasets (millions of points) this package
evaluates *the same cost equations* with NumPy over whole arrays:

- per-thread cycles from the grid's exact candidate populations
  (:mod:`repro.perfmodel.workload`),
- warp durations as per-label lock-step maxima and WEE
  (:mod:`repro.perfmodel.warps`),
- kernel makespan by greedy scheduling onto the device's warp slots, batch
  composition, and the 3-stream transfer pipeline
  (:mod:`repro.perfmodel.kerneltime`),
- the SUPER-EGO CPU baseline's time from its measured operation counts
  (:mod:`repro.perfmodel.cputime`).

Agreement with the VM is enforced by tests: for any small input, model
warp durations, WEE and makespan must match the VM's measurements exactly
(with emission cost disabled, the one quantity the model estimates rather
than measures).
"""

from repro.perfmodel.constants import CpuCostParams
from repro.perfmodel.kerneltime import SimulatedRun
from repro.perfmodel.model import PerformanceModel
from repro.perfmodel.sensitivity import SensitivityReport, sweep_cost_sensitivity
from repro.perfmodel.workload import BipartiteProfile, WorkloadProfile

__all__ = [
    "BipartiteProfile",
    "CpuCostParams",
    "PerformanceModel",
    "SensitivityReport",
    "SimulatedRun",
    "WorkloadProfile",
    "sweep_cost_sensitivity",
]

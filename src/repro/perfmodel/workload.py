"""Workload profiling of a dataset under the grid index.

A :class:`WorkloadProfile` wraps a :class:`~repro.grid.GridIndex` and
lazily computes (and caches) everything the performance model needs:

- per-cell pattern workload components for each (pattern, k) requested;
- exact per-point ε-neighbor counts (result-set row counts), used for
  emission costs, transfer sizes, and the result-size estimators;
- both estimator variants of the batching scheme.

Profiles are computed once per (dataset, ε) and shared across all the
optimization configurations of an experiment — the dominant cost of a
benchmark sweep is here, not in the per-config model evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import pattern_offset_selector
from repro.core.sortbywl import (
    WorkloadComponents,
    pattern_workload_components,
    sort_by_workload,
)
from repro.grid import GridIndex, neighbor_offsets, neighbor_ranks_for_offset
from repro.grid.query import grid_neighbor_counts
from repro.util import gather_slices

__all__ = ["BipartiteProfile", "WorkloadProfile"]


class WorkloadProfile:
    """Cached workload quantities of one (dataset, ε) pair."""

    def __init__(self, index: GridIndex, *, include_self: bool = True):
        self.index = index
        self.include_self = include_self
        self._components: dict[tuple[str, int], WorkloadComponents] = {}
        self._neighbor_counts: np.ndarray | None = None
        self._orders: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def components(self, pattern: str, k: int = 1) -> WorkloadComponents:
        """Per-cell workload components under (pattern, k), cached."""
        key = (pattern, k)
        if key not in self._components:
            self._components[key] = pattern_workload_components(
                self.index, pattern, k
            )
        return self._components[key]

    def neighbor_counts(self) -> np.ndarray:
        """Exact per-point result-set row counts (one vectorized join pass)."""
        if self._neighbor_counts is None:
            self._neighbor_counts = grid_neighbor_counts(
                self.index, include_self=self.include_self
            )
        return self._neighbor_counts

    def total_result_size(self) -> int:
        """Exact total result rows |R|."""
        return int(self.neighbor_counts().sum())

    def sorted_order(self, pattern: str) -> np.ndarray:
        """The SORTBYWL permutation D' under ``pattern``, cached."""
        if pattern not in self._orders:
            self._orders[pattern] = sort_by_workload(self.index, pattern)
        return self._orders[pattern]

    # ------------------------------------------------------------------
    def estimate_strided(self, sample_fraction: float) -> int:
        """The Section II-C2 estimator: strided sample, scaled up.

        Uses the already-computed exact counts — statistically identical to
        re-running the sample's range queries.
        """
        n = self.index.num_points
        if n == 0:
            return 0
        counts = self.neighbor_counts()
        sample_size = max(1, int(round(n * sample_fraction)))
        step = max(1, n // sample_size)
        sample = counts[::step]
        return int(np.ceil(sample.sum() * (n / len(sample))))

    def estimate_head(self, sample_fraction: float, pattern: str) -> int:
        """The WORKQUEUE estimator: first 1 % of D' (heaviest points)."""
        n = self.index.num_points
        if n == 0:
            return 0
        counts = self.neighbor_counts()
        order = self.sorted_order(pattern)
        sample_size = max(1, int(round(n * sample_fraction)))
        head = counts[order[:sample_size]]
        return int(np.ceil(head.sum() * (n / len(head))))

    # ------------------------------------------------------------------
    def emitted_rows(self, pattern: str) -> np.ndarray:
        """Result rows *emitted by each point's thread group* under
        ``pattern`` — what sizes a batch's output buffer.

        FULL emits one direction per thread, so a point emits exactly its
        neighbor count. The half-patterns emit the own-cell hits once and
        *mirror* every hit found in a pattern cell, so a point emits
        ``own_hits + 2 · pattern_cell_hits``. Summed over the dataset this
        equals the total result size for every pattern — per batch it does
        not, which is why the batch planner needs this exact breakdown.
        """
        if pattern == "full":
            return self.neighbor_counts()
        key = f"_emit_{pattern}"
        cached = getattr(self, key, None)
        if cached is None:
            own = self._own_cell_hits()
            cross = self._pattern_cell_hits(pattern)
            cached = own + 2 * cross
            setattr(self, key, cached)
        return cached

    def _own_cell_hits(self) -> np.ndarray:
        """Per-point ε-hits within the point's own cell."""
        if getattr(self, "_own_hits", None) is None:
            index = self.index
            counts = np.zeros(index.num_points, dtype=np.int64)
            eps2 = index.epsilon**2
            pts = index.points
            lens = index.cell_counts
            qi = np.repeat(
                gather_slices(index.point_order, index.cell_starts, lens),
                np.repeat(lens, lens),
            )
            cj = gather_slices(
                index.point_order,
                np.repeat(index.cell_starts, lens),
                np.repeat(lens, lens),
            )
            d2 = ((pts[qi] - pts[cj]) ** 2).sum(axis=1)
            hit = d2 <= eps2
            if not self.include_self:
                hit &= qi != cj
            np.add.at(counts, qi[hit], 1)
            self._own_hits = counts
        return self._own_hits

    def _pattern_cell_hits(self, pattern: str) -> np.ndarray:
        """Per-point ε-hits found in the point's *pattern* cells (the cells
        whose results get mirrored)."""
        index = self.index
        counts = np.zeros(index.num_points, dtype=np.int64)
        eps2 = index.epsilon**2
        pts = index.points
        offs = neighbor_offsets(index.ndim)
        zero_idx = len(offs) // 2
        selector = pattern_offset_selector(pattern, index)
        for oi, off in enumerate(offs):
            if oi == zero_idx:
                continue
            mask = selector(oi)
            if not mask.any():
                continue
            ranks = neighbor_ranks_for_offset(index, off)
            sel = np.flatnonzero(mask & (ranks >= 0))
            if not len(sel):
                continue
            q_lens = index.cell_counts[sel]
            nb = ranks[sel]
            qi = np.repeat(
                gather_slices(index.point_order, index.cell_starts[sel], q_lens),
                np.repeat(index.cell_counts[nb], q_lens),
            )
            cj = gather_slices(
                index.point_order,
                np.repeat(index.cell_starts[nb], q_lens),
                np.repeat(index.cell_counts[nb], q_lens),
            )
            d2 = ((pts[qi] - pts[cj]) ** 2).sum(axis=1)
            hit = d2 <= eps2
            np.add.at(counts, qi[hit], 1)
        return counts

    # ------------------------------------------------------------------
    def total_candidates(self, pattern: str) -> int:
        """Total candidate distance computations under ``pattern``
        (the quantity the half-patterns halve)."""
        comps = self.components(pattern, 1)
        return int(
            (comps.candidates * self.index.cell_counts).sum()
        )


class BipartiteProfile:
    """Cached workload quantities of one (A, B, ε) bipartite join.

    The bipartite analogue of :class:`WorkloadProfile`: per-*query*
    candidate totals, probed-cell counts, exact result counts and the
    workload-sorted query order. Always full-pattern (the unidirectional
    patterns do not apply without self-join symmetry).
    """

    def __init__(self, index: GridIndex, queries: np.ndarray):
        from repro.grid.bipartite import (
            bipartite_neighbor_counts,
            bipartite_workloads,
        )
        from repro.util import as_points_array, stable_argsort_desc

        self.index = index
        self.queries = as_points_array(queries)
        self.candidates, self.visited_cells = bipartite_workloads(
            index, self.queries
        )
        self.counts = bipartite_neighbor_counts(index, self.queries)
        self.sorted_order = stable_argsort_desc(self.candidates)

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    def total_result_size(self) -> int:
        return int(self.counts.sum())

    def estimate(self, sample_fraction: float, *, head: bool) -> int:
        """The batching estimators over the query side (strided or
        heaviest-first), evaluated on the exact per-query counts."""
        if not 0 < sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        nq = self.num_queries
        if nq == 0:
            return 0
        sample_size = max(1, int(round(nq * sample_fraction)))
        if head:
            sample = self.counts[self.sorted_order[:sample_size]]
        else:
            step = max(1, nq // sample_size)
            sample = self.counts[::step]
        return int(np.ceil(sample.sum() * (nq / len(sample))))

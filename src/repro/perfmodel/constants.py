"""CPU-side cost constants for the SUPER-EGO baseline model.

GPU costs live in :class:`repro.simt.CostParams` (shared with the VM). The
CPU model charges cycles per operation on a Xeon E5-2620v4-class core; the
throughput-relevant constant — cycles per candidate distance computation —
is the one calibrated constant of the GPU-vs-CPU comparison (see
EXPERIMENTS.md §calibration).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuCostParams"]


@dataclass(frozen=True)
class CpuCostParams:
    """Per-operation cycle costs of the modeled CPU baseline.

    Attributes
    ----------
    c_dist_base, c_dist_dim:
        Cycles per candidate distance computation
        (``c_dist_base + ndim * c_dist_dim``), *before* the SIMD divisor
        (``CpuSpec.simd_lanes``). SUPER-EGO's inner loop is vectorized but
        branchy and memory-bound; the defaults put the modeled 16-core
        refinement throughput at ~7.6e8 candidates/s in 2-D — the regime
        published measurements of SUPER-EGO fall in (1e8–1e9/s).
    c_sort_per_key:
        Cycles per key per comparison level of the EGO sort
        (≈ c · N log N total).
    c_reorder_per_point:
        Dimension-reordering pass per point per dimension.
    """

    c_dist_base: float = 100.0
    c_dist_dim: float = 25.0
    c_sort_per_key: float = 8.0
    c_reorder_per_point: float = 4.0

    def __post_init__(self):
        for name in (
            "c_dist_base",
            "c_dist_dim",
            "c_sort_per_key",
            "c_reorder_per_point",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def dist_cost(self, ndim: int) -> float:
        """Cycles for one candidate distance computation in ``ndim`` dims."""
        if ndim < 1:
            raise ValueError("ndim must be >= 1")
        return self.c_dist_base + ndim * self.c_dist_dim

"""Modeled SUPER-EGO execution time on the paper's 16-core testbed.

The algorithm's *work* is measured (exact operation counts from the real
EGO-join); only the machine is modeled: a 2×E5-2620v4 with hand-vectorized
(SIMD) refinement and a parallel sort, as in Kalashnikov's implementation.

Time composition::

    T = reorder + sort/P' + (sequence overhead + refinement/SIMD)/P'

with ``P' = cores × parallel_efficiency``. The distance-refinement constant
is the single calibrated scalar of the GPU-vs-CPU comparison
(EXPERIMENTS.md §calibration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ego.egojoin import EgoOpCounts
from repro.perfmodel.constants import CpuCostParams
from repro.simt.device import CPU_XEON_E5_2620V4, CpuSpec

__all__ = ["CpuRun", "superego_seconds"]

_SEQ_COMPARE_CYCLES = 60.0  # slice bookkeeping + bbox compare per sequence pair


@dataclass(frozen=True)
class CpuRun:
    """Modeled CPU execution of one SUPER-EGO join."""

    total_seconds: float
    sort_seconds: float
    join_seconds: float
    distance_computations: int

    @property
    def config_description(self) -> str:
        return "super-ego (16-core model)"


def superego_seconds(
    counts: EgoOpCounts,
    num_points: int,
    ndim: int,
    *,
    cpu: CpuSpec = CPU_XEON_E5_2620V4,
    costs: CpuCostParams | None = None,
) -> CpuRun:
    """Convert measured EGO-join op counts into modeled wall seconds."""
    if num_points < 0 or ndim < 1:
        raise ValueError("num_points must be >= 0 and ndim >= 1")
    c = costs if costs is not None else CpuCostParams()
    p_eff = cpu.num_cores * cpu.parallel_efficiency

    reorder = num_points * ndim * c.c_reorder_per_point
    log_n = math.log2(num_points) if num_points > 1 else 1.0
    sort = num_points * log_n * c.c_sort_per_key

    refine = counts.distance_computations * c.dist_cost(ndim) / cpu.simd_lanes
    seq = counts.sequence_comparisons * _SEQ_COMPARE_CYCLES

    sort_cycles = (reorder + sort) / p_eff
    join_cycles = (refine + seq) / p_eff
    return CpuRun(
        total_seconds=cpu.cycles_to_seconds(sort_cycles + join_cycles),
        sort_seconds=cpu.cycles_to_seconds(sort_cycles),
        join_seconds=cpu.cycles_to_seconds(join_cycles),
        distance_computations=counts.distance_computations,
    )

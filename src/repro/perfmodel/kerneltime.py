"""From warp durations to end-to-end simulated response time.

Per batch: greedy-schedule warp durations onto the device's warp slots
(random issue order for the stock scheduler, in-order for the work-queue's
forced most-work-first), convert cycles to seconds, attach the batch's
result-transfer time, then push all batches through the 3-stream pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simt import CostParams, DeviceSpec, makespan
from repro.simt.streams import PipelineResult, simulate_stream_pipeline

__all__ = ["BatchTiming", "SimulatedRun", "schedule_batches"]

_PAIR_BYTES = 16


@dataclass(frozen=True)
class BatchTiming:
    """Per-batch modeled quantities."""

    kernel_seconds: float
    transfer_seconds: float
    num_warps: int
    busy_cycles: float
    active_cycles: float
    result_rows: int


@dataclass(frozen=True)
class SimulatedRun:
    """Modeled outcome of one self-join execution — the analytic analogue
    of :class:`repro.core.JoinResult` (metrics without the pairs)."""

    total_seconds: float
    batches: list[BatchTiming] = field(repr=False)
    pipeline: PipelineResult = field(repr=False)
    warp_size: int = 32
    config_description: str = ""

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def kernel_seconds(self) -> float:
        return float(sum(b.kernel_seconds for b in self.batches))

    @property
    def warp_execution_efficiency(self) -> float:
        active = sum(b.active_cycles for b in self.batches)
        busy = sum(b.busy_cycles for b in self.batches)
        if busy == 0:
            return 1.0
        return active / (self.warp_size * busy)

    @property
    def total_result_rows(self) -> int:
        return int(sum(b.result_rows for b in self.batches))

    @property
    def num_warps(self) -> int:
        return int(sum(b.num_warps for b in self.batches))


def schedule_batches(
    batch_models,
    batch_result_rows,
    device: DeviceSpec,
    costs: CostParams,
    *,
    issue_order: str,
    num_streams: int,
    seed: int = 0,
    config_description: str = "",
) -> SimulatedRun:
    """Schedule each batch's warps and compose the stream pipeline.

    Parameters
    ----------
    batch_models:
        Sequence of :class:`repro.perfmodel.warps.BatchWarpModel`.
    batch_result_rows:
        Result rows produced by each batch (drives transfer time).
    issue_order:
        ``"fifo"`` (work-queue: warps already in most-work-first order) or
        ``"random"`` (stock hardware scheduler).
    """
    timings: list[BatchTiming] = []
    warp_size = 32
    for model, rows in zip(batch_models, batch_result_rows):
        warp_size = model.warp_size
        durations = model.durations_with_launch(costs)
        sched = makespan(
            durations, device.warp_slots, order=issue_order, seed=seed
        )
        kern_s = device.cycles_to_seconds(sched.makespan_cycles)
        xfer_s = rows * _PAIR_BYTES / device.pcie_bandwidth
        timings.append(
            BatchTiming(
                kernel_seconds=kern_s,
                transfer_seconds=xfer_s,
                num_warps=model.num_warps,
                busy_cycles=float(model.busy.sum()),
                active_cycles=float(model.active.sum()),
                result_rows=int(rows),
            )
        )
    pipeline = simulate_stream_pipeline(
        [t.kernel_seconds for t in timings],
        [t.transfer_seconds for t in timings],
        num_streams=num_streams,
    )
    return SimulatedRun(
        total_seconds=pipeline.total_seconds,
        batches=timings,
        pipeline=pipeline,
        warp_size=warp_size,
        config_description=config_description,
    )

"""The performance-model facade.

Mirrors :class:`repro.core.SelfJoin` step for step — same sorted order,
same estimators, same batch plan, same issue order — but evaluates the cost
equations vectorially instead of executing kernels, so it scales to the
paper's dataset sizes. Tests pin the two implementations together on small
inputs.
"""

from __future__ import annotations

import numpy as np

from repro.core.batching import plan_batches, plan_batches_balanced
from repro.core.config import OptimizationConfig
from repro.grid import GridIndex
from repro.perfmodel.kerneltime import SimulatedRun, schedule_batches
from repro.perfmodel.warps import model_batch_warps, model_warps_from_arrays
from repro.perfmodel.workload import BipartiteProfile, WorkloadProfile
from repro.simt import CostParams, DeviceSpec
from repro.util import check_epsilon

__all__ = ["PerformanceModel"]

_MAX_REPLANS = 8


class PerformanceModel:
    """Analytic simulator of the self-join on the modeled GPU.

    Parameters mirror :class:`repro.core.SelfJoin`. A single model instance
    can evaluate many configurations against one cached
    :class:`WorkloadProfile` — the intended benchmark-sweep usage::

        model = PerformanceModel()
        profile = model.profile(points, eps)
        for name, cfg in PRESETS.items():
            run = model.estimate(profile, cfg)
    """

    def __init__(
        self,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        *,
        include_self: bool = True,
        seed: int = 0,
    ):
        self.device = device if device is not None else DeviceSpec()
        self.costs = costs if costs is not None else CostParams()
        self.include_self = include_self
        self.seed = seed

    # ------------------------------------------------------------------
    def profile(self, points, epsilon: float) -> WorkloadProfile:
        """Build (once) the workload profile of a (dataset, ε) pair."""
        check_epsilon(epsilon)
        return WorkloadProfile(GridIndex(points, epsilon), include_self=self.include_self)

    # ------------------------------------------------------------------
    def estimate(
        self,
        profile: WorkloadProfile,
        config: OptimizationConfig | None = None,
        *,
        seed: int | None = None,
    ) -> SimulatedRun:
        """Model one configuration's execution over a cached profile.

        ``seed`` overrides the scheduler-shuffle seed for this run only —
        how trial averaging varies the one stochastic component (the
        hardware scheduler's issue order).
        """
        cfg = config if config is not None else OptimizationConfig()
        index = profile.index
        n = index.num_points

        if cfg.uses_sorted_points:
            order = profile.sorted_order(cfg.pattern)
        else:
            order = np.arange(n, dtype=np.int64)

        if cfg.work_queue:
            est = profile.estimate_head(cfg.sample_fraction, cfg.pattern)
        else:
            est = profile.estimate_strided(cfg.sample_fraction)

        # Mirror SelfJoin's overflow recovery: if any batch would emit more
        # rows than the buffer holds, the estimate doubles and re-plans.
        emitted = profile.emitted_rows(cfg.pattern)
        weights = (
            profile.components(cfg.pattern, 1).candidates[
                index.point_cell_rank[order]
            ].astype(float)
            if cfg.balanced_batches
            else None
        )
        for _ in range(_MAX_REPLANS):
            if cfg.balanced_batches:
                plan = plan_batches_balanced(
                    order, weights, est, cfg.batch_result_capacity
                )
            else:
                plan = plan_batches(
                    order, est, cfg.batch_result_capacity, strided=not cfg.work_queue
                )
            batch_rows = [int(emitted[batch].sum()) for batch in plan.batches]
            if all(r <= cfg.batch_result_capacity for r in batch_rows):
                break
            est = max(est * 2, cfg.batch_result_capacity + 1)
        else:
            raise RuntimeError(
                f"batch planning failed to converge after {_MAX_REPLANS} attempts"
            )

        batch_models = [
            model_batch_warps(
                profile,
                batch,
                k=cfg.k,
                pattern=cfg.pattern,
                costs=self.costs,
                work_queue=cfg.work_queue,
                warp_size=self.device.warp_size,
            )
            for batch in plan.batches
        ]

        return schedule_batches(
            batch_models,
            batch_rows,
            self.device,
            self.costs,
            issue_order="fifo" if cfg.work_queue else "random",
            num_streams=cfg.num_streams,
            seed=self.seed if seed is None else seed,
            config_description=cfg.describe(),
        )

    # ------------------------------------------------------------------
    def estimate_points(
        self, points, epsilon: float, config: OptimizationConfig | None = None
    ) -> SimulatedRun:
        """One-shot convenience: profile + estimate."""
        return self.estimate(self.profile(points, epsilon), config)

    # ------------------------------------------------------------------
    def profile_bipartite(self, left, right, epsilon: float) -> BipartiteProfile:
        """Workload profile of a bipartite join (index on ``right``)."""
        check_epsilon(epsilon)
        return BipartiteProfile(GridIndex(right, epsilon), left)

    def estimate_bipartite(
        self,
        profile: BipartiteProfile,
        config: OptimizationConfig | None = None,
    ) -> SimulatedRun:
        """Model a bipartite join execution (full pattern only)."""
        cfg = config if config is not None else OptimizationConfig()
        if cfg.pattern != "full":
            raise ValueError("the bipartite join requires pattern='full'")
        nq = profile.num_queries

        if cfg.uses_sorted_points:
            order = profile.sorted_order
        else:
            order = np.arange(nq, dtype=np.int64)
        est = profile.estimate(cfg.sample_fraction, head=cfg.work_queue)
        weights = (
            profile.candidates[order].astype(float) if cfg.balanced_batches else None
        )

        for _ in range(_MAX_REPLANS):
            if cfg.balanced_batches:
                plan = plan_batches_balanced(
                    order, weights, est, cfg.batch_result_capacity
                )
            else:
                plan = plan_batches(
                    order, est, cfg.batch_result_capacity, strided=not cfg.work_queue
                )
            batch_rows = [int(profile.counts[b].sum()) for b in plan.batches]
            if all(r <= cfg.batch_result_capacity for r in batch_rows):
                break
            est = max(est * 2, cfg.batch_result_capacity + 1)
        else:
            raise RuntimeError(
                f"batch planning failed to converge after {_MAX_REPLANS} attempts"
            )

        batch_models = [
            model_warps_from_arrays(
                profile.visited_cells[batch],
                profile.candidates[batch],
                profile.counts[batch],
                ndim=profile.index.ndim,
                k=cfg.k,
                costs=self.costs,
                work_queue=cfg.work_queue,
                warp_size=self.device.warp_size,
            )
            for batch in plan.batches
        ]
        return schedule_batches(
            batch_models,
            batch_rows,
            self.device,
            self.costs,
            issue_order="fifo" if cfg.work_queue else "random",
            num_streams=cfg.num_streams,
            seed=self.seed,
            config_description=f"bipartite {cfg.describe()}",
        )

"""Sensitivity analysis: do the paper's orderings survive cost-constant
perturbation?

The cost model has calibrated constants (EXPERIMENTS.md §calibration). A
reproduction is only credible if its *qualitative* conclusions do not
hinge on those choices, so this module re-evaluates a set of
configurations under multiplicative perturbations of each cost constant
and reports every pairwise time-ordering that flips.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.config import OptimizationConfig
from repro.perfmodel.model import PerformanceModel
from repro.perfmodel.workload import WorkloadProfile
from repro.simt import CostParams, DeviceSpec
from repro.util import Table

__all__ = ["OrderingFlip", "SensitivityReport", "sweep_cost_sensitivity"]

_COST_FIELDS = (
    "c_setup",
    "c_cell",
    "c_dist_base",
    "c_dist_dim",
    "c_emit",
    "c_atomic",
    "c_warp_launch",
)


@dataclass(frozen=True)
class OrderingFlip:
    """One pairwise ordering that changed under a perturbation."""

    field: str
    factor: float
    faster: str  # config that wins under the perturbation
    slower: str  # config that won at baseline


@dataclass(frozen=True)
class SensitivityReport:
    """Outcome of a sensitivity sweep."""

    baseline_order: list[str]  # configs fastest-first at baseline constants
    flips: list[OrderingFlip]
    cells_checked: int

    @property
    def is_robust(self) -> bool:
        return not self.flips

    def render(self) -> str:
        t = Table(
            ["perturbed constant", "factor", "new winner", "baseline winner"],
            title=(
                f"Sensitivity: baseline order {' < '.join(self.baseline_order)}"
                f" ({self.cells_checked} perturbations)"
            ),
        )
        if not self.flips:
            t.add_row(["(none)", "-", "-", "-"])
        for f in self.flips:
            t.add_row([f.field, f.factor, f.faster, f.slower])
        return t.render()


def sweep_cost_sensitivity(
    profile: WorkloadProfile,
    configs: dict[str, OptimizationConfig],
    *,
    factors: tuple[float, ...] = (0.5, 2.0),
    fields: tuple[str, ...] = _COST_FIELDS,
    device: DeviceSpec | None = None,
    base_costs: CostParams | None = None,
    seed: int = 0,
) -> SensitivityReport:
    """Perturb each cost constant by each factor; collect ordering flips.

    ``configs`` maps display names to configurations; the report's
    ``baseline_order`` is their time-ordering at the unperturbed constants
    and ``flips`` lists every pairwise inversion any perturbation causes.
    """
    if not configs:
        raise ValueError("configs must not be empty")
    base_costs = base_costs if base_costs is not None else CostParams()
    device = device if device is not None else DeviceSpec()

    def times_under(costs: CostParams) -> dict[str, float]:
        model = PerformanceModel(device=device, costs=costs, seed=seed)
        return {
            name: model.estimate(profile, cfg).total_seconds
            for name, cfg in configs.items()
        }

    baseline = times_under(base_costs)
    baseline_order = sorted(baseline, key=baseline.get)

    flips: list[OrderingFlip] = []
    cells = 0
    for field in fields:
        for factor in factors:
            cells += 1
            perturbed = dataclasses.replace(
                base_costs, **{field: getattr(base_costs, field) * factor}
            )
            times = times_under(perturbed)
            for i, a in enumerate(baseline_order):
                for b in baseline_order[i + 1 :]:
                    if times[b] < times[a]:  # b overtook a
                        flips.append(OrderingFlip(field, factor, b, a))
    return SensitivityReport(
        baseline_order=baseline_order, flips=flips, cells_checked=cells
    )

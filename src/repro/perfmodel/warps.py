"""Warp assembly and per-warp duration/WEE, vectorized.

Mirrors the VM's aggregate lock-step replay: every thread's cycles are a
sum over control-flow regions (setup, cell traversal, distance refinement,
emission, queue fetch), and a warp's duration is the sum over regions of the
per-region lane maximum. Evaluating regions as separate arrays keeps the
exact VM semantics while processing millions of threads per NumPy pass.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.granularity import thread_share_counts
from repro.perfmodel.workload import WorkloadProfile
from repro.simt import CostParams

__all__ = ["BatchWarpModel", "model_batch_warps", "model_warps_from_arrays"]


@dataclass(frozen=True)
class BatchWarpModel:
    """Per-warp cycle accounting of one batch kernel.

    ``busy`` excludes the fixed warp-launch overhead (matching
    :class:`repro.simt.WarpStats.warp_cycles`); ``durations`` includes it
    (what the scheduler sees).
    """

    busy: np.ndarray
    active: np.ndarray
    warp_size: int

    def durations_with_launch(self, costs: CostParams) -> np.ndarray:
        """Scheduler-visible warp durations (busy + fixed launch overhead)."""
        return self.busy + costs.c_warp_launch

    @property
    def num_warps(self) -> int:
        return len(self.busy)


def _pad_to_warps(values: np.ndarray, warp_size: int) -> np.ndarray:
    """Reshape a per-thread vector to (num_warps, warp_size), zero-padded."""
    n = len(values)
    num_warps = -(-n // warp_size) if n else 0
    padded = np.zeros(num_warps * warp_size, dtype=np.float64)
    padded[:n] = values
    return padded.reshape(num_warps, warp_size)


def model_warps_from_arrays(
    visited_cells: np.ndarray,
    candidate_totals: np.ndarray,
    result_rows: np.ndarray,
    *,
    ndim: int,
    k: int,
    costs: CostParams,
    work_queue: bool,
    warp_size: int = 32,
) -> BatchWarpModel:
    """Warp durations and active cycles from per-query workload arrays.

    The join-agnostic core: callers supply, per query of the batch in
    thread order, the probed-cell count, the total candidate count and the
    result-row count. Both the self-join and the bipartite join models map
    onto this.
    """
    nq = len(candidate_totals)
    if nq == 0:
        return BatchWarpModel(np.zeros(0), np.zeros(0), warp_size)

    # per-thread component vectors, thread order = (query, rank) row-major
    # shape (nq, k) -> flatten
    setup = np.full((nq, k), costs.c_setup)
    cells = np.broadcast_to(
        (np.asarray(visited_cells) * costs.c_cell)[:, None], (nq, k)
    )
    # flat-stream candidate split: thread r owns the flat indices ≡ r (mod
    # k) of the query's whole candidate stream, so its share is the ceil
    # split of the per-point total — exactly the kernel's running-offset
    # stride
    dist = (
        thread_share_counts(np.asarray(candidate_totals, dtype=np.int64), k).T
        * costs.dist_cost(ndim)
    )  # (nq, k)
    emit = np.broadcast_to(
        (np.asarray(result_rows) * (costs.c_emit / k))[:, None], (nq, k)
    )
    components = {
        "setup": setup.ravel(),
        "cells": np.ascontiguousarray(cells).ravel(),
        "dist": np.ascontiguousarray(dist).ravel(),
        "emit": np.ascontiguousarray(emit).ravel(),
    }
    if work_queue:
        fetch = np.zeros((nq, k))
        fetch[:, 0] = costs.c_atomic  # leader (or every thread when k == 1)
        components["atomic"] = fetch.ravel()
        if k > 1:
            shfl = np.full((nq, k), costs.c_shfl)
            shfl[:, 0] = 0.0
            components["shfl"] = shfl.ravel()

    busy = None
    active = None
    for vec in components.values():
        mat = _pad_to_warps(vec, warp_size)
        label_max = mat.max(axis=1)
        label_sum = mat.sum(axis=1)
        busy = label_max if busy is None else busy + label_max
        active = label_sum if active is None else active + label_sum
    return BatchWarpModel(busy=busy, active=active, warp_size=warp_size)


def model_batch_warps(
    profile: WorkloadProfile,
    batch_points: np.ndarray,
    *,
    k: int,
    pattern: str,
    costs: CostParams,
    work_queue: bool,
    warp_size: int = 32,
) -> BatchWarpModel:
    """Self-join batch model: warp durations and active cycles.

    ``batch_points`` lists the query point ids in *query order*; thread
    ``t`` of the launch serves query ``batch_points[t // k]`` with rank
    ``t % k`` — identical to the kernel's static mapping, and identical to
    the queue mapping when the queue hands out slots in issue order.
    """
    index = profile.index
    batch_points = np.asarray(batch_points, dtype=np.int64)
    if len(batch_points) == 0:
        return BatchWarpModel(np.zeros(0), np.zeros(0), warp_size)
    comps = profile.components(pattern, 1)
    cell_rank = index.point_cell_rank[batch_points]
    return model_warps_from_arrays(
        comps.visited_cells[cell_rank],
        comps.candidates[cell_rank],
        profile.neighbor_counts()[batch_points],
        ndim=index.ndim,
        k=k,
        costs=costs,
        work_queue=work_queue,
        warp_size=warp_size,
    )

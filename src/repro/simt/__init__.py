"""A warp-level SIMT virtual machine.

The paper's optimizations are statements about *which threads share a warp*
and *in which order warps execute*. Real hardware exposes the consequences
only through profiler counters; this simulator makes them first-class:

- :class:`DeviceSpec` — the simulated GPU (warp size, SM count, warp issue
  slots, clock), defaulting to a Quadro GP100-like device as in the paper;
- :class:`CostParams` — the instruction cost model shared verbatim with the
  vectorized performance model (:mod:`repro.perfmodel`), so VM measurements
  and large-scale estimates are mutually checkable;
- :class:`GpuMachine` — launches kernels written against
  :class:`ThreadContext`, executes them thread-by-thread in warp issue
  order (so atomics observe a realistic order), replays each warp in
  lock-step to obtain warp cycles and warp execution efficiency, and
  schedules warps onto issue slots to obtain the kernel makespan;
- :class:`AtomicCounter`, :class:`ResultBuffer`, :class:`CoopGroupTable` —
  the device-memory objects kernels interact with;
- :func:`simulate_stream_pipeline` — the 3-stream kernel/transfer overlap
  model used by the batching scheme.
"""

from repro.simt.atomics import AtomicCounter
from repro.simt.costs import CostParams
from repro.simt.device import DeviceSpec
from repro.simt.machine import GpuMachine, KernelStats
from repro.simt.metrics import KernelProfile, profile_kernel
from repro.simt.memory import BufferOverflowError, ResultBuffer
from repro.simt.coop import CoopGroupTable
from repro.simt.context import ThreadContext
from repro.simt.scheduler import issue_order_permutation, makespan
from repro.simt.streams import simulate_stream_pipeline
from repro.simt.vectorized import (
    ENGINES,
    BulkKernelResult,
    BulkLaunch,
    LabelCharges,
    bulk_kernel_for,
    register_bulk_kernel,
)
from repro.simt.warp import WarpStats, replay_warp, replay_warps_aggregate

__all__ = [
    "AtomicCounter",
    "BufferOverflowError",
    "BulkKernelResult",
    "BulkLaunch",
    "CoopGroupTable",
    "CostParams",
    "DeviceSpec",
    "ENGINES",
    "GpuMachine",
    "KernelProfile",
    "KernelStats",
    "LabelCharges",
    "ResultBuffer",
    "ThreadContext",
    "WarpStats",
    "bulk_kernel_for",
    "issue_order_permutation",
    "makespan",
    "profile_kernel",
    "register_bulk_kernel",
    "replay_warp",
    "replay_warps_aggregate",
    "simulate_stream_pipeline",
]

"""Profiler post-analysis of kernel traces — the nvprof metric set.

The paper reports warp execution efficiency, chosen "among those we have
collected" from the Nvidia profiler. This module derives the rest of that
family from a launch run with ``keep_traces=True``:

- per-region cycle breakdown (where do active and stalled cycles go:
  setup / cell traversal / refinement / emission / queue fetch);
- achieved occupancy (fraction of slot-time the scheduler kept busy);
- per-warp workload dispersion (the imbalance the optimizations attack).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simt.device import DeviceSpec
from repro.simt.machine import KernelStats
from repro.util import Table

__all__ = ["KernelProfile", "profile_kernel"]


@dataclass(frozen=True)
class LabelBreakdown:
    """Cycle accounting for one control-flow region across the kernel."""

    label: str
    active_cycles: float  # sum over lanes of busy cycles in this region
    busy_cycles: float  # sum over warps of the region's lock-step time
    warp_size: int = 32

    @property
    def efficiency(self) -> float:
        """Region-local WEE: active / (warp_size * busy)."""
        if self.busy_cycles == 0:
            return 1.0
        return self.active_cycles / (self.warp_size * self.busy_cycles)


@dataclass(frozen=True)
class KernelProfile:
    """Derived profiler metrics of one kernel launch."""

    breakdown: list[LabelBreakdown]
    warp_execution_efficiency: float
    achieved_occupancy: float
    warp_cycles_cv: float  # coefficient of variation of warp durations
    total_cycles: float

    def render(self) -> str:
        t = Table(
            ["region", "active cycles", "lockstep cycles", "region WEE"],
            title="Kernel profile",
        )
        for b in sorted(self.breakdown, key=lambda b: -b.busy_cycles):
            t.add_row(
                [
                    b.label,
                    f"{b.active_cycles:.0f}",
                    f"{b.busy_cycles:.0f}",
                    f"{100 * b.efficiency:.1f}%",
                ]
            )
        footer = (
            f"WEE {100 * self.warp_execution_efficiency:.1f}%  |  occupancy "
            f"{100 * self.achieved_occupancy:.1f}%  |  warp-duration CV "
            f"{self.warp_cycles_cv:.2f}"
        )
        return t.render() + "\n" + footer


def profile_kernel(stats: KernelStats, device: DeviceSpec) -> KernelProfile:
    """Compute the profiler metric set from a traced launch.

    Requires the launch to have been run with ``keep_traces=True``.
    """
    if stats.traces is None:
        raise ValueError("launch was not traced; pass keep_traces=True")
    ws = device.warp_size

    # per-label accounting, replayed with the same aggregate rule the warp
    # model uses (max over lanes per region)
    active: dict[str, float] = {}
    busy: dict[str, float] = {}
    for w in range(stats.num_warps):
        lane_traces = stats.traces[w * ws : (w + 1) * ws]
        per_lane = [t.label_totals() for t in lane_traces]
        labels = {label for totals in per_lane for label in totals}
        for label in labels:
            vals = [t.get(label, 0.0) for t in per_lane]
            active[label] = active.get(label, 0.0) + sum(vals)
            busy[label] = busy.get(label, 0.0) + max(vals)

    breakdown = [
        LabelBreakdown(label, active[label], busy[label], ws)
        for label in sorted(active)
    ]

    total_active = sum(b.active_cycles for b in breakdown)
    total_busy = sum(b.busy_cycles for b in breakdown)
    wee = total_active / (ws * total_busy) if total_busy else 1.0

    durations = np.array([w.warp_cycles for w in stats.warp_stats])
    slot_time = stats.cycles * device.warp_slots
    occupancy = float(durations.sum() / slot_time) if slot_time else 1.0
    cv = float(durations.std() / durations.mean()) if durations.size and durations.mean() else 0.0

    return KernelProfile(
        breakdown=breakdown,
        warp_execution_efficiency=wee,
        achieved_occupancy=min(1.0, occupancy),
        warp_cycles_cv=cv,
        total_cycles=stats.cycles,
    )

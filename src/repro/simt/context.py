"""Per-thread execution context and trace recording.

A VM kernel is a plain Python function ``kernel(ctx, ...)`` executed once per
thread. All *costed* actions go through the :class:`ThreadContext`, which

- records a trace of ``(label, cycles)`` events — the label identifies the
  control-flow region (loop) the cycles belong to, which is what the warp
  replay uses to model SIMT reconvergence;
- mediates side effects on device objects (atomic counters, the result
  buffer, cooperative-group shuffles) so their observed order matches the
  warp issue order the machine chose.
"""

from __future__ import annotations

import numpy as np

from repro.simt.atomics import AtomicCounter
from repro.simt.costs import CostParams
from repro.simt.memory import ResultBuffer

__all__ = ["ThreadContext", "ThreadTrace"]


class ThreadTrace:
    """Ordered ``(label, cycles)`` events plus totals for one thread."""

    __slots__ = ("events", "total_cycles")

    def __init__(self):
        self.events: list[tuple[str, float]] = []
        self.total_cycles = 0.0

    def add(self, label: str, cycles: float) -> None:
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        self.events.append((label, float(cycles)))
        self.total_cycles += cycles

    def label_totals(self) -> dict[str, float]:
        """Cycles per label, preserving first-appearance order."""
        out: dict[str, float] = {}
        for label, cycles in self.events:
            out[label] = out.get(label, 0.0) + cycles
        return out


class ThreadContext:
    """The device API a kernel sees for one thread.

    Attributes
    ----------
    tid:
        Global thread id within the launch.
    lane:
        Lane index within the warp (``tid % warp_size``).
    warp_id:
        Warp index within the launch (``tid // warp_size``).
    costs:
        The machine's :class:`CostParams`, so kernels charge canonical costs.
    """

    __slots__ = ("tid", "lane", "warp_id", "costs", "trace", "_buffer", "_groups")

    def __init__(
        self,
        tid: int,
        warp_size: int,
        costs: CostParams,
        buffer: ResultBuffer | None,
        groups=None,
    ):
        self.tid = tid
        self.lane = tid % warp_size
        self.warp_id = tid // warp_size
        self.costs = costs
        self.trace = ThreadTrace()
        self._buffer = buffer
        self._groups = groups

    # -- cost recording -------------------------------------------------
    def work(self, label: str, cycles: float) -> None:
        """Charge ``cycles`` of computation under control-flow region ``label``."""
        self.trace.add(label, cycles)

    def charge_setup(self) -> None:
        """Charge the kernel prologue (global-id computation, point load)."""
        self.trace.add("setup", self.costs.c_setup)

    def charge_cell_visit(self) -> None:
        """Charge one neighbor-cell lookup."""
        self.trace.add("cells", self.costs.c_cell)

    def charge_candidates(self, count: int, ndim: int) -> None:
        """Charge ``count`` candidate distance computations."""
        if count:
            self.trace.add("dist", count * self.costs.dist_cost(ndim))

    # -- device side effects --------------------------------------------
    def atomic_add(self, counter: AtomicCounter, amount: int = 1) -> int:
        """Fetch-and-add on a global counter, charging atomic latency."""
        self.trace.add("atomic", self.costs.c_atomic)
        return counter.fetch_add(amount)

    def emit_pairs(self, pairs: np.ndarray) -> None:
        """Append result pairs to the launch's result buffer, charging the
        per-pair emission cost."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return
        if self._buffer is None:
            raise RuntimeError("kernel launched without a result buffer")
        self._buffer.append_pairs(pairs)
        self.trace.add("emit", len(pairs) * self.costs.c_emit)

    # -- cooperative groups ----------------------------------------------
    def coop_group(self, k: int):
        """The cooperative group (of ``k`` consecutive threads) this thread
        belongs to. Requires the machine to have been launched with group
        support (``GpuMachine.launch(..., coop_group_size=k)``)."""
        if self._groups is None:
            raise RuntimeError("launch has no cooperative-group table")
        return self._groups.group_for(self, k)

"""Instruction cost model shared by the SIMT VM and the performance model.

All values are in device cycles *per issue slot* of the throughput model:
the device executes ``warp_slots`` warps concurrently (112 ≈ GP100's 3584
CUDA cores / 32), so a cost of C cycles means one slot is occupied for C
cycles. The self-join kernel is latency/memory-bound on real hardware —
the dominant ``c_dist_*`` constants are calibrated to the ~2.4e9
candidates/s effective refinement throughput a GP100 sustains on this
workload, not to the FLOP count of a distance computation. EXPERIMENTS.md
documents which figures are sensitive to which constants. The same :class:`CostParams` instance must be
handed to both :class:`repro.simt.GpuMachine` and
:class:`repro.perfmodel.PerformanceModel` when cross-validating the two.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CostParams"]


@dataclass(frozen=True)
class CostParams:
    """Per-operation cycle costs of the simulated GPU.

    Attributes
    ----------
    c_setup:
        Kernel prologue per thread: computing the global id, loading the
        query point, resolving the origin cell.
    c_cell:
        Per neighbor-cell visit: neighbor coordinate arithmetic plus the
        binary search into the non-empty-cell array.
    c_dist_base, c_dist_dim:
        Candidate refinement: a distance computation costs
        ``c_dist_base + ndim * c_dist_dim`` cycles (coordinate loads, FMA
        chain, compare).
    c_emit:
        Appending one result pair to the global result buffer.
    c_atomic:
        Latency of a global-memory atomic add (work-queue head fetch).
    c_shfl:
        Warp shuffle broadcasting the fetched queue index inside a
        cooperative group.
    c_warp_launch:
        Fixed per-warp scheduling overhead charged when a warp is issued.
    """

    c_setup: float = 200.0
    c_cell: float = 400.0
    c_dist_base: float = 1200.0
    c_dist_dim: float = 250.0
    c_emit: float = 150.0
    c_atomic: float = 600.0
    c_shfl: float = 10.0
    c_warp_launch: float = 100.0

    def __post_init__(self):
        for name in (
            "c_setup",
            "c_cell",
            "c_dist_base",
            "c_dist_dim",
            "c_emit",
            "c_atomic",
            "c_shfl",
            "c_warp_launch",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def dist_cost(self, ndim: int) -> float:
        """Cycles for one candidate distance computation in ``ndim`` dimensions."""
        if ndim < 1:
            raise ValueError("ndim must be >= 1")
        return self.c_dist_base + ndim * self.c_dist_dim

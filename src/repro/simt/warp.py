"""Lock-step warp replay: from per-thread traces to warp cycles and WEE.

Two replay modes:

``aggregate`` (default)
    Threads reconverge at control-flow region (label) boundaries. The warp's
    time in region ℓ is the *maximum* over lanes of their total cycles in ℓ
    — lanes that finish a loop early wait for the longest lane, which is the
    lock-step semantics of a SIMT loop with uniform per-iteration cost. This
    is exactly the formula the vectorized performance model evaluates, so
    VM and model agree to the cycle.

``lockstep``
    Event-by-event serialization: at each step the warp selects one label
    among the lanes' next events (divergent paths execute one at a time) and
    lanes on that label advance together; everyone else idles. Strictly
    slower-or-equal to ``aggregate``'s idealized reconvergence; used in
    tests to bound the abstraction error.

Warp execution efficiency (WEE) is defined as in the Nvidia profiler: the
average fraction of active threads per executed warp cycle —
``active_lane_cycles / (warp_size * warp_cycles)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.simt.context import ThreadTrace

__all__ = [
    "WarpStats",
    "replay_warp",
    "replay_warps_aggregate",
    "warp_stats_from_label_matrix",
]


@dataclass(frozen=True)
class WarpStats:
    """Replay outcome for one warp.

    ``warp_cycles`` excludes the fixed per-warp launch overhead (the machine
    adds it when scheduling); ``active_cycles`` is the sum over lanes of
    their busy cycles; ``lanes`` is the number of populated lanes (< warp
    size for the tail warp).
    """

    warp_cycles: float
    active_cycles: float
    lanes: int
    warp_size: int

    @property
    def wee(self) -> float:
        """Warp execution efficiency in [0, 1]."""
        if self.warp_cycles <= 0:
            return 1.0
        return self.active_cycles / (self.warp_size * self.warp_cycles)


def replay_warp(
    traces: list[ThreadTrace], warp_size: int, mode: str = "aggregate"
) -> WarpStats:
    """Replay one warp's thread traces in lock-step."""
    if not traces:
        return WarpStats(0.0, 0.0, 0, warp_size)
    if len(traces) > warp_size:
        raise ValueError(f"{len(traces)} traces exceed warp size {warp_size}")
    if mode == "aggregate":
        return _replay_aggregate(traces, warp_size)
    if mode == "lockstep":
        return _replay_lockstep(traces, warp_size)
    raise ValueError(f"unknown replay mode {mode!r}")


def _replay_aggregate(traces: list[ThreadTrace], warp_size: int) -> WarpStats:
    # Union of labels in first-appearance order across lanes keeps the
    # canonical region ordering without assuming all lanes visit all regions.
    label_order: list[str] = []
    seen: set[str] = set()
    per_lane: list[dict[str, float]] = []
    for tr in traces:
        totals = tr.label_totals()
        per_lane.append(totals)
        for label in totals:
            if label not in seen:
                seen.add(label)
                label_order.append(label)

    warp_cycles = 0.0
    for label in label_order:
        warp_cycles += max(t.get(label, 0.0) for t in per_lane)
    active = sum(tr.total_cycles for tr in traces)
    return WarpStats(warp_cycles, active, len(traces), warp_size)


def warp_stats_from_label_matrix(
    matrix: np.ndarray, num_threads: int, num_warps: int, warp_size: int
) -> list[WarpStats]:
    """Aggregate replay of every warp at once from per-thread label totals.

    ``matrix`` has shape ``(num_threads, num_labels)``; rows are threads in
    tid order. The aggregate rule is evaluated as one padded reshape: a
    warp's lock-step time is the per-label lane maximum summed over labels
    — identical to :func:`replay_warp` on each warp's traces, without the
    per-warp Python loop.
    """
    ws = warp_size
    if num_warps == 0:
        return []
    matrix = np.asarray(matrix, dtype=np.float64)
    num_labels = matrix.shape[1] if matrix.ndim == 2 else 0
    padded = np.zeros((num_warps * ws, num_labels), dtype=np.float64)
    padded[:num_threads] = matrix
    cube = padded.reshape(num_warps, ws, num_labels)
    busy = cube.max(axis=1).sum(axis=1) if num_labels else np.zeros(num_warps)
    active = cube.sum(axis=(1, 2)) if num_labels else np.zeros(num_warps)
    lanes = np.minimum(
        np.full(num_warps, ws, dtype=np.int64),
        num_threads - np.arange(num_warps, dtype=np.int64) * ws,
    )
    return [
        WarpStats(float(busy[w]), float(active[w]), int(lanes[w]), ws)
        for w in range(num_warps)
    ]


def replay_warps_aggregate(
    traces: list[ThreadTrace], num_warps: int, warp_size: int
) -> list[WarpStats]:
    """Batched aggregate replay of a whole launch's thread traces.

    ``traces`` holds one trace per thread in tid order. The per-trace label
    totals are collected into one ``(threads, labels)`` matrix and the warp
    maxima/sums are evaluated array-at-a-time — the vectorized counterpart
    of calling :func:`replay_warp` per warp, with identical results for
    cycle totals (label *order* does not affect an aggregate sum).
    """
    label_index: dict[str, int] = {}
    per_thread: list[dict[str, float]] = []
    for tr in traces:
        totals = tr.label_totals()
        per_thread.append(totals)
        for label in totals:
            if label not in label_index:
                label_index[label] = len(label_index)
    matrix = np.zeros((len(traces), len(label_index)), dtype=np.float64)
    for tid, totals in enumerate(per_thread):
        for label, cycles in totals.items():
            matrix[tid, label_index[label]] = cycles
    return warp_stats_from_label_matrix(matrix, len(traces), num_warps, warp_size)


def _replay_lockstep(traces: list[ThreadTrace], warp_size: int) -> WarpStats:
    pointers = [0] * len(traces)
    events = [tr.events for tr in traces]
    warp_cycles = 0.0
    while True:
        # labels of each live lane's next event
        next_labels = {
            ev[p][0]
            for ev, p in zip(events, pointers)
            if p < len(ev)
        }
        if not next_labels:
            break
        # divergence: execute one label per step; deterministic pick
        label = min(next_labels)
        step = 0.0
        for i, (ev, p) in enumerate(zip(events, pointers)):
            if p < len(ev) and ev[p][0] == label:
                step = max(step, ev[p][1])
                pointers[i] = p + 1
        warp_cycles += step
    active = sum(tr.total_cycles for tr in traces)
    return WarpStats(warp_cycles, active, len(traces), warp_size)

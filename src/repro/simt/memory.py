"""Global-memory result buffer with capacity accounting.

The self-join's result set can exceed device memory (Section II-C2 of the
paper); the batching scheme exists precisely to bound the per-kernel result
size. The VM buffer therefore enforces a hard capacity and raises
:class:`BufferOverflowError` on overflow — tests use this to prove the
batching estimator actually prevents overflow, and that a mis-sized buffer
is *detected* rather than silently truncated.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferOverflowError", "ResultBuffer"]

_PAIR_BYTES = 16  # two int64 indices per result pair


class BufferOverflowError(RuntimeError):
    """Raised when a kernel writes more result pairs than the buffer holds."""


class ResultBuffer:
    """An append-only pair buffer of fixed capacity (in pairs).

    Appends are chunked numpy arrays; :meth:`pairs` concatenates on demand.
    """

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity)
        self._chunks: list[np.ndarray] = []
        self._size = 0

    @property
    def size(self) -> int:
        """Number of pairs currently stored."""
        return self._size

    @property
    def nbytes(self) -> int:
        """Device bytes this buffer's contents occupy (for transfer modeling)."""
        return self._size * _PAIR_BYTES

    def append_pairs(self, pairs: np.ndarray) -> None:
        """Append an ``(M, 2)`` int64 pair block.

        Raises :class:`BufferOverflowError` if capacity would be exceeded;
        like the real GPU buffer, nothing is partially written in that case
        (the batch must be re-planned).
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (M, 2), got {pairs.shape}")
        if self._size + len(pairs) > self.capacity:
            raise BufferOverflowError(
                f"result buffer overflow: size {self._size} + {len(pairs)} "
                f"exceeds capacity {self.capacity}"
            )
        self._chunks.append(pairs)
        self._size += len(pairs)

    def pairs(self) -> np.ndarray:
        """All stored pairs as one ``(size, 2)`` array."""
        if not self._chunks:
            return np.empty((0, 2), dtype=np.int64)
        if len(self._chunks) > 1:
            self._chunks = [np.concatenate(self._chunks, axis=0)]
        return self._chunks[0]

    def drain(self) -> np.ndarray:
        """Return all pairs and empty the buffer (the host-transfer step
        between batches)."""
        out = self.pairs()
        self._chunks = []
        self._size = 0
        return out

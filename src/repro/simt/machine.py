"""The GPU machine: kernel launch, warp-ordered execution, and metrics.

``GpuMachine.launch`` runs a kernel function once per thread, *in warp issue
order*. Executing whole warps in the order the scheduler would dispatch them
makes device side effects realistic — in particular, the work-queue's atomic
counter hands out query points in exactly the order warps are issued, which
is the mechanism (Section III-D) by which the paper forces most-work-first
execution.

After execution the machine replays every warp in lock-step
(:func:`repro.simt.warp.replay_warp`) and schedules the warp durations onto
the device's issue slots (:func:`repro.simt.scheduler.makespan`), yielding
kernel cycles, seconds, and the profiler-style warp execution efficiency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simt.context import ThreadContext, ThreadTrace
from repro.simt.coop import CoopGroupTable
from repro.simt.costs import CostParams
from repro.simt.device import DeviceSpec
from repro.simt.memory import ResultBuffer
from repro.simt.scheduler import ScheduleResult, issue_order_permutation, makespan
from repro.simt.warp import WarpStats, replay_warp
from repro.util import ceil_div

__all__ = ["GpuMachine", "KernelStats"]


@dataclass(frozen=True)
class KernelStats:
    """Profiler output of one simulated kernel invocation."""

    num_threads: int
    num_warps: int
    cycles: float
    seconds: float
    warp_stats: list[WarpStats] = field(repr=False)
    schedule: ScheduleResult = field(repr=False)
    traces: list[ThreadTrace] | None = field(default=None, repr=False)

    @property
    def warp_execution_efficiency(self) -> float:
        """Cycle-weighted average fraction of active lanes per executed warp
        — the Nvidia profiler metric the paper reports (in percent)."""
        total_active = sum(w.active_cycles for w in self.warp_stats)
        total_warp = sum(w.warp_cycles for w in self.warp_stats)
        if total_warp == 0:
            return 1.0
        warp_size = self.warp_stats[0].warp_size if self.warp_stats else 32
        return total_active / (warp_size * total_warp)

    @property
    def mean_warp_wee(self) -> float:
        """Unweighted per-warp mean WEE (useful for diagnostics)."""
        if not self.warp_stats:
            return 1.0
        return float(np.mean([w.wee for w in self.warp_stats]))


class GpuMachine:
    """A simulated SIMT accelerator.

    Parameters
    ----------
    device:
        Hardware description; defaults to the paper's Quadro GP100 class.
    costs:
        Instruction cost model shared with :mod:`repro.perfmodel`.
    issue_order:
        ``"fifo"``, ``"random"`` or ``"workload_desc"`` — how the hardware
        scheduler orders warp dispatch. The work-queue kernels force
        ``"fifo"`` over a workload-sorted array, which *is* most-work-first.
    seed:
        Seed for the ``"random"`` issue order.
    replay_mode:
        ``"aggregate"`` (reconverge at region boundaries; matches the
        analytic model) or ``"lockstep"`` (event-by-event serialization).
    """

    def __init__(
        self,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        *,
        issue_order: str = "fifo",
        seed=None,
        replay_mode: str = "aggregate",
    ):
        self.device = device if device is not None else DeviceSpec()
        self.costs = costs if costs is not None else CostParams()
        self.issue_order = issue_order
        self.seed = seed
        self.replay_mode = replay_mode

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel,
        num_threads: int,
        *args,
        result_buffer: ResultBuffer | None = None,
        coop_groups: bool = False,
        keep_traces: bool = False,
    ) -> KernelStats:
        """Run ``kernel(ctx, *args)`` for ``num_threads`` threads.

        Threads execute sequentially, whole warps at a time, in the
        scheduler's issue order; lanes within a warp run in lane order.
        ``keep_traces=True`` retains the per-thread traces on the returned
        stats for profiler post-analysis (:mod:`repro.simt.metrics`).
        """
        if num_threads < 0:
            raise ValueError("num_threads must be non-negative")
        ws = self.device.warp_size
        num_warps = int(ceil_div(num_threads, ws)) if num_threads else 0
        groups = CoopGroupTable(ws) if coop_groups else None

        # Issue order must be decided before execution (it shapes atomics),
        # so it cannot depend on measured durations. "workload_desc" is only
        # meaningful post-hoc and is rejected here; the work-queue achieves
        # most-work-first by sorting the *data*, not the warp ids.
        if self.issue_order == "fifo":
            warp_order = np.arange(num_warps)
        elif self.issue_order == "random":
            warp_order = issue_order_permutation(
                np.zeros(num_warps), "random", seed=self.seed
            )
        else:
            raise ValueError(
                "GpuMachine.launch supports issue_order 'fifo' or 'random'; "
                "most-work-first execution comes from sorted input data"
            )

        traces: list[ThreadTrace | None] = [None] * num_threads
        for w in warp_order:
            base = int(w) * ws
            for tid in range(base, min(base + ws, num_threads)):
                ctx = ThreadContext(tid, ws, self.costs, result_buffer, groups)
                kernel(ctx, *args)
                traces[tid] = ctx.trace

        warp_stats: list[WarpStats] = []
        for w in range(num_warps):
            lane_traces = [t for t in traces[w * ws : (w + 1) * ws] if t is not None]
            warp_stats.append(replay_warp(lane_traces, ws, self.replay_mode))

        durations = np.array(
            [s.warp_cycles + self.costs.c_warp_launch for s in warp_stats]
        )
        # scheduling must follow the same issue order used for execution
        sched = self._schedule(durations, warp_order)
        cycles = sched.makespan_cycles
        return KernelStats(
            num_threads=num_threads,
            num_warps=num_warps,
            cycles=cycles,
            seconds=self.device.cycles_to_seconds(cycles),
            warp_stats=warp_stats,
            schedule=sched,
            traces=[t for t in traces if t is not None] if keep_traces else None,
        )

    def _schedule(self, durations: np.ndarray, warp_order: np.ndarray) -> ScheduleResult:
        # Reuse makespan() but with the explicit permutation chosen at launch.
        reordered = durations[warp_order]
        sched = makespan(reordered, self.device.warp_slots, order="fifo")
        # map start times back to warp-id indexing
        starts = np.zeros_like(sched.start_cycles)
        starts[warp_order] = sched.start_cycles
        return ScheduleResult(sched.makespan_cycles, sched.slot_finish_cycles, starts)

"""The GPU machine: kernel launch, warp-ordered execution, and metrics.

``GpuMachine.launch`` runs a kernel function once per thread, *in warp issue
order*. Executing whole warps in the order the scheduler would dispatch them
makes device side effects realistic — in particular, the work-queue's atomic
counter hands out query points in exactly the order warps are issued, which
is the mechanism (Section III-D) by which the paper forces most-work-first
execution.

After execution the machine replays every warp in lock-step
(:func:`repro.simt.warp.replay_warp`) and schedules the warp durations onto
the device's issue slots (:func:`repro.simt.scheduler.makespan`), yielding
kernel cycles, seconds, and the profiler-style warp execution efficiency.

Two execution engines share that contract:

- ``engine="interpreted"`` — the thread-at-a-time reference interpreter
  described above; required for ``lockstep`` replay and for kernels
  without a bulk form;
- ``engine="vectorized"`` — the bulk-lane fast path
  (:mod:`repro.simt.vectorized`): a registered array-level implementation
  computes the whole launch at once and must reproduce the interpreter's
  pairs, charges and side effects exactly. Launches the fast path cannot
  serve (unregistered kernel, ``lockstep`` replay) fall back to the
  interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.simt.context import ThreadContext, ThreadTrace
from repro.simt.coop import CoopGroupTable
from repro.simt.costs import CostParams
from repro.simt.device import DeviceSpec
from repro.simt.memory import ResultBuffer
from repro.simt.scheduler import ScheduleResult, issue_order_permutation, makespan
from repro.simt.vectorized import (
    ENGINES,
    BulkLaunch,
    bulk_kernel_for,
    bulk_warp_stats,
    synthesize_traces,
)
from repro.simt.warp import WarpStats, replay_warp, replay_warps_aggregate
from repro.util import ceil_div

__all__ = ["GpuMachine", "KernelStats"]


@dataclass(frozen=True)
class KernelStats:
    """Profiler output of one simulated kernel invocation."""

    num_threads: int
    num_warps: int
    cycles: float
    seconds: float
    warp_stats: list[WarpStats] = field(repr=False)
    schedule: ScheduleResult = field(repr=False)
    traces: list[ThreadTrace] | None = field(default=None, repr=False)
    engine: str = "interpreted"

    @cached_property
    def _cycle_sums(self) -> tuple[float, float]:
        """(active, warp) cycle totals over all warps, reduced once —
        profiling reports read WEE per batch, so the reduction is cached."""
        total_active = 0.0
        total_warp = 0.0
        for w in self.warp_stats:
            total_active += w.active_cycles
            total_warp += w.warp_cycles
        return total_active, total_warp

    @property
    def warp_execution_efficiency(self) -> float:
        """Cycle-weighted average fraction of active lanes per executed warp
        — the Nvidia profiler metric the paper reports (in percent)."""
        total_active, total_warp = self._cycle_sums
        if total_warp == 0:
            return 1.0
        warp_size = self.warp_stats[0].warp_size if self.warp_stats else 32
        return total_active / (warp_size * total_warp)

    @property
    def mean_warp_wee(self) -> float:
        """Unweighted per-warp mean WEE (useful for diagnostics)."""
        if not self.warp_stats:
            return 1.0
        return float(np.mean([w.wee for w in self.warp_stats]))


class GpuMachine:
    """A simulated SIMT accelerator.

    Parameters
    ----------
    device:
        Hardware description; defaults to the paper's Quadro GP100 class.
    costs:
        Instruction cost model shared with :mod:`repro.perfmodel`.
    issue_order:
        ``"fifo"``, ``"random"`` or ``"workload_desc"`` — how the hardware
        scheduler orders warp dispatch. The work-queue kernels force
        ``"fifo"`` over a workload-sorted array, which *is* most-work-first.
    seed:
        Seed for the ``"random"`` issue order.
    replay_mode:
        ``"aggregate"`` (reconverge at region boundaries; matches the
        analytic model) or ``"lockstep"`` (event-by-event serialization).
    engine:
        ``"interpreted"`` (thread-at-a-time reference) or ``"vectorized"``
        (bulk-lane fast path for kernels with a registered bulk form;
        everything else falls back to the interpreter).
    """

    def __init__(
        self,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        *,
        issue_order: str = "fifo",
        seed=None,
        replay_mode: str = "aggregate",
        engine: str = "interpreted",
    ):
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.device = device if device is not None else DeviceSpec()
        self.costs = costs if costs is not None else CostParams()
        self.issue_order = issue_order
        self.seed = seed
        self.replay_mode = replay_mode
        self.engine = engine

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel,
        num_threads: int,
        *args,
        result_buffer: ResultBuffer | None = None,
        coop_groups: bool = False,
        keep_traces: bool = False,
    ) -> KernelStats:
        """Run ``kernel(ctx, *args)`` for ``num_threads`` threads.

        Threads execute sequentially, whole warps at a time, in the
        scheduler's issue order; lanes within a warp run in lane order.
        ``keep_traces=True`` retains the per-thread traces on the returned
        stats for profiler post-analysis (:mod:`repro.simt.metrics`).

        Under ``engine="vectorized"`` the launch is computed by the
        kernel's bulk form instead, with identical results (see
        :mod:`repro.simt.vectorized`); launches the bulk form cannot serve
        run through the interpreter.
        """
        if num_threads < 0:
            raise ValueError("num_threads must be non-negative")
        ws = self.device.warp_size
        num_warps = int(ceil_div(num_threads, ws)) if num_threads else 0
        warp_order = self._warp_order(num_warps)

        if self.engine == "vectorized" and self.replay_mode == "aggregate":
            impl = bulk_kernel_for(kernel) if len(args) == 1 else None
            if impl is not None:
                return self._launch_bulk(
                    impl,
                    args[0],
                    num_threads,
                    num_warps,
                    warp_order,
                    result_buffer=result_buffer,
                    coop_groups=coop_groups,
                    keep_traces=keep_traces,
                )

        groups = CoopGroupTable(ws) if coop_groups else None
        traces: list[ThreadTrace | None] = [None] * num_threads
        for w in warp_order:
            base = int(w) * ws
            for tid in range(base, min(base + ws, num_threads)):
                ctx = ThreadContext(tid, ws, self.costs, result_buffer, groups)
                kernel(ctx, *args)
                traces[tid] = ctx.trace

        if self.replay_mode == "aggregate":
            warp_stats = replay_warps_aggregate(traces, num_warps, ws)
        else:
            warp_stats = [
                replay_warp(
                    [t for t in traces[w * ws : (w + 1) * ws] if t is not None],
                    ws,
                    self.replay_mode,
                )
                for w in range(num_warps)
            ]

        return self._finish_launch(
            num_threads,
            num_warps,
            warp_order,
            warp_stats,
            traces=[t for t in traces if t is not None] if keep_traces else None,
            engine="interpreted",
        )

    # ------------------------------------------------------------------
    def _warp_order(self, num_warps: int) -> np.ndarray:
        # Issue order must be decided before execution (it shapes atomics),
        # so it cannot depend on measured durations. "workload_desc" is only
        # meaningful post-hoc and is rejected here; the work-queue achieves
        # most-work-first by sorting the *data*, not the warp ids.
        if self.issue_order == "fifo":
            return np.arange(num_warps)
        if self.issue_order == "random":
            return issue_order_permutation(
                np.zeros(num_warps), "random", seed=self.seed
            )
        raise ValueError(
            "GpuMachine.launch supports issue_order 'fifo' or 'random'; "
            "most-work-first execution comes from sorted input data"
        )

    def _launch_bulk(
        self,
        impl,
        kernel_args,
        num_threads: int,
        num_warps: int,
        warp_order: np.ndarray,
        *,
        result_buffer: ResultBuffer | None,
        coop_groups: bool,
        keep_traces: bool,
    ) -> KernelStats:
        ws = self.device.warp_size
        launch = BulkLaunch(
            num_threads=num_threads,
            warp_size=ws,
            num_warps=num_warps,
            warp_order=warp_order,
            costs=self.costs,
            coop_groups=coop_groups,
        )
        result = impl(launch, kernel_args)
        if len(result.pairs):
            if result_buffer is None:
                raise RuntimeError("kernel launched without a result buffer")
            # one append: capacity overflow raises exactly when the
            # interpreted launch's cumulative emission would have
            result_buffer.append_pairs(result.pairs)
        warp_stats = bulk_warp_stats(result, num_threads, num_warps, ws)
        return self._finish_launch(
            num_threads,
            num_warps,
            warp_order,
            warp_stats,
            traces=synthesize_traces(result, num_threads) if keep_traces else None,
            engine="vectorized",
        )

    def _finish_launch(
        self,
        num_threads: int,
        num_warps: int,
        warp_order: np.ndarray,
        warp_stats: list[WarpStats],
        *,
        traces,
        engine: str,
    ) -> KernelStats:
        durations = np.array(
            [s.warp_cycles + self.costs.c_warp_launch for s in warp_stats]
        )
        # scheduling must follow the same issue order used for execution
        sched = self._schedule(durations, warp_order)
        cycles = sched.makespan_cycles
        return KernelStats(
            num_threads=num_threads,
            num_warps=num_warps,
            cycles=cycles,
            seconds=self.device.cycles_to_seconds(cycles),
            warp_stats=warp_stats,
            schedule=sched,
            traces=traces,
            engine=engine,
        )

    def _schedule(self, durations: np.ndarray, warp_order: np.ndarray) -> ScheduleResult:
        # Reuse makespan() but with the explicit permutation chosen at launch.
        reordered = durations[warp_order]
        sched = makespan(reordered, self.device.warp_slots, order="fifo")
        # map start times back to warp-id indexing
        starts = np.zeros_like(sched.start_cycles)
        starts[warp_order] = sched.start_cycles
        return ScheduleResult(sched.makespan_cycles, sched.slot_finish_cycles, starts)

"""Cooperative groups (CUDA 9 style) for the VM.

The paper uses cooperative groups of size ``k`` when combining the
WORKQUEUE with ``k > 1`` threads per query point: only the group leader
increments the global queue counter and the fetched index is shuffled to the
other group members. The VM reproduces exactly that protocol: the leader
(lowest lane of the group) pays atomic latency; followers pay a shuffle.
Threads execute in lane order inside a warp, so the leader's fetch always
happens before followers read it.
"""

from __future__ import annotations

from repro.simt.atomics import AtomicCounter
from repro.simt.context import ThreadContext

__all__ = ["CoopGroup", "CoopGroupTable"]


class CoopGroup:
    """A tile of ``k`` consecutive threads cooperating on one query point."""

    __slots__ = ("group_id", "size", "_slot")

    def __init__(self, group_id: int, size: int):
        self.group_id = group_id
        self.size = size
        self._slot: int | None = None

    def leader_fetch_add(self, ctx: ThreadContext, counter: AtomicCounter, amount: int = 1) -> int:
        """Group-wide fetch-and-add: leader performs the atomic, everyone
        else receives the value via warp shuffle.

        Every member must call this (it is a converged operation, like the
        CUDA ``coalesced_group`` idiom); the return value is identical for
        all members.
        """
        if ctx.tid // self.size != self.group_id:
            raise RuntimeError(
                f"thread {ctx.tid} does not belong to coop group {self.group_id}"
            )
        if ctx.tid % self.size == 0:  # leader
            self._slot = ctx.atomic_add(counter, amount)
        else:
            if self._slot is None:
                raise RuntimeError(
                    "group member read shuffle slot before leader fetch — "
                    "threads executed out of lane order"
                )
            ctx.work("shfl", ctx.costs.c_shfl)
        return self._slot


class CoopGroupTable:
    """Lazy per-launch registry of cooperative groups keyed by group id."""

    def __init__(self, warp_size: int):
        self.warp_size = warp_size
        self._groups: dict[tuple[int, int], CoopGroup] = {}

    def group_for(self, ctx: ThreadContext, k: int) -> CoopGroup:
        if k < 1:
            raise ValueError("group size must be >= 1")
        if self.warp_size % k != 0:
            raise ValueError(
                f"group size {k} must evenly divide the warp size {self.warp_size}"
            )
        gid = ctx.tid // k
        key = (gid, k)
        group = self._groups.get(key)
        if group is None:
            group = CoopGroup(gid, k)
            self._groups[key] = group
        return group

"""Simulated GPU device description.

Defaults approximate the Nvidia Quadro GP100 used in the paper's testbed
(56 SMs, 16 GiB HBM2). ``warps_per_sm_slot`` is the number of warps an SM
makes *forward progress on* concurrently in our model — an abstraction of
the interleaved-issue pipeline, not the (much larger) number of resident
warps. The product ``warp_slots`` is the slot count the makespan scheduler
fills.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceSpec", "CPU_XEON_E5_2620V4"]


@dataclass(frozen=True)
class DeviceSpec:
    """Hardware parameters of the simulated accelerator."""

    name: str = "sim-quadro-gp100"
    warp_size: int = 32
    num_sms: int = 56
    # 2 warps per SM in simultaneous execution ≈ GP100's 3584 CUDA cores
    # divided into 32-lane groups (112 warps in flight)
    warps_per_sm_slot: int = 2
    clock_hz: float = 1.30e9
    global_mem_bytes: int = 16 * 2**30
    pcie_bandwidth: float = 12.0e9  # effective pinned host<->device bytes/s

    def __post_init__(self):
        if self.warp_size < 1:
            raise ValueError("warp_size must be >= 1")
        if self.num_sms < 1 or self.warps_per_sm_slot < 1:
            raise ValueError("num_sms and warps_per_sm_slot must be >= 1")
        if self.clock_hz <= 0 or self.pcie_bandwidth <= 0:
            raise ValueError("clock_hz and pcie_bandwidth must be positive")

    @property
    def warp_slots(self) -> int:
        """Number of warps making concurrent progress — the scheduler width."""
        return self.num_sms * self.warps_per_sm_slot

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert device cycles to simulated wall-clock seconds."""
        return float(cycles) / self.clock_hz


@dataclass(frozen=True)
class CpuSpec:
    """Parameters of the modeled CPU baseline host (SUPER-EGO's platform)."""

    name: str = "sim-2x-xeon-e5-2620v4"
    num_cores: int = 16
    clock_hz: float = 2.10e9
    simd_lanes: int = 4  # AVX2 doubles per instruction
    parallel_efficiency: float = 0.85

    def __post_init__(self):
        if self.num_cores < 1 or self.simd_lanes < 1:
            raise ValueError("num_cores and simd_lanes must be >= 1")
        if not 0 < self.parallel_efficiency <= 1:
            raise ValueError("parallel_efficiency must be in (0, 1]")
        if self.clock_hz <= 0:
            raise ValueError("clock_hz must be positive")

    def cycles_to_seconds(self, cycles: float) -> float:
        return float(cycles) / self.clock_hz


CPU_XEON_E5_2620V4 = CpuSpec()

"""Hardware warp scheduler model: issue order and makespan.

A kernel's warps greatly outnumber the device's issue slots; the scheduler
dispatches the next warp in *issue order* whenever a slot frees up (greedy
list scheduling). The paper's WORKQUEUE optimization is, in scheduling
terms, forcing issue order to be non-increasing workload — the classic LPT
heuristic — while the stock hardware scheduler gives no ordering guarantee,
which we model as a seeded random permutation (``"random"``) or plain warp-id
order (``"fifo"``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.util import resolve_rng, stable_argsort_desc

__all__ = ["ScheduleResult", "issue_order_permutation", "makespan"]

ISSUE_ORDERS = ("fifo", "random", "workload_desc")


def issue_order_permutation(
    durations: np.ndarray, order: str, *, seed=None
) -> np.ndarray:
    """Permutation of warp indices in the order the scheduler issues them.

    ``"fifo"`` — warp-id order; ``"random"`` — a seeded shuffle (the
    hardware scheduler makes no promise); ``"workload_desc"`` — LPT order,
    what the work-queue forces.
    """
    durations = np.asarray(durations, dtype=np.float64)
    n = len(durations)
    if order == "fifo":
        return np.arange(n)
    if order == "random":
        return resolve_rng(seed).permutation(n)
    if order == "workload_desc":
        return stable_argsort_desc(durations)
    raise ValueError(f"unknown issue order {order!r}; expected one of {ISSUE_ORDERS}")


@dataclass(frozen=True)
class ScheduleResult:
    """Outcome of scheduling warps onto issue slots."""

    makespan_cycles: float
    slot_finish_cycles: np.ndarray  # (slots,) busy time per slot
    start_cycles: np.ndarray  # (warps,) dispatch time per warp (warp-id indexed)

    @property
    def slot_imbalance(self) -> float:
        """Max/mean slot busy-time ratio — 1.0 is a perfectly level finish."""
        busy = self.slot_finish_cycles
        mean = busy.mean() if len(busy) else 0.0
        if mean == 0:
            return 1.0
        return float(busy.max() / mean)


def makespan(
    durations: np.ndarray,
    slots: int,
    *,
    order: str = "fifo",
    seed=None,
) -> ScheduleResult:
    """Greedy list scheduling of warp ``durations`` onto ``slots`` slots.

    Returns the kernel makespan in cycles. Durations must include any
    per-warp launch overhead the caller wants charged.
    """
    durations = np.asarray(durations, dtype=np.float64)
    if slots < 1:
        raise ValueError("slots must be >= 1")
    if (durations < 0).any():
        raise ValueError("durations must be non-negative")
    n = len(durations)
    starts = np.zeros(n, dtype=np.float64)
    if n == 0:
        return ScheduleResult(0.0, np.zeros(slots), starts)

    perm = issue_order_permutation(durations, order, seed=seed)

    if n <= slots:
        # one warp per slot; no queuing
        finish = np.zeros(slots)
        finish[: n] = durations[perm]
        return ScheduleResult(float(durations.max(initial=0.0)), finish, starts)

    # heap of (free_time, slot). Python heapq is fine: one push/pop per warp.
    heap = [(0.0, s) for s in range(slots)]
    heapq.heapify(heap)
    slot_finish = np.zeros(slots, dtype=np.float64)
    for w in perm:
        free_at, slot = heapq.heappop(heap)
        starts[w] = free_at
        done = free_at + durations[w]
        slot_finish[slot] = done
        heapq.heappush(heap, (done, slot))
    return ScheduleResult(float(slot_finish.max()), slot_finish, starts)

"""The bulk-lane vectorized execution engine for the SIMT VM.

``GpuMachine`` normally interprets a kernel one Python thread at a time —
faithful, but the reproduction's wall-clock then scales with |D|·3**n
Python iterations. This module provides the fast path: a *bulk kernel* is
an array-level implementation of the same kernel function that computes an
entire launch at once — every thread's per-region cycle charges and every
emitted result pair, in the exact order the interpreter would have
produced them.

The contract a bulk kernel must honor (and the equivalence suite checks):

- **identical pairs, in buffer order** — the result buffer's content is
  byte-for-byte what thread-by-thread execution in warp issue order would
  have appended;
- **identical charges** — per-thread cycle totals per control-flow region
  (label) match the interpreter's trace totals, so the aggregate warp
  replay, WEE and the makespan come out the same to the cycle;
- **identical device side effects** — atomic counters advance by the same
  amount with the same operation count, and a capacity overflow raises
  :class:`~repro.simt.memory.BufferOverflowError` exactly when the
  interpreted launch would have.

This is possible because every charge the self-join kernels make is a pure
function of candidate counts and cell visits, and because the work-queue's
fetch sequence under a static issue order is computable in closed form
(group g's leader is the issue-rank-g fetch). Event-by-event ``lockstep``
replay is the one thing the closed form cannot reproduce — the machine
falls back to the interpreter for it.

Bulk implementations are registered per kernel function
(:func:`register_bulk_kernel`); :class:`~repro.simt.GpuMachine` consults
the registry when constructed with ``engine="vectorized"`` and silently
interprets anything that has no bulk form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.simt.context import ThreadTrace
from repro.simt.costs import CostParams
from repro.simt.warp import WarpStats, warp_stats_from_label_matrix

__all__ = [
    "ENGINES",
    "TRACE_LABEL_ORDER",
    "BulkKernelResult",
    "BulkLaunch",
    "LabelCharges",
    "bulk_kernel_for",
    "bulk_warp_stats",
    "register_bulk_kernel",
    "synthesize_traces",
    "thread_issue_positions",
]

ENGINES = ("interpreted", "vectorized")

#: Canonical region order for synthesized traces — the order the kernels'
#: regions first appear in a thread's interpreted trace.
TRACE_LABEL_ORDER = ("atomic", "shfl", "setup", "cells", "dist", "emit")


def thread_issue_positions(
    warp_order: np.ndarray, warp_size: int, num_threads: int
) -> np.ndarray:
    """Rank of each thread id in the machine's execution sequence.

    The machine executes whole warps in ``warp_order``, lanes in lane
    order, skipping thread ids beyond the launch width — ``pos[tid]`` is
    where ``tid`` falls in that sequence. Everything order-dependent in a
    bulk kernel (queue fetches, result emission) keys off this array.
    """
    ws = warp_size
    seq = (
        np.asarray(warp_order, dtype=np.int64)[:, None] * ws
        + np.arange(ws, dtype=np.int64)[None, :]
    ).ravel()
    seq = seq[seq < num_threads]
    pos = np.empty(num_threads, dtype=np.int64)
    pos[seq] = np.arange(num_threads, dtype=np.int64)
    return pos


@dataclass(frozen=True)
class BulkLaunch:
    """Launch geometry the machine hands to a bulk kernel implementation."""

    num_threads: int
    warp_size: int
    num_warps: int
    warp_order: np.ndarray
    costs: CostParams
    coop_groups: bool = False

    def issue_positions(self) -> np.ndarray:
        """Per-thread execution rank (see :func:`thread_issue_positions`)."""
        return thread_issue_positions(
            self.warp_order, self.warp_size, self.num_threads
        )


@dataclass
class LabelCharges:
    """Per-thread cycle charges of one control-flow region.

    ``present`` marks threads that record an *event* for the region even
    when its cycles are zero (a kernel charging ``0.0`` still appends a
    trace event) — needed only to synthesize interpreter-identical traces.
    """

    cycles: np.ndarray
    present: np.ndarray

    def __post_init__(self):
        self.cycles = np.asarray(self.cycles, dtype=np.float64)
        self.present = np.asarray(self.present, dtype=bool)


@dataclass
class BulkKernelResult:
    """Everything one bulk kernel evaluation produced.

    ``pairs`` must already be in the interpreter's emission order: threads
    by issue position, each thread's blocks in kernel traversal order,
    forward hits before their mirrors, candidates in cell order.
    """

    charges: dict[str, LabelCharges] = field(default_factory=dict)
    pairs: np.ndarray = field(
        default_factory=lambda: np.empty((0, 2), dtype=np.int64)
    )


_BULK_KERNELS: dict[Callable, Callable] = {}


def register_bulk_kernel(kernel: Callable, impl: Callable) -> None:
    """Register ``impl(launch, args) -> BulkKernelResult`` as the bulk form
    of ``kernel(ctx, args)``. Re-registration replaces the previous form."""
    _BULK_KERNELS[kernel] = impl


def bulk_kernel_for(kernel: Callable):
    """The registered bulk implementation of ``kernel``, or ``None``."""
    return _BULK_KERNELS.get(kernel)


def bulk_warp_stats(
    result: BulkKernelResult, num_threads: int, num_warps: int, warp_size: int
) -> list[WarpStats]:
    """Aggregate-replay warp statistics from a bulk result's charges."""
    labels = list(result.charges)
    if labels:
        matrix = np.stack(
            [result.charges[label].cycles for label in labels], axis=1
        )
    else:
        matrix = np.zeros((num_threads, 0), dtype=np.float64)
    return warp_stats_from_label_matrix(matrix, num_threads, num_warps, warp_size)


def synthesize_traces(
    result: BulkKernelResult, num_threads: int
) -> list[ThreadTrace]:
    """Per-thread traces equivalent to the interpreter's, for profiling.

    Each present region becomes one event carrying the thread's total
    cycles for it, in canonical region order — label totals (what the
    aggregate replay and :func:`repro.simt.profile_kernel` consume) match
    the interpreted launch exactly; only the event *granularity* is
    coarser, which is why ``lockstep`` replay never runs on this path.
    """
    traces = [ThreadTrace() for _ in range(num_threads)]
    ordered = [label for label in TRACE_LABEL_ORDER if label in result.charges]
    ordered += [label for label in result.charges if label not in TRACE_LABEL_ORDER]
    for label in ordered:
        ch = result.charges[label]
        cycles = ch.cycles
        for tid in np.flatnonzero(ch.present):
            traces[tid].add(label, float(cycles[tid]))
    return traces

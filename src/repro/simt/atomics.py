"""Device-global atomic counter.

The WORKQUEUE optimization replaces the static thread→point mapping with a
queue head advanced by ``atomicAdd``. The VM counter additionally tracks the
number of operations so the cost model can charge atomic latency and
contention.
"""

from __future__ import annotations

__all__ = ["AtomicCounter"]


class AtomicCounter:
    """A monotonically increasing integer with fetch-and-add semantics."""

    def __init__(self, initial: int = 0, *, name: str = "counter"):
        self.name = name
        self._value = int(initial)
        self.num_ops = 0

    @property
    def value(self) -> int:
        return self._value

    def fetch_add(self, amount: int = 1) -> int:
        """Atomically add ``amount`` and return the previous value."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        old = self._value
        self._value += int(amount)
        self.num_ops += 1
        return old

    def fetch_add_bulk(self, count: int, amount: int = 1) -> int:
        """Apply ``count`` consecutive ``fetch_add(amount)`` calls at once.

        Returns the value before the first of them. The bulk engine uses
        this to advance the queue head for a whole launch while keeping
        ``num_ops`` — which the cost model charges per operation —
        identical to ``count`` individual fetches.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if amount < 0:
            raise ValueError("amount must be non-negative")
        old = self._value
        self._value += int(count) * int(amount)
        self.num_ops += int(count)
        return old

    def reset(self, value: int = 0) -> None:
        """Host-side reset between kernel invocations (the queue persists
        across batches in the paper, so callers normally do *not* reset)."""
        self._value = int(value)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AtomicCounter({self.name}={self._value}, ops={self.num_ops})"

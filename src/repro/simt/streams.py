"""CUDA-stream pipeline model for the batching scheme.

The paper hides result transfers behind kernel executions using 3 streams
and pinned staging buffers. The model captures the three real constraints:

1. kernels serialize on the device (one self-join kernel at a time);
2. device→host transfers serialize on the single copy engine but overlap
   with kernels;
3. a batch's pinned buffer is reused every ``num_streams`` batches, so
   kernel ``b`` cannot start before transfer ``b - num_streams`` has freed
   its buffer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PipelineResult", "simulate_stream_pipeline"]


@dataclass(frozen=True)
class PipelineResult:
    """Timing of a batched kernel/transfer pipeline (seconds)."""

    total_seconds: float
    kernel_start: np.ndarray
    kernel_end: np.ndarray
    transfer_end: np.ndarray

    @property
    def transfer_overlap_fraction(self) -> float:
        """Fraction of total transfer busy time hidden under kernel execution.

        1.0 means transfers were fully overlapped (the pipeline finishes as
        soon as the last kernel's own transfer completes behind it).
        """
        busy = float((self.transfer_end - self._transfer_start()).sum())
        if busy == 0:
            return 1.0
        kernel_span = float(self.kernel_end[-1]) if len(self.kernel_end) else 0.0
        exposed = max(0.0, float(self.total_seconds) - kernel_span)
        return max(0.0, 1.0 - exposed / busy)

    def _transfer_start(self) -> np.ndarray:
        if len(self.transfer_end) == 0:
            return self.transfer_end
        prev = np.concatenate([[0.0], self.transfer_end[:-1]])
        return np.maximum(self.kernel_end, prev)


def simulate_stream_pipeline(
    kernel_seconds,
    transfer_seconds,
    num_streams: int = 3,
) -> PipelineResult:
    """Simulate the batched pipeline and return completion times.

    Parameters
    ----------
    kernel_seconds, transfer_seconds:
        Per-batch durations, equal length.
    num_streams:
        Number of in-flight batches (pinned buffer count).
    """
    kern = np.asarray(kernel_seconds, dtype=np.float64)
    xfer = np.asarray(transfer_seconds, dtype=np.float64)
    if kern.shape != xfer.shape or kern.ndim != 1:
        raise ValueError("kernel and transfer durations must be equal-length 1-D")
    if num_streams < 1:
        raise ValueError("num_streams must be >= 1")
    if (kern < 0).any() or (xfer < 0).any():
        raise ValueError("durations must be non-negative")

    nb = len(kern)
    k_start = np.zeros(nb)
    k_end = np.zeros(nb)
    t_end = np.zeros(nb)
    for b in range(nb):
        start = k_end[b - 1] if b > 0 else 0.0
        if b >= num_streams:
            start = max(start, t_end[b - num_streams])  # buffer reuse gate
        k_start[b] = start
        k_end[b] = start + kern[b]
        t_start = max(k_end[b], t_end[b - 1] if b > 0 else 0.0)
        t_end[b] = t_start + xfer[b]
    total = float(t_end[-1]) if nb else 0.0
    return PipelineResult(total, k_start, k_end, t_end)

"""The cross-request index/plan cache of the serving layer.

Gowanlock & Karsin (arXiv:1809.09930) observe that for repeated range
queries against the same dataset, index construction dominates repeated-
query cost — so a serving layer must not rebuild the ε-grid per request.
:class:`SessionCache` keys built :class:`~repro.grid.GridIndex`\\ es by
``(dataset fingerprint, grid parameters)`` and serves them to every
subsequent request on the same registered dataset. The memoized
:class:`~repro.core.patterns.PatternPlan`\\ s ride along for free: they
live on ``index.plan_cache``, so a cache hit reuses the pattern geometry
too (every engine shares one copy per pattern).

Eviction is LRU over a fixed entry budget; hits, misses and evictions are
counted for the :class:`~repro.profiling.ServiceReport`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.grid import GridIndex

__all__ = ["CacheStats", "SessionCache"]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss accounting of one :class:`SessionCache` (a snapshot)."""

    hits: int
    misses: int
    evictions: int
    entries: int
    capacity: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0 when the cache was never consulted)."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class SessionCache:
    """LRU cache of built indexes, keyed by content + grid parameters.

    The key is ``(dataset_fingerprint, repr(epsilon))``: two requests
    share an entry iff they join byte-identical data under the same grid
    geometry — the exact invariant :meth:`GridIndex.fingerprint` pins.
    Thread-safe: the service reads it from the event loop and populates
    it from worker threads.
    """

    def __init__(self, capacity: int = 8):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str], GridIndex] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @staticmethod
    def key(dataset_fingerprint: str, epsilon: float) -> tuple[str, str]:
        return (dataset_fingerprint, repr(float(epsilon)))

    # ------------------------------------------------------------------
    def get(self, dataset_fingerprint: str, epsilon: float) -> GridIndex | None:
        """The cached index for this (dataset, ε), or ``None`` (counted)."""
        k = self.key(dataset_fingerprint, epsilon)
        with self._lock:
            index = self._entries.get(k)
            if index is None:
                self._misses += 1
                return None
            self._entries.move_to_end(k)
            self._hits += 1
            return index

    def put(self, dataset_fingerprint: str, epsilon: float, index: GridIndex) -> list:
        """Insert (or refresh) an entry; returns the evicted keys, if any."""
        k = self.key(dataset_fingerprint, epsilon)
        evicted = []
        with self._lock:
            self._entries[k] = index
            self._entries.move_to_end(k)
            while len(self._entries) > self.capacity:
                old_key, _ = self._entries.popitem(last=False)
                self._evictions += 1
                evicted.append(old_key)
        return evicted

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                entries=len(self._entries),
                capacity=self.capacity,
            )

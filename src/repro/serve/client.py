"""Deterministic in-process client — the canonical way to talk to the service.

:class:`JoinClient` is a thin async facade over a :class:`JoinService`
living in the same process: no sockets, no serialization, full
:class:`~repro.core.result.JoinResult` objects in responses. The optional
TCP transport (:mod:`repro.serve.net`) exposes the same verbs over a
socket; everything in the test and benchmark suites uses this in-process
form so runs are deterministic and dependency-free.
"""

from __future__ import annotations

from typing import AsyncIterator

import numpy as np

from repro.runtime.config import RuntimeConfig
from repro.serve.model import JoinRequest, JoinResponse, JoinTicket
from repro.serve.service import JoinService, ServeConfig

__all__ = ["JoinClient"]


class JoinClient:
    """Async client bound to one in-process :class:`JoinService`.

    Owns the service unless one is passed in::

        async with JoinClient() as client:
            client.register_dataset("expo", points)
            response = await client.self_join("expo", epsilon=0.4)
    """

    def __init__(
        self,
        service: JoinService | None = None,
        *,
        config: ServeConfig | None = None,
        tenant: str = "default",
    ):
        if service is not None and config is not None:
            raise ValueError("pass either a service or a config, not both")
        self.service = service if service is not None else JoinService(config)
        self.tenant = tenant
        self._owns_service = service is None

    async def __aenter__(self) -> "JoinClient":
        if self._owns_service:
            await self.service.start()
        return self

    async def __aexit__(self, *exc) -> None:
        if self._owns_service:
            await self.service.stop(drain=not any(exc))

    def for_tenant(self, tenant: str) -> "JoinClient":
        """A view of the same service acting as another tenant."""
        view = JoinClient(self.service, tenant=tenant)
        view._owns_service = False
        return view

    # ------------------------------------------------------------------
    def register_dataset(self, name: str, points):
        return self.service.register_dataset(name, points)

    async def submit(self, request: JoinRequest) -> JoinTicket:
        return await self.service.submit(request)

    async def result(self, ticket: JoinTicket) -> JoinResponse:
        return await self.service.result(ticket)

    async def run(self, request: JoinRequest) -> JoinResponse:
        return await self.service.run(request)

    def stream(
        self, ticket: JoinTicket, *, chunk: int | None = None
    ) -> AsyncIterator[np.ndarray]:
        return self.service.stream(ticket, chunk=chunk)

    def cancel(self, ticket: JoinTicket) -> bool:
        return self.service.cancel(ticket)

    # ------------------------------------------------------------------
    async def self_join(
        self,
        dataset: str,
        *,
        epsilon: float,
        runtime: RuntimeConfig | None = None,
        **kwargs,
    ) -> JoinResponse:
        """Submit-and-await one self-join on a registered dataset."""
        request = JoinRequest(
            dataset=dataset,
            epsilon=epsilon,
            kind="self",
            tenant=kwargs.pop("tenant", self.tenant),
            runtime=runtime if runtime is not None else RuntimeConfig(),
            **kwargs,
        )
        return await self.run(request)

    async def similarity_join(
        self,
        dataset: str,
        query_dataset: str,
        *,
        epsilon: float,
        runtime: RuntimeConfig | None = None,
        **kwargs,
    ) -> JoinResponse:
        """Submit-and-await one similarity join (``dataset`` is indexed)."""
        request = JoinRequest(
            dataset=dataset,
            epsilon=epsilon,
            kind="similarity",
            query_dataset=query_dataset,
            tenant=kwargs.pop("tenant", self.tenant),
            runtime=runtime if runtime is not None else RuntimeConfig(),
            **kwargs,
        )
        return await self.run(request)

"""``python -m repro.serve`` — a self-contained multi-tenant serving demo.

Starts a :class:`~repro.serve.service.JoinService`, registers two
synthetic datasets, drives three tenants with interleaved self- and
similarity-join requests through the in-process client, and prints the
:class:`~repro.profiling.ServiceReport` plus the incident log tail.

Options::

    --tenants N      concurrent tenants (default 3)
    --requests N     requests per tenant (default 4)
    --points N       points per dataset (default 600)
    --seed N         dataset RNG seed (default 7)
    --port P         also expose the JSON-lines TCP transport on P and
                     answer one ping through it (demo of repro.serve.net)
"""

from __future__ import annotations

import argparse
import asyncio

from repro.data import exponential, uniform
from repro.runtime.config import RuntimeConfig
from repro.serve.client import JoinClient
from repro.serve.model import JoinRequest
from repro.serve.service import JoinService, ServeConfig


def _parse_args(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--tenants", type=int, default=3)
    parser.add_argument("--requests", type=int, default=4)
    parser.add_argument("--points", type=int, default=600)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--port", type=int, default=None)
    return parser.parse_args(argv)


async def _demo(args) -> int:
    config = ServeConfig(tenant_weights={"tenant0": 2.0})
    service = JoinService(config)
    async with JoinClient(service) as client:
        await service.start()
        client.register_dataset("expo", exponential(args.points, 2, seed=args.seed))
        client.register_dataset(
            "unif", uniform(args.points, 2, seed=args.seed + 1, low=0.0, high=1.0)
        )

        if args.port is not None:
            from repro.serve.net import TcpJoinClient, serve_tcp

            server, port = await serve_tcp(service, port=args.port)
            async with TcpJoinClient(port=port) as tcp:
                print(f"tcp transport on 127.0.0.1:{port} — ping: {await tcp.ping()}")
            server.close()
            await server.wait_closed()

        tickets = []
        for r in range(args.requests):
            for t in range(args.tenants):
                if (r + t) % 2:
                    request = JoinRequest(
                        dataset="unif",
                        epsilon=0.05,
                        kind="similarity",
                        query_dataset="expo",
                        tenant=f"tenant{t}",
                        runtime=RuntimeConfig(),
                    )
                else:
                    request = JoinRequest(
                        dataset="expo", epsilon=0.05, tenant=f"tenant{t}"
                    )
                tickets.append(await client.submit(request))
        responses = [await client.result(t) for t in tickets]

        for response in responses[: args.tenants]:
            print(
                f"{response.request_id} [{response.tenant}] {response.kind:10s}"
                f" -> {response.state}: {response.num_pairs} pairs"
                f"{' (cache hit)' if response.cache_hit else ''}"
            )
        if len(responses) > args.tenants:
            print(f"… and {len(responses) - args.tenants} more")

        print()
        print(service.report().render())
        print()
        print("last events:")
        for event in service.log.events[-6:]:
            print(
                f"  #{event.seq:03d} {event.kind:10s} {event.request_id:7s}"
                f" {event.tenant:8s} {event.detail}"
            )
    return 0


def main(argv=None) -> int:
    return asyncio.run(_demo(_parse_args(argv)))


if __name__ == "__main__":
    raise SystemExit(main())

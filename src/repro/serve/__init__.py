"""`repro.serve`: async multi-tenant join serving on a shared device pool.

Every layer below this one answers a single join as fast as possible;
this subsystem keeps answering *many* joins for *many* tenants from one
long-running process. The moving parts:

- :class:`JoinService` — the server: registration, admission, weighted
  deficit-round-robin fairness, bounded concurrency on one shared
  :class:`~repro.multigpu.pool.DevicePool`, per-request
  cancellation/timeouts, and the :class:`SessionCache` that reuses built
  :class:`~repro.grid.GridIndex`\\ es (and their memoized pattern plans)
  across requests.
- :class:`JoinClient` — the deterministic in-process client every test
  and benchmark drives; :mod:`repro.serve.net` adds an optional
  stdlib-only TCP transport behind the same verbs.
- :class:`ServiceLog` — the typed incident log (mirror of the
  multi-GPU scheduler's ``ShardEvent`` stream); render the service's
  aggregate behaviour with :meth:`JoinService.report` (a
  :class:`~repro.profiling.ServiceReport`).

Quick start::

    import asyncio
    from repro.serve import JoinClient

    async def main():
        async with JoinClient() as client:
            client.register_dataset("expo", points)
            r = await client.self_join("expo", epsilon=0.4)
            print(r.num_pairs, r.cache_hit)

    asyncio.run(main())

``python -m repro.serve`` runs a self-contained multi-tenant demo.
"""

from repro.serve.admission import (
    AdmissionDecision,
    AdmissionPolicy,
    CircuitBreaker,
    CircuitBreakerPolicy,
    RateLimitPolicy,
    RetryBudget,
    RetryPolicy,
    TokenBucket,
    check_admission,
    estimate_request_cost,
)
from repro.serve.cache import CacheStats, SessionCache
from repro.serve.chaos import ChaosController
from repro.serve.client import JoinClient
from repro.serve.events import EVENT_KINDS, ServiceEvent, ServiceLog
from repro.serve.fairness import FairQueue
from repro.serve.model import (
    REQUEST_KINDS,
    REQUEST_STATES,
    TERMINAL_STATES,
    AdmissionError,
    DatasetHandle,
    JoinRequest,
    JoinResponse,
    JoinTicket,
    ServeError,
)
from repro.serve.service import JoinService, ServeConfig

__all__ = [
    "AdmissionDecision",
    "AdmissionError",
    "AdmissionPolicy",
    "CacheStats",
    "ChaosController",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "DatasetHandle",
    "EVENT_KINDS",
    "FairQueue",
    "JoinClient",
    "JoinRequest",
    "JoinResponse",
    "JoinService",
    "JoinTicket",
    "RateLimitPolicy",
    "REQUEST_KINDS",
    "REQUEST_STATES",
    "RetryBudget",
    "RetryPolicy",
    "ServeConfig",
    "ServeError",
    "ServiceEvent",
    "ServiceLog",
    "SessionCache",
    "TERMINAL_STATES",
    "TokenBucket",
    "check_admission",
    "estimate_request_cost",
]

"""`JoinService`: async multi-tenant join serving on a shared device pool.

The service is the first consumer of the PR-4 pipeline under
concurrency: every request still compiles to a declarative
:class:`~repro.runtime.plan.JoinPlan` executed by the one
:class:`~repro.runtime.runner.Runner` — the service adds the *serving*
concerns around that seam:

- **registration** — datasets are registered once and addressed by name;
  the content fingerprint (:func:`repro.grid.dataset_fingerprint`) is
  the cache identity;
- **admission** — each request's result size is estimated up front
  (:mod:`repro.serve.admission`) and the request is queued or rejected
  against the backlog bound and per-request budget; per-tenant
  :class:`~repro.serve.admission.TokenBucket` rate limits and
  :class:`~repro.serve.admission.CircuitBreaker`\\ s reject *before* the
  estimate costs anything — every rejection is a terminal response,
  never a hung caller;
- **fairness** — queued requests drain by weighted deficit round-robin
  (:mod:`repro.serve.fairness`), so tenants share estimated result rows
  proportionally to their weights;
- **caching** — built :class:`~repro.grid.GridIndex`\\ es (and the
  :class:`~repro.core.patterns.PatternPlan`\\ s memoized on them) are
  reused across requests through the
  :class:`~repro.serve.cache.SessionCache`; plans compiled from a cached
  index carry ``IndexStage(reused=True)``;
- **concurrency** — up to ``max_concurrency`` joins execute at once in
  worker threads; pooled configs share the service's one
  :class:`~repro.multigpu.pool.DevicePool` (serialized on it), and the
  service keeps serving when recovery degrades that pool — device health
  is re-armed per run by :func:`repro.resilience.executor.arm_pool`;
- **resilience** — a request whose config checkpoints
  (``RuntimeConfig(checkpoint=...)``) journals shard fragments durably;
  a budgeted retry (:class:`~repro.serve.admission.RetryPolicy`) re-runs
  a failed request — resuming from its journal instead of restarting —
  and ``deadline_seconds`` propagates from the request into the Runner's
  shard-dispatch deadline checks. The seeded
  :class:`~repro.resilience.faults.ServiceFaultPlan`
  (``ServeConfig(chaos=...)``) injects service-level faults at the
  dispatch seam for the chaos suite;
- **observability** — every decision lands in the
  :class:`~repro.serve.events.ServiceLog`, and
  :meth:`JoinService.report` renders the
  :class:`~repro.profiling.ServiceReport` (chaos runs additionally get
  the :class:`~repro.profiling.ChaosReport`).

Execution is per-request deterministic: results depend only on the
request (data, config, seed), never on interleaving — the concurrency
equivalence suite pins service responses bit-identical to serial
:class:`Runner` runs, and the chaos suite pins the timestamp-free
``ServiceLog`` signature per fault-plan seed.

Shutdown is graceful by default: :meth:`stop` first logs ``drain`` and
stops admissions (new submits resolve terminally ``rejected``), lets the
backlog and in-flight work finish (bounded by ``timeout``), then resolves
*every* still-pending ticket terminally ``cancelled`` — no caller awaits
forever, whichever path their request died on.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field, replace
from typing import AsyncIterator

import numpy as np

from repro.grid import GridIndex, dataset_fingerprint
from repro.resilience.faults import ServiceFaultPlan
from repro.runtime.config import RuntimeConfig
from repro.runtime.plan import (
    compile_knn_join,
    compile_self_join,
    compile_similarity_join,
)
from repro.runtime.runner import DeadlineExceededError, Runner
from repro.serve.admission import (
    AdmissionPolicy,
    CircuitBreaker,
    CircuitBreakerPolicy,
    RateLimitPolicy,
    RetryBudget,
    RetryPolicy,
    TokenBucket,
    check_admission,
    estimate_request_cost,
)
from repro.serve.cache import SessionCache
from repro.serve.chaos import ChaosController
from repro.serve.events import ServiceLog
from repro.serve.fairness import FairQueue
from repro.serve.model import (
    DatasetHandle,
    JoinRequest,
    JoinResponse,
    JoinTicket,
    ServeError,
)
from repro.util import as_points_array

__all__ = ["JoinService", "ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Service-level knobs (per-request knobs ride in the request's
    :class:`~repro.runtime.config.RuntimeConfig`).

    ``quantum`` is the deficit round-robin credit per tenant visit, in
    estimated result rows; ``tenant_weights`` scales it per tenant
    (unlisted tenants get weight 1). ``pool_devices`` sizes the shared
    device pool for pooled requests (their sharding config is adapted to
    it). ``default_timeout_seconds`` is the queue deadline applied when a
    request does not bring its own.

    The protective knobs are all per tenant and all optional:
    ``rate_limit`` (token bucket at submit), ``circuit_breaker`` (stop
    admitting a tenant whose requests keep failing), ``retry`` (budgeted
    re-execution of failures — checkpointed requests resume from their
    journal). ``chaos`` arms the seeded service-fault injector
    (:class:`~repro.resilience.faults.ServiceFaultPlan`) — test/benchmark
    use only.
    """

    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    cache_entries: int = 8
    quantum: float = 4096.0
    tenant_weights: dict = field(default_factory=dict)
    default_timeout_seconds: float | None = None
    pool_devices: int = 2
    rate_limit: RateLimitPolicy | None = None
    circuit_breaker: CircuitBreakerPolicy | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    chaos: ServiceFaultPlan | None = None

    def __post_init__(self):
        if self.cache_entries < 1:
            raise ValueError("cache_entries must be >= 1")
        if self.quantum <= 0:
            raise ValueError("quantum must be positive")
        if self.pool_devices < 1:
            raise ValueError("pool_devices must be >= 1")
        if self.default_timeout_seconds is not None and self.default_timeout_seconds <= 0:
            raise ValueError("default_timeout_seconds must be positive")


class JoinService:
    """The long-running join server. Use as an async context manager::

        async with JoinService() as svc:
            svc.register_dataset("stars", points)
            ticket = await svc.submit(JoinRequest(dataset="stars", epsilon=0.5))
            response = await svc.result(ticket)
    """

    def __init__(self, config: ServeConfig | None = None):
        self.config = config if config is not None else ServeConfig()
        self.cache = SessionCache(self.config.cache_entries)
        self.log = ServiceLog()
        self._queue = FairQueue(
            quantum=self.config.quantum, weights=self.config.tenant_weights
        )
        self._datasets: dict[str, DatasetHandle] = {}
        self._tickets: dict[str, JoinTicket] = {}
        self._build_locks: dict[tuple[str, str], asyncio.Lock] = {}
        self._slots = asyncio.Semaphore(self.config.admission.max_concurrency)
        self._pool = None
        self._pool_mutex = threading.Lock()
        self._dispatcher: asyncio.Task | None = None
        self._workers: set[asyncio.Task] = set()
        self._seq = 0
        self._t0 = time.monotonic()
        self._running = False
        self._draining = False
        self._dispatch_gate = asyncio.Event()
        self._dispatch_gate.set()
        self._dispatch_seq = 0
        self._chaos = ChaosController(self.config.chaos)
        # per-tenant protective state (event-loop-only, no locks)
        self._buckets: dict[str, TokenBucket] = {}
        self._breakers: dict[str, CircuitBreaker] = {}
        self._retry_budgets: dict[str, RetryBudget] = {}
        # per-request chaos injections, keyed by request id (attempt 0 only)
        self._injections: dict[str, tuple] = {}
        # accounting read by repro.profiling.service_report
        self._counts = {
            k: 0
            for k in (
                "submitted",
                "completed",
                "failed",
                "rejected",
                "cancelled",
                "timeout",
                "rate_limited",
                "circuit_open",
                "retried",
            )
        }
        self._queue_latencies: list[float] = []
        self._tenant_stats: dict[str, dict] = {}
        self._dispatch_order: list[str] = []
        self._pool_busy_seconds = 0.0
        self._pool_allocated_seconds = 0.0
        self._pooled_runs = 0
        self._ckpt_lock = threading.Lock()
        self._ckpt = {
            "writes": 0,
            "loads": 0,
            "bytes_written": 0,
            "write_seconds": 0.0,
        }

    # ------------------------------------------------------- lifecycle
    async def start(self) -> "JoinService":
        if self._running:
            return self
        self._running = True
        self._draining = False
        self._t0 = time.monotonic()
        self._dispatcher = asyncio.create_task(
            self._dispatch_loop(), name="repro-serve-dispatcher"
        )
        return self

    async def stop(self, *, drain: bool = True, timeout: float | None = None) -> None:
        """Stop serving, gracefully by default.

        Draining first stops admissions (``drain`` event; new submits are
        terminally rejected), then waits for the backlog and in-flight
        requests to finish — bounded by ``timeout`` seconds when given.
        ``drain=False`` (or an expired timeout) cancels everything still
        queued. Either way every non-terminal ticket — queued, running, or
        never dispatched — is resolved terminally before ``shutdown`` is
        logged, so no ``result()`` caller can be left hanging.
        """
        if not self._running:
            return
        self._draining = True
        self.log.append(
            "drain",
            at_seconds=self._now(),
            detail="admissions stopped; "
            + ("finishing backlog" if drain else "cancelling backlog"),
        )
        if drain:
            self.resume_dispatch()  # a paused service must not wedge the drain
            deadline = (
                time.monotonic() + timeout if timeout is not None else None
            )
            while len(self._queue) or self._workers:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                await asyncio.sleep(0.005)
        self._running = False
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        # flush whatever is still queued as cancelled tickets
        while len(self._queue):
            _, ticket, _ = self._queue._pop_now()
            if ticket.done:
                continue
            self._counts["cancelled"] += 1
            self.log.append(
                "cancelled",
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                at_seconds=self._now(),
                detail="cancelled at shutdown (never dispatched)",
            )
            self._finalize(ticket, state="cancelled", error="service stopped")
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        # safety net: no ticket may survive shutdown unresolved
        for ticket in self._tickets.values():
            if ticket.done:
                continue
            self._counts["cancelled"] += 1
            self.log.append(
                "cancelled",
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                at_seconds=self._now(),
                detail="resolved terminally at shutdown",
            )
            self._finalize(ticket, state="cancelled", error="service stopped")
        self.log.append("shutdown", at_seconds=self._now())

    async def __aenter__(self) -> "JoinService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop(drain=not any(exc))

    def _now(self) -> float:
        return time.monotonic() - self._t0

    def pause_dispatch(self) -> None:
        """Hold dispatch: queued requests stay queued until resumed.

        Submits still admit and queue. The chaos tests use this to land a
        whole submit sequence before the first dispatch, making the
        injection ordinals — and so the log signature — deterministic.
        """
        self._dispatch_gate.clear()

    def resume_dispatch(self) -> None:
        self._dispatch_gate.set()

    # ------------------------------------------------------- datasets
    def register_dataset(self, name: str, points) -> DatasetHandle:
        """Register (or replace) a named dataset; validates and fingerprints.

        Registration is cheap — no index is built until the first request
        references the dataset (admission builds it, warming the cache).
        """
        if not name:
            raise ServeError("dataset name must be non-empty")
        pts = as_points_array(points)
        handle = DatasetHandle(
            name=name,
            fingerprint=dataset_fingerprint(pts),
            num_points=pts.shape[0],
            ndim=pts.shape[1],
            points=pts,
        )
        self._datasets[name] = handle
        self.log.append(
            "register",
            tenant="",
            at_seconds=self._now(),
            detail=f"{name} n={handle.num_points} dim={handle.ndim}",
        )
        return handle

    def dataset(self, name: str) -> DatasetHandle:
        try:
            return self._datasets[name]
        except KeyError:
            raise ServeError(f"unknown dataset {name!r}; register it first") from None

    # ------------------------------------------------------- admission
    async def submit(self, request: JoinRequest) -> JoinTicket:
        """Admit one request: estimate its cost, queue it or reject it.

        Always returns a ticket; a rejected request's ticket is already
        terminal (``state="rejected"``) and its response carries the
        reason. Protective rejections — draining, rate limit, open
        circuit — happen first and cost nothing; only then is the index
        resolved through the session cache (warming it for execution) and
        the result size estimated for the admission policy.
        """
        if not self._running:
            raise ServeError("service is not running; use 'async with JoinService()'")
        handle = self.dataset(request.dataset)
        query_handle = (
            self.dataset(request.query_dataset)
            if request.query_dataset is not None
            else None
        )
        self._seq += 1
        ticket = JoinTicket(
            request_id=f"r{self._seq:05d}",
            request=request,
            submitted_at=self._now(),
        )
        ticket.future = asyncio.get_running_loop().create_future()
        self._tickets[ticket.request_id] = ticket
        self._counts["submitted"] += 1
        self._tenant(request.tenant)["submitted"] += 1
        self.log.append(
            "submit",
            request_id=ticket.request_id,
            tenant=request.tenant,
            at_seconds=self._now(),
            detail=f"{request.kind} {request.dataset} eps={request.epsilon:g}"
            + (f" [{request.tag}]" if request.tag else ""),
        )

        if self._draining:
            return self._reject(
                ticket, kind="reject", reason="draining (service is shutting down)"
            )
        if self.config.rate_limit is not None:
            bucket = self._buckets.get(request.tenant)
            if bucket is None:
                bucket = self._buckets[request.tenant] = TokenBucket(
                    self.config.rate_limit
                )
            if not bucket.try_take(self._now()):
                self._counts["rate_limited"] += 1
                self._tenant(request.tenant)["rate_limited"] += 1
                return self._reject(
                    ticket,
                    kind="rate_limited",
                    reason=f"rate_limited (tenant {request.tenant!r} bucket empty)",
                )
        breaker = self._breaker(request.tenant)
        if breaker is not None and not breaker.allow(self._now()):
            self._counts["circuit_open"] += 1
            return self._reject(
                ticket,
                kind="circuit_open",
                reason=(
                    f"circuit_open (tenant {request.tenant!r}: "
                    f"{breaker.consecutive_failures} consecutive failures)"
                ),
            )

        index, cache_hit = await self._index_for(handle, request.epsilon, ticket)
        cost = await asyncio.to_thread(
            estimate_request_cost,
            index,
            kind=request.kind,
            queries=query_handle.points if query_handle is not None else None,
            sample_fraction=request.runtime.optimization.sample_fraction,
            include_self=request.runtime.include_self,
            k=request.k,
        )
        ticket.estimated_pairs = cost
        ticket.cache_hit = cache_hit

        decision = check_admission(
            self.config.admission,
            queue_depth=len(self._queue),
            estimated_pairs=cost,
        )
        if not decision.admitted:
            return self._reject(ticket, kind="reject", reason=decision.reason)

        self._queue.push(request.tenant, ticket, float(cost))
        return ticket

    def _reject(self, ticket: JoinTicket, *, kind: str, reason: str) -> JoinTicket:
        """Resolve a never-queued ticket terminally ``rejected``."""
        self._counts["rejected"] += 1
        self._tenant(ticket.tenant)["rejected"] += 1
        self.log.append(
            kind,
            request_id=ticket.request_id,
            tenant=ticket.tenant,
            at_seconds=self._now(),
            detail=reason,
        )
        self._finalize(ticket, state="rejected", error=reason)
        return ticket

    def _breaker(self, tenant: str) -> CircuitBreaker | None:
        if self.config.circuit_breaker is None:
            return None
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = self._breakers[tenant] = CircuitBreaker(
                self.config.circuit_breaker
            )
        return breaker

    def _retry_budget(self, tenant: str) -> RetryBudget:
        budget = self._retry_budgets.get(tenant)
        if budget is None:
            budget = self._retry_budgets[tenant] = RetryBudget(self.config.retry)
        return budget

    async def _index_for(
        self, handle: DatasetHandle, epsilon: float, ticket: JoinTicket
    ) -> tuple[GridIndex, bool]:
        """Resolve the ε-grid through the cache, building at most once."""
        key = SessionCache.key(handle.fingerprint, epsilon)
        lock = self._build_locks.setdefault(key, asyncio.Lock())
        async with lock:
            index = self.cache.get(handle.fingerprint, epsilon)
            if index is not None:
                self.log.append(
                    "cache_hit",
                    request_id=ticket.request_id,
                    tenant=ticket.tenant,
                    at_seconds=self._now(),
                    detail=f"{handle.name} eps={epsilon:g}",
                )
                return index, True
            self.log.append(
                "cache_miss",
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                at_seconds=self._now(),
                detail=f"{handle.name} eps={epsilon:g}",
            )
            index = await asyncio.to_thread(GridIndex, handle.points, float(epsilon))
            evicted = self.cache.put(handle.fingerprint, epsilon, index)
            for old_key in evicted:
                self.log.append(
                    "evict", at_seconds=self._now(), detail=f"key={old_key[0][:12]}…"
                )
            return index, False

    # ------------------------------------------------------- serving
    async def _dispatch_loop(self) -> None:
        while True:
            tenant, ticket, _cost = await self._queue.pop()
            await self._dispatch_gate.wait()
            if ticket.cancel_requested:
                self._counts["cancelled"] += 1
                self.log.append(
                    "cancelled",
                    request_id=ticket.request_id,
                    tenant=tenant,
                    at_seconds=self._now(),
                    detail="cancelled while queued",
                )
                self._finalize(ticket, state="cancelled", error="cancelled while queued")
                continue
            timeout = (
                ticket.request.timeout_seconds
                if ticket.request.timeout_seconds is not None
                else self.config.default_timeout_seconds
            )
            waited = self._now() - ticket.submitted_at
            if timeout is not None and waited > timeout:
                self._counts["timeout"] += 1
                self.log.append(
                    "timeout",
                    request_id=ticket.request_id,
                    tenant=tenant,
                    at_seconds=self._now(),
                    detail=f"queued {waited:.3f}s > {timeout:g}s deadline",
                )
                self._finalize(
                    ticket,
                    state="timeout",
                    error=f"queue deadline exceeded ({waited:.3f}s > {timeout:g}s)",
                    queue_seconds=waited,
                )
                continue
            try:
                await self._slots.acquire()
            except asyncio.CancelledError:
                # stop(drain=False) cancelled us while we held a popped
                # ticket — resolve it so result() callers never hang
                self._counts["cancelled"] += 1
                self._finalize(ticket, state="cancelled", error="service stopped")
                raise
            ordinal = self._dispatch_seq
            self._dispatch_seq += 1
            self._dispatch_order.append(tenant)
            self.log.append(
                "dispatch",
                request_id=ticket.request_id,
                tenant=tenant,
                at_seconds=self._now(),
                detail=f"est={ticket.estimated_pairs}",
            )
            self._inject_chaos(ordinal, ticket)
            worker = asyncio.create_task(self._run_ticket(ticket, queue_seconds=waited))
            self._workers.add(worker)
            worker.add_done_callback(self._workers.discard)

    def _inject_chaos(self, ordinal: int, ticket: JoinTicket) -> None:
        """Apply the armed :class:`ServiceFaultPlan` at one dispatch ordinal."""
        if not self._chaos.active:
            return
        for victim in self._chaos.storm_victims(ordinal, self._queue.items()):
            victim.cancel()
            self.log.append(
                "fault",
                request_id=victim.request_id,
                tenant=victim.tenant,
                at_seconds=self._now(),
                detail=f"cancellation_storm victim (dispatch #{ordinal})",
            )
        if self._chaos.disconnects(ordinal):
            ticket.cancel()
            self.log.append(
                "fault",
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                at_seconds=self._now(),
                detail=f"client_disconnect (dispatch #{ordinal})",
            )
        slow = self._chaos.slow_client_for(ordinal)
        if slow is not None:
            self._chaos.register_slow(ticket.request_id, slow.delay_seconds)
            self.log.append(
                "fault",
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                at_seconds=self._now(),
                detail=f"slow_client delay={slow.delay_seconds:g}s",
            )
        collapse = self._chaos.collapse_for(ordinal)
        if collapse is not None and not ticket.request.runtime.pooled:
            collapse = None  # pool collapse is meaningless off the pool
        crash = self._chaos.crash_for(ordinal)
        if collapse is not None or crash is not None:
            self._injections[ticket.request_id] = (collapse, crash)
            if collapse is not None:
                self.log.append(
                    "fault",
                    request_id=ticket.request_id,
                    tenant=ticket.tenant,
                    at_seconds=self._now(),
                    detail=(
                        f"pool_collapse keep={collapse.keep_devices} "
                        f"at_shard={collapse.at_shard}"
                    ),
                )
            if crash is not None:
                self.log.append(
                    "fault",
                    request_id=ticket.request_id,
                    tenant=ticket.tenant,
                    at_seconds=self._now(),
                    detail=f"runner_crash at_shard={crash.at_shard}",
                )

    async def _run_ticket(self, ticket: JoinTicket, *, queue_seconds: float) -> None:
        try:
            ticket.state = "running"
            self._queue_latencies.append(queue_seconds)
            started = self._now()
            breaker = self._breaker(ticket.tenant)
            attempt = 0
            while True:
                try:
                    result = await asyncio.to_thread(
                        self._execute_sync, ticket, attempt
                    )
                except DeadlineExceededError as exc:
                    # a missed deadline is the client's budget running out,
                    # not a service fault — no breaker, no retry
                    self._counts["timeout"] += 1
                    self.log.append(
                        "timeout",
                        request_id=ticket.request_id,
                        tenant=ticket.tenant,
                        at_seconds=self._now(),
                        detail=f"execution deadline: {exc}",
                    )
                    self._finalize(
                        ticket,
                        state="timeout",
                        error=str(exc),
                        queue_seconds=queue_seconds,
                        execute_seconds=self._now() - started,
                    )
                    return
                except Exception as exc:  # the service outlives any one request
                    if (
                        not ticket.cancel_requested
                        and attempt + 1 < self.config.retry.max_attempts
                        and self._retry_budget(ticket.tenant).try_acquire()
                    ):
                        attempt += 1
                        self._counts["retried"] += 1
                        self.log.append(
                            "retry",
                            request_id=ticket.request_id,
                            tenant=ticket.tenant,
                            at_seconds=self._now(),
                            detail=(
                                f"attempt {attempt + 1}/"
                                f"{self.config.retry.max_attempts} after "
                                f"{type(exc).__name__}: {exc}"
                            ),
                        )
                        continue
                    if breaker is not None:
                        breaker.record_failure(self._now())
                    self._counts["failed"] += 1
                    self._tenant(ticket.tenant)["failed"] += 1
                    self.log.append(
                        "failed",
                        request_id=ticket.request_id,
                        tenant=ticket.tenant,
                        at_seconds=self._now(),
                        detail=f"{type(exc).__name__}: {exc}",
                    )
                    self._finalize(
                        ticket,
                        state="failed",
                        error=f"{type(exc).__name__}: {exc}",
                        queue_seconds=queue_seconds,
                        execute_seconds=self._now() - started,
                    )
                    return
                break
            wall = self._now() - started
            recovery = getattr(result, "recovery_log", None)
            if ticket.cancel_requested:
                # the result is discarded, but its recovery trail is not:
                # a pooled run that lost devices and healed still surfaces
                # the degradation so the incident record stays consistent
                if recovery is not None and recovery.num_devices_lost > 0:
                    self.log.append(
                        "degraded",
                        request_id=ticket.request_id,
                        tenant=ticket.tenant,
                        at_seconds=self._now(),
                        detail=(
                            f"lost {recovery.num_devices_lost} device(s); healed "
                            f"by recovery ({recovery.num_requeues} requeues); "
                            "result discarded"
                        ),
                    )
                self._counts["cancelled"] += 1
                self.log.append(
                    "cancelled",
                    request_id=ticket.request_id,
                    tenant=ticket.tenant,
                    at_seconds=self._now(),
                    detail="cancelled while running; result discarded",
                )
                self._finalize(
                    ticket,
                    state="cancelled",
                    error="cancelled while running",
                    queue_seconds=queue_seconds,
                    execute_seconds=wall,
                )
                return
            if recovery is not None and recovery.num_devices_lost > 0:
                self.log.append(
                    "degraded",
                    request_id=ticket.request_id,
                    tenant=ticket.tenant,
                    at_seconds=self._now(),
                    detail=(
                        f"lost {recovery.num_devices_lost} device(s); healed by "
                        f"recovery ({recovery.num_requeues} requeues)"
                    ),
                )
            stats = getattr(result, "pool_stats", None)
            if stats is not None:
                self._pooled_runs += 1
                self._pool_busy_seconds += stats.total_busy_seconds
                self._pool_allocated_seconds += (
                    getattr(result, "num_devices", 1) * result.makespan_seconds
                )
            if breaker is not None:
                breaker.record_success()
            self._retry_budget(ticket.tenant).credit()
            self._counts["completed"] += 1
            trow = self._tenant(ticket.tenant)
            trow["completed"] += 1
            trow["pairs"] += result.num_pairs
            trow["estimated_pairs"] += ticket.estimated_pairs
            trow["simulated_seconds"] += result.total_seconds
            trow["wall_seconds"] += wall
            trow["cache_hits"] += 1 if ticket.cache_hit else 0
            self.log.append(
                "complete",
                request_id=ticket.request_id,
                tenant=ticket.tenant,
                at_seconds=self._now(),
                detail=f"pairs={result.num_pairs}"
                + (" cache_hit" if ticket.cache_hit else "")
                + (f" attempts={attempt + 1}" if attempt else ""),
            )
            self._finalize(
                ticket,
                state="done",
                result=result,
                queue_seconds=queue_seconds,
                execute_seconds=wall,
            )
        finally:
            self._slots.release()

    def _execute_sync(self, ticket: JoinTicket, attempt: int = 0):
        """Compile and run one request (worker thread; deterministic).

        Attempt 0 carries any chaos-injected faults; retries run clean and
        — when the request checkpoints — resume from the journal the
        crashed attempt left behind instead of restarting.
        """
        req = ticket.request
        deadline_remaining = None
        if req.deadline_seconds is not None:
            deadline_remaining = req.deadline_seconds - (
                self._now() - ticket.submitted_at
            )
            if deadline_remaining <= 0:
                raise DeadlineExceededError(
                    f"deadline exhausted before execution "
                    f"(budget {req.deadline_seconds:g}s)"
                )
        handle = self._datasets[req.dataset]
        index = self.cache.get(handle.fingerprint, req.epsilon)
        if index is None:  # evicted between admission and dispatch: rebuild
            index = GridIndex(handle.points, float(req.epsilon))
            self.cache.put(handle.fingerprint, req.epsilon, index)
            ticket.cache_hit = False
        rc = req.runtime
        if rc.pooled:
            rc = self._adapt_to_pool(rc)
        injection = self._injections.get(ticket.request_id)
        if injection is not None and attempt == 0:
            collapse, crash = injection
            rc = self._chaos.infect_runtime(
                rc,
                collapse=collapse,
                crash=crash,
                num_devices=rc.sharding.num_devices if rc.pooled else 1,
            )
        if req.kind == "self":
            plan = compile_self_join(index, rc, index_reused=ticket.cache_hit)
        elif req.kind == "knn":
            # the request's ε is the round-0 radius; later rounds resolve
            # their grids through the session cache too, so repeated kNN
            # requests on one dataset reuse every round's index
            plan = compile_knn_join(
                handle.points,
                req.k,
                rc,
                epsilon0=float(req.epsilon),
                index_factory=self._round_index_factory(handle),
                index_reused=ticket.cache_hit,
            )
        else:
            queries = self._datasets[req.query_dataset].points
            plan = compile_similarity_join(
                index, queries, rc, index_reused=ticket.cache_hit
            )
        resume = attempt > 0 and plan.checkpoint_stage is not None
        try:
            if rc.pooled:
                # one shared pool: pooled plans serialize on it, and
                # arm_pool re-arms device health per run, so a pool
                # degraded by one request's faults serves the next
                # request whole again
                with self._pool_mutex:
                    runner = Runner(pool=self._pool)
                    result = (
                        runner.resume(plan, deadline_seconds=deadline_remaining)
                        if resume
                        else runner.run(plan, deadline_seconds=deadline_remaining)
                    )
            else:
                runner = Runner()
                result = (
                    runner.resume(plan, deadline_seconds=deadline_remaining)
                    if resume
                    else runner.run(plan, deadline_seconds=deadline_remaining)
                )
        finally:
            # the crashed attempt's durable writes count as overhead too
            stats = runner.last_checkpoint_stats
            if stats is not None:
                with self._ckpt_lock:
                    self._ckpt["writes"] += stats.writes
                    self._ckpt["loads"] += stats.loads
                    self._ckpt["bytes_written"] += stats.bytes_written
                    self._ckpt["write_seconds"] += stats.write_seconds
        return result

    def _round_index_factory(self, handle):
        """Per-round ε-grid resolver for kNN plans (worker thread).

        Each expansion round's radius keys the session cache under the
        dataset's content fingerprint — the same identity admission
        warmed for round 0 — so successive rounds (and successive kNN
        requests over the same dataset) rebuild nothing.
        """

        def factory(epsilon: float) -> GridIndex:
            index = self.cache.get(handle.fingerprint, epsilon)
            if index is None:
                index = GridIndex(handle.points, float(epsilon))
                self.cache.put(handle.fingerprint, epsilon, index)
            return index

        return factory

    def _adapt_to_pool(self, rc: RuntimeConfig) -> RuntimeConfig:
        """Fit a pooled request onto the service's shared device pool."""
        with self._pool_mutex:
            if self._pool is None:
                from repro.multigpu.pool import DevicePool

                sized = rc.with_(
                    sharding=replace(
                        rc.sharding, num_devices=self.config.pool_devices
                    )
                )
                self._pool = DevicePool.from_runtime(sized)
        if rc.sharding.num_devices != self._pool.num_devices:
            rc = rc.with_(
                sharding=replace(rc.sharding, num_devices=self._pool.num_devices)
            )
        return rc

    # ------------------------------------------------------- results
    async def result(self, ticket: JoinTicket) -> JoinResponse:
        """Await the terminal :class:`JoinResponse` of one ticket."""
        return await asyncio.shield(ticket.future)

    async def run(self, request: JoinRequest) -> JoinResponse:
        """Submit and await — the one-call convenience."""
        return await self.result(await self.submit(request))

    async def stream(
        self, ticket: JoinTicket, *, chunk: int | None = None
    ) -> AsyncIterator[np.ndarray]:
        """Async-iterate the result pairs in blocks.

        Built on :meth:`JoinResult.iter_pairs` fragments; yields control
        between blocks so large result sets flow incrementally alongside
        other requests. Raises :class:`ServeError` if the request did not
        complete. Stopping early (``break`` / ``aclose()``) is the
        streaming cancellation path. A chaos-registered slow client
        stalls between blocks — the stall must never block the loop for
        other requests.
        """
        response = await self.result(ticket)
        if not response.ok:
            raise ServeError(
                f"request {ticket.request_id} ended {response.state}: "
                f"{response.error or 'no result to stream'}"
            )
        delay = self._chaos.stream_delay(ticket.request_id)
        for block in response.result.iter_pairs(chunk=chunk):
            yield block
            await asyncio.sleep(delay)

    def cancel(self, ticket: JoinTicket) -> bool:
        """Cooperatively cancel a request (see :meth:`JoinTicket.cancel`)."""
        return ticket.cancel()

    def _finalize(
        self,
        ticket: JoinTicket,
        *,
        state: str,
        result=None,
        error: str | None = None,
        queue_seconds: float = 0.0,
        execute_seconds: float = 0.0,
    ) -> None:
        ticket.state = state
        response = JoinResponse(
            request_id=ticket.request_id,
            tenant=ticket.tenant,
            kind=ticket.request.kind,
            dataset=ticket.request.dataset,
            state=state,
            result=result,
            error=error,
            cache_hit=ticket.cache_hit,
            queue_seconds=queue_seconds,
            execute_seconds=execute_seconds,
            tag=ticket.request.tag,
        )
        if not ticket.future.done():
            ticket.future.set_result(response)

    # ------------------------------------------------------- reporting
    def _tenant(self, tenant: str) -> dict:
        row = self._tenant_stats.get(tenant)
        if row is None:
            row = self._tenant_stats[tenant] = {
                k: 0
                for k in (
                    "submitted",
                    "completed",
                    "failed",
                    "rejected",
                    "rate_limited",
                    "cache_hits",
                    "pairs",
                    "estimated_pairs",
                )
            }
            row["simulated_seconds"] = 0.0
            row["wall_seconds"] = 0.0
        return row

    def snapshot(self) -> dict:
        """Accounting snapshot the :class:`~repro.profiling.ServiceReport`
        is built from (plain data; see ``repro.profiling.service_report``)."""
        with self._ckpt_lock:
            checkpoint = dict(self._ckpt)
        return {
            "counts": dict(self._counts),
            "queue_latencies": list(self._queue_latencies),
            "tenants": {
                t: dict(row) for t, row in sorted(self._tenant_stats.items())
            },
            "tenant_weights": {
                t: self._queue.weight(t) for t in sorted(self._tenant_stats)
            },
            "dispatch_order": list(self._dispatch_order),
            "cache": self.cache.stats,
            "pool_devices": self._pool.num_devices if self._pool is not None else 0,
            "pooled_runs": self._pooled_runs,
            "pool_busy_seconds": self._pool_busy_seconds,
            "pool_allocated_seconds": self._pool_allocated_seconds,
            "checkpoint": checkpoint,
            "chaos": (
                self.config.chaos.describe() if self.config.chaos is not None else ""
            ),
            "breakers": {t: b.state for t, b in sorted(self._breakers.items())},
            "uptime_seconds": self._now(),
        }

    def report(self):
        """The :class:`~repro.profiling.ServiceReport` for this service."""
        from repro.profiling import service_report

        return service_report(self)

    def chaos_report(self):
        """The :class:`~repro.profiling.ChaosReport` for this service."""
        from repro.profiling import chaos_report

        return chaos_report(self)

"""The typed request/response surface of the serving layer.

A client registers datasets once (:class:`DatasetHandle` pins the content
fingerprint), then submits :class:`JoinRequest`\\ s naming them. ``submit``
returns a :class:`JoinTicket` immediately — the request's identity and
live state — and the eventual :class:`JoinResponse` carries the full
:class:`~repro.core.result.JoinResult` plus the serving metadata (queue
latency, cache hit, terminal state).

Everything here is plain data; the behaviour lives in
:class:`~repro.serve.service.JoinService`.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import JoinResult
from repro.runtime.config import RuntimeConfig

__all__ = [
    "AdmissionError",
    "DatasetHandle",
    "JoinRequest",
    "JoinResponse",
    "JoinTicket",
    "REQUEST_KINDS",
    "REQUEST_STATES",
    "ServeError",
]

REQUEST_KINDS = ("self", "similarity", "knn")

#: Lifecycle of one request. ``queued → running → done`` is the happy
#: path; ``rejected`` is an admission decision (never queued), ``timeout``
#: a queue deadline missed, ``cancelled``/``failed`` the remaining exits.
REQUEST_STATES = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
    "rejected",
    "timeout",
)

#: Terminal states: a ticket in one of these will never change again.
TERMINAL_STATES = ("done", "failed", "cancelled", "rejected", "timeout")


class ServeError(RuntimeError):
    """A serving-layer error (unknown dataset, bad request shape)."""


class AdmissionError(ServeError):
    """A request the admission controller refused to queue."""


@dataclass(frozen=True)
class DatasetHandle:
    """A registered dataset: name, content fingerprint, shape."""

    name: str
    fingerprint: str
    num_points: int
    ndim: int
    points: np.ndarray = field(repr=False)


@dataclass(frozen=True)
class JoinRequest:
    """One join a tenant wants answered.

    Parameters
    ----------
    dataset:
        Registered dataset name. For a self-join this is the (only)
        dataset; for a similarity join it is the *indexed* (right) side.
    epsilon:
        Distance threshold — also the grid cell length, so it is part of
        the session-cache key. For ``kind="knn"`` this is the *initial*
        expansion radius ε₀ (round r queries at ``epsilon * 2**r``).
    kind:
        ``"self"``, ``"similarity"`` or ``"knn"``.
    query_dataset:
        Similarity joins only: the registered name of the query (left)
        side.
    k:
        kNN requests only: neighbors per point (``1 <= k < n``).
    tenant:
        Fairness identity; requests of one tenant are served FIFO among
        themselves, tenants share the pool by weighted deficit
        round-robin.
    runtime:
        Full per-request :class:`~repro.runtime.config.RuntimeConfig`
        (optimizations, engine, sharding, faults…). Pooled configs run on
        the service's shared device pool.
    timeout_seconds:
        Queue deadline: a request still queued this long after submit
        times out instead of starting. ``None`` falls back to the
        service default.
    deadline_seconds:
        End-to-end wall-clock deadline, counted from submit and
        propagated *into* execution: the
        :class:`~repro.runtime.runner.Runner` checks the remaining
        budget at every shard-dispatch boundary and aborts with a
        terminal ``timeout`` response when it expires (checkpointed
        shards completed before the abort stay durable). ``None`` means
        no execution deadline.
    tag:
        Free-form client annotation, echoed in events and responses.
    """

    dataset: str
    epsilon: float
    kind: str = "self"
    query_dataset: str | None = None
    k: int | None = None
    tenant: str = "default"
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    timeout_seconds: float | None = None
    deadline_seconds: float | None = None
    tag: str = ""

    def __post_init__(self):
        if self.kind not in REQUEST_KINDS:
            raise ValueError(
                f"unknown request kind {self.kind!r}; expected one of {REQUEST_KINDS}"
            )
        if not (float(self.epsilon) > 0.0) or not np.isfinite(self.epsilon):
            raise ValueError("epsilon must be positive and finite")
        if self.kind == "similarity" and self.query_dataset is None:
            raise ValueError("similarity requests need query_dataset (the left side)")
        if self.kind != "similarity" and self.query_dataset is not None:
            raise ValueError(
                f"{self.kind} requests must not set query_dataset"
            )
        if self.kind == "knn":
            if self.k is None or self.k < 1:
                raise ValueError("knn requests need k >= 1")
        elif self.k is not None:
            raise ValueError(f"{self.kind} requests must not set k")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if not self.tenant:
            raise ValueError("tenant must be a non-empty string")


@dataclass
class JoinTicket:
    """Live handle on one submitted request.

    ``future`` resolves to the :class:`JoinResponse` (it never raises on
    request failure — failures are responses with ``state="failed"``).
    ``cancel()`` is cooperative: a queued request is dropped at dispatch,
    a running one has its result discarded.
    """

    request_id: str
    request: JoinRequest
    submitted_at: float
    state: str = "queued"
    estimated_pairs: int = 0
    cache_hit: bool = False
    future: asyncio.Future = field(default=None, repr=False)
    _cancel_requested: bool = field(default=False, repr=False)

    @property
    def tenant(self) -> str:
        return self.request.tenant

    @property
    def done(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def cancel_requested(self) -> bool:
        return self._cancel_requested

    def cancel(self) -> bool:
        """Request cancellation; returns whether it could still matter."""
        if self.done:
            return False
        self._cancel_requested = True
        return True


@dataclass(frozen=True)
class JoinResponse:
    """Terminal outcome of one request.

    ``result`` is the full :class:`~repro.core.result.JoinResult` when
    ``state == "done"`` and ``None`` otherwise; ``error`` carries the
    failure/rejection reason. Stream the pairs with
    ``response.result.iter_pairs(chunk=...)`` or through
    :meth:`~repro.serve.service.JoinService.stream`.
    """

    request_id: str
    tenant: str
    kind: str
    dataset: str
    state: str
    result: JoinResult | None = field(default=None, repr=False)
    error: str | None = None
    cache_hit: bool = False
    queue_seconds: float = 0.0
    execute_seconds: float = 0.0
    tag: str = ""

    @property
    def ok(self) -> bool:
        return self.state == "done"

    @property
    def num_pairs(self) -> int:
        return self.result.num_pairs if self.result is not None else 0

    @property
    def simulated_seconds(self) -> float:
        """The join's simulated device response time (0 if no result)."""
        return self.result.total_seconds if self.result is not None else 0.0

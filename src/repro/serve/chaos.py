"""Seeded service-fault injection — chaos testing for :class:`JoinService`.

The :class:`ChaosController` consumes a
:class:`~repro.resilience.faults.ServiceFaultPlan` (``ServeConfig(chaos=...)``)
and injects its faults at the service's dispatch seam, exactly as
:class:`~repro.resilience.executor.FaultyExecutor` injects device faults
at the :class:`~repro.core.executor.BatchExecutor` seam one layer down:

- **cancellation storms** — at a dispatch ordinal, seeded-RNG-chosen
  victims from the current backlog are cancelled at once;
- **client disconnects** — the dispatched request's client goes away; the
  service must discard the result and still resolve the ticket;
- **slow clients** — the request's result stream stalls per block
  (:meth:`JoinService.stream` honours the registered delay);
- **pool collapse** — :class:`~repro.resilience.faults.DeviceFailure`\\ s
  are merged into the request's runtime fault plan so all but
  ``keep_devices`` devices die mid-run;
- **runner crashes** — a :class:`~repro.resilience.faults.CrashPoint` is
  merged into the request's *first attempt* only, so a retry (which
  resumes from the checkpoint journal when the request checkpoints)
  demonstrates the full detect→diagnose→remediate loop.

Everything is deterministic per plan seed: the controller's only random
draw (storm victims) comes from one ``default_rng(seed)`` stream advanced
in injection order, so the same submit sequence yields the same
``ServiceLog`` signature — the chaos suite's acceptance property.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.resilience.faults import (
    CrashPoint,
    DeviceFailure,
    FaultPlan,
    PoolCollapse,
    RunnerCrash,
    ServiceFaultPlan,
    SlowClient,
)

__all__ = ["ChaosController"]


class ChaosController:
    """Applies one :class:`ServiceFaultPlan` to a service's dispatch flow."""

    def __init__(self, plan: ServiceFaultPlan | None):
        self.plan = plan
        self._rng = (
            np.random.default_rng(plan.seed)
            if plan is not None and not plan.is_empty
            else None
        )
        self._slow: dict[str, float] = {}

    @property
    def active(self) -> bool:
        return self._rng is not None

    # ------------------------------------------------------------ species
    def storm_victims(self, ordinal: int, backlog: list) -> list:
        """The queued tickets a storm at this dispatch ordinal cancels."""
        if not self.active:
            return []
        storm = self.plan.storm_for(ordinal)
        if storm is None or not backlog:
            return []
        count = min(storm.count, len(backlog))
        picks = sorted(self._rng.choice(len(backlog), size=count, replace=False))
        return [backlog[int(i)] for i in picks]

    def disconnects(self, ordinal: int) -> bool:
        return self.active and self.plan.disconnect_for(ordinal) is not None

    def slow_client_for(self, ordinal: int) -> SlowClient | None:
        return self.plan.slow_client_for(ordinal) if self.active else None

    def register_slow(self, request_id: str, delay_seconds: float) -> None:
        self._slow[request_id] = float(delay_seconds)

    def stream_delay(self, request_id: str) -> float:
        """Per-block stall of this request's stream (0.0 = full speed)."""
        return self._slow.get(request_id, 0.0)

    def collapse_for(self, ordinal: int) -> PoolCollapse | None:
        return self.plan.collapse_for(ordinal) if self.active else None

    def crash_for(self, ordinal: int) -> RunnerCrash | None:
        return self.plan.crash_for(ordinal) if self.active else None

    # ------------------------------------------------------------ runtime
    def infect_runtime(
        self,
        runtime,
        *,
        collapse: PoolCollapse | None,
        crash: RunnerCrash | None,
        num_devices: int,
    ):
        """Merge this request's injected faults into its runtime config.

        Applied to the first attempt only — the caller holds the
        injections back on retries, so remediation runs clean.
        """
        if collapse is None and crash is None:
            return runtime
        fp = runtime.fault_plan
        if fp is None:
            fp = FaultPlan(seed=self.plan.seed if self.plan is not None else 0)
        if collapse is not None and num_devices > collapse.keep_devices:
            fp = replace(
                fp,
                failures=fp.failures
                + tuple(
                    DeviceFailure(device_id=d, at_shard=collapse.at_shard)
                    for d in range(collapse.keep_devices, num_devices)
                ),
            )
        if crash is not None:
            fp = replace(
                fp, crashes=fp.crashes + (CrashPoint(at_shard=crash.at_shard),)
            )
        return runtime.with_(fault_plan=fp)

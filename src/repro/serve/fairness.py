"""Per-tenant fairness: a weighted deficit round-robin admission queue.

Classic DRR (Shreedhar & Varghese) adapted to join serving: each tenant
owns a FIFO of queued requests; the dispatcher visits tenants in a ring,
crediting each visit with ``quantum × weight`` of *deficit*, and a
tenant's head request dispatches when its cost (the admission-time result
-size estimate) fits the accumulated deficit. Heavier weights therefore
buy proportionally more estimated result rows per round — not more
requests — so one tenant's huge joins cannot starve another's small ones.

Because request costs can exceed the quantum by orders of magnitude, a
full ring scan with no dispatchable head fast-forwards every tenant by
the minimal whole number of rounds that unblocks someone (identical
outcome to spinning the ring, without the spin). Dispatch order is fully
deterministic given arrival order — the property the fairness tests pin.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from typing import Mapping

__all__ = ["FairQueue"]


class FairQueue:
    """Async multi-tenant queue with weighted deficit round-robin pop.

    Single-consumer (the service's dispatch loop); any number of
    producers on the same event loop.
    """

    def __init__(
        self,
        *,
        quantum: float = 4096.0,
        weights: Mapping[str, float] | None = None,
        default_weight: float = 1.0,
    ):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.quantum = float(quantum)
        self.default_weight = float(default_weight)
        self._weights = {str(k): float(v) for k, v in (weights or {}).items()}
        for tenant, w in self._weights.items():
            if w <= 0:
                raise ValueError(f"weight of tenant {tenant!r} must be positive")
        self._queues: dict[str, deque] = {}
        self._deficit: dict[str, float] = {}
        self._ring: deque[str] = deque()
        self._size = 0
        self._event = asyncio.Event()

    # ------------------------------------------------------------------
    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, self.default_weight)

    def __len__(self) -> int:
        return self._size

    def depth(self, tenant: str) -> int:
        q = self._queues.get(tenant)
        return len(q) if q else 0

    def items(self) -> list:
        """The queued items in deterministic (ring, then FIFO) order.

        A read-only view for introspection — the chaos controller picks
        cancellation-storm victims from it — dispatch order is still DRR.
        """
        out = []
        seen = set()
        for tenant in self._ring:
            if tenant in seen:
                continue
            seen.add(tenant)
            out.extend(item for item, _cost in self._queues.get(tenant, ()))
        return out

    # ------------------------------------------------------------------
    def push(self, tenant: str, item, cost: float) -> None:
        """Queue one item for ``tenant`` with the given dispatch cost."""
        cost = max(1.0, float(cost))
        q = self._queues.get(tenant)
        if q is None:
            q = self._queues[tenant] = deque()
        if not q and tenant not in self._ring:
            self._ring.append(tenant)
            self._deficit.setdefault(tenant, 0.0)
        q.append((item, cost))
        self._size += 1
        self._event.set()

    async def pop(self):
        """Wait for and return the next ``(tenant, item, cost)`` by DRR."""
        while self._size == 0:
            self._event.clear()
            await self._event.wait()
        return self._pop_now()

    # ------------------------------------------------------------------
    def _pop_now(self):
        # drop tenants whose queues drained (lazy ring maintenance)
        while self._ring and not self._queues.get(self._ring[0]):
            gone = self._ring.popleft()
            self._deficit[gone] = 0.0
        assert self._ring, "pop on an empty queue"

        # fast-forward: minimal whole rounds until some head fits
        rounds_needed = []
        for tenant in self._ring:
            head_cost = self._queues[tenant][0][1]
            gap = head_cost - self._deficit[tenant]
            per_round = self.quantum * self.weight(tenant)
            rounds_needed.append(max(0, math.ceil(gap / per_round)))
        boost = min(rounds_needed)
        if boost:
            for tenant in self._ring:
                self._deficit[tenant] += boost * self.quantum * self.weight(tenant)

        for _ in range(len(self._ring)):
            tenant = self._ring[0]
            q = self._queues[tenant]
            item, cost = q[0]
            if self._deficit[tenant] + 1e-9 >= cost:
                q.popleft()
                self._size -= 1
                self._deficit[tenant] -= cost
                self._ring.rotate(-1)  # one dispatch per visit, then yield the turn
                if not q:
                    self._ring.remove(tenant)
                    self._deficit[tenant] = 0.0
                return tenant, item, cost
            self._ring.rotate(-1)
        raise AssertionError("DRR fast-forward failed to unblock any tenant")

"""Optional TCP transport: the same verbs over newline-delimited JSON.

Stdlib-only (``asyncio`` streams + ``json``), and entirely optional — the
in-process :class:`~repro.serve.client.JoinClient` is the canonical
surface and what every test uses. This module exists so a service can be
driven from another process: ``python -m repro.serve --port 9876`` starts
a listener, and :class:`TcpJoinClient` speaks to it.

The wire protocol is deliberately small. One JSON object per line::

    → {"op": "register", "name": "a", "points": [[…], …]}
    ← {"ok": true, "fingerprint": "…", "num_points": 100}
    → {"op": "join", "dataset": "a", "epsilon": 0.5, "kind": "self",
       "tenant": "t0", "query_dataset": null}
    ← {"ok": true, "state": "done", "num_pairs": 42, "pairs": [[i, j], …],
       "cache_hit": false, "error": null}
    → {"op": "ping"} / {"op": "shutdown"}

Responses carry materialized pair lists, so this transport is meant for
demo-scale results; in-process clients stream fragments instead.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np

from repro.serve.model import JoinRequest
from repro.serve.service import JoinService

__all__ = ["TcpJoinClient", "serve_tcp"]

#: Per-line stream buffer cap. asyncio's 64 KiB default truncates the
#: single-line JSON reply of any non-trivial join (a few thousand pairs),
#: so both ends raise it; results past this are for in-process streaming.
STREAM_LIMIT = 64 * 1024 * 1024


async def _handle(service: JoinService, reader, writer, stop: asyncio.Event) -> None:
    try:
        while not reader.at_eof():
            line = await reader.readline()
            if not line:
                break
            try:
                msg = json.loads(line)
                reply = await _dispatch(service, msg, stop)
            except Exception as exc:  # malformed input must not kill the listener
                reply = {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            writer.write((json.dumps(reply) + "\n").encode())
            await writer.drain()
            if stop.is_set():
                break
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _dispatch(service: JoinService, msg: dict, stop: asyncio.Event) -> dict:
    op = msg.get("op")
    if op == "ping":
        return {"ok": True, "pong": True}
    if op == "shutdown":
        stop.set()
        return {"ok": True, "stopping": True}
    if op == "register":
        handle = service.register_dataset(
            msg["name"], np.asarray(msg["points"], dtype=np.float64)
        )
        return {
            "ok": True,
            "fingerprint": handle.fingerprint,
            "num_points": handle.num_points,
        }
    if op == "join":
        request = JoinRequest(
            dataset=msg["dataset"],
            epsilon=float(msg["epsilon"]),
            kind=msg.get("kind", "self"),
            query_dataset=msg.get("query_dataset"),
            tenant=msg.get("tenant", "default"),
        )
        response = await service.run(request)
        pairs = (
            response.result.pairs.tolist() if response.ok else []
        )
        return {
            "ok": response.ok,
            "state": response.state,
            "num_pairs": response.num_pairs,
            "pairs": pairs,
            "cache_hit": response.cache_hit,
            "error": response.error,
        }
    return {"ok": False, "error": f"unknown op {op!r}"}


async def serve_tcp(
    service: JoinService, *, host: str = "127.0.0.1", port: int = 0
) -> tuple[asyncio.AbstractServer, int]:
    """Start listening; returns ``(server, bound_port)`` (port 0 = pick one).

    The server stops when a client sends ``{"op": "shutdown"}`` — await
    ``server.wait_closed()`` after this returns, or close it yourself.
    """
    stop = asyncio.Event()

    async def handler(reader, writer):
        await _handle(service, reader, writer, stop)
        if stop.is_set():
            server.close()

    server = await asyncio.start_server(handler, host, port, limit=STREAM_LIMIT)
    bound_port = server.sockets[0].getsockname()[1]
    return server, bound_port


class TcpJoinClient:
    """Minimal async client for the JSON-lines transport."""

    def __init__(self, host: str = "127.0.0.1", port: int = 9876):
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def __aenter__(self) -> "TcpJoinClient":
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=STREAM_LIMIT
        )
        return self

    async def __aexit__(self, *exc) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def call(self, **msg) -> dict:
        self._writer.write((json.dumps(msg) + "\n").encode())
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    async def register(self, name: str, points) -> dict:
        return await self.call(
            op="register", name=name, points=np.asarray(points).tolist()
        )

    async def join(self, dataset: str, *, epsilon: float, **kwargs) -> dict:
        return await self.call(op="join", dataset=dataset, epsilon=epsilon, **kwargs)

    async def ping(self) -> bool:
        return bool((await self.call(op="ping")).get("pong"))

    async def shutdown(self) -> dict:
        return await self.call(op="shutdown")

"""Structured service incidents — the serving mirror of ``ShardEvent``.

Every decision the service takes (admit, reject, dispatch, cache hit,
degraded pool, eviction, …) is appended to one ordered
:class:`ServiceLog` as a typed :class:`ServiceEvent`, exactly as the
resilient scheduler records :class:`~repro.multigpu.scheduler.ShardEvent`
streams. The log is the audit trail the incident tests and the
:class:`~repro.profiling.ServiceReport` read; its :meth:`signature`
(timestamps excluded) is deterministic for a deterministic request
sequence.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = ["EVENT_KINDS", "ServiceEvent", "ServiceLog"]

#: What one service event can record. ``register`` a dataset arriving,
#: ``submit``/``reject`` admission decisions (``rate_limited`` and
#: ``circuit_open`` the protective rejections), ``dispatch`` a request
#: leaving the queue for a device, ``cache_hit``/``cache_miss``/``evict``
#: session-cache traffic, ``fault`` an injected service fault
#: (:class:`~repro.resilience.faults.ServiceFaultPlan`), ``retry`` a
#: budgeted re-execution, ``degraded`` a pooled run that lost devices but
#: was healed by recovery, ``drain`` the start of a graceful shutdown,
#: and the terminal request outcomes.
EVENT_KINDS = (
    "register",
    "submit",
    "reject",
    "rate_limited",
    "circuit_open",
    "dispatch",
    "cache_hit",
    "cache_miss",
    "evict",
    "fault",
    "retry",
    "complete",
    "failed",
    "cancelled",
    "timeout",
    "degraded",
    "drain",
    "shutdown",
)


@dataclass(frozen=True)
class ServiceEvent:
    """One service incident, in wall-clock seconds since service start."""

    seq: int
    kind: str
    request_id: str
    tenant: str
    at_seconds: float
    detail: str = ""


class ServiceLog:
    """Append-only ordered incident log (thread-safe appends)."""

    def __init__(self):
        self._events: list[ServiceEvent] = []
        self._lock = threading.Lock()

    def append(
        self,
        kind: str,
        *,
        request_id: str = "",
        tenant: str = "",
        at_seconds: float = 0.0,
        detail: str = "",
    ) -> ServiceEvent:
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; expected one of {EVENT_KINDS}")
        with self._lock:
            event = ServiceEvent(
                seq=len(self._events),
                kind=kind,
                request_id=request_id,
                tenant=tenant,
                at_seconds=at_seconds,
                detail=detail,
            )
            self._events.append(event)
            return event

    @property
    def events(self) -> tuple[ServiceEvent, ...]:
        with self._lock:
            return tuple(self._events)

    def of_kind(self, *kinds: str) -> tuple[ServiceEvent, ...]:
        return tuple(e for e in self.events if e.kind in kinds)

    def count(self, kind: str) -> int:
        return len(self.of_kind(kind))

    def signature(self) -> tuple:
        """Hashable timestamp-free record — determinism tests compare these."""
        return tuple(
            (e.seq, e.kind, e.request_id, e.tenant, e.detail) for e in self.events
        )

    def __len__(self) -> int:
        return len(self.events)

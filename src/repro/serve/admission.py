"""Admission control: decide queue/reject before a request costs anything.

The admission-time workload characterization follows the hybrid KNN-join
lineage (Gowanlock, arXiv:1810.04758): estimate each request's result
size *before* execution — via the same
:func:`~repro.core.batching.estimate_result_size_detailed` machinery the
batch planner trusts — and use that cost to (a) refuse requests that
exceed the configured per-request budget, (b) refuse anything when the
backlog is at depth, and (c) charge the tenant's deficit-round-robin
account so fairness is proportional to estimated rows, not request count.

The estimate needs a built index; the service resolves it through the
:class:`~repro.serve.cache.SessionCache` first, so admission itself warms
the cache for the execution that follows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batching import estimate_result_size_detailed
from repro.grid import GridIndex
from repro.grid.bipartite import bipartite_neighbor_counts

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "check_admission",
    "estimate_request_cost",
]


@dataclass(frozen=True)
class AdmissionPolicy:
    """The configurable limits of the admission controller.

    ``max_concurrency`` is the execution budget (simultaneous running
    joins); ``max_queue_depth`` bounds the backlog across all tenants;
    ``max_estimated_pairs`` rejects any single request whose estimated
    result exceeds it (``None`` = no per-request ceiling).
    """

    max_concurrency: int = 2
    max_queue_depth: int = 64
    max_estimated_pairs: int | None = None

    def __post_init__(self):
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_estimated_pairs is not None and self.max_estimated_pairs < 1:
            raise ValueError("max_estimated_pairs must be >= 1 or None")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    estimated_pairs: int
    reason: str = ""


def estimate_request_cost(
    index: GridIndex,
    *,
    kind: str,
    queries: np.ndarray | None = None,
    sample_fraction: float = 0.01,
    include_self: bool = True,
) -> int:
    """Estimated result rows of one request (≥ 0), from an exact sample.

    Self-joins use the strided estimator the batch planner uses;
    similarity joins solve a strided sample of the query side exactly and
    scale — the same scheme, external query points.
    """
    if kind == "self":
        detailed = estimate_result_size_detailed(
            index, sample_fraction=sample_fraction, include_self=include_self
        )
        return int(detailed.estimate)
    if queries is None:
        raise ValueError("similarity cost estimate needs the query points")
    nq = len(queries)
    if nq == 0 or index.num_points == 0:
        return 0
    sample_size = min(nq, max(1, int(round(nq * sample_fraction))))
    step = max(1, nq // sample_size)
    sample = queries[::step]
    counts = bipartite_neighbor_counts(index, sample)
    return int(np.ceil(counts.sum() * (nq / len(sample))))


def check_admission(
    policy: AdmissionPolicy, *, queue_depth: int, estimated_pairs: int
) -> AdmissionDecision:
    """Apply the policy to one request's estimated cost and the backlog."""
    if queue_depth >= policy.max_queue_depth:
        return AdmissionDecision(
            admitted=False,
            estimated_pairs=estimated_pairs,
            reason=f"queue_full (depth {queue_depth} >= {policy.max_queue_depth})",
        )
    if (
        policy.max_estimated_pairs is not None
        and estimated_pairs > policy.max_estimated_pairs
    ):
        return AdmissionDecision(
            admitted=False,
            estimated_pairs=estimated_pairs,
            reason=(
                f"over_budget (estimated {estimated_pairs} pairs "
                f"> {policy.max_estimated_pairs})"
            ),
        )
    return AdmissionDecision(admitted=True, estimated_pairs=estimated_pairs)

"""Admission control: decide queue/reject before a request costs anything.

The admission-time workload characterization follows the hybrid KNN-join
lineage (Gowanlock, arXiv:1810.04758): estimate each request's result
size *before* execution — via the same
:func:`~repro.core.batching.estimate_result_size_detailed` machinery the
batch planner trusts — and use that cost to (a) refuse requests that
exceed the configured per-request budget, (b) refuse anything when the
backlog is at depth, and (c) charge the tenant's deficit-round-robin
account so fairness is proportional to estimated rows, not request count.

The estimate needs a built index; the service resolves it through the
:class:`~repro.serve.cache.SessionCache` first, so admission itself warms
the cache for the execution that follows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batching import estimate_result_size_detailed
from repro.grid import GridIndex
from repro.grid.bipartite import bipartite_neighbor_counts

__all__ = [
    "AdmissionDecision",
    "AdmissionPolicy",
    "CircuitBreaker",
    "CircuitBreakerPolicy",
    "RateLimitPolicy",
    "RetryBudget",
    "RetryPolicy",
    "TokenBucket",
    "check_admission",
    "estimate_request_cost",
]


@dataclass(frozen=True)
class AdmissionPolicy:
    """The configurable limits of the admission controller.

    ``max_concurrency`` is the execution budget (simultaneous running
    joins); ``max_queue_depth`` bounds the backlog across all tenants;
    ``max_estimated_pairs`` rejects any single request whose estimated
    result exceeds it (``None`` = no per-request ceiling).
    """

    max_concurrency: int = 2
    max_queue_depth: int = 64
    max_estimated_pairs: int | None = None

    def __post_init__(self):
        if self.max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        if self.max_estimated_pairs is not None and self.max_estimated_pairs < 1:
            raise ValueError("max_estimated_pairs must be >= 1 or None")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    estimated_pairs: int
    reason: str = ""


def estimate_request_cost(
    index: GridIndex,
    *,
    kind: str,
    queries: np.ndarray | None = None,
    sample_fraction: float = 0.01,
    include_self: bool = True,
    k: int | None = None,
) -> int:
    """Estimated result rows of one request (≥ 0), from an exact sample.

    Self-joins use the strided estimator the batch planner uses;
    similarity joins solve a strided sample of the query side exactly and
    scale — the same scheme, external query points. kNN requests charge
    the larger of ``n*k`` (the exact answer size) and the round-0 range
    estimate at ε₀ — each expansion round's residual shrinks, so round 0
    dominates the driver's work.
    """
    if kind == "self":
        detailed = estimate_result_size_detailed(
            index, sample_fraction=sample_fraction, include_self=include_self
        )
        return int(detailed.estimate)
    if kind == "knn":
        if k is None or k < 1:
            raise ValueError("knn cost estimate needs k >= 1")
        detailed = estimate_result_size_detailed(
            index, sample_fraction=sample_fraction, include_self=True
        )
        return max(index.num_points * int(k), int(detailed.estimate))
    if queries is None:
        raise ValueError("similarity cost estimate needs the query points")
    nq = len(queries)
    if nq == 0 or index.num_points == 0:
        return 0
    sample_size = min(nq, max(1, int(round(nq * sample_fraction))))
    step = max(1, nq // sample_size)
    sample = queries[::step]
    counts = bipartite_neighbor_counts(index, sample)
    return int(np.ceil(counts.sum() * (nq / len(sample))))


# ----------------------------------------------------------------------
# Per-tenant protective machinery: rate limits, circuit breakers, retry
# budgets. The policies are frozen configuration; the matching mutable
# state objects (one per tenant, owned by the service's event loop) carry
# no locks — the service only touches them from the loop thread.


@dataclass(frozen=True)
class RateLimitPolicy:
    """Token-bucket rate limiting, applied per tenant at submit time.

    Each tenant owns a bucket of ``burst`` tokens refilled at
    ``requests_per_second``; a submit spends one token or is rejected
    terminally (reason ``rate_limited``) — never queued, never hung.
    ``requests_per_second=0`` is legal and means *no refill*: exactly
    ``burst`` requests pass, deterministically — what the chaos tests
    use.
    """

    requests_per_second: float = 10.0
    burst: float = 10.0

    def __post_init__(self):
        if self.requests_per_second < 0:
            raise ValueError("requests_per_second must be >= 0")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


class TokenBucket:
    """One tenant's mutable rate-limit state."""

    def __init__(self, policy: RateLimitPolicy):
        self.policy = policy
        self.tokens = float(policy.burst)
        self._last: float | None = None

    def try_take(self, now: float) -> bool:
        """Spend one token at time ``now``; False when the bucket is dry."""
        if self._last is None:
            self._last = now
        elapsed = max(0.0, now - self._last)
        self._last = now
        self.tokens = min(
            float(self.policy.burst),
            self.tokens + elapsed * self.policy.requests_per_second,
        )
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass(frozen=True)
class CircuitBreakerPolicy:
    """Per-tenant circuit breaking: stop dispatching a tenant whose
    requests keep *failing* (execution errors — not rejections, timeouts
    or cancellations).

    ``failure_threshold`` consecutive failures open the circuit; while
    open, submits are rejected terminally (reason ``circuit_open``).
    After ``cooldown_seconds`` the breaker goes half-open and admits one
    probe: success closes it, failure re-opens it for another cooldown.
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 30.0

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_seconds < 0:
            raise ValueError("cooldown_seconds must be >= 0")


class CircuitBreaker:
    """One tenant's mutable breaker state (closed → open → half-open)."""

    def __init__(self, policy: CircuitBreakerPolicy):
        self.policy = policy
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: float | None = None

    def allow(self, now: float) -> bool:
        """Whether a new request of this tenant may be admitted at ``now``."""
        if self.state == "open":
            if now - self.opened_at >= self.policy.cooldown_seconds:
                self.state = "half_open"
                return True
            return False
        return True  # closed or half-open (probe in flight)

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at = None

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if (
            self.state == "half_open"
            or self.consecutive_failures >= self.policy.failure_threshold
        ):
            self.state = "open"
            self.opened_at = now


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded re-execution of failed requests, budgeted per tenant.

    ``max_attempts=1`` (the default) disables retries. A retry spends one
    token from the tenant's budget (capacity ``budget``); each completed
    request credits ``refill_per_success`` back — the classic retry
    budget that stops a failing tenant from amplifying load. Retried
    checkpointed requests resume from their journal instead of restarting
    (see :meth:`~repro.runtime.runner.Runner.resume`).
    """

    max_attempts: int = 1
    budget: float = 8.0
    refill_per_success: float = 0.1

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.budget < 0:
            raise ValueError("budget must be >= 0")
        if self.refill_per_success < 0:
            raise ValueError("refill_per_success must be >= 0")


class RetryBudget:
    """One tenant's mutable retry-token pool."""

    def __init__(self, policy: RetryPolicy):
        self.policy = policy
        self.tokens = float(policy.budget)

    def try_acquire(self) -> bool:
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def credit(self) -> None:
        self.tokens = min(
            float(self.policy.budget), self.tokens + self.policy.refill_per_success
        )


def check_admission(
    policy: AdmissionPolicy, *, queue_depth: int, estimated_pairs: int
) -> AdmissionDecision:
    """Apply the policy to one request's estimated cost and the backlog."""
    if queue_depth >= policy.max_queue_depth:
        return AdmissionDecision(
            admitted=False,
            estimated_pairs=estimated_pairs,
            reason=f"queue_full (depth {queue_depth} >= {policy.max_queue_depth})",
        )
    if (
        policy.max_estimated_pairs is not None
        and estimated_pairs > policy.max_estimated_pairs
    ):
        return AdmissionDecision(
            admitted=False,
            estimated_pairs=estimated_pairs,
            reason=(
                f"over_budget (estimated {estimated_pairs} pairs "
                f"> {policy.max_estimated_pairs})"
            ),
        )
    return AdmissionDecision(admitted=True, estimated_pairs=estimated_pairs)

"""Near-duplicate detection / data cleaning on the self-join.

Records embedded as points are near-duplicates when within ε; duplicate
*groups* are the connected components of the ε-pair graph. The canonical
representative of each group is its lowest index (stable under input
order), which is what a data-cleaning pipeline keeps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.dbscan import _run_self_join
from repro.apps.unionfind import UnionFind
from repro.core import OptimizationConfig, SelfJoin
from repro.core.result import JoinResult
from repro.runtime.config import RuntimeConfig

__all__ = ["DedupResult", "deduplicate"]


@dataclass(frozen=True)
class DedupResult:
    """Duplicate grouping of a record set."""

    representative: np.ndarray  # per record: lowest index of its group
    join: JoinResult

    @property
    def num_records(self) -> int:
        return len(self.representative)

    @property
    def keep_mask(self) -> np.ndarray:
        """True for the one record to keep from each group."""
        return self.representative == np.arange(self.num_records)

    @property
    def num_unique(self) -> int:
        return int(self.keep_mask.sum())

    @property
    def num_duplicates(self) -> int:
        return self.num_records - self.num_unique

    def groups(self) -> dict[int, np.ndarray]:
        """Duplicate groups with ≥2 members: ``{representative: members}``."""
        out: dict[int, np.ndarray] = {}
        order = np.argsort(self.representative, kind="stable")
        reps = self.representative[order]
        bounds = np.flatnonzero(np.diff(reps)) + 1
        for chunk in np.split(order, bounds):
            if len(chunk) > 1:
                out[int(self.representative[chunk[0]])] = np.sort(chunk)
        return out


def deduplicate(
    records,
    eps: float,
    *,
    config: OptimizationConfig | RuntimeConfig | None = None,
    runtime: RuntimeConfig | None = None,
    joiner: SelfJoin | None = None,
) -> DedupResult:
    """Group records within ``eps`` of each other (transitively).

    The underlying self-join runs through the runtime compile/execute
    pipeline; ``runtime`` selects engine, sharding and resilience, a
    caller-supplied ``joiner`` overrides both.
    """
    if joiner is not None:
        result = joiner.execute(records, eps)
    else:
        result = _run_self_join(records, eps, config, runtime, "deduplicate")
    uf = UnionFind(result.num_points)
    uf.union_pairs(result.pairs)
    roots = uf.labels()
    # lowest member index per root = stable representative
    rep_of_root: dict[int, int] = {}
    for i, r in enumerate(roots):
        rep_of_root.setdefault(int(r), i)
    representative = np.array([rep_of_root[int(r)] for r in roots], dtype=np.int64)
    return DedupResult(representative=representative, join=result)

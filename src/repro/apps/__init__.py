"""Applications built on the similarity join — the paper's motivation.

The introduction lists the self-join as "a building block to several
algorithms such as data cleaning, near-duplicate detection, document
similarity, or clustering algorithms". This package provides those
building blocks as first-class library features, each running on one
simulated-GPU join call:

- :func:`dbscan` — density-based clustering from a single self-join;
- :func:`deduplicate` — near-duplicate groups as ε-pair connected
  components (data cleaning / entity resolution);
- :func:`knn` — exact k-nearest neighbors by adaptive ε-expansion of the
  range join;
- :class:`UnionFind` — the path-compressed disjoint-set the group
  builders share.
"""

from repro.apps.dbscan import DBSCAN_NOISE, DbscanResult, dbscan
from repro.apps.dedup import DedupResult, deduplicate
from repro.apps.knn import KnnResult, knn
from repro.apps.unionfind import UnionFind

__all__ = [
    "DBSCAN_NOISE",
    "DbscanResult",
    "DedupResult",
    "KnnResult",
    "UnionFind",
    "dbscan",
    "deduplicate",
    "knn",
]

"""Applications built on the similarity join — the paper's motivation.

The introduction lists the self-join as "a building block to several
algorithms such as data cleaning, near-duplicate detection, document
similarity, or clustering algorithms". This package provides those
building blocks as first-class library features, each running on one
simulated-GPU join call:

- :func:`dbscan` — density-based clustering from a single self-join;
- :func:`deduplicate` — near-duplicate groups as ε-pair connected
  components (data cleaning / entity resolution);
- :func:`knn` — exact k-nearest neighbors by adaptive ε-expansion of the
  range join;
- :class:`UnionFind` — the path-compressed disjoint-set the group
  builders share.

All three route through the runtime compile/execute pipeline
(:mod:`repro.runtime`), so they accept a ``runtime=RuntimeConfig(...)``
selecting engine, sharding, resilience and checkpointing; see
``docs/apps.md`` for the runbook.
"""

from repro.apps.dbscan import DBSCAN_NOISE, DbscanResult, dbscan
from repro.apps.dedup import DedupResult, deduplicate
from repro.apps.knn import KnnConvergenceError, KnnResult, knn
from repro.apps.unionfind import UnionFind

__all__ = [
    "DBSCAN_NOISE",
    "DbscanResult",
    "DedupResult",
    "KnnConvergenceError",
    "KnnResult",
    "UnionFind",
    "dbscan",
    "deduplicate",
    "knn",
]

"""DBSCAN density clustering from one similarity self-join.

DBSCAN's expensive step is the ε-range query around every point — exactly
the distance-similarity self-join. One join call yields every
neighborhood; the rest is the classic labeling pass:

- a point with ≥ ``min_pts`` ε-neighbors (itself included) is a *core*
  point;
- clusters are the connected components of core points under ε-adjacency;
- non-core points adjacent to a core point join its cluster (border
  points), everything else is noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.unionfind import UnionFind
from repro.core import OptimizationConfig, PRESETS, SelfJoin
from repro.core.result import JoinResult
from repro.core.validation import validate_inputs
from repro.grid import GridIndex
from repro.runtime.config import RuntimeConfig, _split_config
from repro.runtime.plan import compile_self_join
from repro.runtime.runner import Runner

__all__ = ["DBSCAN_NOISE", "DbscanResult", "dbscan"]


def _run_self_join(points, eps, config, runtime, facade: str) -> JoinResult:
    """Validate, compile and run the apps' underlying self-join.

    The apps route through ``compile_self_join`` + the one ``Runner``
    (not a facade instance), so a ``runtime=RuntimeConfig(...)`` picks
    up engine selection, sharding and checkpointing for free.
    """
    config, runtime = _split_config(config, runtime, facade)
    if runtime is None:
        runtime = RuntimeConfig(
            optimization=config if config is not None else PRESETS["combined"]
        )
    elif config is not None:
        runtime = runtime.with_(optimization=config)
    points, eps = validate_inputs(points, epsilon=eps)
    plan = compile_self_join(GridIndex(points, eps), runtime)
    return Runner().run(plan)

DBSCAN_NOISE = -1


@dataclass(frozen=True)
class DbscanResult:
    """Cluster labels plus the underlying join's simulated metrics."""

    labels: np.ndarray  # cluster id per point, DBSCAN_NOISE for noise
    core_mask: np.ndarray
    join: JoinResult

    @property
    def num_clusters(self) -> int:
        return len(np.unique(self.labels[self.labels != DBSCAN_NOISE]))

    @property
    def noise_count(self) -> int:
        return int((self.labels == DBSCAN_NOISE).sum())


def dbscan(
    points,
    eps: float,
    min_pts: int,
    *,
    config: OptimizationConfig | RuntimeConfig | None = None,
    runtime: RuntimeConfig | None = None,
    joiner: SelfJoin | None = None,
) -> DbscanResult:
    """Cluster ``points`` with DBSCAN parameters ``(eps, min_pts)``.

    ``min_pts`` counts the point itself, as in the original formulation.
    The underlying self-join runs with ``config`` (default: the paper's
    combined optimizations); ``runtime`` additionally selects engine,
    sharding and resilience. A caller-supplied :class:`SelfJoin`
    (``joiner``) overrides both.
    """
    if min_pts < 1:
        raise ValueError("min_pts must be >= 1")
    if joiner is not None:
        result = joiner.execute(points, eps)
    else:
        result = _run_self_join(points, eps, config, runtime, "dbscan")
    n = result.num_points

    # neighbor counts straight from the pair list (self pairs included)
    counts = np.bincount(result.pairs[:, 0], minlength=n)
    core = counts >= min_pts

    # clusters = connected components of core-core ε-edges
    uf = UnionFind(n)
    pairs = result.pairs
    core_edges = pairs[core[pairs[:, 0]] & core[pairs[:, 1]]]
    uf.union_pairs(core_edges)

    # canonical numbering: clusters in order of their lowest core member,
    # so labels are a function of the pair *set* — invariant to pair
    # emission order and hence identical across engines and presets
    labels = np.full(n, DBSCAN_NOISE, dtype=np.int64)
    roots = uf.labels()
    core_idx = np.flatnonzero(core)
    if len(core_idx):
        comp = roots[core_idx]
        uniq, first_pos = np.unique(comp, return_index=True)
        rank = np.empty(len(uniq), dtype=np.int64)
        rank[np.argsort(first_pos, kind="stable")] = np.arange(len(uniq))
        labels[core_idx] = rank[np.searchsorted(uniq, comp)]

    # border points: non-core with at least one core neighbor — attach to
    # the lowest-id core neighbor's cluster (classic DBSCAN leaves the
    # choice scan-order dependent; picking the minimum keeps it canonical)
    border_edges = pairs[~core[pairs[:, 0]] & core[pairs[:, 1]]]
    if len(border_edges):
        order = np.lexsort((border_edges[:, 1], border_edges[:, 0]))
        a, b = border_edges[order, 0], border_edges[order, 1]
        uniq_a, first_idx = np.unique(a, return_index=True)
        labels[uniq_a] = labels[b[first_idx]]
    return DbscanResult(labels=labels, core_mask=core, join=result)

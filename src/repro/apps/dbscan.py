"""DBSCAN density clustering from one similarity self-join.

DBSCAN's expensive step is the ε-range query around every point — exactly
the distance-similarity self-join. One join call yields every
neighborhood; the rest is the classic labeling pass:

- a point with ≥ ``min_pts`` ε-neighbors (itself included) is a *core*
  point;
- clusters are the connected components of core points under ε-adjacency;
- non-core points adjacent to a core point join its cluster (border
  points), everything else is noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.unionfind import UnionFind
from repro.core import OptimizationConfig, PRESETS, SelfJoin
from repro.core.result import JoinResult

__all__ = ["DBSCAN_NOISE", "DbscanResult", "dbscan"]

DBSCAN_NOISE = -1


@dataclass(frozen=True)
class DbscanResult:
    """Cluster labels plus the underlying join's simulated metrics."""

    labels: np.ndarray  # cluster id per point, DBSCAN_NOISE for noise
    core_mask: np.ndarray
    join: JoinResult

    @property
    def num_clusters(self) -> int:
        return len(np.unique(self.labels[self.labels != DBSCAN_NOISE]))

    @property
    def noise_count(self) -> int:
        return int((self.labels == DBSCAN_NOISE).sum())


def dbscan(
    points,
    eps: float,
    min_pts: int,
    *,
    config: OptimizationConfig | None = None,
    joiner: SelfJoin | None = None,
) -> DbscanResult:
    """Cluster ``points`` with DBSCAN parameters ``(eps, min_pts)``.

    ``min_pts`` counts the point itself, as in the original formulation.
    The underlying self-join runs with ``config`` (default: the paper's
    combined optimizations) or a caller-supplied :class:`SelfJoin`.
    """
    if min_pts < 1:
        raise ValueError("min_pts must be >= 1")
    if joiner is None:
        joiner = SelfJoin(config if config is not None else PRESETS["combined"])
    result = joiner.execute(points, eps)
    n = result.num_points

    # neighbor counts straight from the pair list (self pairs included)
    counts = np.bincount(result.pairs[:, 0], minlength=n)
    core = counts >= min_pts

    # clusters = connected components of core-core ε-edges
    uf = UnionFind(n)
    pairs = result.pairs
    core_edges = pairs[core[pairs[:, 0]] & core[pairs[:, 1]]]
    uf.union_pairs(core_edges)

    labels = np.full(n, DBSCAN_NOISE, dtype=np.int64)
    roots = uf.labels()
    core_roots = np.unique(roots[core])
    relabel = {int(r): i for i, r in enumerate(core_roots)}
    for i in np.flatnonzero(core):
        labels[i] = relabel[int(roots[i])]

    # border points: non-core with at least one core neighbor — take the
    # first core neighbor's cluster (order-deterministic, as classic
    # DBSCAN's assignment is scan-order dependent too)
    border_edges = pairs[~core[pairs[:, 0]] & core[pairs[:, 1]]]
    for a, b in border_edges:
        if labels[a] == DBSCAN_NOISE:
            labels[a] = labels[b]
    return DbscanResult(labels=labels, core_mask=core, join=result)

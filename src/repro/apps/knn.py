"""k-nearest-neighbor search via adaptive ε-expansion of the range join.

The range query is the paper's building block; kNN rides on it: start
from an ε estimated to capture ~k neighbors per point on average, run the
join, and re-run with grown ε for the points that still have fewer than
k neighbors — each round a smaller residual problem. This is the
standard trick for kNN on ε-grid/range-query engines (Gowanlock's later
GPU kNN work uses exactly this shape).

Since the op-registry refactor this module is a thin wrapper: ``knn()``
compiles a :func:`~repro.runtime.plan.compile_knn_join` driver plan and
hands it to the one :class:`~repro.runtime.runner.Runner`, so kNN picks
up engine selection (``interpreted``/``vectorized``/``native``),
multi-device sharding, fault injection, recovery and durable
checkpoint/resume exactly like the range joins — pass
``runtime=RuntimeConfig(...)`` to use any of them. The expansion logic
itself (round loop, segmented top-k finalize) lives in the runner;
:class:`~repro.runtime.ops.KnnJoinOp` declares the workload.

Exactness: a point's k nearest neighbors found within radius ε are final
only if at least k neighbors lie within ε (any unexamined point is
farther than ε). The loop therefore only *accepts* points with ≥ k
in-radius neighbors and expands the rest.
"""

from __future__ import annotations

from repro.core import OptimizationConfig, PRESETS
from repro.runtime.config import RuntimeConfig, _split_config
from repro.runtime.ops import KnnConvergenceError, KnnResult, default_knn_epsilon
from repro.runtime.plan import compile_knn_join
from repro.runtime.runner import Runner

__all__ = ["KnnConvergenceError", "KnnResult", "knn"]


def knn(
    points,
    k: int,
    *,
    config: OptimizationConfig | RuntimeConfig | None = None,
    runtime: RuntimeConfig | None = None,
    epsilon0: float | None = None,
    seed: int = 0,
) -> KnnResult:
    """Exact k-nearest neighbors of every point via range-join rounds.

    ``k`` must be smaller than the dataset size. ``epsilon0`` overrides
    the density-based initial radius (:func:`default_knn_epsilon`).
    ``config`` tunes the per-round optimization stack (default: the
    WORKQUEUE preset; any unidirectional pattern is forced to ``full``,
    which the bipartite rounds require); ``runtime`` additionally selects
    engine, sharding, resilience and checkpointing for every round.
    """
    config, runtime = _split_config(config, runtime, "knn")
    if runtime is None:
        runtime = RuntimeConfig(
            optimization=config if config is not None else PRESETS["workqueue"],
            seed=seed,
        )
    elif config is not None:
        runtime = runtime.with_(optimization=config)
    if runtime.optimization.pattern != "full":
        runtime = runtime.with_(
            optimization=runtime.optimization.with_(pattern="full")
        )
    plan = compile_knn_join(points, k, runtime, epsilon0=epsilon0)
    return Runner().run(plan)

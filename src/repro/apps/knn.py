"""k-nearest-neighbor search via adaptive ε-expansion of the range join.

The range query is the paper's building block; kNN rides on it: start
from an ε estimated to capture ~k neighbors per point on average, run the
self-join, and re-run with doubled ε for the points that still have fewer
than k neighbors — each round a smaller residual problem. This is the
standard trick for kNN on ε-grid/range-query engines (Gowanlock's later
GPU kNN work uses exactly this shape).

Exactness: a point's k nearest neighbors found within radius ε are final
only if at least k neighbors lie within ε (any unexamined point is
farther than ε). The loop therefore only *accepts* points with ≥ k
in-radius neighbors and expands the rest.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import OptimizationConfig, PRESETS
from repro.core.join import SimilarityJoin
from repro.util import as_points_array

__all__ = ["KnnResult", "knn"]

_MAX_ROUNDS = 48


@dataclass(frozen=True)
class KnnResult:
    """k nearest neighbors of every point (excluding the point itself)."""

    indices: np.ndarray  # (N, k) neighbor ids, nearest first
    distances: np.ndarray  # (N, k) matching distances
    rounds: int  # ε-expansion rounds executed
    final_epsilon: float  # radius that finalized the last points


def _initial_epsilon(points: np.ndarray, k: int) -> float:
    """ε whose ball is expected to hold ~2k neighbors under uniformity."""
    n, d = points.shape
    spans = points.max(axis=0) - points.min(axis=0)
    volume = float(np.prod(spans[spans > 0])) or 1.0
    density = n / volume
    # ball volume v ~ c_d * eps^d; solve c_d * eps^d * density = 2k with
    # the unit-cube approximation c_d = 1 (constant factors wash out in
    # the doubling loop)
    eff_d = int((spans > 0).sum()) or 1
    return float((2.0 * k / density) ** (1.0 / eff_d))


def knn(
    points,
    k: int,
    *,
    config: OptimizationConfig | None = None,
    epsilon0: float | None = None,
    seed: int = 0,
) -> KnnResult:
    """Exact k-nearest neighbors of every point via range-join rounds.

    ``k`` must be smaller than the dataset size. ``epsilon0`` overrides
    the density-based initial radius.
    """
    pts = as_points_array(points)
    n = pts.shape[0]
    if k < 1:
        raise ValueError("k must be >= 1")
    if k >= n:
        raise ValueError(f"k={k} requires at least k+1={k + 1} points, got {n}")
    cfg = config if config is not None else PRESETS["workqueue"]
    if cfg.pattern != "full":
        cfg = cfg.with_(pattern="full")

    eps = float(epsilon0) if epsilon0 is not None else _initial_epsilon(pts, k)
    if eps <= 0:
        raise ValueError("epsilon0 must be positive")

    indices = np.full((n, k), -1, dtype=np.int64)
    distances = np.full((n, k), np.inf)
    pending = np.arange(n)

    rounds = 0
    while len(pending) and rounds < _MAX_ROUNDS:
        rounds += 1
        joiner = SimilarityJoin(cfg, seed=seed)
        result = joiner.execute(pts[pending], pts, eps)
        pairs = result.pairs  # (pending-local query idx, global neighbor)
        # drop self matches
        keep = pending[pairs[:, 0]] != pairs[:, 1]
        pairs = pairs[keep]

        counts = np.bincount(pairs[:, 0], minlength=len(pending))
        done_local = np.flatnonzero(counts >= k)
        if len(done_local):
            # gather each finished query's neighbor list, sorted by distance
            order = np.argsort(pairs[:, 0], kind="stable")
            sp = pairs[order]
            bounds = np.searchsorted(sp[:, 0], np.arange(len(pending) + 1))
            for q_local in done_local:
                nbs = sp[bounds[q_local] : bounds[q_local + 1], 1]
                q_global = pending[q_local]
                d = np.linalg.norm(pts[nbs] - pts[q_global], axis=1)
                top = np.argsort(d, kind="stable")[:k]
                indices[q_global] = nbs[top]
                distances[q_global] = d[top]
        pending = pending[counts < k]
        eps *= 2.0

    if len(pending):  # pragma: no cover - 2**48 expansion always suffices
        raise RuntimeError("kNN expansion failed to converge")
    return KnnResult(
        indices=indices, distances=distances, rounds=rounds, final_epsilon=eps / 2.0
    )

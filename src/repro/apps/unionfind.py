"""Disjoint-set (union-find) with path compression and union by size."""

from __future__ import annotations

import numpy as np

__all__ = ["UnionFind"]


class UnionFind:
    """Array-backed disjoint-set over the integers ``0..n-1``."""

    def __init__(self, n: int):
        if n < 0:
            raise ValueError("n must be non-negative")
        self._parent = np.arange(n, dtype=np.int64)
        self._size = np.ones(n, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, x: int) -> int:
        """Root of ``x``'s set (with path halving)."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; returns False if already one."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True

    def union_pairs(self, pairs: np.ndarray) -> None:
        """Merge along an ``(M, 2)`` edge list."""
        pairs = np.asarray(pairs)
        if pairs.size == 0:
            return
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError(f"pairs must have shape (M, 2), got {pairs.shape}")
        for a, b in pairs:
            if a != b:
                self.union(int(a), int(b))

    def labels(self) -> np.ndarray:
        """Canonical component label (root id) of every element."""
        return np.array([self.find(i) for i in range(len(self))], dtype=np.int64)

    def component_count(self) -> int:
        return len(np.unique(self.labels()))

"""The pluggable batch-execution seam between joins and devices.

:class:`SelfJoin` and :class:`SimilarityJoin` plan *what* to run — the
grid index, the sorted order D', the batch plan — but delegate *where and
how* the batch kernels run to a :class:`BatchExecutor`. The default
:class:`DeviceExecutor` reproduces the single-device behaviour the paper
evaluates: one :class:`~repro.simt.GpuMachine` per plan, a fresh
capacity-checked result buffer per batch, and the 3-stream transfer
pipeline over that device's PCIe link.

The seam exists so other execution substrates can be swapped in without
touching the join logic; :mod:`repro.multigpu` uses it to run shards of
one join on a pool of independent simulated devices, each with its own
executor, buffers and counters, and :mod:`repro.resilience` wraps it to
inject faults.

Overflow handling is a policy. ``overflow_policy="raise"`` (the default)
propagates :class:`~repro.simt.BufferOverflowError` to the caller, whose
re-plan doubles the estimate and restarts the whole plan — the paper's
recovery. ``"retry"`` instead recovers *at batch granularity*: the failed
batch alone is relaunched with a geometrically grown buffer (bounded
retries, optional backoff), the wasted attempt time is charged to the
pipeline in simulated seconds, and every retry is recorded as an
:class:`OverflowRetry` so recovery overhead is measurable. An aborted
launch's work-queue fetches are rolled back to the batch's entry state,
exactly as a fresh relaunch of the kernel would observe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.simt import (
    ENGINES,
    BufferOverflowError,
    CostParams,
    DeviceSpec,
    GpuMachine,
    KernelStats,
    ResultBuffer,
)
from repro.simt.streams import PipelineResult, simulate_stream_pipeline

__all__ = [
    "BatchExecutor",
    "BatchOutcome",
    "DeviceExecutor",
    "OVERFLOW_POLICIES",
    "OverflowRetry",
    "PAIR_BYTES",
]

#: Device bytes per result pair (two int64 indices) — transfer modeling.
PAIR_BYTES = 16

OVERFLOW_POLICIES = ("raise", "retry")


@dataclass(frozen=True)
class OverflowRetry:
    """Record of one batch's recovered overflow(s).

    ``attempts`` failed launches preceded the success; ``final_capacity``
    is the buffer size that fit; ``wasted_seconds`` is the simulated time
    the failed attempts and backoff burned (charged to the pipeline).
    """

    batch_index: int
    attempts: int
    final_capacity: int
    wasted_seconds: float


@dataclass(frozen=True)
class BatchOutcome:
    """What one executor run of a batch plan produced.

    ``pairs_per_batch`` preserves batch order so callers can keep the
    stable concatenation order the single-device path has always used.
    ``overflow_retries`` records any batch-level overflow recoveries (empty
    under the default ``"raise"`` policy).
    """

    pairs_per_batch: list[np.ndarray] = field(repr=False)
    batch_stats: list[KernelStats] = field(repr=False)
    kernel_seconds: list[float]
    transfer_seconds: list[float]
    pipeline: PipelineResult = field(repr=False)
    overflow_retries: list[OverflowRetry] = field(default_factory=list, repr=False)

    @property
    def num_batches(self) -> int:
        return len(self.batch_stats)

    @property
    def num_overflow_retries(self) -> int:
        return sum(r.attempts for r in self.overflow_retries)

    @property
    def overflow_wasted_seconds(self) -> float:
        return float(sum(r.wasted_seconds for r in self.overflow_retries))

    def merged_pairs(self) -> np.ndarray:
        if not self.pairs_per_batch:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(self.pairs_per_batch, axis=0)


class BatchExecutor(Protocol):
    """Anything that can run a planned sequence of batch kernels."""

    def run_batches(
        self,
        kernel: Callable,
        batches: list[np.ndarray],
        make_args: Callable[[np.ndarray], object],
        *,
        result_capacity: int,
        num_streams: int,
        issue_order: str = "random",
        coop_groups: bool = False,
    ) -> BatchOutcome: ...


class DeviceExecutor:
    """Runs batch kernels on one simulated device.

    Parameters mirror the hardware knobs :class:`SelfJoin` used to own:
    the device spec, the cost model, the scheduler seed, the warp replay
    fidelity and the execution engine (``"interpreted"`` or
    ``"vectorized"`` — see :mod:`repro.simt.vectorized`; both produce
    identical results, the vectorized engine is just fast). One executor
    is one device — buffer allocation, kernel launch and transfer timing
    all happen against ``self.device``.

    Overflow parameters (only consulted under ``overflow_policy="retry"``):
    a failed batch is relaunched with capacity grown by ``overflow_growth``
    per attempt, up to ``max_overflow_retries`` attempts, each retry adding
    ``overflow_backoff_seconds`` of simulated backoff on top of the failed
    attempt's own duration.
    """

    def __init__(
        self,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        *,
        seed: int = 0,
        replay_mode: str = "aggregate",
        engine: str = "interpreted",
        overflow_policy: str = "raise",
        overflow_growth: float = 4.0,
        max_overflow_retries: int = 6,
        overflow_backoff_seconds: float = 0.0,
    ):
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if overflow_policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {overflow_policy!r}; "
                f"expected one of {OVERFLOW_POLICIES}"
            )
        if overflow_growth <= 1.0:
            raise ValueError("overflow_growth must be > 1")
        if max_overflow_retries < 0:
            raise ValueError("max_overflow_retries must be >= 0")
        if overflow_backoff_seconds < 0:
            raise ValueError("overflow_backoff_seconds must be >= 0")
        self.device = device if device is not None else DeviceSpec()
        self.costs = costs if costs is not None else CostParams()
        self.seed = seed
        self.replay_mode = replay_mode
        self.engine = engine
        self.overflow_policy = overflow_policy
        self.overflow_growth = overflow_growth
        self.max_overflow_retries = max_overflow_retries
        self.overflow_backoff_seconds = overflow_backoff_seconds

    def run_batches(
        self,
        kernel: Callable,
        batches: list[np.ndarray],
        make_args: Callable[[np.ndarray], object],
        *,
        result_capacity: int,
        num_streams: int,
        issue_order: str = "random",
        coop_groups: bool = False,
    ) -> BatchOutcome:
        """Launch ``kernel`` once per batch; feed durations through the
        stream pipeline. ``make_args(batch)`` must return the kernel's
        argument bundle exposing ``num_threads``.

        Under ``overflow_policy="raise"``, a batch exceeding
        ``result_capacity`` raises :class:`~repro.simt.BufferOverflowError`
        — the caller re-plans, exactly as on the single-device path. Under
        ``"retry"``, the batch alone is relaunched with a geometrically
        grown buffer and the recovery is recorded on the outcome.
        """
        machine = GpuMachine(
            self.device,
            self.costs,
            issue_order=issue_order,
            seed=self.seed,
            replay_mode=self.replay_mode,
            engine=self.engine,
        )
        pairs_per_batch: list[np.ndarray] = []
        batch_stats: list[KernelStats] = []
        kernel_secs: list[float] = []
        transfer_secs: list[float] = []
        retries: list[OverflowRetry] = []
        for batch_index, batch in enumerate(batches):
            args = make_args(batch)
            # the work-queue counter is the only cross-batch mutable device
            # state; snapshot it so an aborted launch can be rolled back
            counter = getattr(args, "queue_counter", None)
            capacity = result_capacity
            attempts = 0
            while True:
                mark = counter.value if counter is not None else 0
                buffer = ResultBuffer(capacity)
                try:
                    stats = machine.launch(
                        kernel,
                        args.num_threads,
                        args,
                        result_buffer=buffer,
                        coop_groups=coop_groups,
                    )
                except BufferOverflowError:
                    if (
                        self.overflow_policy != "retry"
                        or attempts >= self.max_overflow_retries
                    ):
                        raise
                    if counter is not None:
                        counter.reset(mark)
                    attempts += 1
                    capacity = max(
                        int(np.ceil(capacity * self.overflow_growth)), capacity + 1
                    )
                    continue
                break
            pairs = buffer.drain()
            pairs_per_batch.append(pairs)
            batch_stats.append(stats)
            kernel_seconds = stats.seconds
            if attempts:
                # each failed attempt ran to (approximately) the kernel's
                # full duration before aborting, plus configured backoff
                wasted = attempts * (stats.seconds + self.overflow_backoff_seconds)
                kernel_seconds += wasted
                retries.append(
                    OverflowRetry(
                        batch_index=batch_index,
                        attempts=attempts,
                        final_capacity=capacity,
                        wasted_seconds=wasted,
                    )
                )
            kernel_secs.append(kernel_seconds)
            transfer_secs.append(len(pairs) * PAIR_BYTES / self.device.pcie_bandwidth)

        pipeline = simulate_stream_pipeline(
            kernel_secs, transfer_secs, num_streams=num_streams
        )
        return BatchOutcome(
            pairs_per_batch=pairs_per_batch,
            batch_stats=batch_stats,
            kernel_seconds=kernel_secs,
            transfer_seconds=transfer_secs,
            pipeline=pipeline,
            overflow_retries=retries,
        )

"""The pluggable batch-execution seam between joins and devices.

:class:`SelfJoin` and :class:`SimilarityJoin` plan *what* to run — the
grid index, the sorted order D', the batch plan — but delegate *where and
how* the batch kernels run to a :class:`BatchExecutor`. The default
:class:`DeviceExecutor` reproduces the single-device behaviour the paper
evaluates: one :class:`~repro.simt.GpuMachine` per plan, a fresh
capacity-checked result buffer per batch, and the 3-stream transfer
pipeline over that device's PCIe link.

The seam exists so other execution substrates can be swapped in without
touching the join logic; :mod:`repro.multigpu` uses it to run shards of
one join on a pool of independent simulated devices, each with its own
executor, buffers and counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np

from repro.simt import CostParams, DeviceSpec, GpuMachine, KernelStats, ResultBuffer
from repro.simt.streams import PipelineResult, simulate_stream_pipeline

__all__ = ["BatchExecutor", "BatchOutcome", "DeviceExecutor", "PAIR_BYTES"]

#: Device bytes per result pair (two int64 indices) — transfer modeling.
PAIR_BYTES = 16


@dataclass(frozen=True)
class BatchOutcome:
    """What one executor run of a batch plan produced.

    ``pairs_per_batch`` preserves batch order so callers can keep the
    stable concatenation order the single-device path has always used.
    """

    pairs_per_batch: list[np.ndarray] = field(repr=False)
    batch_stats: list[KernelStats] = field(repr=False)
    kernel_seconds: list[float]
    transfer_seconds: list[float]
    pipeline: PipelineResult = field(repr=False)

    @property
    def num_batches(self) -> int:
        return len(self.batch_stats)

    def merged_pairs(self) -> np.ndarray:
        if not self.pairs_per_batch:
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate(self.pairs_per_batch, axis=0)


class BatchExecutor(Protocol):
    """Anything that can run a planned sequence of batch kernels."""

    def run_batches(
        self,
        kernel: Callable,
        batches: list[np.ndarray],
        make_args: Callable[[np.ndarray], object],
        *,
        result_capacity: int,
        num_streams: int,
        issue_order: str = "random",
        coop_groups: bool = False,
    ) -> BatchOutcome: ...


class DeviceExecutor:
    """Runs batch kernels on one simulated device.

    Parameters mirror the hardware knobs :class:`SelfJoin` used to own:
    the device spec, the cost model, the scheduler seed and the warp
    replay fidelity. One executor is one device — buffer allocation,
    kernel launch and transfer timing all happen against ``self.device``.
    """

    def __init__(
        self,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        *,
        seed: int = 0,
        replay_mode: str = "aggregate",
    ):
        self.device = device if device is not None else DeviceSpec()
        self.costs = costs if costs is not None else CostParams()
        self.seed = seed
        self.replay_mode = replay_mode

    def run_batches(
        self,
        kernel: Callable,
        batches: list[np.ndarray],
        make_args: Callable[[np.ndarray], object],
        *,
        result_capacity: int,
        num_streams: int,
        issue_order: str = "random",
        coop_groups: bool = False,
    ) -> BatchOutcome:
        """Launch ``kernel`` once per batch; feed durations through the
        stream pipeline. ``make_args(batch)`` must return the kernel's
        argument bundle exposing ``num_threads``.

        Raises :class:`~repro.simt.BufferOverflowError` if any batch
        exceeds ``result_capacity`` — the caller re-plans, exactly as on
        the single-device path.
        """
        machine = GpuMachine(
            self.device,
            self.costs,
            issue_order=issue_order,
            seed=self.seed,
            replay_mode=self.replay_mode,
        )
        pairs_per_batch: list[np.ndarray] = []
        batch_stats: list[KernelStats] = []
        kernel_secs: list[float] = []
        transfer_secs: list[float] = []
        for batch in batches:
            args = make_args(batch)
            buffer = ResultBuffer(result_capacity)
            stats = machine.launch(
                kernel,
                args.num_threads,
                args,
                result_buffer=buffer,
                coop_groups=coop_groups,
            )
            pairs = buffer.drain()
            pairs_per_batch.append(pairs)
            batch_stats.append(stats)
            kernel_secs.append(stats.seconds)
            transfer_secs.append(len(pairs) * PAIR_BYTES / self.device.pcie_bandwidth)

        pipeline = simulate_stream_pipeline(
            kernel_secs, transfer_secs, num_streams=num_streams
        )
        return BatchOutcome(
            pairs_per_batch=pairs_per_batch,
            batch_stats=batch_stats,
            kernel_seconds=kernel_secs,
            transfer_seconds=transfer_secs,
            pipeline=pipeline,
        )

"""The batching scheme (Section II-C2) and its WORKQUEUE variant.

The self-join result set can exceed device memory, so the join runs as a
sequence of batches, each a kernel invocation bounded by the result-buffer
capacity bs. The number of batches comes from an estimate of the total
result size obtained by *exactly* solving a small sample of range queries:

- GPUCALCGLOBAL / SORTBYWL sample the dataset with a stride (representative
  sample → accurate estimate) and assign points to batches in a strided
  round-robin (Figure 1), so each batch holds a similar mix of workloads;
- WORKQUEUE instead samples the *first* 1 % of the workload-sorted array D'
  — the heaviest points — which deliberately overestimates the total so the
  front-loaded first batch cannot overflow; batches are then contiguous
  slices of D' (Section III-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid import GridIndex
from repro.grid.query import grid_neighbor_counts
from repro.util import ceil_div

__all__ = [
    "BatchPlan",
    "estimate_result_size",
    "plan_batches",
    "plan_batches_balanced",
]


@dataclass(frozen=True)
class BatchPlan:
    """Assignment of query points to kernel invocations.

    ``batches[l][t]`` is the point id handled by (query-)thread ``t`` of
    batch ``l``. ``estimated_total`` is the estimator's result-size guess
    used to choose ``num_batches``.
    """

    batches: list[np.ndarray]
    estimated_total: int
    strided: bool

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def num_points(self) -> int:
        return int(sum(len(b) for b in self.batches))


def estimate_result_size(
    index: GridIndex,
    *,
    sample_fraction: float = 0.01,
    mode: str = "strided",
    order: np.ndarray | None = None,
    include_self: bool = True,
    subset: np.ndarray | None = None,
) -> int:
    """Estimate the total self-join result size from an exact sample.

    ``mode="strided"`` samples every (1/fraction)-th point of the dataset;
    ``mode="head"`` samples the first fraction of ``order`` (the
    workload-sorted D'), the WORKQUEUE variant that overestimates by
    sampling the heaviest points. ``subset`` restricts the estimate to the
    given query point ids (a shard of the full join); the estimate then
    covers only that shard's result rows.

    Degenerate inputs are handled rather than divided by: an empty grid,
    an empty ``subset``/``order``, or a sample stride that exceeds the
    population all yield a well-defined (possibly zero) estimate.
    """
    if not 0 < sample_fraction <= 1:
        raise ValueError("sample_fraction must be in (0, 1]")
    if subset is not None:
        queries = np.asarray(subset, dtype=np.int64)
    else:
        queries = np.arange(index.num_points, dtype=np.int64)
    n = len(queries)
    if n == 0 or index.num_points == 0:
        return 0
    sample_size = min(n, max(1, int(round(n * sample_fraction))))
    if mode == "strided":
        step = max(1, n // sample_size)
        sample = queries[::step]
    elif mode == "head":
        if order is None:
            raise ValueError("mode='head' requires the sorted order array")
        sample = np.asarray(order, dtype=np.int64)[:sample_size]
    else:
        raise ValueError(f"unknown estimator mode {mode!r}")
    if len(sample) == 0:
        return 0
    counts = grid_neighbor_counts(index, sample, include_self=include_self)
    scale = n / len(sample)
    return int(np.ceil(counts.sum() * scale))


def plan_batches(
    order: np.ndarray,
    estimated_total: int,
    capacity: int,
    *,
    strided: bool = True,
) -> BatchPlan:
    """Split the query points of ``order`` into batches.

    ``strided=True`` is the Figure 1 round-robin: batch ``l`` handles points
    ``order[l::nb]``. ``strided=False`` (WORKQUEUE) slices ``order``
    contiguously, preserving the most-work-first ordering across batches.
    """
    order = np.asarray(order, dtype=np.int64)
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if estimated_total < 0:
        raise ValueError("estimated_total must be non-negative")
    n = len(order)
    if n == 0:
        return BatchPlan([], estimated_total, strided)
    nb = max(1, int(ceil_div(estimated_total, capacity)))
    nb = min(nb, n)  # never more batches than points
    if strided:
        batches = [order[l::nb] for l in range(nb)]
    else:
        size = int(ceil_div(n, nb))
        batches = [order[l * size : (l + 1) * size] for l in range(nb)]
        batches = [b for b in batches if len(b)]
    return BatchPlan(batches, estimated_total, strided)


def plan_batches_balanced(
    order: np.ndarray,
    weights: np.ndarray,
    estimated_total: int,
    capacity: int,
    *,
    fill_target: float = 0.75,
) -> BatchPlan:
    """Dynamically grouped work-queue batches with similar result sizes.

    Implements the paper's stated future-work direction (Section V):
    instead of equal point-count slices of D' — whose result sizes vary
    wildly because the heavy points come first — batches are contiguous
    prefix groups cut when their *estimated* result rows reach
    ``fill_target · capacity``. Per-point rows are estimated proportionally
    to ``weights`` (the quantified candidate workload, the only signal
    available before refinement): ``rows_i ≈ estimated_total · w_i / Σw``.

    ``weights`` must align with ``order`` positions (``weights[t]`` belongs
    to point ``order[t]``). Batch sizes therefore *grow* along D' — few
    heavy points per early batch, many light ones later — while every
    batch stays under capacity with headroom ``1 - fill_target`` for
    estimation error.
    """
    order = np.asarray(order, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != order.shape:
        raise ValueError("weights must align with order")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if estimated_total < 0:
        raise ValueError("estimated_total must be non-negative")
    if not 0 < fill_target <= 1:
        raise ValueError("fill_target must be in (0, 1]")
    n = len(order)
    if n == 0:
        return BatchPlan([], estimated_total, False)
    total_w = weights.sum()
    if total_w <= 0 or estimated_total == 0:
        return BatchPlan([order], estimated_total, False)

    est_rows = weights * (estimated_total / total_w)
    budget = fill_target * capacity
    # cut points: cumulative estimated rows cross multiples of the budget
    cum = np.cumsum(est_rows)
    bucket = np.minimum((cum / budget).astype(np.int64), np.iinfo(np.int64).max)
    # a batch boundary wherever the bucket index advances
    cuts = np.flatnonzero(np.diff(bucket) > 0) + 1
    bounds = np.concatenate([[0], cuts, [n]])
    batches = [
        order[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a
    ]
    return BatchPlan(batches, estimated_total, False)

"""The batching scheme (Section II-C2) and its WORKQUEUE variant.

The self-join result set can exceed device memory, so the join runs as a
sequence of batches, each a kernel invocation bounded by the result-buffer
capacity bs. The number of batches comes from an estimate of the total
result size obtained by *exactly* solving a small sample of range queries:

- GPUCALCGLOBAL / SORTBYWL sample the dataset with a stride (representative
  sample → accurate estimate) and assign points to batches in a strided
  round-robin (Figure 1), so each batch holds a similar mix of workloads;
- WORKQUEUE instead samples the *first* 1 % of the workload-sorted array D'
  — the heaviest points — which deliberately overestimates the total so the
  front-loaded first batch cannot overflow; batches are then contiguous
  slices of D' (Section III-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.grid import GridIndex
from repro.grid.query import grid_neighbor_counts
from repro.util import ceil_div

__all__ = [
    "BatchPlan",
    "ResultSizeEstimate",
    "estimate_result_size",
    "estimate_result_size_detailed",
    "plan_batches",
    "plan_batches_balanced",
]


@dataclass(frozen=True)
class BatchPlan:
    """Assignment of query points to kernel invocations.

    ``batches[l][t]`` is the point id handled by (query-)thread ``t`` of
    batch ``l``. ``estimated_total`` is the estimator's result-size guess
    used to choose ``num_batches``.
    """

    batches: list[np.ndarray]
    estimated_total: int
    strided: bool

    @property
    def num_batches(self) -> int:
        return len(self.batches)

    @property
    def num_points(self) -> int:
        return int(sum(len(b) for b in self.batches))


@dataclass(frozen=True)
class ResultSizeEstimate:
    """A result-size estimate *with its own error bar*.

    The bare scalar the batching scheme historically trusted hides how
    good the sample was; on skewed data an underestimate overflows the
    result buffer on a real GPU. This carries the point estimate plus the
    sample spread so callers can size safety margins instead of hoping:

    - ``estimate`` — the scaled point estimate (what
      :func:`estimate_result_size` has always returned);
    - ``variance_per_point`` — sample variance of the per-point neighbor
      counts (ddof=1);
    - ``stderr`` — standard error of the *total*, with finite-population
      correction (the sample is drawn without replacement);
    - ``confident`` — whether the estimate is statistically trustworthy:
      a representative (strided) sample of reasonable size and relative
      error. The WORKQUEUE head-of-D' sample is *deliberately biased*
      upward, so head-mode estimates are never flagged confident — they
      are safe as overestimates, not as measurements.
    """

    estimate: int
    sample_size: int
    population: int
    mode: str
    mean_per_point: float
    variance_per_point: float

    @property
    def stderr(self) -> float:
        """Standard error of the estimated total (0 for full samples)."""
        if self.sample_size <= 1 or self.population <= self.sample_size:
            return 0.0
        fpc = (self.population - self.sample_size) / (self.population - 1)
        sem = math.sqrt(self.variance_per_point / self.sample_size * max(fpc, 0.0))
        return self.population * sem

    @property
    def relative_stderr(self) -> float:
        if self.estimate <= 0:
            return 0.0 if self.stderr == 0 else float("inf")
        return self.stderr / self.estimate

    @property
    def confident(self) -> bool:
        return (
            self.mode == "strided"
            and (self.sample_size >= 30 or self.sample_size == self.population)
            and self.relative_stderr <= 0.25
        )

    def with_margin(self, z: float = 2.0) -> int:
        """The estimate padded by ``z`` standard errors — the buffer size a
        caller should plan for when an overflow is expensive."""
        if z < 0:
            raise ValueError("z must be non-negative")
        return int(math.ceil(self.estimate + z * self.stderr))


def estimate_result_size_detailed(
    index: GridIndex,
    *,
    sample_fraction: float = 0.01,
    mode: str = "strided",
    order: np.ndarray | None = None,
    include_self: bool = True,
    subset: np.ndarray | None = None,
) -> ResultSizeEstimate:
    """Estimate the total self-join result size from an exact sample,
    reporting the sample variance alongside the point estimate.

    ``mode="strided"`` samples every (1/fraction)-th point of the dataset;
    ``mode="head"`` samples the first fraction of ``order`` (the
    workload-sorted D'), the WORKQUEUE variant that overestimates by
    sampling the heaviest points. ``subset`` restricts the estimate to the
    given query point ids (a shard of the full join); the estimate then
    covers only that shard's result rows.

    Degenerate inputs are handled rather than divided by: an empty grid,
    an empty ``subset``/``order``, or a sample stride that exceeds the
    population all yield a well-defined (possibly zero) estimate.
    """
    if not 0 < sample_fraction <= 1:
        raise ValueError("sample_fraction must be in (0, 1]")
    if mode not in ("strided", "head"):
        raise ValueError(f"unknown estimator mode {mode!r}")
    if subset is not None:
        queries = np.asarray(subset, dtype=np.int64)
    else:
        queries = np.arange(index.num_points, dtype=np.int64)
    n = len(queries)
    if n == 0 or index.num_points == 0:
        return ResultSizeEstimate(0, 0, n, mode, 0.0, 0.0)
    sample_size = min(n, max(1, int(round(n * sample_fraction))))
    if mode == "strided":
        step = max(1, n // sample_size)
        sample = queries[::step]
    else:
        if order is None:
            raise ValueError("mode='head' requires the sorted order array")
        sample = np.asarray(order, dtype=np.int64)[:sample_size]
    if len(sample) == 0:
        return ResultSizeEstimate(0, 0, n, mode, 0.0, 0.0)
    counts = grid_neighbor_counts(index, sample, include_self=include_self)
    scale = n / len(sample)
    mean = float(counts.mean())
    var = float(counts.var(ddof=1)) if len(counts) > 1 else 0.0
    return ResultSizeEstimate(
        estimate=int(np.ceil(counts.sum() * scale)),
        sample_size=len(sample),
        population=n,
        mode=mode,
        mean_per_point=mean,
        variance_per_point=var,
    )


def estimate_result_size(
    index: GridIndex,
    *,
    sample_fraction: float = 0.01,
    mode: str = "strided",
    order: np.ndarray | None = None,
    include_self: bool = True,
    subset: np.ndarray | None = None,
) -> int:
    """Point-estimate form of :func:`estimate_result_size_detailed` —
    identical sampling, returns only the scaled total."""
    return estimate_result_size_detailed(
        index,
        sample_fraction=sample_fraction,
        mode=mode,
        order=order,
        include_self=include_self,
        subset=subset,
    ).estimate


def plan_batches(
    order: np.ndarray,
    estimated_total: int,
    capacity: int,
    *,
    strided: bool = True,
) -> BatchPlan:
    """Split the query points of ``order`` into batches.

    ``strided=True`` is the Figure 1 round-robin: batch ``l`` handles points
    ``order[l::nb]``. ``strided=False`` (WORKQUEUE) slices ``order``
    contiguously, preserving the most-work-first ordering across batches.
    """
    order = np.asarray(order, dtype=np.int64)
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if estimated_total < 0:
        raise ValueError("estimated_total must be non-negative")
    n = len(order)
    if n == 0:
        return BatchPlan([], estimated_total, strided)
    nb = max(1, int(ceil_div(estimated_total, capacity)))
    nb = min(nb, n)  # never more batches than points
    if strided:
        batches = [order[l::nb] for l in range(nb)]
    else:
        size = int(ceil_div(n, nb))
        batches = [order[l * size : (l + 1) * size] for l in range(nb)]
        batches = [b for b in batches if len(b)]
    return BatchPlan(batches, estimated_total, strided)


def plan_batches_balanced(
    order: np.ndarray,
    weights: np.ndarray,
    estimated_total: int,
    capacity: int,
    *,
    fill_target: float = 0.75,
) -> BatchPlan:
    """Dynamically grouped work-queue batches with similar result sizes.

    Implements the paper's stated future-work direction (Section V):
    instead of equal point-count slices of D' — whose result sizes vary
    wildly because the heavy points come first — batches are contiguous
    prefix groups cut when their *estimated* result rows reach
    ``fill_target · capacity``. Per-point rows are estimated proportionally
    to ``weights`` (the quantified candidate workload, the only signal
    available before refinement): ``rows_i ≈ estimated_total · w_i / Σw``.

    ``weights`` must align with ``order`` positions (``weights[t]`` belongs
    to point ``order[t]``). Batch sizes therefore *grow* along D' — few
    heavy points per early batch, many light ones later — while every
    batch stays under capacity with headroom ``1 - fill_target`` for
    estimation error.
    """
    order = np.asarray(order, dtype=np.int64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.shape != order.shape:
        raise ValueError("weights must align with order")
    if capacity < 1:
        raise ValueError("capacity must be >= 1")
    if estimated_total < 0:
        raise ValueError("estimated_total must be non-negative")
    if not 0 < fill_target <= 1:
        raise ValueError("fill_target must be in (0, 1]")
    n = len(order)
    if n == 0:
        return BatchPlan([], estimated_total, False)
    total_w = weights.sum()
    if total_w <= 0 or estimated_total == 0:
        return BatchPlan([order], estimated_total, False)

    est_rows = weights * (estimated_total / total_w)
    budget = fill_target * capacity
    # cut points: cumulative estimated rows cross multiples of the budget
    cum = np.cumsum(est_rows)
    bucket = np.minimum((cum / budget).astype(np.int64), np.iinfo(np.int64).max)
    # a batch boundary wherever the bucket index advances
    cuts = np.flatnonzero(np.diff(bucket) > 0) + 1
    bounds = np.concatenate([[0], cuts, [n]])
    batches = [
        order[a:b] for a, b in zip(bounds[:-1], bounds[1:]) if b > a
    ]
    return BatchPlan(batches, estimated_total, False)

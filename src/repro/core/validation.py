"""Shared input validation for every join facade.

All four facades (:class:`~repro.core.selfjoin.SelfJoin`,
:class:`~repro.core.join.SimilarityJoin` and the :mod:`repro.multigpu`
pooled variants) funnel their user-facing inputs through
:func:`validate_inputs`, so a NaN coordinate or a non-positive ε raises a
row-locating :class:`ValueError` at the entry point — not as a wrong
answer deep in the grid layer, where a NaN silently falls out of every
comparison.
"""

from __future__ import annotations

import numpy as np

from repro.util.arrays import as_points_array, check_epsilon

__all__ = ["validate_inputs"]


def validate_inputs(
    *datasets,
    epsilon: float,
    names: tuple[str, ...] | None = None,
) -> tuple:
    """Validate join inputs; returns the canonical arrays plus ``epsilon``.

    ``epsilon`` is checked first (positive, finite), then each dataset is
    coerced to the canonical float64 (n, d) array with the NaN/inf check
    of :func:`~repro.util.arrays.as_points_array` — whose message locates
    the first offending row. ``names`` labels the datasets in that
    message (e.g. ``("left", "right")`` for a bipartite join), so the
    caller learns *which* input is broken, not just which row.

    Returns ``(*arrays, epsilon)`` in argument order.
    """
    check_epsilon(epsilon)
    arrays: list[np.ndarray] = []
    for i, data in enumerate(datasets):
        try:
            arrays.append(as_points_array(data))
        except ValueError as err:
            if names is not None and i < len(names):
                raise ValueError(f"{names[i]}: {err}") from None
            raise
    return (*arrays, float(epsilon))

"""The public self-join facade: compile a plan, hand it to the runner.

:class:`SelfJoin` no longer owns execution logic — it validates input,
builds the ε-grid index, compiles a declarative
:class:`~repro.runtime.plan.JoinPlan` (estimate → batch plan → launches →
merge) from its :class:`~repro.runtime.config.RuntimeConfig`, and hands
the plan to the one :class:`~repro.runtime.runner.Runner`:

1. build the ε-grid index;
2. if SORTBYWL / WORKQUEUE: quantify workloads and produce D';
3. estimate the result size (strided sample, or head-of-D' for WORKQUEUE)
   and derive the batch plan;
4. launch one kernel per batch on the VM — FIFO issue order when the
   work-queue forces most-work-first, a seeded random order otherwise (the
   hardware scheduler guarantees nothing);
5. feed per-batch kernel and transfer durations through the 3-stream
   pipeline model for the end-to-end simulated response time.

If a batch overflows its result buffer (the estimator under-guessed), the
run is re-planned with a doubled estimate — the same recovery a production
implementation needs, and a tested code path here.

:meth:`SelfJoin.execute_on_index` can run any *subset* of the query points
against a prebuilt index on any executor. :mod:`repro.multigpu` compiles
pooled plans over exactly the same runtime.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import OptimizationConfig
from repro.core.executor import BatchExecutor
from repro.core.result import JoinResult
from repro.core.validation import validate_inputs
from repro.grid import GridIndex
from repro.runtime.config import RuntimeConfig, _split_config
from repro.runtime.plan import compile_self_join
from repro.runtime.runner import Runner
from repro.simt import CostParams, DeviceSpec

__all__ = ["SelfJoin"]


class SelfJoin:
    """Distance-similarity self-join on the simulated GPU.

    Parameters
    ----------
    config:
        The optimization selection; defaults to the GPUCALCGLOBAL
        baseline. A full :class:`~repro.runtime.config.RuntimeConfig` is
        also accepted here (or via ``runtime=``), carrying every
        execution knob in one value.
    runtime:
        Explicit :class:`~repro.runtime.config.RuntimeConfig`; mutually
        exclusive with passing one as ``config``.
    device, costs:
        Simulated hardware; defaults match the paper's testbed class.
    include_self:
        Whether each point joins with itself (``dist = 0 <= eps``).
    seed:
        Seed for the hardware scheduler's issue-order shuffle (only used
        when the work-queue is off).
    replay_mode:
        Warp replay fidelity: ``"aggregate"`` (region-boundary
        reconvergence; matches the analytic model) or ``"lockstep"``
        (event-by-event divergence serialization; slower-or-equal warp
        times, see :mod:`repro.simt.warp`).
    estimate_safety_z:
        Pad the result-size estimate by this many standard errors of the
        sampled total before planning batches (0 = trust the point
        estimate, the paper's behaviour). A caller that cannot afford an
        overflow re-plan sizes its margin here instead of hoping the
        sample was representative.
    """

    def __init__(
        self,
        config: OptimizationConfig | RuntimeConfig | None = None,
        *,
        runtime: RuntimeConfig | None = None,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        include_self: bool = True,
        seed: int = 0,
        replay_mode: str = "aggregate",
        estimate_safety_z: float = 0.0,
    ):
        config, runtime = _split_config(config, runtime, "SelfJoin")
        if runtime is None:
            runtime = RuntimeConfig(
                optimization=config if config is not None else OptimizationConfig(),
                replay_mode=replay_mode,
                seed=seed,
                include_self=include_self,
                estimate_safety_z=estimate_safety_z,
                device=device,
                costs=costs,
            )
        elif config is not None:
            runtime = runtime.with_(optimization=config)
        self.runtime = runtime

    # -- legacy attribute spellings ------------------------------------
    @property
    def config(self) -> OptimizationConfig:
        return self.runtime.optimization

    @property
    def device(self) -> DeviceSpec:
        return self.runtime.device if self.runtime.device is not None else DeviceSpec()

    @property
    def costs(self) -> CostParams:
        return self.runtime.costs if self.runtime.costs is not None else CostParams()

    @property
    def include_self(self) -> bool:
        return self.runtime.include_self

    @property
    def seed(self) -> int:
        return self.runtime.seed

    @property
    def replay_mode(self) -> str:
        return self.runtime.replay_mode

    @property
    def engine(self) -> str:
        return self.runtime.engine

    @property
    def estimate_safety_z(self) -> float:
        return self.runtime.estimate_safety_z

    # ------------------------------------------------------------------
    def execute(self, points, epsilon: float) -> JoinResult:
        """Run the self-join; returns exact pairs plus simulated metrics.

        Input is validated at the entry point: non-finite coordinates and
        non-positive or non-finite ``epsilon`` raise :class:`ValueError`
        here, not as a wrong answer deep in the grid layer.
        """
        points, epsilon = validate_inputs(points, epsilon=epsilon)
        index = GridIndex(points, epsilon)
        return self.execute_on_index(index)

    def execute_on_index(
        self,
        index: GridIndex,
        *,
        subset: np.ndarray | None = None,
        executor: BatchExecutor | None = None,
    ) -> JoinResult:
        """Run the join over a prebuilt index, optionally for a query subset.

        ``subset`` restricts the *query* side to the given point ids — the
        candidate side always sees the whole index, so the result is exactly
        the full join's rows whose query point lies in the subset. The
        sorted order D', the result-size estimate and the batch plan are all
        computed for the subset alone; WORKQUEUE state (the atomic counter
        over the subset's D' slice) is private to this call.
        """
        plan = self.compile(index, subset=subset)
        return Runner(executor=executor, pool=None).run(plan)

    def compile(self, index: GridIndex, *, subset: np.ndarray | None = None):
        """Compile this facade's :class:`~repro.runtime.plan.JoinPlan`."""
        return compile_self_join(index, self.runtime, subset=subset)

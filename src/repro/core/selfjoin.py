"""The public self-join facade: plan batches, run kernels, collect results.

:class:`SelfJoin` wires together the grid index, the optimization config,
the batching scheme and the SIMT machine:

1. build the ε-grid index;
2. if SORTBYWL / WORKQUEUE: quantify workloads and produce D';
3. estimate the result size (strided sample, or head-of-D' for WORKQUEUE)
   and derive the batch plan;
4. launch one kernel per batch on the VM — FIFO issue order when the
   work-queue forces most-work-first, a seeded random order otherwise (the
   hardware scheduler guarantees nothing);
5. feed per-batch kernel and transfer durations through the 3-stream
   pipeline model for the end-to-end simulated response time.

If a batch overflows its result buffer (the estimator under-guessed), the
run is re-planned with a doubled estimate — the same recovery a production
implementation needs, and a tested code path here.

Execution is delegated through the :class:`~repro.core.executor.BatchExecutor`
seam: the planning above is device-independent, and
:meth:`SelfJoin.execute_on_index` can run any *subset* of the query points
against a prebuilt index on any executor. :mod:`repro.multigpu` uses exactly
this entry point to run shards of one join on a pool of devices.
"""

from __future__ import annotations

import numpy as np

from repro.core.batching import (
    estimate_result_size_detailed,
    plan_batches,
    plan_batches_balanced,
)
from repro.core.config import OptimizationConfig
from repro.core.executor import BatchExecutor, DeviceExecutor
from repro.core.kernels import KernelArgs, selfjoin_kernel
from repro.core.result import JoinResult
from repro.core.sortbywl import point_workloads, sort_by_workload
from repro.grid import GridIndex
from repro.simt import (
    AtomicCounter,
    BufferOverflowError,
    CostParams,
    DeviceSpec,
)
from repro.util import as_points_array, check_epsilon

__all__ = ["SelfJoin"]

_MAX_REPLANS = 8


class SelfJoin:
    """Distance-similarity self-join on the simulated GPU.

    Parameters
    ----------
    config:
        The optimization selection; defaults to the GPUCALCGLOBAL baseline.
    device, costs:
        Simulated hardware; defaults match the paper's testbed class.
        Ignored when an explicit ``executor`` is supplied.
    include_self:
        Whether each point joins with itself (``dist = 0 <= eps``).
    seed:
        Seed for the hardware scheduler's issue-order shuffle (only used
        when the work-queue is off).
    replay_mode:
        Warp replay fidelity: ``"aggregate"`` (region-boundary
        reconvergence; matches the analytic model) or ``"lockstep"``
        (event-by-event divergence serialization; slower-or-equal warp
        times, see :mod:`repro.simt.warp`).
    engine:
        Kernel execution engine: ``"interpreted"`` (thread-at-a-time
        reference) or ``"vectorized"`` (the bulk-lane fast path, identical
        results — see :mod:`repro.simt.vectorized`). Ignored when an
        explicit ``executor`` is supplied.
    executor:
        Optional :class:`~repro.core.executor.BatchExecutor` that runs the
        planned batches; defaults to a single
        :class:`~repro.core.executor.DeviceExecutor` over ``device``.
    estimate_safety_z:
        Pad the result-size estimate by this many standard errors of the
        sampled total before planning batches (0 = trust the point
        estimate, the paper's behaviour). A caller that cannot afford an
        overflow re-plan sizes its margin here instead of hoping the
        sample was representative.
    """

    def __init__(
        self,
        config: OptimizationConfig | None = None,
        *,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        include_self: bool = True,
        seed: int = 0,
        replay_mode: str = "aggregate",
        engine: str = "interpreted",
        executor: BatchExecutor | None = None,
        estimate_safety_z: float = 0.0,
    ):
        if estimate_safety_z < 0:
            raise ValueError("estimate_safety_z must be >= 0")
        self.config = config if config is not None else OptimizationConfig()
        self.device = device if device is not None else DeviceSpec()
        self.costs = costs if costs is not None else CostParams()
        self.include_self = include_self
        self.seed = seed
        self.replay_mode = replay_mode
        self.engine = engine
        self.executor = executor
        self.estimate_safety_z = estimate_safety_z

    # ------------------------------------------------------------------
    def execute(self, points, epsilon: float) -> JoinResult:
        """Run the self-join; returns exact pairs plus simulated metrics.

        Input is validated at the entry point: non-finite coordinates and
        non-positive or non-finite ``epsilon`` raise :class:`ValueError`
        here, not as a wrong answer deep in the grid layer.
        """
        check_epsilon(epsilon)
        points = as_points_array(points)
        index = GridIndex(points, epsilon)
        return self.execute_on_index(index)

    def execute_on_index(
        self,
        index: GridIndex,
        *,
        subset: np.ndarray | None = None,
        executor: BatchExecutor | None = None,
    ) -> JoinResult:
        """Run the join over a prebuilt index, optionally for a query subset.

        ``subset`` restricts the *query* side to the given point ids — the
        candidate side always sees the whole index, so the result is exactly
        the full join's rows whose query point lies in the subset. The
        sorted order D', the result-size estimate and the batch plan are all
        computed for the subset alone; WORKQUEUE state (the atomic counter
        over the subset's D' slice) is private to this call.
        """
        cfg = self.config
        executor = executor if executor is not None else self._default_executor()

        if cfg.uses_sorted_points:
            order = sort_by_workload(index, cfg.pattern)
            if subset is not None:
                keep = np.zeros(index.num_points, dtype=bool)
                keep[np.asarray(subset, dtype=np.int64)] = True
                order = order[keep[order]]  # D' restricted, rank order kept
        elif subset is not None:
            order = np.asarray(subset, dtype=np.int64)
        else:
            order = np.arange(index.num_points, dtype=np.int64)

        detailed = estimate_result_size_detailed(
            index,
            sample_fraction=cfg.sample_fraction,
            mode="head" if cfg.work_queue else "strided",
            order=order if cfg.work_queue else None,
            include_self=self.include_self,
            subset=subset,
        )
        est = (
            detailed.with_margin(self.estimate_safety_z)
            if self.estimate_safety_z > 0
            else detailed.estimate
        )

        weights = (
            point_workloads(index, cfg.pattern)[order].astype(float)
            if cfg.balanced_batches
            else None
        )
        for attempt in range(_MAX_REPLANS):
            if cfg.balanced_batches:
                plan = plan_batches_balanced(
                    order, weights, est, cfg.batch_result_capacity
                )
            else:
                plan = plan_batches(
                    order,
                    est,
                    cfg.batch_result_capacity,
                    strided=not cfg.work_queue,
                )
            try:
                return self._run_plan(index, order, plan, executor)
            except BufferOverflowError:
                # estimator under-guessed; double and re-plan
                est = max(est * 2, cfg.batch_result_capacity + 1)
        raise RuntimeError(
            f"batch planning failed to converge after {_MAX_REPLANS} attempts"
        )

    # ------------------------------------------------------------------
    def _default_executor(self) -> BatchExecutor:
        if self.executor is not None:
            return self.executor
        return DeviceExecutor(
            self.device,
            self.costs,
            seed=self.seed,
            replay_mode=self.replay_mode,
            engine=self.engine,
        )

    def _run_plan(
        self,
        index: GridIndex,
        order: np.ndarray,
        plan,
        executor: BatchExecutor,
    ) -> JoinResult:
        cfg = self.config
        counter = AtomicCounter(name="workqueue") if cfg.work_queue else None

        def make_args(batch: np.ndarray) -> KernelArgs:
            return KernelArgs(
                index=index,
                batch=batch,
                k=cfg.k,
                pattern=cfg.pattern,
                include_self=self.include_self,
                queue_counter=counter,
                queue_order=order if cfg.work_queue else None,
            )

        outcome = executor.run_batches(
            selfjoin_kernel,
            plan.batches,
            make_args,
            result_capacity=cfg.batch_result_capacity,
            num_streams=cfg.num_streams,
            issue_order="fifo" if cfg.work_queue else "random",
            coop_groups=cfg.work_queue and cfg.k > 1,
        )
        return JoinResult(
            pairs=outcome.merged_pairs(),
            epsilon=index.epsilon,
            num_points=len(order),
            batch_stats=outcome.batch_stats,
            pipeline=outcome.pipeline,
            config_description=cfg.describe(),
            overflow_retries=outcome.num_overflow_retries,
            overflow_wasted_seconds=outcome.overflow_wasted_seconds,
        )

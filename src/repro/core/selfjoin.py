"""The public self-join facade: plan batches, run kernels, collect results.

:class:`SelfJoin` wires together the grid index, the optimization config,
the batching scheme and the SIMT machine:

1. build the ε-grid index;
2. if SORTBYWL / WORKQUEUE: quantify workloads and produce D';
3. estimate the result size (strided sample, or head-of-D' for WORKQUEUE)
   and derive the batch plan;
4. launch one kernel per batch on the VM — FIFO issue order when the
   work-queue forces most-work-first, a seeded random order otherwise (the
   hardware scheduler guarantees nothing);
5. feed per-batch kernel and transfer durations through the 3-stream
   pipeline model for the end-to-end simulated response time.

If a batch overflows its result buffer (the estimator under-guessed), the
run is re-planned with a doubled estimate — the same recovery a production
implementation needs, and a tested code path here.
"""

from __future__ import annotations

import numpy as np

from repro.core.batching import (
    estimate_result_size,
    plan_batches,
    plan_batches_balanced,
)
from repro.core.config import OptimizationConfig
from repro.core.kernels import KernelArgs, selfjoin_kernel
from repro.core.result import JoinResult
from repro.core.sortbywl import point_workloads, sort_by_workload
from repro.grid import GridIndex
from repro.simt import (
    AtomicCounter,
    BufferOverflowError,
    CostParams,
    DeviceSpec,
    GpuMachine,
    ResultBuffer,
)
from repro.simt.streams import simulate_stream_pipeline
from repro.util import check_epsilon

__all__ = ["SelfJoin"]

_PAIR_BYTES = 16
_MAX_REPLANS = 8


class SelfJoin:
    """Distance-similarity self-join on the simulated GPU.

    Parameters
    ----------
    config:
        The optimization selection; defaults to the GPUCALCGLOBAL baseline.
    device, costs:
        Simulated hardware; defaults match the paper's testbed class.
    include_self:
        Whether each point joins with itself (``dist = 0 <= eps``).
    seed:
        Seed for the hardware scheduler's issue-order shuffle (only used
        when the work-queue is off).
    replay_mode:
        Warp replay fidelity: ``"aggregate"`` (region-boundary
        reconvergence; matches the analytic model) or ``"lockstep"``
        (event-by-event divergence serialization; slower-or-equal warp
        times, see :mod:`repro.simt.warp`).
    """

    def __init__(
        self,
        config: OptimizationConfig | None = None,
        *,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        include_self: bool = True,
        seed: int = 0,
        replay_mode: str = "aggregate",
    ):
        self.config = config if config is not None else OptimizationConfig()
        self.device = device if device is not None else DeviceSpec()
        self.costs = costs if costs is not None else CostParams()
        self.include_self = include_self
        self.seed = seed
        self.replay_mode = replay_mode

    # ------------------------------------------------------------------
    def execute(self, points, epsilon: float) -> JoinResult:
        """Run the self-join; returns exact pairs plus simulated metrics."""
        check_epsilon(epsilon)
        index = GridIndex(points, epsilon)
        cfg = self.config

        if cfg.uses_sorted_points:
            order = sort_by_workload(index, cfg.pattern)
        else:
            order = np.arange(index.num_points, dtype=np.int64)

        est = estimate_result_size(
            index,
            sample_fraction=cfg.sample_fraction,
            mode="head" if cfg.work_queue else "strided",
            order=order if cfg.work_queue else None,
            include_self=self.include_self,
        )

        weights = (
            point_workloads(index, cfg.pattern)[order].astype(float)
            if cfg.balanced_batches
            else None
        )
        for attempt in range(_MAX_REPLANS):
            if cfg.balanced_batches:
                plan = plan_batches_balanced(
                    order, weights, est, cfg.batch_result_capacity
                )
            else:
                plan = plan_batches(
                    order,
                    est,
                    cfg.batch_result_capacity,
                    strided=not cfg.work_queue,
                )
            try:
                return self._run_plan(index, order, plan)
            except BufferOverflowError:
                # estimator under-guessed; double and re-plan
                est = max(est * 2, cfg.batch_result_capacity + 1)
        raise RuntimeError(
            f"batch planning failed to converge after {_MAX_REPLANS} attempts"
        )

    # ------------------------------------------------------------------
    def _machine(self) -> GpuMachine:
        issue = "fifo" if self.config.work_queue else "random"
        return GpuMachine(
            self.device,
            self.costs,
            issue_order=issue,
            seed=self.seed,
            replay_mode=self.replay_mode,
        )

    def _run_plan(self, index: GridIndex, order: np.ndarray, plan) -> JoinResult:
        cfg = self.config
        machine = self._machine()
        counter = AtomicCounter(name="workqueue") if cfg.work_queue else None

        all_pairs: list[np.ndarray] = []
        batch_stats = []
        kernel_secs: list[float] = []
        transfer_secs: list[float] = []
        for batch in plan.batches:
            args = KernelArgs(
                index=index,
                batch=batch,
                k=cfg.k,
                pattern=cfg.pattern,
                include_self=self.include_self,
                queue_counter=counter,
                queue_order=order if cfg.work_queue else None,
            )
            buffer = ResultBuffer(cfg.batch_result_capacity)
            stats = machine.launch(
                selfjoin_kernel,
                args.num_threads,
                args,
                result_buffer=buffer,
                coop_groups=cfg.work_queue and cfg.k > 1,
            )
            pairs = buffer.drain()
            all_pairs.append(pairs)
            batch_stats.append(stats)
            kernel_secs.append(stats.seconds)
            transfer_secs.append(len(pairs) * _PAIR_BYTES / self.device.pcie_bandwidth)

        pipeline = simulate_stream_pipeline(
            kernel_secs, transfer_secs, num_streams=cfg.num_streams
        )
        pairs = (
            np.concatenate(all_pairs, axis=0)
            if all_pairs
            else np.empty((0, 2), dtype=np.int64)
        )
        return JoinResult(
            pairs=pairs,
            epsilon=index.epsilon,
            num_points=index.num_points,
            batch_stats=batch_stats,
            pipeline=pipeline,
            config_description=cfg.describe(),
        )

"""Workload quantification and the SORTBYWL optimization (Section III-C).

The workload of a query point is the number of candidate distance
computations it must perform — its own cell's population plus the population
of every pattern cell it visits. All points of one cell share the same
workload, so quantification is per *cell* (as in the paper, which sorts by
the per-cell neighbor population) and broadcast to points.

:func:`sort_by_workload` produces the reordered array D' used by both
SORTBYWL and WORKQUEUE: points grouped by cell, cells in non-increasing
workload order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.patterns import pattern_offset_selector
from repro.grid import GridIndex, neighbor_offsets, neighbor_ranks_for_offset
from repro.util import gather_slices, stable_argsort_desc

__all__ = [
    "WorkloadComponents",
    "cell_workloads",
    "pattern_workload_components",
    "point_workloads",
    "sort_by_workload",
]


@dataclass(frozen=True)
class WorkloadComponents:
    """Per-non-empty-cell workload ingredients under one access pattern.

    Attributes
    ----------
    thread_candidates:
        Shape ``(k, num_cells)``: distance computations performed by thread
        rank ``r`` of a query point in each cell, under the strided
        candidate split of Section III-A (row 0 is the heaviest share;
        ``k = 1`` makes row 0 the full per-point workload).
    visited_cells:
        Cells probed per query point (own cell plus *in-bounds* pattern
        offsets — probing an empty cell still costs the binary search).
        Every one of the k threads pays this in full.
    """

    thread_candidates: np.ndarray
    visited_cells: np.ndarray

    @property
    def candidates(self) -> np.ndarray:
        """Total distance computations per query point of each cell."""
        return self.thread_candidates.sum(axis=0)


def pattern_workload_components(
    index: GridIndex, pattern: str, k: int = 1
) -> WorkloadComponents:
    """Vectorized workload ingredients for every non-empty cell.

    Streams the 3**n neighbor offsets (memory O(k·cells), not
    O(cells·3**n)). The per-cell strided split is applied cell by cell —
    thread r's share of a cell with ``c`` candidates is
    ``len(candidates[r::k])`` — exactly what the kernel does.
    """
    from repro.core.granularity import thread_share_counts

    num_cells = index.num_nonempty_cells
    counts = index.cell_counts.astype(np.int64)
    cand = thread_share_counts(counts, k)  # own cell, all patterns
    visited = np.ones(num_cells, dtype=np.int64)  # own cell

    offs = neighbor_offsets(index.ndim)
    zero_idx = len(offs) // 2
    selector = pattern_offset_selector(pattern, index)
    for oi, off in enumerate(offs):
        if oi == zero_idx:
            continue
        mask = selector(oi)
        if not mask.any():
            continue
        in_bounds = index.spec.in_bounds(index.cell_coords_arr + off)
        probe = mask & in_bounds
        visited += probe
        ranks = neighbor_ranks_for_offset(index, off)
        hit = probe & (ranks >= 0)
        cand[:, hit] += thread_share_counts(counts[ranks[hit]], k)
    return WorkloadComponents(thread_candidates=cand, visited_cells=visited)


def cell_workloads(index: GridIndex, pattern: str = "full") -> np.ndarray:
    """Distance computations per query point, for each non-empty cell."""
    return pattern_workload_components(index, pattern).candidates


def point_workloads(index: GridIndex, pattern: str = "full") -> np.ndarray:
    """Per-point workload: the point's cell workload, point-indexed."""
    return cell_workloads(index, pattern)[index.point_cell_rank]


def sort_by_workload(index: GridIndex, pattern: str = "full") -> np.ndarray:
    """The SORTBYWL permutation: point indices of D' (most work first).

    Cells are ordered by non-increasing per-point workload (stable, so equal
    cells keep index order); points stay grouped by cell.
    """
    wl = cell_workloads(index, pattern)
    cell_order = stable_argsort_desc(wl)
    return gather_slices(
        index.point_order,
        index.cell_starts[cell_order],
        index.cell_counts[cell_order],
    )

"""The WORKQUEUE (Section III-D): queue-fetch protocol and host-side state.

The queue is "the equivalent of the head of a queue": a global counter over
the workload-sorted array D', persistent across all kernel invocations
(batches). Each query's thread group advances it once by an atomic add —
with ``k > 1``, via a cooperative group where only the leader performs the
atomic and shuffles the slot to the other members.

Because warps are issued in order and each fetch hands out the next-heaviest
query point, warps end up packed with similar workloads *and* executed from
most to least work — the two halves of the optimization.
"""

from __future__ import annotations

import numpy as np

from repro.simt import AtomicCounter, ThreadContext

__all__ = ["WorkQueue", "fetch_query_slot"]


def fetch_query_slot(ctx: ThreadContext, k: int, counter: AtomicCounter) -> int:
    """Device-side queue fetch for one thread.

    Returns the slot (index into D') this thread's group will process. Every
    thread of the group must call this; with ``k > 1`` the group leader pays
    the atomic and the rest pay a shuffle.
    """
    if k > 1:
        group = ctx.coop_group(k)
        return group.leader_fetch_add(ctx, counter)
    return ctx.atomic_add(counter)


class WorkQueue:
    """Host-side handle: the persistent counter plus the sorted order D'."""

    def __init__(self, order: np.ndarray):
        self.order = np.asarray(order, dtype=np.int64)
        self.counter = AtomicCounter(name="workqueue")

    @property
    def drained(self) -> bool:
        """True once every slot has been handed out."""
        return self.counter.value >= len(self.order)

    @property
    def remaining(self) -> int:
        return max(0, len(self.order) - self.counter.value)

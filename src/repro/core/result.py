"""Join results: exact pairs plus simulated execution statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simt import KernelStats
from repro.simt.streams import PipelineResult

__all__ = ["JoinResult"]


@dataclass(frozen=True)
class JoinResult:
    """Outcome of a simulated self-join execution.

    ``pairs`` is the exact ordered result set: every ``(i, j)`` with
    ``dist(p_i, p_j) <= eps`` (including ``(i, i)`` unless the join was run
    with ``include_self=False``). Times are simulated device seconds.
    """

    pairs: np.ndarray
    epsilon: float
    num_points: int
    batch_stats: list[KernelStats] = field(repr=False)
    pipeline: PipelineResult = field(repr=False)
    config_description: str = ""
    #: batch-level overflow recoveries (executor ``"retry"`` policy): failed
    #: launch attempts and the simulated time they wasted, already included
    #: in the pipeline's ``total_seconds``.
    overflow_retries: int = 0
    overflow_wasted_seconds: float = 0.0
    #: per-batch pair blocks in buffer order (their concatenation equals
    #: ``pairs``), kept by the runner for streaming consumption; ``None``
    #: when retention was turned off or the pairs were re-ordered by a
    #: multi-device merge.
    fragments: tuple[np.ndarray, ...] | None = field(default=None, repr=False)
    #: simulation fidelity of the execution statistics: ``"simulated"``
    #: when the pairs came through the SIMT machine (cycle-accurate
    #: ``batch_stats``, WEE, warp replay), ``"none"`` for the native array
    #: engine — the pair *set* is exact either way, but a ``"none"`` result
    #: carries no warp/cycle accounting and its times are host wall-clock.
    fidelity: str = "simulated"

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    @property
    def num_batches(self) -> int:
        return len(self.batch_stats)

    @property
    def total_seconds(self) -> float:
        """End-to-end simulated response time (kernels + exposed transfers)."""
        return self.pipeline.total_seconds

    @property
    def kernel_seconds(self) -> float:
        """Kernel-only simulated time, summed over batches."""
        return float(sum(s.seconds for s in self.batch_stats))

    @property
    def warp_execution_efficiency(self) -> float:
        """Cycle-weighted WEE across every warp of every batch (the
        profiler metric of Tables III–VI)."""
        active = 0.0
        busy = 0.0
        warp_size = 32
        for stats in self.batch_stats:
            for w in stats.warp_stats:
                active += w.active_cycles
                busy += w.warp_cycles
                warp_size = w.warp_size
        if busy == 0:
            return 1.0
        return active / (warp_size * busy)

    @property
    def selectivity(self) -> float:
        """Average result rows per query point."""
        if self.num_points == 0:
            return 0.0
        return self.num_pairs / self.num_points

    def neighbor_lists(self) -> dict[int, np.ndarray]:
        """Result set grouped by query point: ``{i: sorted neighbor ids}``."""
        out: dict[int, np.ndarray] = {}
        if self.num_pairs == 0:
            return out
        order = np.lexsort((self.pairs[:, 1], self.pairs[:, 0]))
        sorted_pairs = self.pairs[order]
        qs, starts = np.unique(sorted_pairs[:, 0], return_index=True)
        bounds = np.append(starts, len(sorted_pairs))
        for q, a, b in zip(qs, bounds[:-1], bounds[1:]):
            out[int(q)] = sorted_pairs[a:b, 1]
        return out

    def iter_pairs(self, chunk: int | None = None):
        """Yield the result pairs in blocks, without copying the whole set.

        Backed by the per-batch ``fragments`` when the runner kept them
        (single-device runs), falling back to views of ``pairs`` otherwise
        — either way the concatenation of every yielded block equals
        ``pairs`` exactly, rows in the same order.

        Without ``chunk``, blocks are the natural fragments (empty ones
        skipped). With ``chunk``, blocks hold exactly ``chunk`` rows apiece
        (the last one short), re-slicing across fragment boundaries.
        """
        blocks = self.fragments if self.fragments is not None else (self.pairs,)
        if chunk is None:
            for block in blocks:
                if len(block):
                    yield block
            return
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        pending: list[np.ndarray] = []
        have = 0
        for block in blocks:
            while len(block):
                take = min(chunk - have, len(block))
                pending.append(block[:take])
                have += take
                block = block[take:]
                if have == chunk:
                    yield pending[0] if len(pending) == 1 else np.concatenate(pending)
                    pending, have = [], 0
        if have:
            yield pending[0] if len(pending) == 1 else np.concatenate(pending)

    def sorted_pairs(self) -> np.ndarray:
        """Pairs in lexicographic order — canonical form for comparisons."""
        if self.num_pairs == 0:
            return self.pairs
        order = np.lexsort((self.pairs[:, 1], self.pairs[:, 0]))
        return self.pairs[order]

    def canonical_pairs(self) -> np.ndarray:
        """The result set in a stable lexicographic order.

        Engines and shard layouts emit pairs in different buffer orders;
        two results answer the same join iff their canonical forms are
        array-equal. This is the comparison form used by the cross-engine
        equivalence tests and the ``native`` bench suite.
        """
        return self.sorted_pairs()

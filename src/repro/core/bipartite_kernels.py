"""Device-side kernels of the bipartite similarity join A ⋈_ε B.

The self-join's kernels live in :mod:`repro.core.kernels`; these are their
bipartite counterparts, split out of the facade module so the runtime's
operation strategies (:mod:`repro.runtime.ops`) can import them without
pulling in facade code:

- the ε-grid indexes the inner dataset B; queries come from A;
- the unidirectional patterns do **not** apply (they exploit the symmetry
  of the self-join's duplicate work, which a bipartite join does not
  have), so the access pattern is always the full ≤3**n probe;
- k-granularity, SORTBYWL and the WORKQUEUE carry over unchanged.

Result pairs are ``(a_index, b_index)`` — one direction only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.granularity import split_candidates
from repro.core.kernels import BulkEmitter, resolve_bulk_queries
from repro.core.workqueue import fetch_query_slot
from repro.grid import GridIndex
from repro.grid.neighbors import neighbor_offsets
from repro.simt import AtomicCounter, ThreadContext
from repro.simt.vectorized import (
    BulkKernelResult,
    BulkLaunch,
    LabelCharges,
    register_bulk_kernel,
)
from repro.util import as_points_array

__all__ = ["BipartiteKernelArgs", "bipartite_bulk", "bipartite_kernel"]


@dataclass
class BipartiteKernelArgs:
    """Device-side arguments of one bipartite batch kernel."""

    index: GridIndex  # over B
    queries: np.ndarray  # A's coordinates
    batch: np.ndarray  # query ids this batch serves
    k: int = 1
    queue_counter: AtomicCounter | None = None
    queue_order: np.ndarray | None = None

    def __post_init__(self):
        self.queries = as_points_array(self.queries)
        self.batch = np.asarray(self.batch, dtype=np.int64)
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if (self.queue_counter is None) != (self.queue_order is None):
            raise ValueError("queue_counter and queue_order must be given together")
        self._eps2 = self.index.epsilon**2

    @property
    def uses_queue(self) -> bool:
        return self.queue_counter is not None

    @property
    def num_threads(self) -> int:
        return len(self.batch) * self.k


def bipartite_kernel(ctx: ThreadContext, args: BipartiteKernelArgs) -> None:
    """One thread of the bipartite join kernel (full pattern, external
    queries, flat k-way candidate split)."""
    k = args.k
    if ctx.tid >= args.num_threads:
        return
    if args.uses_queue:
        slot = fetch_query_slot(ctx, k, args.queue_counter)
        if slot >= len(args.queue_order):
            return
        q = int(args.queue_order[slot])
    else:
        q = int(args.batch[ctx.tid // k])
    r = ctx.tid % k

    ctx.charge_setup()
    index = args.index
    query = args.queries[q]
    coords = index.spec.cell_coords(query.reshape(1, -1), clamp=False)[0]

    offset = 0
    for off in neighbor_offsets(index.ndim):
        probe = coords + off
        if not index.spec.in_bounds(probe.reshape(1, -1))[0]:
            continue
        ctx.charge_cell_visit()
        rank = int(index.lookup(index.spec.linearize(probe.reshape(1, -1)))[0])
        if rank < 0:
            continue
        cand = index.points_in_cell(rank)
        mine, offset = split_candidates(cand, k, r, offset)
        ctx.charge_candidates(len(mine), index.ndim)
        if len(mine) == 0:
            continue
        d2 = ((index.points[mine] - query) ** 2).sum(axis=1)
        hit = mine[d2 <= args._eps2]
        if len(hit):
            qcol = np.full(len(hit), q, dtype=np.int64)
            ctx.emit_pairs(np.stack([qcol, hit], axis=1))


def bipartite_bulk(launch: BulkLaunch, args: BipartiteKernelArgs) -> BulkKernelResult:
    """Array-level evaluation of a whole :func:`bipartite_kernel` launch.

    Same contract as :func:`repro.core.kernels.selfjoin_bulk`: identical
    pairs in buffer order, identical per-thread charges, identical queue
    side effects. The bipartite probe differs from the self-join in that
    queries live outside the index — their (unclamped) cell coordinates
    may fall outside the grid, so the probe set is the full 3**n offsets
    with a per-offset bounds check rather than a
    :class:`~repro.core.patterns.PatternPlan`.
    """
    index = args.index
    k = args.k
    width = launch.num_threads
    issue_pos, n_active, groups, q_of_group, live, charges = resolve_bulk_queries(
        launch, args
    )

    lg = np.flatnonzero(live)
    qs = q_of_group[lg]

    tids = np.arange(n_active, dtype=np.int64)
    t_live = np.zeros(n_active, dtype=bool)
    if groups:
        t_live = live[tids // k]
    live_tids = tids[t_live]
    present = np.zeros(width, dtype=bool)
    present[live_tids] = True
    setup = np.zeros(width, dtype=np.float64)
    setup[present] = launch.costs.c_setup
    charges["setup"] = LabelCharges(setup, present)

    emitter = BulkEmitter(index, issue_pos, n_active, k, width, args._eps2)
    visits_of_group = np.zeros(groups, dtype=np.int64)
    if len(lg):
        q_points = args.queries[qs]
        coords = index.spec.cell_coords(q_points, clamp=False)
        flat_base = np.zeros(len(lg), dtype=np.int64)
        for oi, off in enumerate(neighbor_offsets(index.ndim)):
            probe = coords + off
            inside = index.spec.in_bounds(probe)
            visits_of_group[lg[inside]] += 1  # in-bounds probes cost a visit
            if not inside.any():
                continue
            ranks = np.full(len(lg), -1, dtype=np.int64)
            ranks[inside] = index.lookup(index.spec.linearize(probe[inside]))
            sel = np.flatnonzero(ranks >= 0)
            if not len(sel):
                continue
            emitter.process_stage(
                oi,
                lg[sel],
                qs[sel],
                q_points[sel],
                ranks[sel],
                flat_base[sel],
                mirror=False,
            )
            flat_base[sel] += index.cell_counts[ranks[sel]]

    cells = np.zeros(width, dtype=np.float64)
    cells_p = np.zeros(width, dtype=bool)
    if len(live_tids):
        visit_counts = visits_of_group[live_tids // k]
        cells[live_tids] = visit_counts * launch.costs.c_cell
        cells_p[live_tids] = visit_counts > 0
    charges["cells"] = LabelCharges(cells, cells_p)

    emitter.charge(charges, launch.costs.dist_cost(index.ndim), launch.costs.c_emit)
    return BulkKernelResult(charges=charges, pairs=emitter.pairs())


register_bulk_kernel(bipartite_kernel, bipartite_bulk)

"""The bipartite similarity join A ⋈_ε B on the simulated GPU.

The paper treats the self-join; this module generalizes the same
optimization stack to joining two different datasets — the "similarity
join" of the literature the paper builds on (and the self-join's parent
operation):

- the ε-grid indexes the inner dataset B; queries come from A;
- the unidirectional patterns do **not** apply (they exploit the symmetry
  of the self-join's duplicate work, which a bipartite join does not
  have), so the access pattern is always the full ≤3**n probe and the
  configuration must use ``pattern="full"``;
- k-granularity, SORTBYWL (sorting A's queries by quantified workload),
  the WORKQUEUE and the batching scheme all carry over unchanged.

Result pairs are ``(a_index, b_index)`` — one direction only.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batching import plan_batches, plan_batches_balanced
from repro.core.config import OptimizationConfig
from repro.core.executor import BatchExecutor, DeviceExecutor
from repro.core.granularity import split_candidates
from repro.core.kernels import BulkEmitter, resolve_bulk_queries
from repro.core.result import JoinResult
from repro.core.workqueue import fetch_query_slot
from repro.grid import GridIndex
from repro.grid.bipartite import bipartite_neighbor_counts, bipartite_workloads
from repro.grid.neighbors import neighbor_offsets
from repro.simt import (
    AtomicCounter,
    BufferOverflowError,
    CostParams,
    DeviceSpec,
    ThreadContext,
)
from repro.simt.vectorized import (
    BulkKernelResult,
    BulkLaunch,
    LabelCharges,
    register_bulk_kernel,
)
from repro.util import as_points_array, check_epsilon, stable_argsort_desc

__all__ = [
    "BipartiteKernelArgs",
    "SimilarityJoin",
    "bipartite_bulk",
    "bipartite_kernel",
]

_MAX_REPLANS = 8


@dataclass
class BipartiteKernelArgs:
    """Device-side arguments of one bipartite batch kernel."""

    index: GridIndex  # over B
    queries: np.ndarray  # A's coordinates
    batch: np.ndarray  # query ids this batch serves
    k: int = 1
    queue_counter: AtomicCounter | None = None
    queue_order: np.ndarray | None = None

    def __post_init__(self):
        self.queries = as_points_array(self.queries)
        self.batch = np.asarray(self.batch, dtype=np.int64)
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if (self.queue_counter is None) != (self.queue_order is None):
            raise ValueError("queue_counter and queue_order must be given together")
        self._eps2 = self.index.epsilon**2

    @property
    def uses_queue(self) -> bool:
        return self.queue_counter is not None

    @property
    def num_threads(self) -> int:
        return len(self.batch) * self.k


def bipartite_kernel(ctx: ThreadContext, args: BipartiteKernelArgs) -> None:
    """One thread of the bipartite join kernel (full pattern, external
    queries, flat k-way candidate split)."""
    k = args.k
    if ctx.tid >= args.num_threads:
        return
    if args.uses_queue:
        slot = fetch_query_slot(ctx, k, args.queue_counter)
        if slot >= len(args.queue_order):
            return
        q = int(args.queue_order[slot])
    else:
        q = int(args.batch[ctx.tid // k])
    r = ctx.tid % k

    ctx.charge_setup()
    index = args.index
    query = args.queries[q]
    coords = index.spec.cell_coords(query.reshape(1, -1), clamp=False)[0]

    offset = 0
    for off in neighbor_offsets(index.ndim):
        probe = coords + off
        if not index.spec.in_bounds(probe.reshape(1, -1))[0]:
            continue
        ctx.charge_cell_visit()
        rank = int(index.lookup(index.spec.linearize(probe.reshape(1, -1)))[0])
        if rank < 0:
            continue
        cand = index.points_in_cell(rank)
        mine, offset = split_candidates(cand, k, r, offset)
        ctx.charge_candidates(len(mine), index.ndim)
        if len(mine) == 0:
            continue
        d2 = ((index.points[mine] - query) ** 2).sum(axis=1)
        hit = mine[d2 <= args._eps2]
        if len(hit):
            qcol = np.full(len(hit), q, dtype=np.int64)
            ctx.emit_pairs(np.stack([qcol, hit], axis=1))


def bipartite_bulk(launch: BulkLaunch, args: BipartiteKernelArgs) -> BulkKernelResult:
    """Array-level evaluation of a whole :func:`bipartite_kernel` launch.

    Same contract as :func:`repro.core.kernels.selfjoin_bulk`: identical
    pairs in buffer order, identical per-thread charges, identical queue
    side effects. The bipartite probe differs from the self-join in that
    queries live outside the index — their (unclamped) cell coordinates
    may fall outside the grid, so the probe set is the full 3**n offsets
    with a per-offset bounds check rather than a
    :class:`~repro.core.patterns.PatternPlan`.
    """
    index = args.index
    k = args.k
    width = launch.num_threads
    issue_pos, n_active, groups, q_of_group, live, charges = resolve_bulk_queries(
        launch, args
    )

    lg = np.flatnonzero(live)
    qs = q_of_group[lg]

    tids = np.arange(n_active, dtype=np.int64)
    t_live = np.zeros(n_active, dtype=bool)
    if groups:
        t_live = live[tids // k]
    live_tids = tids[t_live]
    present = np.zeros(width, dtype=bool)
    present[live_tids] = True
    setup = np.zeros(width, dtype=np.float64)
    setup[present] = launch.costs.c_setup
    charges["setup"] = LabelCharges(setup, present)

    emitter = BulkEmitter(index, issue_pos, n_active, k, width, args._eps2)
    visits_of_group = np.zeros(groups, dtype=np.int64)
    if len(lg):
        q_points = args.queries[qs]
        coords = index.spec.cell_coords(q_points, clamp=False)
        flat_base = np.zeros(len(lg), dtype=np.int64)
        for oi, off in enumerate(neighbor_offsets(index.ndim)):
            probe = coords + off
            inside = index.spec.in_bounds(probe)
            visits_of_group[lg[inside]] += 1  # in-bounds probes cost a visit
            if not inside.any():
                continue
            ranks = np.full(len(lg), -1, dtype=np.int64)
            ranks[inside] = index.lookup(index.spec.linearize(probe[inside]))
            sel = np.flatnonzero(ranks >= 0)
            if not len(sel):
                continue
            emitter.process_stage(
                oi,
                lg[sel],
                qs[sel],
                q_points[sel],
                ranks[sel],
                flat_base[sel],
                mirror=False,
            )
            flat_base[sel] += index.cell_counts[ranks[sel]]

    cells = np.zeros(width, dtype=np.float64)
    cells_p = np.zeros(width, dtype=bool)
    if len(live_tids):
        visit_counts = visits_of_group[live_tids // k]
        cells[live_tids] = visit_counts * launch.costs.c_cell
        cells_p[live_tids] = visit_counts > 0
    charges["cells"] = LabelCharges(cells, cells_p)

    emitter.charge(charges, launch.costs.dist_cost(index.ndim), launch.costs.c_emit)
    return BulkKernelResult(charges=charges, pairs=emitter.pairs())


register_bulk_kernel(bipartite_kernel, bipartite_bulk)


class SimilarityJoin:
    """Bipartite ε-join of two datasets on the simulated GPU.

    Accepts the same :class:`OptimizationConfig` as :class:`SelfJoin`
    (``pattern`` must stay ``"full"``). ``execute(left, right, eps)``
    returns a :class:`JoinResult` whose pairs are ``(left_idx,
    right_idx)``.
    """

    def __init__(
        self,
        config: OptimizationConfig | None = None,
        *,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        seed: int = 0,
        engine: str = "interpreted",
        executor: BatchExecutor | None = None,
    ):
        self.config = config if config is not None else OptimizationConfig()
        if self.config.pattern != "full":
            raise ValueError(
                "unidirectional patterns exploit self-join symmetry; the "
                "bipartite join requires pattern='full'"
            )
        self.device = device if device is not None else DeviceSpec()
        self.costs = costs if costs is not None else CostParams()
        self.seed = seed
        self.engine = engine
        self.executor = executor

    # ------------------------------------------------------------------
    def execute(self, left, right, epsilon: float) -> JoinResult:
        """Join ``left`` against ``right``: all pairs within ``epsilon``.

        Both datasets and ``epsilon`` are validated at the entry point:
        non-finite coordinates and non-positive or non-finite thresholds
        raise :class:`ValueError` here, not as a wrong answer deep in the
        grid layer.
        """
        check_epsilon(epsilon)
        queries = as_points_array(left)
        index = GridIndex(as_points_array(right), epsilon)
        return self.execute_on_index(index, queries)

    def execute_on_index(
        self,
        index: GridIndex,
        queries: np.ndarray,
        *,
        subset: np.ndarray | None = None,
        executor: BatchExecutor | None = None,
    ) -> JoinResult:
        """Run the join over a prebuilt index of B, optionally for a subset
        of A's query ids (a shard of the full bipartite join)."""
        cfg = self.config
        queries = as_points_array(queries)
        executor = executor if executor is not None else self._default_executor()
        ids = (
            np.asarray(subset, dtype=np.int64)
            if subset is not None
            else np.arange(len(queries), dtype=np.int64)
        )

        workloads, _ = bipartite_workloads(index, queries[ids])
        if cfg.uses_sorted_points:
            order = ids[stable_argsort_desc(workloads)]
        else:
            order = ids

        est = self._estimate(index, queries, ids, order)
        weights = None
        if cfg.balanced_batches:
            by_id = np.zeros(len(queries), dtype=np.float64)
            by_id[ids] = workloads
            weights = by_id[order]

        for _ in range(_MAX_REPLANS):
            if cfg.balanced_batches:
                plan = plan_batches_balanced(
                    order, weights, est, cfg.batch_result_capacity
                )
            else:
                plan = plan_batches(
                    order, est, cfg.batch_result_capacity, strided=not cfg.work_queue
                )
            try:
                return self._run_plan(index, queries, order, plan, executor)
            except BufferOverflowError:
                est = max(est * 2, cfg.batch_result_capacity + 1)
        raise RuntimeError(
            f"batch planning failed to converge after {_MAX_REPLANS} attempts"
        )

    # ------------------------------------------------------------------
    def _default_executor(self) -> BatchExecutor:
        if self.executor is not None:
            return self.executor
        return DeviceExecutor(
            self.device, self.costs, seed=self.seed, engine=self.engine
        )

    def _estimate(self, index, queries, ids, order) -> int:
        cfg = self.config
        nq = len(ids)
        if nq == 0 or index.num_points == 0:
            return 0
        sample_size = min(nq, max(1, int(round(nq * cfg.sample_fraction))))
        if cfg.work_queue:
            sample = order[:sample_size]  # heaviest queries: overestimates
        else:
            step = max(1, nq // sample_size)
            sample = ids[::step]
        if len(sample) == 0:
            return 0
        counts = bipartite_neighbor_counts(index, queries[sample])
        return int(np.ceil(counts.sum() * (nq / len(sample))))

    def _run_plan(self, index, queries, order, plan, executor) -> JoinResult:
        cfg = self.config
        counter = AtomicCounter(name="workqueue") if cfg.work_queue else None

        def make_args(batch: np.ndarray) -> BipartiteKernelArgs:
            return BipartiteKernelArgs(
                index=index,
                queries=queries,
                batch=batch,
                k=cfg.k,
                queue_counter=counter,
                queue_order=order if cfg.work_queue else None,
            )

        outcome = executor.run_batches(
            bipartite_kernel,
            plan.batches,
            make_args,
            result_capacity=cfg.batch_result_capacity,
            num_streams=cfg.num_streams,
            issue_order="fifo" if cfg.work_queue else "random",
            coop_groups=cfg.work_queue and cfg.k > 1,
        )
        return JoinResult(
            pairs=outcome.merged_pairs(),
            epsilon=float(index.epsilon),
            num_points=len(order),
            batch_stats=outcome.batch_stats,
            pipeline=outcome.pipeline,
            config_description=f"bipartite {cfg.describe()}",
            overflow_retries=outcome.num_overflow_retries,
            overflow_wasted_seconds=outcome.overflow_wasted_seconds,
        )

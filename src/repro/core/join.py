"""The bipartite similarity join A ⋈_ε B on the simulated GPU.

The paper treats the self-join; this module generalizes the same
optimization stack to joining two different datasets — the "similarity
join" of the literature the paper builds on (and the self-join's parent
operation):

- the ε-grid indexes the inner dataset B; queries come from A;
- the unidirectional patterns do **not** apply (they exploit the symmetry
  of the self-join's duplicate work, which a bipartite join does not
  have), so the access pattern is always the full ≤3**n probe and the
  configuration must use ``pattern="full"``;
- k-granularity, SORTBYWL (sorting A's queries by quantified workload),
  the WORKQUEUE and the batching scheme all carry over unchanged.

Result pairs are ``(a_index, b_index)`` — one direction only.

The device-side kernels live in :mod:`repro.core.bipartite_kernels` (and
are re-exported here); like :class:`~repro.core.selfjoin.SelfJoin`, the
facade itself is a thin compiler: it validates input, builds B's index,
compiles a :class:`~repro.runtime.plan.JoinPlan` and hands it to the
:class:`~repro.runtime.runner.Runner`.
"""

from __future__ import annotations

import numpy as np

from repro.core.bipartite_kernels import (
    BipartiteKernelArgs,
    bipartite_bulk,
    bipartite_kernel,
)
from repro.core.config import OptimizationConfig
from repro.core.executor import BatchExecutor
from repro.core.result import JoinResult
from repro.core.validation import validate_inputs
from repro.grid import GridIndex
from repro.runtime.config import RuntimeConfig, _split_config
from repro.runtime.plan import compile_similarity_join
from repro.runtime.runner import Runner
from repro.simt import CostParams, DeviceSpec

__all__ = [
    "BipartiteKernelArgs",
    "SimilarityJoin",
    "bipartite_bulk",
    "bipartite_kernel",
]


class SimilarityJoin:
    """Bipartite ε-join of two datasets on the simulated GPU.

    Accepts the same :class:`OptimizationConfig` as :class:`SelfJoin`
    (``pattern`` must stay ``"full"``) — or a full
    :class:`~repro.runtime.config.RuntimeConfig`. ``execute(left, right,
    eps)`` returns a :class:`JoinResult` whose pairs are ``(left_idx,
    right_idx)``.
    """

    def __init__(
        self,
        config: OptimizationConfig | RuntimeConfig | None = None,
        *,
        runtime: RuntimeConfig | None = None,
        device: DeviceSpec | None = None,
        costs: CostParams | None = None,
        seed: int = 0,
    ):
        config, runtime = _split_config(config, runtime, "SimilarityJoin")
        if runtime is None:
            runtime = RuntimeConfig(
                optimization=config if config is not None else OptimizationConfig(),
                seed=seed,
                device=device,
                costs=costs,
            )
        elif config is not None:
            runtime = runtime.with_(optimization=config)
        if runtime.optimization.pattern != "full":
            raise ValueError(
                "unidirectional patterns exploit self-join symmetry; the "
                "bipartite join requires pattern='full'"
            )
        self.runtime = runtime

    # -- legacy attribute spellings ------------------------------------
    @property
    def config(self) -> OptimizationConfig:
        return self.runtime.optimization

    @property
    def device(self) -> DeviceSpec:
        return self.runtime.device if self.runtime.device is not None else DeviceSpec()

    @property
    def costs(self) -> CostParams:
        return self.runtime.costs if self.runtime.costs is not None else CostParams()

    @property
    def seed(self) -> int:
        return self.runtime.seed

    @property
    def engine(self) -> str:
        return self.runtime.engine

    # ------------------------------------------------------------------
    def execute(self, left, right, epsilon: float) -> JoinResult:
        """Join ``left`` against ``right``: all pairs within ``epsilon``.

        Both datasets and ``epsilon`` are validated at the entry point:
        non-finite coordinates and non-positive or non-finite thresholds
        raise :class:`ValueError` here — locating the offending row and
        naming the side — not as a wrong answer deep in the grid layer.
        """
        left, right, epsilon = validate_inputs(
            left, right, epsilon=epsilon, names=("left", "right")
        )
        index = GridIndex(right, epsilon)
        return self.execute_on_index(index, left)

    def execute_on_index(
        self,
        index: GridIndex,
        queries: np.ndarray,
        *,
        subset: np.ndarray | None = None,
        executor: BatchExecutor | None = None,
    ) -> JoinResult:
        """Run the join over a prebuilt index of B, optionally for a subset
        of A's query ids (a shard of the full bipartite join)."""
        plan = self.compile(index, queries, subset=subset)
        return Runner(executor=executor, pool=None).run(plan)

    def compile(
        self,
        index: GridIndex,
        queries: np.ndarray,
        *,
        subset: np.ndarray | None = None,
    ):
        """Compile this facade's :class:`~repro.runtime.plan.JoinPlan`."""
        return compile_similarity_join(index, queries, self.runtime, subset=subset)

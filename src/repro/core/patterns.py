"""Cell access patterns: FULL, UNICOMP and LID-UNICOMP.

A pattern decides, for every (origin cell, neighbor offset) pair, whether the
origin's points compare against the neighbor's points. Patterns other than
``full`` visit roughly half of the neighboring cells and *mirror* each found
pair — exploiting the symmetry of the Euclidean distance — so the emitted
pair set is identical across patterns.

- ``full``      — visit all ≤3**n adjacent cells including the origin
                  (Algorithm 1, GPUCALCGLOBAL). No mirroring: the symmetric
                  pair is produced by the other point's own thread.
- ``unicomp``   — Gowanlock & Karsin's parity pattern (Algorithm 2,
                  generalized to n dimensions): a non-zero offset δ is taken
                  iff the origin cell's coordinate is odd in the *last*
                  dimension where δ is non-zero. Odd-coordinate cells
                  compare to many neighbors, even-coordinate cells to none —
                  the imbalance the paper's Figure 2 shows.
- ``lidunicomp``— the paper's contribution (Algorithm 3): take δ iff the
                  neighbor's linear id is greater than the origin's. Linear
                  ids are affine in cell coordinates, so the selected offsets
                  are the same for *every* cell — each inner cell compares to
                  exactly (3**n - 1) / 2 neighbors (Figure 5), removing the
                  per-cell variance of UNICOMP.

Both half-patterns handle the origin cell itself the same way FULL does
(each thread scans its own cell and emits one direction), which keeps
per-thread work self-contained on the GPU.
"""

from __future__ import annotations

import numpy as np

from repro.grid import GridIndex, neighbor_offsets
from repro.grid.neighbors import offset_linear_deltas

__all__ = [
    "PATTERN_NAMES",
    "pattern_cells_for_query",
    "pattern_offset_selector",
    "unicomp_pivot_dims",
]

PATTERN_NAMES = ("full", "unicomp", "lidunicomp")


def unicomp_pivot_dims(ndim: int) -> np.ndarray:
    """For each non-zero neighbor offset, the dimension whose parity decides
    UNICOMP membership: the last dimension where the offset is non-zero.

    Returns an int array of length ``3**ndim`` with -1 at the zero offset.
    """
    offs = neighbor_offsets(ndim)
    pivot = np.full(len(offs), -1, dtype=np.int64)
    nz = offs != 0
    has_nz = nz.any(axis=1)
    # last nonzero dimension = ndim - 1 - argmax over reversed axes
    rev_first = np.argmax(nz[:, ::-1], axis=1)
    pivot[has_nz] = ndim - 1 - rev_first[has_nz]
    return pivot


def pattern_offset_selector(pattern: str, index: GridIndex):
    """Vectorized pattern membership.

    Returns ``selector(offset_idx) -> mask`` where ``mask`` is a boolean
    array over the non-empty cells saying whether each cell takes the given
    neighbor offset. The zero offset (the origin cell) is always excluded —
    callers handle the origin cell explicitly, since its comparison rule
    (one-directional emission) differs from pattern cells (mirrored
    emission).
    """
    if pattern not in PATTERN_NAMES:
        raise ValueError(f"unknown pattern {pattern!r}; expected one of {PATTERN_NAMES}")
    ndim = index.ndim
    offs = neighbor_offsets(ndim)
    num_cells = index.num_nonempty_cells
    zero_idx = len(offs) // 2

    if pattern == "full":

        def selector(offset_idx: int) -> np.ndarray:
            if offset_idx == zero_idx:
                return np.zeros(num_cells, dtype=bool)
            return np.ones(num_cells, dtype=bool)

        return selector

    if pattern == "lidunicomp":
        deltas = offset_linear_deltas(index, offs)

        def selector(offset_idx: int) -> np.ndarray:
            if deltas[offset_idx] > 0:
                return np.ones(num_cells, dtype=bool)
            return np.zeros(num_cells, dtype=bool)

        return selector

    # unicomp
    pivots = unicomp_pivot_dims(ndim)
    coords = index.cell_coords_arr

    def selector(offset_idx: int) -> np.ndarray:
        piv = pivots[offset_idx]
        if piv < 0:
            return np.zeros(num_cells, dtype=bool)
        return (coords[:, piv] & 1) == 1

    return selector


def pattern_cells_for_query(
    pattern: str, index: GridIndex, cell_rank: int
) -> tuple[np.ndarray, np.ndarray]:
    """Kernel-facing single-cell view of a pattern.

    Returns ``(visited_offsets, neighbor_ranks)`` for the origin cell
    ``cell_rank``:

    - ``visited_offsets`` — indices (into :func:`neighbor_offsets`) of the
      *in-bounds* pattern offsets the thread will probe (each probe costs a
      cell lookup even when the neighbor turns out empty);
    - ``neighbor_ranks`` — rank of the non-empty cell behind each visited
      offset, or -1 when that cell is empty.

    The origin cell itself is never included (see
    :func:`pattern_offset_selector`).
    """
    if pattern not in PATTERN_NAMES:
        raise ValueError(f"unknown pattern {pattern!r}; expected one of {PATTERN_NAMES}")
    ndim = index.ndim
    offs = neighbor_offsets(ndim)
    zero_idx = len(offs) // 2
    origin = index.cell_coords_arr[cell_rank]

    if pattern == "full":
        take = np.ones(len(offs), dtype=bool)
    elif pattern == "lidunicomp":
        take = offset_linear_deltas(index, offs) > 0
    else:  # unicomp
        pivots = unicomp_pivot_dims(ndim)
        take = np.zeros(len(offs), dtype=bool)
        valid = pivots >= 0
        take[valid] = (origin[pivots[valid]] & 1) == 1
    take[zero_idx] = False

    coords = origin + offs[take]
    inside = index.spec.in_bounds(coords)
    visited = np.flatnonzero(take)[inside]
    ranks = index.lookup(index.spec.linearize(coords[inside]))
    return visited, ranks

"""Cell access patterns: FULL, UNICOMP and LID-UNICOMP.

A pattern decides, for every (origin cell, neighbor offset) pair, whether the
origin's points compare against the neighbor's points. Patterns other than
``full`` visit roughly half of the neighboring cells and *mirror* each found
pair — exploiting the symmetry of the Euclidean distance — so the emitted
pair set is identical across patterns.

- ``full``      — visit all ≤3**n adjacent cells including the origin
                  (Algorithm 1, GPUCALCGLOBAL). No mirroring: the symmetric
                  pair is produced by the other point's own thread.
- ``unicomp``   — Gowanlock & Karsin's parity pattern (Algorithm 2,
                  generalized to n dimensions): a non-zero offset δ is taken
                  iff the origin cell's coordinate is odd in the *last*
                  dimension where δ is non-zero. Odd-coordinate cells
                  compare to many neighbors, even-coordinate cells to none —
                  the imbalance the paper's Figure 2 shows.
- ``lidunicomp``— the paper's contribution (Algorithm 3): take δ iff the
                  neighbor's linear id is greater than the origin's. Linear
                  ids are affine in cell coordinates, so the selected offsets
                  are the same for *every* cell — each inner cell compares to
                  exactly (3**n - 1) / 2 neighbors (Figure 5), removing the
                  per-cell variance of UNICOMP.

Both half-patterns handle the origin cell itself the same way FULL does
(each thread scans its own cell and emits one direction), which keeps
per-thread work self-contained on the GPU.
"""

from __future__ import annotations

import numpy as np

from repro.grid import GridIndex, neighbor_offsets
from repro.grid.neighbors import offset_linear_deltas

__all__ = [
    "PATTERN_NAMES",
    "PatternPlan",
    "get_pattern_plan",
    "pattern_cells_for_query",
    "pattern_offset_selector",
    "unicomp_pivot_dims",
]

PATTERN_NAMES = ("full", "unicomp", "lidunicomp")

#: Above this many (offset, cell) entries the plan stops retaining dense
#: per-offset visit arrays and recomputes them on demand — keeps 6-D grids
#: (3**6 = 729 offsets) from pinning hundreds of MB.
PLAN_DENSE_LIMIT = 8_000_000


def unicomp_pivot_dims(ndim: int) -> np.ndarray:
    """For each non-zero neighbor offset, the dimension whose parity decides
    UNICOMP membership: the last dimension where the offset is non-zero.

    Returns an int array of length ``3**ndim`` with -1 at the zero offset.
    """
    offs = neighbor_offsets(ndim)
    pivot = np.full(len(offs), -1, dtype=np.int64)
    nz = offs != 0
    has_nz = nz.any(axis=1)
    # last nonzero dimension = ndim - 1 - argmax over reversed axes
    rev_first = np.argmax(nz[:, ::-1], axis=1)
    pivot[has_nz] = ndim - 1 - rev_first[has_nz]
    return pivot


def pattern_offset_selector(pattern: str, index: GridIndex):
    """Vectorized pattern membership.

    Returns ``selector(offset_idx) -> mask`` where ``mask`` is a boolean
    array over the non-empty cells saying whether each cell takes the given
    neighbor offset. The zero offset (the origin cell) is always excluded —
    callers handle the origin cell explicitly, since its comparison rule
    (one-directional emission) differs from pattern cells (mirrored
    emission).
    """
    if pattern not in PATTERN_NAMES:
        raise ValueError(f"unknown pattern {pattern!r}; expected one of {PATTERN_NAMES}")
    ndim = index.ndim
    offs = neighbor_offsets(ndim)
    num_cells = index.num_nonempty_cells
    zero_idx = len(offs) // 2

    if pattern == "full":

        def selector(offset_idx: int) -> np.ndarray:
            if offset_idx == zero_idx:
                return np.zeros(num_cells, dtype=bool)
            return np.ones(num_cells, dtype=bool)

        return selector

    if pattern == "lidunicomp":
        deltas = offset_linear_deltas(index, offs)

        def selector(offset_idx: int) -> np.ndarray:
            if deltas[offset_idx] > 0:
                return np.ones(num_cells, dtype=bool)
            return np.zeros(num_cells, dtype=bool)

        return selector

    # unicomp
    pivots = unicomp_pivot_dims(ndim)
    coords = index.cell_coords_arr

    def selector(offset_idx: int) -> np.ndarray:
        piv = pivots[offset_idx]
        if piv < 0:
            return np.zeros(num_cells, dtype=bool)
        return (coords[:, piv] & 1) == 1

    return selector


class PatternPlan:
    """Memoized per-cell pattern geometry for one ``(pattern, index)`` pair.

    The kernels ask the same two questions for every thread: *which offsets
    does my cell probe* and *which non-empty cell sits behind each probe*.
    Both depend only on ``(pattern, cell_rank)``, so the plan answers them
    from caches:

    - :meth:`cells_for_rank` — the single-cell view the interpreted kernel
      consumes, computed once per origin cell;
    - :meth:`offset_visits` — the transposed, all-cells-at-once view the
      bulk engine consumes, computed once per offset (retained only while
      the dense arrays stay under :data:`PLAN_DENSE_LIMIT` entries);
    - :meth:`visited_counts` / :meth:`candidate_counts` — the per-cell
      probe and candidate totals every analytic cycle charge reduces to.

    Plans are obtained through :func:`get_pattern_plan`, which memoizes
    them on ``index.plan_cache`` so all engines (and the perf model) share
    one copy per pattern.
    """

    def __init__(self, pattern: str, index: GridIndex):
        if pattern not in PATTERN_NAMES:
            raise ValueError(
                f"unknown pattern {pattern!r}; expected one of {PATTERN_NAMES}"
            )
        self.pattern = pattern
        self.index = index
        self._offs = neighbor_offsets(index.ndim)
        self._zero_idx = len(self._offs) // 2
        self._cell_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._offset_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._visited_counts: np.ndarray | None = None
        self._candidate_counts: np.ndarray | None = None
        self._keep_dense = (
            len(self._offs) * max(index.num_nonempty_cells, 1) <= PLAN_DENSE_LIMIT
        )
        if pattern == "full":
            self._take_all = np.ones(len(self._offs), dtype=bool)
            self._take_all[self._zero_idx] = False
            self._pivots = None
        elif pattern == "lidunicomp":
            self._take_all = offset_linear_deltas(index, self._offs) > 0
            self._pivots = None
        else:  # unicomp — membership varies per cell via coordinate parity
            self._pivots = unicomp_pivot_dims(index.ndim)
            self._take_all = self._pivots >= 0
        self._offset_candidates = np.flatnonzero(self._take_all)

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable cache key: the pattern name bound to the index identity.

        Two plans fingerprint equal iff they describe the same pattern
        over byte-identical index inputs (dataset, ε, grid geometry) —
        the invariant a cross-request plan cache needs to reuse memoized
        geometry safely.
        """
        return f"{self.pattern}:{self.index.fingerprint()}"

    def pattern_offsets(self) -> np.ndarray:
        """Offset indices any cell could take under this pattern, ascending
        — the traversal order of the kernels' pattern-cell loop."""
        return self._offset_candidates

    def take_mask(self, offset_idx: int) -> np.ndarray:
        """Per-cell pattern membership of one neighbor offset (bounds not
        yet applied; the origin offset is always all-False)."""
        num_cells = self.index.num_nonempty_cells
        if not self._take_all[offset_idx]:
            return np.zeros(num_cells, dtype=bool)
        if self._pivots is None:
            return np.ones(num_cells, dtype=bool)
        piv = self._pivots[offset_idx]
        return (self.index.cell_coords_arr[:, piv] & 1) == 1

    def offset_visits(self, offset_idx: int) -> tuple[np.ndarray, np.ndarray]:
        """All-cells view of one offset: ``(visit_mask, neighbor_ranks)``.

        ``visit_mask[c]`` — cell ``c`` probes this offset (member and
        in-bounds, so it pays a cell-visit charge); ``neighbor_ranks[c]`` —
        rank of the non-empty cell behind the probe, or -1 (empty neighbor
        or no probe).
        """
        cached = self._offset_cache.get(offset_idx)
        if cached is not None:
            return cached
        index = self.index
        take = self.take_mask(offset_idx)
        visit = np.zeros(index.num_nonempty_cells, dtype=bool)
        ranks = np.full(index.num_nonempty_cells, -1, dtype=np.int64)
        if take.any():
            coords = index.cell_coords_arr[take] + self._offs[offset_idx]
            inside = index.spec.in_bounds(coords)
            visit[np.flatnonzero(take)[inside]] = True
            ranks[visit] = index.lookup(index.spec.linearize(coords[inside]))
        result = (visit, ranks)
        if self._keep_dense:
            self._offset_cache[offset_idx] = result
        return result

    def cells_for_rank(self, cell_rank: int) -> tuple[np.ndarray, np.ndarray]:
        """Single-cell view (see :func:`pattern_cells_for_query`), memoized
        per origin cell so repeated threads share one computation."""
        got = self._cell_cache.get(cell_rank)
        if got is not None:
            return got
        index = self.index
        origin = index.cell_coords_arr[cell_rank]
        take = self._take_all.copy()
        if self._pivots is not None:
            cand = self._offset_candidates
            take[cand] = (origin[self._pivots[cand]] & 1) == 1
        coords = origin + self._offs[take]
        inside = index.spec.in_bounds(coords)
        visited = np.flatnonzero(take)[inside]
        ranks = index.lookup(index.spec.linearize(coords[inside]))
        got = (visited, ranks)
        self._cell_cache[cell_rank] = got
        return got

    def visited_counts(self) -> np.ndarray:
        """Per-cell number of probed pattern offsets (origin excluded)."""
        if self._visited_counts is None:
            total = np.zeros(self.index.num_nonempty_cells, dtype=np.int64)
            for o in self._offset_candidates:
                visit, _ = self.offset_visits(int(o))
                total += visit
            self._visited_counts = total
        return self._visited_counts

    def candidate_counts(self) -> np.ndarray:
        """Per-cell candidate total: own points plus the points of every
        visited non-empty pattern neighbor."""
        if self._candidate_counts is None:
            counts = self.index.cell_counts.copy()
            for o in self._offset_candidates:
                visit, ranks = self.offset_visits(int(o))
                hit = visit & (ranks >= 0)
                counts[hit] += self.index.cell_counts[ranks[hit]]
            self._candidate_counts = counts
        return self._candidate_counts


def get_pattern_plan(pattern: str, index: GridIndex) -> PatternPlan:
    """The memoized :class:`PatternPlan` for ``(pattern, index)``."""
    plan = index.plan_cache.get(pattern)
    if plan is None:
        plan = PatternPlan(pattern, index)
        index.plan_cache[pattern] = plan
    return plan


def pattern_cells_for_query(
    pattern: str, index: GridIndex, cell_rank: int
) -> tuple[np.ndarray, np.ndarray]:
    """Kernel-facing single-cell view of a pattern.

    Returns ``(visited_offsets, neighbor_ranks)`` for the origin cell
    ``cell_rank``:

    - ``visited_offsets`` — indices (into :func:`neighbor_offsets`) of the
      *in-bounds* pattern offsets the thread will probe (each probe costs a
      cell lookup even when the neighbor turns out empty);
    - ``neighbor_ranks`` — rank of the non-empty cell behind each visited
      offset, or -1 when that cell is empty.

    The origin cell itself is never included (see
    :func:`pattern_offset_selector`). Delegates to the
    :class:`PatternPlan` memoized on the index, so every thread of a batch
    pointing at the same cell shares one computation.
    """
    return get_pattern_plan(pattern, index).cells_for_rank(cell_rank)

"""The paper's contribution: load-imbalance-mitigated GPU self-join.

Composable optimizations (Section III of the paper):

- **cell access patterns** (:mod:`repro.core.patterns`) — ``full`` (the
  GPUCALCGLOBAL 3**n search), ``unicomp`` (Gowanlock & Karsin's
  parity-based unidirectional comparison) and ``lidunicomp`` (the paper's
  linear-id unidirectional comparison);
- **query granularity** ``k`` (:mod:`repro.core.granularity`) — k threads
  share one query point's candidate set;
- **SORTBYWL** (:mod:`repro.core.sortbywl`) — reorder points by quantified
  workload so warps hold similar workloads;
- **WORKQUEUE** (:mod:`repro.core.workqueue`) — an atomic-counter queue over
  the workload-sorted array, forcing most-work-first warp execution;
- the **batching scheme** (:mod:`repro.core.batching`) — result-size
  estimation by sampling and bounded per-kernel result buffers.

:class:`SelfJoin` is the public facade: configure with
:class:`OptimizationConfig` (or a named preset), call
:meth:`~repro.core.selfjoin.SelfJoin.execute`, receive a
:class:`~repro.core.result.JoinResult` carrying the exact pair set plus the
simulated profiler statistics.
"""

from repro.core.batching import (
    BatchPlan,
    ResultSizeEstimate,
    estimate_result_size,
    estimate_result_size_detailed,
    plan_batches,
    plan_batches_balanced,
)
from repro.core.config import PRESETS, OptimizationConfig
from repro.core.executor import (
    BatchExecutor,
    BatchOutcome,
    DeviceExecutor,
    OverflowRetry,
)
from repro.core.granularity import thread_share_counts
from repro.core.join import SimilarityJoin
from repro.core.patterns import (
    PATTERN_NAMES,
    pattern_cells_for_query,
    pattern_offset_selector,
)
from repro.core.result import JoinResult
from repro.core.selfjoin import SelfJoin
from repro.core.sortbywl import cell_workloads, point_workloads, sort_by_workload
from repro.core.validation import validate_inputs

__all__ = [
    "BatchExecutor",
    "BatchOutcome",
    "BatchPlan",
    "DeviceExecutor",
    "JoinResult",
    "OptimizationConfig",
    "OverflowRetry",
    "PATTERN_NAMES",
    "PRESETS",
    "ResultSizeEstimate",
    "SelfJoin",
    "SimilarityJoin",
    "cell_workloads",
    "estimate_result_size",
    "estimate_result_size_detailed",
    "pattern_cells_for_query",
    "pattern_offset_selector",
    "plan_batches",
    "plan_batches_balanced",
    "point_workloads",
    "sort_by_workload",
    "thread_share_counts",
    "validate_inputs",
]

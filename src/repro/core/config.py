"""Configuration of the self-join optimization stack.

An :class:`OptimizationConfig` selects one value along each of the paper's
four optimization axes; :data:`PRESETS` names the exact configurations the
evaluation section compares (Table II notation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["OptimizationConfig", "PRESETS"]

_VALID_PATTERNS = ("full", "unicomp", "lidunicomp")


@dataclass(frozen=True)
class OptimizationConfig:
    """One point in the paper's optimization space.

    Attributes
    ----------
    pattern:
        Cell access pattern: ``"full"`` (GPUCALCGLOBAL's 3**n search),
        ``"unicomp"`` or ``"lidunicomp"``.
    k:
        Threads per query point (Section III-A). Must divide the warp size.
    sort_by_workload:
        Apply SORTBYWL (Section III-C): points are reordered so cells with
        the most work come first.
    work_queue:
        Apply WORKQUEUE (Section III-D): point assignment through a
        persistent atomic counter over the workload-sorted array. Implies
        ``sort_by_workload``.
    balanced_batches:
        With ``work_queue``, group batches dynamically so each yields a
        similar estimated result size (the paper's Section V future-work
        direction) instead of equal point counts.
    batch_result_capacity:
        Per-kernel result buffer size bs (pairs). The paper fixes 10**8; the
        default here is scaled down with the default dataset sizes.
    num_streams:
        In-flight batches for the transfer pipeline (paper: 3).
    sample_fraction:
        Fraction of the dataset sampled by the result-size estimator
        (paper: 1 %).
    """

    pattern: str = "full"
    k: int = 1
    sort_by_workload: bool = False
    work_queue: bool = False
    balanced_batches: bool = False
    batch_result_capacity: int = 10**8
    num_streams: int = 3
    sample_fraction: float = 0.01

    def __post_init__(self):
        if self.pattern not in _VALID_PATTERNS:
            raise ValueError(
                f"pattern must be one of {_VALID_PATTERNS}, got {self.pattern!r}"
            )
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.k & (self.k - 1):
            raise ValueError("k must be a power of two so it divides the warp size")
        if self.batch_result_capacity < 1:
            raise ValueError("batch_result_capacity must be >= 1")
        if self.num_streams < 1:
            raise ValueError("num_streams must be >= 1")
        if not 0 < self.sample_fraction <= 1:
            raise ValueError("sample_fraction must be in (0, 1]")
        if self.balanced_batches and not self.work_queue:
            raise ValueError("balanced_batches requires work_queue")
        if self.work_queue and not self.sort_by_workload:
            # WORKQUEUE consumes the workload-sorted array by construction.
            object.__setattr__(self, "sort_by_workload", True)

    @property
    def uses_sorted_points(self) -> bool:
        return self.sort_by_workload or self.work_queue

    def with_(self, **changes) -> "OptimizationConfig":
        """A copy with the given fields replaced (preset refinement)."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short human-readable tag, e.g. ``lidunicomp+queue, k=8``."""
        parts = [self.pattern]
        if self.work_queue:
            parts.append("queue")
        elif self.sort_by_workload:
            parts.append("sortbywl")
        tag = "+".join(parts)
        return f"{tag}, k={self.k}"


#: The named configurations of the paper's evaluation (Table II).
PRESETS: dict[str, OptimizationConfig] = {
    # original kernel of Gowanlock & Karsin 2018 — the GPU baseline
    "gpucalcglobal": OptimizationConfig(pattern="full", k=1),
    # original cell access pattern of Gowanlock & Karsin 2018
    "unicomp": OptimizationConfig(pattern="unicomp", k=1),
    # Section III-B
    "lidunicomp": OptimizationConfig(pattern="lidunicomp", k=1),
    # Section III-A at the paper's evaluated k
    "k8": OptimizationConfig(pattern="full", k=8),
    # Section III-C
    "sortbywl": OptimizationConfig(pattern="full", sort_by_workload=True),
    # Section III-D
    "workqueue": OptimizationConfig(pattern="full", work_queue=True),
    "workqueue_lidunicomp": OptimizationConfig(pattern="lidunicomp", work_queue=True),
    "workqueue_k8": OptimizationConfig(pattern="full", work_queue=True, k=8),
    # the combination the paper's Figures 12-13 headline
    "combined": OptimizationConfig(pattern="lidunicomp", work_queue=True, k=8),
    # Section V future work: dynamically grouped batches of similar result
    # size on top of the combined optimizations
    "combined_balanced": OptimizationConfig(
        pattern="lidunicomp", work_queue=True, k=8, balanced_batches=True
    ),
}

"""Query granularity: splitting one query point's candidates over k threads.

Section III-A of the paper assigns ``k`` threads to each query point;
thread ``r`` (0 ≤ r < k) takes every k-th candidate of the query's
candidate stream — the strided split of Figure 4(b). The stride runs over
the *flat* stream formed by concatenating the candidates of all visited
cells (each thread keeps a running offset across cells), so the k shares
differ by at most one candidate in total, no matter how candidates spread
over cells — this is what makes "threads of the same query share the same
workload" hold, the property the paper's WEE gains rest on.

All k threads still *visit* every pattern cell (the traversal itself is
not divisible), which is exactly why large-k hurts when cells hold few
candidates: the per-cell overhead is duplicated k times.
"""

from __future__ import annotations

import numpy as np

__all__ = ["split_candidates", "thread_share_counts"]


def split_candidates(
    candidates: np.ndarray, k: int, r: int, offset: int = 0
) -> tuple[np.ndarray, int]:
    """Candidates of one cell assigned to thread ``r`` of ``k``.

    ``offset`` is the flat stream position at which this cell starts;
    thread ``r`` owns the flat indices ≡ r (mod k). Returns the subset and
    the offset for the next cell.
    """
    if not 0 <= r < k:
        raise ValueError(f"thread rank {r} out of range for k={k}")
    if offset < 0:
        raise ValueError("offset must be non-negative")
    start = (r - offset) % k
    return candidates[start::k], (offset + len(candidates)) % k


def thread_share_counts(cell_counts: np.ndarray, k: int) -> np.ndarray:
    """Per-thread candidate counts for each cell under the strided split.

    Given ``cell_counts`` of shape ``(...,)`` returns shape ``(k, ...)``
    where entry ``[r]`` is ``len(candidates[r::k])`` — i.e.
    ``max(0, ceil((count - r) / k))``. Thread 0 always holds the largest
    share, so the warp-max workload of a query's thread group is row 0.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    counts = np.asarray(cell_counts, dtype=np.int64)
    r = np.arange(k, dtype=np.int64).reshape((k,) + (1,) * counts.ndim)
    share = (counts - r + k - 1) // k
    return np.maximum(share, 0)

"""The self-join GPU kernels, written against the SIMT VM.

One kernel body covers the whole optimization space (the CUDA original is
likewise a single templated kernel): the :class:`KernelArgs` bundle decides
the access pattern, the thread-per-query granularity ``k``, and whether the
query point comes from the static batch mapping or the work-queue's atomic
counter. Each thread:

1. resolves its query point (static ``tid → batch`` mapping, Figure 1, or a
   cooperative-group queue fetch, Figure 8);
2. scans its own cell — one direction of emission, candidates strided over
   the ``k`` threads of the query;
3. walks the pattern's neighbor cells, refining candidates and emitting
   mirrored pairs for the half-patterns (UNICOMP / LID-UNICOMP).

All distances are actually computed: the VM kernels return the exact result
pair set while the trace records the cycle costs the performance model
reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.granularity import split_candidates
from repro.core.patterns import pattern_cells_for_query
from repro.core.workqueue import fetch_query_slot
from repro.grid import GridIndex
from repro.simt import AtomicCounter, ThreadContext

__all__ = ["KernelArgs", "selfjoin_kernel"]


@dataclass
class KernelArgs:
    """Device-side arguments of one self-join batch kernel."""

    index: GridIndex
    batch: np.ndarray  # point ids this batch serves (static mapping order)
    k: int = 1
    pattern: str = "full"
    include_self: bool = True
    # work-queue state (None => static mapping)
    queue_counter: AtomicCounter | None = None
    queue_order: np.ndarray | None = None  # D': workload-sorted point ids

    def __post_init__(self):
        self.batch = np.asarray(self.batch, dtype=np.int64)
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if (self.queue_counter is None) != (self.queue_order is None):
            raise ValueError("queue_counter and queue_order must be given together")
        self._eps2 = self.index.epsilon * self.index.epsilon

    @property
    def uses_queue(self) -> bool:
        return self.queue_counter is not None

    @property
    def num_threads(self) -> int:
        """Launch width: k threads per query point of the batch."""
        return len(self.batch) * self.k


def _refine_and_emit(
    ctx: ThreadContext,
    args: KernelArgs,
    q: int,
    candidates: np.ndarray,
    *,
    mirror: bool,
) -> None:
    """Distance-refine ``candidates`` against query ``q`` and emit hits."""
    index = args.index
    ctx.charge_candidates(len(candidates), index.ndim)
    if len(candidates) == 0:
        return
    d2 = ((index.points[candidates] - index.points[q]) ** 2).sum(axis=1)
    hit = candidates[d2 <= args._eps2]
    if not args.include_self:
        hit = hit[hit != q]
    if len(hit) == 0:
        return
    qcol = np.full(len(hit), q, dtype=np.int64)
    pairs = np.stack([qcol, hit], axis=1)
    if mirror:
        pairs = np.concatenate([pairs, pairs[:, ::-1]], axis=0)
    ctx.emit_pairs(pairs)


def selfjoin_kernel(ctx: ThreadContext, args: KernelArgs) -> None:
    """One thread of the self-join kernel (Algorithm 1, with Section III
    optimizations selected by ``args``)."""
    k = args.k
    if ctx.tid >= args.num_threads:
        return  # guard thread beyond the batch, as in Algorithm 1 line 3

    if args.uses_queue:
        # Section III-D: the query point comes from the persistent queue.
        # With k > 1 a cooperative group of k threads shares one fetch.
        slot = fetch_query_slot(ctx, k, args.queue_counter)
        if slot >= len(args.queue_order):
            return  # queue drained (tail batch)
        q = int(args.queue_order[slot])
    else:
        q = int(args.batch[ctx.tid // k])
    r = ctx.tid % k  # this thread's stride offset within the query's group

    ctx.charge_setup()
    index = args.index
    cell_rank = index.cell_of_point(q)

    # Own cell: single-direction emission (the symmetric pair is produced
    # by the candidate's own thread group). Candidates are strided over the
    # k threads along the query's *flat* candidate stream — `offset` tracks
    # the stream position across cells so the k shares stay within one
    # candidate of each other (Figure 4(b) generalized to many cells).
    offset = 0
    ctx.charge_cell_visit()
    own = index.points_in_cell(cell_rank)
    mine, offset = split_candidates(own, k, r, offset)
    _refine_and_emit(ctx, args, q, mine, mirror=False)

    # Pattern cells: mirrored emission for the half-patterns.
    mirror = args.pattern != "full"
    _, ranks = pattern_cells_for_query(args.pattern, index, cell_rank)
    for rank in ranks:
        ctx.charge_cell_visit()  # probing an empty neighbor still costs
        if rank < 0:
            continue
        cand = index.points_in_cell(int(rank))
        mine, offset = split_candidates(cand, k, r, offset)
        _refine_and_emit(ctx, args, q, mine, mirror=mirror)

"""The self-join GPU kernels, written against the SIMT VM.

One kernel body covers the whole optimization space (the CUDA original is
likewise a single templated kernel): the :class:`KernelArgs` bundle decides
the access pattern, the thread-per-query granularity ``k``, and whether the
query point comes from the static batch mapping or the work-queue's atomic
counter. Each thread:

1. resolves its query point (static ``tid → batch`` mapping, Figure 1, or a
   cooperative-group queue fetch, Figure 8);
2. scans its own cell — one direction of emission, candidates strided over
   the ``k`` threads of the query;
3. walks the pattern's neighbor cells, refining candidates and emitting
   mirrored pairs for the half-patterns (UNICOMP / LID-UNICOMP).

All distances are actually computed: the VM kernels return the exact result
pair set while the trace records the cycle costs the performance model
reasons about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.granularity import split_candidates
from repro.core.patterns import get_pattern_plan, pattern_cells_for_query
from repro.core.workqueue import fetch_query_slot
from repro.grid import GridIndex
from repro.simt import AtomicCounter, ThreadContext
from repro.simt.vectorized import (
    BulkKernelResult,
    BulkLaunch,
    LabelCharges,
    register_bulk_kernel,
)
from repro.util import gather_slices

__all__ = ["KernelArgs", "selfjoin_bulk", "selfjoin_kernel"]


@dataclass
class KernelArgs:
    """Device-side arguments of one self-join batch kernel."""

    index: GridIndex
    batch: np.ndarray  # point ids this batch serves (static mapping order)
    k: int = 1
    pattern: str = "full"
    include_self: bool = True
    # work-queue state (None => static mapping)
    queue_counter: AtomicCounter | None = None
    queue_order: np.ndarray | None = None  # D': workload-sorted point ids

    def __post_init__(self):
        self.batch = np.asarray(self.batch, dtype=np.int64)
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if (self.queue_counter is None) != (self.queue_order is None):
            raise ValueError("queue_counter and queue_order must be given together")
        self._eps2 = self.index.epsilon * self.index.epsilon

    @property
    def uses_queue(self) -> bool:
        return self.queue_counter is not None

    @property
    def num_threads(self) -> int:
        """Launch width: k threads per query point of the batch."""
        return len(self.batch) * self.k


def _refine_and_emit(
    ctx: ThreadContext,
    args: KernelArgs,
    q: int,
    candidates: np.ndarray,
    *,
    mirror: bool,
) -> None:
    """Distance-refine ``candidates`` against query ``q`` and emit hits."""
    index = args.index
    ctx.charge_candidates(len(candidates), index.ndim)
    if len(candidates) == 0:
        return
    d2 = ((index.points[candidates] - index.points[q]) ** 2).sum(axis=1)
    hit = candidates[d2 <= args._eps2]
    if not args.include_self:
        hit = hit[hit != q]
    if len(hit) == 0:
        return
    qcol = np.full(len(hit), q, dtype=np.int64)
    pairs = np.stack([qcol, hit], axis=1)
    if mirror:
        pairs = np.concatenate([pairs, pairs[:, ::-1]], axis=0)
    ctx.emit_pairs(pairs)


def selfjoin_kernel(ctx: ThreadContext, args: KernelArgs) -> None:
    """One thread of the self-join kernel (Algorithm 1, with Section III
    optimizations selected by ``args``)."""
    k = args.k
    if ctx.tid >= args.num_threads:
        return  # guard thread beyond the batch, as in Algorithm 1 line 3

    if args.uses_queue:
        # Section III-D: the query point comes from the persistent queue.
        # With k > 1 a cooperative group of k threads shares one fetch.
        slot = fetch_query_slot(ctx, k, args.queue_counter)
        if slot >= len(args.queue_order):
            return  # queue drained (tail batch)
        q = int(args.queue_order[slot])
    else:
        q = int(args.batch[ctx.tid // k])
    r = ctx.tid % k  # this thread's stride offset within the query's group

    ctx.charge_setup()
    index = args.index
    cell_rank = index.cell_of_point(q)

    # Own cell: single-direction emission (the symmetric pair is produced
    # by the candidate's own thread group). Candidates are strided over the
    # k threads along the query's *flat* candidate stream — `offset` tracks
    # the stream position across cells so the k shares stay within one
    # candidate of each other (Figure 4(b) generalized to many cells).
    offset = 0
    ctx.charge_cell_visit()
    own = index.points_in_cell(cell_rank)
    mine, offset = split_candidates(own, k, r, offset)
    _refine_and_emit(ctx, args, q, mine, mirror=False)

    # Pattern cells: mirrored emission for the half-patterns.
    mirror = args.pattern != "full"
    _, ranks = pattern_cells_for_query(args.pattern, index, cell_rank)
    for rank in ranks:
        ctx.charge_cell_visit()  # probing an empty neighbor still costs
        if rank < 0:
            continue
        cand = index.points_in_cell(int(rank))
        mine, offset = split_candidates(cand, k, r, offset)
        _refine_and_emit(ctx, args, q, mine, mirror=mirror)


# ----------------------------------------------------------------------
# Bulk-lane (vectorized) form of the kernels above.
#
# The interpreter's per-thread work decomposes into pure functions of
# candidate counts, cell visits and the warp issue order, so an entire
# launch can be evaluated with array operations (see
# repro.simt.vectorized for the contract). The pieces below are shared
# with the bipartite kernel's bulk form in repro.core.join.


def resolve_bulk_queries(launch: BulkLaunch, args) -> tuple:
    """Per-group query resolution for a bulk launch, static or WORKQUEUE.

    Works for any args bundle exposing ``k``, ``num_threads``,
    ``uses_queue``, ``batch``, ``queue_counter`` and ``queue_order``.
    Returns ``(issue_pos, n_active, groups, q_of_group, live, charges)``:

    - ``n_active`` — threads that pass the launch-width guard;
    - ``groups`` — number of query groups with at least one active thread;
    - ``q_of_group`` / ``live`` — the query id each group serves, with
      ``live=False`` for groups whose queue fetch came back drained;
    - ``charges`` — the fetch-protocol charges ("atomic" for leaders,
      "shfl" for followers), empty for the static mapping.

    Under the queue the counter is advanced by one ``fetch_add`` per group
    leader (via :meth:`~repro.simt.AtomicCounter.fetch_add_bulk`) and the
    slot each group receives is its leader's rank in warp issue order —
    the closed form of the interpreter's in-order fetch sequence.
    """
    k = args.k
    width = launch.num_threads
    n_active = min(width, args.num_threads)
    issue_pos = launch.issue_positions()
    groups = -(-n_active // k) if n_active else 0
    charges: dict[str, LabelCharges] = {}

    if not args.uses_queue:
        q_of_group = args.batch[:groups]
        live = np.ones(groups, dtype=bool)
        return issue_pos, n_active, groups, q_of_group, live, charges

    if k > 1:
        # the interpreter raises these through ThreadContext.coop_group /
        # CoopGroupTable.group_for; same launch misconfiguration, same error
        if not launch.coop_groups:
            raise RuntimeError("launch has no cooperative-group table")
        if launch.warp_size % k != 0:
            raise ValueError(
                f"group size {k} must evenly divide the warp size {launch.warp_size}"
            )

    leaders = np.arange(groups, dtype=np.int64) * k
    fetch_rank = np.empty(groups, dtype=np.int64)
    fetch_rank[np.argsort(issue_pos[leaders])] = np.arange(groups, dtype=np.int64)
    start = args.queue_counter.fetch_add_bulk(groups)
    slots = start + fetch_rank
    live = slots < len(args.queue_order)
    q_of_group = np.full(groups, -1, dtype=np.int64)
    if live.any():
        q_of_group[live] = args.queue_order[slots[live]]

    tids = np.arange(n_active, dtype=np.int64)
    is_leader = tids % k == 0
    atomic = np.zeros(width, dtype=np.float64)
    atomic_p = np.zeros(width, dtype=bool)
    atomic_p[tids[is_leader]] = True
    atomic[atomic_p] = launch.costs.c_atomic
    charges["atomic"] = LabelCharges(atomic, atomic_p)
    if k > 1:
        shfl = np.zeros(width, dtype=np.float64)
        shfl_p = np.zeros(width, dtype=bool)
        shfl_p[tids[~is_leader]] = True
        shfl[shfl_p] = launch.costs.c_shfl
        charges["shfl"] = LabelCharges(shfl, shfl_p)
    return issue_pos, n_active, groups, q_of_group, live, charges


class BulkEmitter:
    """Accumulates candidate stages of a bulk launch.

    A *stage* is one cell per query group (the own cell, or one pattern
    offset's neighbor). Each :meth:`process_stage` call refines all of the
    stage's candidates at once, tallies per-thread distance and emission
    charges, and records the hits keyed so that :meth:`pairs` can
    reconstruct the interpreter's exact buffer order: threads by warp
    issue position, a thread's stages in traversal order, forward hits
    before their mirrors, candidates in cell order.
    """

    def __init__(
        self,
        index: GridIndex,
        issue_pos: np.ndarray,
        n_active: int,
        k: int,
        width: int,
        eps2: float,
        *,
        include_self: bool = True,
    ):
        self.index = index
        self.issue_pos = issue_pos
        self.n_active = n_active
        self.k = k
        self.width = width
        self.eps2 = eps2
        self.include_self = include_self
        self.dist_counts = np.zeros(width, dtype=np.int64)
        self.emit_counts = np.zeros(width, dtype=np.int64)
        # point ids and issue positions fit int32 at simulator scale;
        # halving record width halves the reorder's memory traffic
        self._idx_dtype = (
            np.int32 if max(index.num_points, width) < 2**31 else np.int64
        )
        self._records: list[tuple] = []

    def process_stage(
        self,
        stage_key: int,
        group_ids: np.ndarray,
        q_ids: np.ndarray,
        q_points: np.ndarray,
        cell_ranks: np.ndarray,
        flat_base: np.ndarray,
        *,
        mirror: bool,
    ) -> None:
        """Refine one cell per selected query group.

        ``group_ids``/``q_ids``/``q_points``/``cell_ranks``/``flat_base``
        are aligned arrays over the groups that visit a non-empty cell at
        this stage; ``flat_base`` is each query's flat candidate-stream
        position on entry (the strided k-way split keys off it).

        Callers must invoke stages in every thread's traversal order
        (``stage_key`` ascending: own cell first, then pattern offsets) —
        :meth:`pairs` reconstructs buffer order from push order.
        """
        index = self.index
        counts = index.cell_counts[cell_ranks]
        total = int(counts.sum())
        if total == 0:
            return
        qrow = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        cand = gather_slices(index.point_order, index.cell_starts[cell_ranks], counts)
        if self.k == 1:
            owner = group_ids[qrow]
        else:
            first = np.zeros(len(counts), dtype=np.int64)
            first[1:] = np.cumsum(counts[:-1])
            local = np.arange(total, dtype=np.int64) - np.repeat(first, counts)
            flat = flat_base[qrow] + local
            owner = group_ids[qrow] * self.k + flat % self.k
        # threads beyond the launch width never ran in the interpreter:
        # their candidates are neither refined nor charged
        if int(group_ids[-1]) * self.k + self.k - 1 < self.n_active:
            keep = None  # every owner ran: skip the guard passes
            self.dist_counts += np.bincount(owner, minlength=self.width)
        else:
            keep = owner < self.n_active
            self.dist_counts += np.bincount(owner[keep], minlength=self.width)
        diff = index.points[cand]
        diff -= q_points[qrow]
        np.square(diff, out=diff)
        d2 = diff.sum(axis=1)
        hit = d2 <= self.eps2 if keep is None else keep & (d2 <= self.eps2)
        qcol = q_ids[qrow]
        if not self.include_self:
            hit &= cand != qcol
        if not hit.any():
            return
        h_owner = owner[hit]
        h_issue = self.issue_pos[h_owner]
        h_q = qcol[hit]
        h_cand = cand[hit]
        self._push(h_issue, h_q, h_cand)
        per_hit = 1
        if mirror:
            self._push(h_issue, h_cand, h_q)
            per_hit = 2
        self.emit_counts += np.bincount(h_owner, minlength=self.width) * per_hit

    def _push(self, issue, left, right) -> None:
        rows = np.empty((len(issue), 2), dtype=self._idx_dtype)
        rows[:, 0] = left
        rows[:, 1] = right
        self._records.append((issue.astype(self._idx_dtype, copy=False), rows))

    def pairs(self) -> np.ndarray:
        """All emitted pairs, in the interpreter's buffer order.

        Relies on the push-order invariant: stages are pushed in every
        thread's traversal order (own cell, then pattern offsets
        ascending; forward hits immediately before their mirrors) and each
        push lists a thread's hits in cell order. A *stable* sort on issue
        position alone therefore reconstructs the interleaved per-thread
        emission order — no secondary keys needed, and the reorder is a
        single row gather.
        """
        if not self._records:
            return np.empty((0, 2), dtype=np.int64)
        issue = np.concatenate([rec[0] for rec in self._records])
        rows = np.concatenate([rec[1] for rec in self._records])
        perm = np.argsort(issue, kind="stable")
        return rows[perm]

    def charge(self, charges: dict[str, LabelCharges], dist_cost: float, emit_cost: float) -> None:
        """Fill the "dist" and "emit" charges from the tallied counts."""
        charges["dist"] = LabelCharges(
            self.dist_counts * dist_cost, self.dist_counts > 0
        )
        charges["emit"] = LabelCharges(
            self.emit_counts * emit_cost, self.emit_counts > 0
        )


def selfjoin_bulk(launch: BulkLaunch, args: KernelArgs) -> BulkKernelResult:
    """Array-level evaluation of a whole :func:`selfjoin_kernel` launch.

    Produces the same pairs (in buffer order), per-thread charges and
    queue-counter side effects as interpreting the kernel thread by thread
    — see :mod:`repro.simt.vectorized` for the contract and
    ``tests/simt/test_vectorized_engine.py`` for the proof.
    """
    index = args.index
    k = args.k
    width = launch.num_threads
    issue_pos, n_active, groups, q_of_group, live, charges = resolve_bulk_queries(
        launch, args
    )

    lg = np.flatnonzero(live)
    qs = q_of_group[lg]
    qcell = index.point_cell_rank[qs]
    plan = get_pattern_plan(args.pattern, index)

    # setup + cell-visit charges: identical for every thread of a live group
    tids = np.arange(n_active, dtype=np.int64)
    t_live = np.zeros(n_active, dtype=bool)
    if groups:
        t_live = live[tids // k]
    live_tids = tids[t_live]
    present = np.zeros(width, dtype=bool)
    present[live_tids] = True
    setup = np.zeros(width, dtype=np.float64)
    setup[present] = launch.costs.c_setup
    charges["setup"] = LabelCharges(setup, present)

    visit_of_group = np.zeros(groups, dtype=np.int64)
    if len(lg):
        visit_of_group[lg] = 1 + plan.visited_counts()[qcell]
    cells = np.zeros(width, dtype=np.float64)
    cells[live_tids] = visit_of_group[live_tids // k] * launch.costs.c_cell
    charges["cells"] = LabelCharges(cells, present.copy())

    emitter = BulkEmitter(
        index,
        issue_pos,
        n_active,
        k,
        width,
        args._eps2,
        include_self=args.include_self,
    )
    if len(lg):
        q_points = index.points[qs]
        flat_base = np.zeros(len(lg), dtype=np.int64)
        # own cell first (stage -1 sorts before every pattern offset)
        emitter.process_stage(-1, lg, qs, q_points, qcell, flat_base, mirror=False)
        flat_base += index.cell_counts[qcell]
        mirror = args.pattern != "full"
        for o in plan.pattern_offsets():
            visit, nranks = plan.offset_visits(int(o))
            sel = np.flatnonzero(visit[qcell] & (nranks[qcell] >= 0))
            if not len(sel):
                continue
            ranks = nranks[qcell[sel]]
            emitter.process_stage(
                int(o),
                lg[sel],
                qs[sel],
                q_points[sel],
                ranks,
                flat_base[sel],
                mirror=mirror,
            )
            flat_base[sel] += index.cell_counts[ranks]

    emitter.charge(charges, launch.costs.dist_cost(index.ndim), launch.costs.c_emit)
    return BulkKernelResult(charges=charges, pairs=emitter.pairs())


register_bulk_kernel(selfjoin_kernel, selfjoin_bulk)

"""Shared low-level utilities: array validation, RNG handling, table rendering.

These helpers are deliberately free of any domain knowledge; every other
subpackage may depend on :mod:`repro.util` but :mod:`repro.util` depends only
on NumPy.
"""

from repro.util.arrays import (
    as_points_array,
    ceil_div,
    check_epsilon,
    gather_slices,
    pairs_to_set,
    stable_argsort_desc,
)
from repro.util.rng import resolve_rng
from repro.util.tables import Table, format_seconds

__all__ = [
    "Table",
    "as_points_array",
    "ceil_div",
    "check_epsilon",
    "format_seconds",
    "gather_slices",
    "pairs_to_set",
    "resolve_rng",
    "stable_argsort_desc",
]

"""Plain-text table rendering for the benchmark harness.

The paper reports its evaluation as tables (Tables III–VI) and figures; the
benchmark harness renders the same rows as monospace tables so a terminal
diff against the paper is straightforward.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["Table", "format_seconds"]


def format_seconds(seconds: float) -> str:
    """Render a duration with precision matched to its magnitude."""
    if seconds != seconds:  # NaN
        return "n/a"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 100.0:
        return f"{seconds:.2f}s"
    return f"{seconds:.0f}s"


class Table:
    """A minimal column-aligned ASCII table.

    >>> t = Table(["dataset", "eps", "time"])
    >>> t.add_row(["Unif2D", 1.0, "5.70s"])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, columns: Sequence[str], *, title: str | None = None):
        self.title = title
        self.columns = [str(c) for c in columns]
        self.rows: list[list[str]] = []

    def add_row(self, values: Iterable) -> None:
        row = [self._fmt(v) for v in values]
        if len(row) != len(self.columns):
            raise ValueError(
                f"row has {len(row)} values but table has {len(self.columns)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 1e-3:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append(" | ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()

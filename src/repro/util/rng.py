"""Deterministic random-number-generator plumbing.

Every stochastic component in the package (dataset generators, the hardware
scheduler's issue-order perturbation, sampling estimators) accepts either a
seed or a :class:`numpy.random.Generator`; this module centralizes the
coercion so behaviour is reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["resolve_rng"]


def resolve_rng(seed_or_rng=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed_or_rng``.

    ``None`` yields a freshly seeded generator (non-reproducible); an int (or
    anything :func:`numpy.random.default_rng` accepts as a seed) yields a
    deterministic generator; an existing ``Generator`` is passed through so
    callers can share a stream.
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)

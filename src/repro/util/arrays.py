"""Array validation and small vectorized helpers used across the package."""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_points_array",
    "ceil_div",
    "check_epsilon",
    "gather_slices",
    "pairs_to_set",
    "stable_argsort_desc",
]


def as_points_array(points, *, copy: bool = False) -> np.ndarray:
    """Validate and normalize a dataset to a C-contiguous float64 ``(N, n)`` array.

    Parameters
    ----------
    points:
        Anything convertible to a 2-D float array; rows are points, columns
        are dimensions.
    copy:
        Force a copy even when the input is already in canonical form.

    Raises
    ------
    ValueError
        If the input is not 2-D, is empty along the dimension axis, or
        contains non-finite coordinates.
    """
    arr = np.asarray(points, dtype=np.float64, order="C")
    if copy and arr is points:
        arr = arr.copy()
    if arr.ndim == 1 and arr.size == 0:
        # Allow an empty dataset spelled as [] — treat as 0 points in 1-D.
        arr = arr.reshape(0, 1)
    if arr.ndim != 2:
        raise ValueError(f"points must be a 2-D array, got shape {arr.shape}")
    if arr.shape[1] == 0:
        raise ValueError("points must have at least one dimension")
    if arr.size:
        finite = np.isfinite(arr)
        if not finite.all():
            bad_rows = np.flatnonzero(~finite.all(axis=1))
            raise ValueError(
                "points must contain only finite coordinates; "
                f"{len(bad_rows)} of {len(arr)} rows have NaN/inf "
                f"(first offending row: {int(bad_rows[0])})"
            )
    return np.ascontiguousarray(arr)


def check_epsilon(epsilon: float) -> float:
    """Validate a distance threshold: finite and strictly positive."""
    eps = float(epsilon)
    if not np.isfinite(eps) or eps <= 0.0:
        raise ValueError(f"epsilon must be a finite positive number, got {epsilon!r}")
    return eps


def ceil_div(a, b):
    """Ceiling integer division, elementwise for arrays.

    ``b`` must be positive. Works on Python ints and NumPy integer arrays.
    """
    return -(-a // b)


def stable_argsort_desc(values: np.ndarray) -> np.ndarray:
    """Stable descending argsort.

    NumPy has no stable descending kind, so we stably sort the negated key.
    For integer inputs the negation is exact; for floats, ties keep their
    original relative order (the property the work-queue relies on for
    reproducibility).
    """
    values = np.asarray(values)
    if values.dtype.kind in "iu":
        key = -values.astype(np.int64, copy=False)
    else:
        key = -values
    return np.argsort(key, kind="stable")


def pairs_to_set(pairs: np.ndarray) -> set[tuple[int, int]]:
    """Convert an ``(M, 2)`` index-pair array to a Python set of tuples.

    Intended for tests and validation only (it is O(M) Python objects).
    """
    pairs = np.asarray(pairs)
    if pairs.size == 0:
        return set()
    if pairs.ndim != 2 or pairs.shape[1] != 2:
        raise ValueError(f"pairs must have shape (M, 2), got {pairs.shape}")
    return set(map(tuple, pairs.tolist()))


def gather_slices(source: np.ndarray, starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenate ``source[starts[i] : starts[i]+lengths[i]]`` without a
    Python loop.

    The workhorse of the vectorized grid traversals: variable-length slice
    gathering via one repeat and one arange.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=source.dtype)
    ends = np.cumsum(lengths)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - lengths, lengths)
    return source[np.repeat(starts, lengths) + offsets]

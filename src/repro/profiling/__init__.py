"""nvprof-style profiling reports over simulated runs.

The paper reports warp execution efficiency and response time per
configuration (Tables III–VI). :class:`ProfileReport` collects those rows
from either VM :class:`~repro.core.JoinResult` objects or model
:class:`~repro.perfmodel.SimulatedRun` objects and renders paper-style
tables.
"""

from repro.profiling.profiler import ProfileReport, ProfileRow, profile_run
from repro.profiling.workload_stats import WorkloadStats, gini_coefficient

__all__ = [
    "ProfileReport",
    "ProfileRow",
    "WorkloadStats",
    "gini_coefficient",
    "profile_run",
]

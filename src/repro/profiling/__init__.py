"""nvprof-style profiling reports over simulated runs.

The paper reports warp execution efficiency and response time per
configuration (Tables III–VI). :class:`ProfileReport` collects those rows
from either VM :class:`~repro.core.JoinResult` objects or model
:class:`~repro.perfmodel.SimulatedRun` objects and renders paper-style
tables. :class:`DeviceReport` is the same surface one level up: device
execution efficiency per (planner, scheduler, pool size) over
:mod:`repro.multigpu` runs. :class:`ResilienceReport` accounts what a
fault run cost beyond the fault-free one — retries, requeues,
speculative wins, wasted device-seconds, degraded-mode makespan.
:class:`ServiceReport` is the serving layer's aggregate view — queue
latency percentiles, session-cache hit rate, per-tenant throughput,
availability, checkpoint overhead and shared-pool utilization over a
:mod:`repro.serve` service lifetime. :class:`ChaosReport` closes the
loop for chaos runs: injected service faults by species, whether every
faulted request resolved terminally, and the mean time-to-recovery.
"""

from repro.profiling.chaos_report import ChaosIncident, ChaosReport, chaos_report
from repro.profiling.device_report import (
    DeviceProfileRow,
    DeviceReport,
    device_profile_row,
)
from repro.profiling.profiler import ProfileReport, ProfileRow, profile_run
from repro.profiling.resilience_report import ResilienceReport, resilience_report
from repro.profiling.service_report import ServiceReport, TenantRow, service_report
from repro.profiling.workload_stats import WorkloadStats, gini_coefficient

__all__ = [
    "ChaosIncident",
    "ChaosReport",
    "DeviceProfileRow",
    "DeviceReport",
    "ProfileReport",
    "ProfileRow",
    "ResilienceReport",
    "ServiceReport",
    "TenantRow",
    "WorkloadStats",
    "chaos_report",
    "device_profile_row",
    "gini_coefficient",
    "profile_run",
    "resilience_report",
    "service_report",
]

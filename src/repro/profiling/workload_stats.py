"""Workload-skew statistics — quantifying *why* the optimizations help.

The paper's gains track the dispersion of per-point workloads ("some
points will have few neighbors, and some will have many, potentially
spanning several orders of magnitude"). This module turns that into
numbers: coefficient of variation, Gini coefficient, tail shares and the
idealized WEE a random 32-lane packing would achieve — the diagnostic a
user runs to predict whether SORTBYWL/WORKQUEUE will pay off on their
dataset before running anything.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sortbywl import point_workloads
from repro.grid import GridIndex
from repro.util import Table

__all__ = ["WorkloadStats", "gini_coefficient"]


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative distribution, in [0, 1).

    0 = perfectly even workloads (uniform data), → 1 = all work
    concentrated in a vanishing fraction of points (extreme skew).
    """
    v = np.sort(np.asarray(values, dtype=np.float64))
    if len(v) == 0:
        return 0.0
    if (v < 0).any():
        raise ValueError("values must be non-negative")
    total = v.sum()
    if total == 0:
        return 0.0
    n = len(v)
    # Gini = (2 * sum(i * v_i) / (n * sum v)) - (n + 1) / n, i is 1-based
    ranks = np.arange(1, n + 1)
    return float(2 * (ranks * v).sum() / (n * total) - (n + 1) / n)


@dataclass(frozen=True)
class WorkloadStats:
    """Dispersion summary of a dataset's per-point workloads."""

    num_points: int
    mean: float
    median: float
    maximum: int
    cv: float  # std / mean
    gini: float
    top1_share: float  # fraction of total work held by the heaviest 1 %
    random_packing_wee: float  # expected WEE of unsorted 32-lane warps

    @classmethod
    def from_index(
        cls, index: GridIndex, pattern: str = "full", *, warp_size: int = 32, seed: int = 0
    ) -> "WorkloadStats":
        """Compute the stats from an index's quantified workloads."""
        w = point_workloads(index, pattern).astype(np.float64)
        return cls.from_workloads(w, warp_size=warp_size, seed=seed)

    @classmethod
    def from_workloads(
        cls, workloads: np.ndarray, *, warp_size: int = 32, seed: int = 0
    ) -> "WorkloadStats":
        w = np.asarray(workloads, dtype=np.float64)
        if len(w) == 0:
            return cls(0, 0.0, 0.0, 0, 0.0, 0.0, 0.0, 1.0)
        mean = float(w.mean())
        top_k = max(1, len(w) // 100)
        top_share = float(np.sort(w)[-top_k:].sum() / w.sum()) if w.sum() else 0.0

        # expected WEE of random warp packing: shuffle, pack, measure
        rng = np.random.default_rng(seed)
        shuffled = rng.permutation(w)
        pad = (-len(shuffled)) % warp_size
        if pad:
            shuffled = np.concatenate([shuffled, np.zeros(pad)])
        warps = shuffled.reshape(-1, warp_size)
        maxes = warps.max(axis=1)
        busy = maxes.sum()
        wee = float(warps.sum() / (warp_size * busy)) if busy else 1.0

        return cls(
            num_points=len(w),
            mean=mean,
            median=float(np.median(w)),
            maximum=int(w.max()),
            cv=float(w.std() / mean) if mean else 0.0,
            gini=gini_coefficient(w),
            top1_share=top_share,
            random_packing_wee=wee,
        )

    def render(self) -> str:
        t = Table(["metric", "value"], title="Workload dispersion")
        t.add_row(["points", self.num_points])
        t.add_row(["mean candidates/point", f"{self.mean:.1f}"])
        t.add_row(["median", f"{self.median:.1f}"])
        t.add_row(["max", self.maximum])
        t.add_row(["coefficient of variation", f"{self.cv:.2f}"])
        t.add_row(["Gini coefficient", f"{self.gini:.3f}"])
        t.add_row(["top-1% share of work", f"{100 * self.top1_share:.1f}%"])
        t.add_row(
            ["random-packing WEE", f"{100 * self.random_packing_wee:.1f}%"]
        )
        return t.render()

"""Recovery accounting — what a fault run cost beyond the fault-free one.

The resilient scheduler guarantees the *answer* is unchanged under
injected faults; this report quantifies the *price*: retried batches,
transient retries, shard requeues, speculative copies and whether they
won, device-seconds wasted on attempts that produced no rows, and the
makespan the degraded pool actually achieved.

Like :mod:`repro.profiling.device_report`, everything is duck-typed off a
:class:`~repro.multigpu.join.MultiJoinResult` (its ``trace.recovery``
:class:`~repro.multigpu.scheduler.RecoveryLog`, merged overflow counters
and pool stats), so profiling stays layered above execution with no
:mod:`repro.multigpu` import.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import Table, format_seconds

__all__ = ["ResilienceReport", "resilience_report"]


@dataclass(frozen=True)
class ResilienceReport:
    """The full cost accounting of one (possibly faulty) pool run."""

    devices_total: int
    devices_lost: int
    overflow_retries: int
    overflow_wasted_seconds: float
    transient_retries: int
    shard_requeues: int
    speculations: int
    speculative_wins: int
    recovery_wasted_seconds: float
    busy_seconds: float
    makespan_seconds: float

    @property
    def devices_surviving(self) -> int:
        return self.devices_total - self.devices_lost

    @property
    def degraded(self) -> bool:
        """Did the pool finish with fewer devices than it started with?"""
        return self.devices_lost > 0

    @property
    def wasted_seconds(self) -> float:
        """All device-seconds that produced no result rows."""
        return self.overflow_wasted_seconds + self.recovery_wasted_seconds

    @property
    def waste_fraction(self) -> float:
        """Wasted over total busy device-time — the overhead of surviving."""
        if self.busy_seconds == 0:
            return 0.0
        return self.wasted_seconds / self.busy_seconds

    def render(self) -> str:
        t = Table(["event", "count"], title="Resilience accounting")
        t.add_row(["devices lost", f"{self.devices_lost}/{self.devices_total}"])
        t.add_row(["overflow batch retries", self.overflow_retries])
        t.add_row(["transient retries", self.transient_retries])
        t.add_row(["shard requeues", self.shard_requeues])
        t.add_row(
            ["speculative copies (wins)", f"{self.speculations} ({self.speculative_wins})"]
        )
        footer = (
            f"wasted {format_seconds(self.wasted_seconds)} of "
            f"{format_seconds(self.busy_seconds)} busy device-time "
            f"({100 * self.waste_fraction:.1f}%)  |  makespan "
            f"{format_seconds(self.makespan_seconds)}"
            + ("  |  DEGRADED" if self.degraded else "")
        )
        return t.render() + "\n" + footer

    def to_record(self) -> dict:
        """JSON-ready dict (machine-readable experiment output)."""
        return {
            "devices_total": self.devices_total,
            "devices_lost": self.devices_lost,
            "overflow_retries": self.overflow_retries,
            "overflow_wasted_seconds": self.overflow_wasted_seconds,
            "transient_retries": self.transient_retries,
            "shard_requeues": self.shard_requeues,
            "speculations": self.speculations,
            "speculative_wins": self.speculative_wins,
            "recovery_wasted_seconds": self.recovery_wasted_seconds,
            "wasted_seconds": self.wasted_seconds,
            "waste_fraction": self.waste_fraction,
            "busy_seconds": self.busy_seconds,
            "makespan_seconds": self.makespan_seconds,
            "degraded": self.degraded,
        }

    def __str__(self) -> str:  # pragma: no cover
        return self.render()


def resilience_report(run) -> ResilienceReport:
    """Build the accounting from a :class:`MultiJoinResult` (duck-typed).

    Works on fault-free and fail-fast runs too — every recovery counter is
    simply zero there, which is itself a useful assertion surface.
    """
    trace = getattr(run, "trace", None)
    log = getattr(trace, "recovery", None) if trace is not None else None
    stats = getattr(run, "pool_stats", None)
    return ResilienceReport(
        devices_total=getattr(run, "num_devices", 1),
        devices_lost=log.num_devices_lost if log is not None else 0,
        overflow_retries=int(getattr(run, "overflow_retries", 0)),
        overflow_wasted_seconds=float(getattr(run, "overflow_wasted_seconds", 0.0)),
        transient_retries=log.num_transient_retries if log is not None else 0,
        shard_requeues=log.num_requeues if log is not None else 0,
        speculations=log.num_speculations if log is not None else 0,
        speculative_wins=log.num_speculative_wins if log is not None else 0,
        recovery_wasted_seconds=log.wasted_seconds if log is not None else 0.0,
        busy_seconds=stats.total_busy_seconds if stats is not None else 0.0,
        makespan_seconds=trace.makespan_seconds if trace is not None else 0.0,
    )

"""Chaos accounting: what the fault injector did, and how the service
recovered.

Built from the :class:`~repro.serve.events.ServiceLog`: every injected
service fault is a ``fault`` event whose detail leads with its species
(``cancellation_storm``, ``client_disconnect``, ``slow_client``,
``pool_collapse``, ``runner_crash``), and the request it hit is
*resolved* by the first terminal event — ``complete``, ``failed``,
``cancelled`` or ``timeout`` — that follows for the same request id. The
report aggregates injections by species, checks that **every** injected
fault ended in a resolved ticket (the chaos suite's no-hung-callers
property), and derives the service-level availability and mean
time-to-recovery over the incidents.

Like every profiling report it is duck-typed: anything with ``.log``
(events) and ``.snapshot()`` works — profiling stays layered above
serving with no :mod:`repro.serve` import.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import Table, format_seconds

__all__ = ["ChaosIncident", "ChaosReport", "chaos_report"]

#: Detail-prefix → species. The injector writes the species as the first
#: token of every ``fault`` event detail; the parser keys on it.
FAULT_SPECIES = (
    "cancellation_storm",
    "client_disconnect",
    "slow_client",
    "pool_collapse",
    "runner_crash",
)

#: Terminal event kinds that resolve a faulted request.
_TERMINAL = ("complete", "failed", "cancelled", "timeout")


@dataclass(frozen=True)
class ChaosIncident:
    """One injected fault and how (whether) its request resolved."""

    species: str
    request_id: str
    tenant: str
    injected_at: float
    resolved_kind: str | None  # terminal event kind, None = never resolved
    resolved_at: float | None

    @property
    def resolved(self) -> bool:
        return self.resolved_kind is not None

    @property
    def recovery_seconds(self) -> float:
        """Injection → terminal resolution (0 when unresolved)."""
        if self.resolved_at is None:
            return 0.0
        return max(0.0, self.resolved_at - self.injected_at)


@dataclass(frozen=True)
class ChaosReport:
    """Aggregate view of one chaos run."""

    incidents: tuple
    injected_by_species: dict
    availability: float
    retries: int
    rate_limited: int
    circuit_opens: int

    @property
    def num_injected(self) -> int:
        return len(self.incidents)

    @property
    def num_resolved(self) -> int:
        return sum(1 for i in self.incidents if i.resolved)

    @property
    def all_resolved(self) -> bool:
        """Every injected fault ended in a resolved ticket — the
        no-hung-callers acceptance property."""
        return self.num_resolved == self.num_injected

    @property
    def mttr_seconds(self) -> float:
        """Mean time-to-recovery over the resolved incidents."""
        recovered = [i.recovery_seconds for i in self.incidents if i.resolved]
        if not recovered:
            return 0.0
        return sum(recovered) / len(recovered)

    def of_species(self, species: str) -> tuple:
        return tuple(i for i in self.incidents if i.species == species)

    # ------------------------------------------------------- rendering
    def render(self) -> str:
        t = Table(
            ["species", "injected", "resolved", "mttr"],
            title="Chaos report — injected service faults",
        )
        for species in FAULT_SPECIES:
            rows = self.of_species(species)
            if not rows:
                continue
            recovered = [i.recovery_seconds for i in rows if i.resolved]
            mttr = sum(recovered) / len(recovered) if recovered else 0.0
            t.add_row(
                [
                    species,
                    len(rows),
                    sum(1 for i in rows if i.resolved),
                    format_seconds(mttr),
                ]
            )
        lines = [
            t.render(),
            (
                f"{self.num_injected} faults injected, {self.num_resolved} "
                f"resolved ({'OK' if self.all_resolved else 'HUNG CALLERS'}), "
                f"MTTR {format_seconds(self.mttr_seconds)}"
            ),
            (
                f"availability {100 * self.availability:.1f}%; "
                f"{self.retries} retries, {self.rate_limited} rate-limited, "
                f"{self.circuit_opens} circuit-open rejections"
            ),
        ]
        return "\n".join(lines)

    def to_record(self) -> dict:
        """JSON-ready dict (machine-readable benchmark output)."""
        return {
            "injected": dict(self.injected_by_species),
            "num_injected": self.num_injected,
            "num_resolved": self.num_resolved,
            "all_resolved": self.all_resolved,
            "mttr_seconds": self.mttr_seconds,
            "availability": self.availability,
            "retries": self.retries,
            "rate_limited": self.rate_limited,
            "circuit_opens": self.circuit_opens,
            "incidents": [
                {
                    "species": i.species,
                    "request_id": i.request_id,
                    "tenant": i.tenant,
                    "resolved": i.resolved_kind,
                    "recovery_seconds": i.recovery_seconds,
                }
                for i in self.incidents
            ],
        }

    def __str__(self) -> str:  # pragma: no cover
        return self.render()


def chaos_report(service) -> ChaosReport:
    """Build the report from a service (anything with ``.log`` events and
    ``snapshot()``)."""
    events = service.log.events
    snap = service.snapshot()
    counts = snap.get("counts", {})

    incidents = []
    injected: dict[str, int] = {}
    for i, event in enumerate(events):
        if event.kind != "fault":
            continue
        species = event.detail.split(None, 1)[0] if event.detail else "unknown"
        injected[species] = injected.get(species, 0) + 1
        resolved_kind = None
        resolved_at = None
        for later in events[i + 1 :]:
            if later.kind in _TERMINAL and later.request_id == event.request_id:
                resolved_kind = later.kind
                resolved_at = later.at_seconds
                break
        incidents.append(
            ChaosIncident(
                species=species,
                request_id=event.request_id,
                tenant=event.tenant,
                injected_at=event.at_seconds,
                resolved_kind=resolved_kind,
                resolved_at=resolved_at,
            )
        )

    executed = (
        counts.get("completed", 0) + counts.get("failed", 0) + counts.get("timeout", 0)
    )
    availability = counts.get("completed", 0) / executed if executed else 1.0
    return ChaosReport(
        incidents=tuple(incidents),
        injected_by_species=injected,
        availability=availability,
        retries=counts.get("retried", 0),
        rate_limited=counts.get("rate_limited", 0),
        circuit_opens=counts.get("circuit_open", 0),
    )

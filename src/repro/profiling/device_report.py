"""Pool-level profiling rows — the device analogue of Tables III–VI.

Where :class:`~repro.profiling.profiler.ProfileReport` collects warp
execution efficiency per (dataset, ε, configuration), this report collects
**device execution efficiency** per (dataset, ε, planner, scheduler, N) —
the same metric one level up (busy device-time over allocated
device-time). Rows are duck-typed off
:class:`~repro.multigpu.join.MultiJoinResult` so the module stays free of
a :mod:`repro.multigpu` import, as profiling is layered above execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util import Table, format_seconds

__all__ = ["DeviceProfileRow", "DeviceReport", "device_profile_row"]


@dataclass(frozen=True)
class DeviceProfileRow:
    """One (dataset, ε, planner × scheduler × pool size) measurement."""

    dataset: str
    epsilon: float
    planner: str
    schedule: str
    num_devices: int
    dee_percent: float  # device execution efficiency
    wee_percent: float  # warp execution efficiency, aggregated pool-wide
    makespan_seconds: float
    serial_seconds: float
    result_rows: int = 0
    num_shards: int = 0

    @property
    def speedup_vs_serial(self) -> float:
        """Pool speedup over its own one-device-at-a-time execution."""
        if self.makespan_seconds == 0:
            return 1.0
        return self.serial_seconds / self.makespan_seconds


def device_profile_row(run, *, dataset: str, epsilon: float) -> DeviceProfileRow:
    """Build a row from a :class:`~repro.multigpu.join.MultiJoinResult`
    (duck-typed: anything exposing the same pool-metric surface)."""
    trace = getattr(run, "trace", None)
    return DeviceProfileRow(
        dataset=dataset,
        epsilon=float(epsilon),
        planner=getattr(run, "planner", ""),
        schedule=getattr(run, "schedule_mode", ""),
        num_devices=getattr(run, "num_devices", 1),
        dee_percent=100.0 * run.device_execution_efficiency,
        wee_percent=100.0 * run.warp_execution_efficiency,
        makespan_seconds=float(run.makespan_seconds),
        serial_seconds=float(run.serial_seconds),
        result_rows=int(run.num_pairs),
        num_shards=len(trace.events) if trace is not None else 0,
    )


class DeviceReport:
    """Ordered device-efficiency rows with paper-style rendering."""

    def __init__(self, title: str = ""):
        self.title = title
        self.rows: list[DeviceProfileRow] = []

    def add(self, row: DeviceProfileRow) -> None:
        self.rows.append(row)

    def add_run(self, run, *, dataset: str, epsilon: float) -> None:
        self.add(device_profile_row(run, dataset=dataset, epsilon=epsilon))

    def render(self) -> str:
        t = Table(
            [
                "dataset",
                "eps",
                "N",
                "planner",
                "sched",
                "DEE (%)",
                "WEE (%)",
                "makespan",
                "speedup",
                "rows",
            ],
            title=self.title,
        )
        for r in self.rows:
            t.add_row(
                [
                    r.dataset,
                    r.epsilon,
                    r.num_devices,
                    r.planner,
                    r.schedule,
                    f"{r.dee_percent:.1f}",
                    f"{r.wee_percent:.1f}",
                    format_seconds(r.makespan_seconds),
                    f"{r.speedup_vs_serial:.2f}x",
                    r.result_rows,
                ]
            )
        return t.render()

    def scaling(self, dataset: str, epsilon: float, planner: str, schedule: str):
        """``{N: makespan}`` for one cell family — speedup-curve input."""
        return {
            r.num_devices: r.makespan_seconds
            for r in self.rows
            if r.dataset == dataset
            and r.epsilon == float(epsilon)
            and r.planner == planner
            and r.schedule == schedule
        }

    def to_records(self) -> list[dict]:
        """Rows as JSON-ready dicts (machine-readable experiment output)."""
        return [
            {
                "dataset": r.dataset,
                "epsilon": r.epsilon,
                "planner": r.planner,
                "schedule": r.schedule,
                "num_devices": r.num_devices,
                "dee_percent": r.dee_percent,
                "wee_percent": r.wee_percent,
                "makespan_seconds": r.makespan_seconds,
                "serial_seconds": r.serial_seconds,
                "speedup_vs_serial": r.speedup_vs_serial,
                "result_rows": r.result_rows,
                "num_shards": r.num_shards,
            }
            for r in self.rows
        ]

    def __str__(self) -> str:  # pragma: no cover
        return self.render()

"""Collection and rendering of per-configuration profiling rows."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import Table, format_seconds

__all__ = ["ProfileReport", "ProfileRow", "profile_run"]


@dataclass(frozen=True)
class ProfileRow:
    """One (dataset, ε, configuration) measurement — a row of the paper's
    Tables III–VI."""

    dataset: str
    epsilon: float
    config: str
    wee_percent: float
    seconds: float
    num_batches: int = 0
    num_warps: int = 0
    result_rows: int = 0


def profile_run(run, *, dataset: str, epsilon: float, config: str | None = None) -> ProfileRow:
    """Build a row from a VM ``JoinResult`` or a model ``SimulatedRun``.

    Duck-typed on the shared metric surface (``total_seconds``,
    ``warp_execution_efficiency``, ``num_batches``).
    """
    result_rows = getattr(run, "num_pairs", None)
    if result_rows is None:
        result_rows = getattr(run, "total_result_rows", 0)
    num_warps = getattr(run, "num_warps", 0)
    if not isinstance(num_warps, int):  # JoinResult has no num_warps property
        num_warps = 0
    return ProfileRow(
        dataset=dataset,
        epsilon=float(epsilon),
        config=config if config is not None else run.config_description,
        wee_percent=100.0 * run.warp_execution_efficiency,
        seconds=float(run.total_seconds),
        num_batches=run.num_batches,
        num_warps=int(num_warps),
        result_rows=int(result_rows),
    )


class ProfileReport:
    """An ordered collection of profile rows with paper-style rendering."""

    def __init__(self, title: str = ""):
        self.title = title
        self.rows: list[ProfileRow] = []

    def add(self, row: ProfileRow) -> None:
        self.rows.append(row)

    def add_run(self, run, *, dataset: str, epsilon: float, config: str | None = None) -> None:
        self.add(profile_run(run, dataset=dataset, epsilon=epsilon, config=config))

    def render(self) -> str:
        """The paper's table layout: dataset, ε, then WEE%/time per config."""
        t = Table(
            ["dataset", "eps", "config", "WEE (%)", "time", "batches", "rows"],
            title=self.title,
        )
        for r in self.rows:
            t.add_row(
                [
                    r.dataset,
                    r.epsilon,
                    r.config,
                    f"{r.wee_percent:.1f}",
                    format_seconds(r.seconds),
                    r.num_batches,
                    r.result_rows,
                ]
            )
        return t.render()

    def speedups(self, baseline_config: str) -> dict[tuple[str, float], dict[str, float]]:
        """Per (dataset, ε): speedup of every config over the baseline."""
        by_key: dict[tuple[str, float], dict[str, float]] = {}
        for r in self.rows:
            by_key.setdefault((r.dataset, r.epsilon), {})[r.config] = r.seconds
        out: dict[tuple[str, float], dict[str, float]] = {}
        for key, times in by_key.items():
            if baseline_config not in times:
                continue
            base = times[baseline_config]
            out[key] = {
                cfg: base / t if t > 0 else np.inf
                for cfg, t in times.items()
                if cfg != baseline_config
            }
        return out

    def to_records(self) -> list[dict]:
        """Rows as JSON-ready dicts (machine-readable experiment output)."""
        return [
            {
                "dataset": r.dataset,
                "epsilon": r.epsilon,
                "config": r.config,
                "wee_percent": None if r.wee_percent != r.wee_percent else r.wee_percent,
                "seconds": r.seconds,
                "num_batches": r.num_batches,
                "num_warps": r.num_warps,
                "result_rows": r.result_rows,
            }
            for r in self.rows
        ]

    def __str__(self) -> str:  # pragma: no cover
        return self.render()

"""Serving-layer accounting: what the join service did for whom, how fast.

The per-run reports profile one join; this report profiles the *service*
around the joins: queue latency percentiles, session-cache hit rate,
per-tenant throughput (requests, result rows, simulated device-seconds),
and the utilization of the shared device pool across every pooled run.

Like the other profiling reports it is duck-typed: built from any object
with a ``snapshot()`` returning the plain accounting dict
(:meth:`repro.serve.JoinService.snapshot`), or from such a dict directly
— profiling stays layered above serving with no :mod:`repro.serve`
import.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util import Table, format_seconds

__all__ = ["ServiceReport", "TenantRow", "service_report"]


def _percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation surprises)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class TenantRow:
    """One tenant's serving totals."""

    tenant: str
    weight: float
    submitted: int
    completed: int
    failed: int
    rejected: int
    rate_limited: int
    cache_hits: int
    pairs: int
    estimated_pairs: int
    simulated_seconds: float
    wall_seconds: float

    @property
    def pairs_per_simulated_second(self) -> float:
        """Result-row throughput in simulated device time."""
        if self.simulated_seconds == 0:
            return 0.0
        return self.pairs / self.simulated_seconds


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate serving behaviour of one :class:`JoinService` lifetime."""

    counts: dict
    queue_latencies: list = field(repr=False)
    tenants: tuple
    dispatch_order: tuple = field(repr=False)
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    pool_devices: int = 0
    pooled_runs: int = 0
    pool_busy_seconds: float = 0.0
    pool_allocated_seconds: float = 0.0
    checkpoint_writes: int = 0
    checkpoint_loads: int = 0
    checkpoint_bytes: int = 0
    checkpoint_write_seconds: float = 0.0
    chaos: str = ""
    uptime_seconds: float = 0.0

    # ------------------------------------------------------- derived
    @property
    def requests_submitted(self) -> int:
        return self.counts.get("submitted", 0)

    @property
    def requests_completed(self) -> int:
        return self.counts.get("completed", 0)

    @property
    def availability(self) -> float:
        """Completed over executed (completed + failed + timed out).

        Rejections and cancellations are excluded — those are the service
        (or the client) declining work, not failing it. 1.0 when nothing
        executed.
        """
        executed = (
            self.counts.get("completed", 0)
            + self.counts.get("failed", 0)
            + self.counts.get("timeout", 0)
        )
        if executed == 0:
            return 1.0
        return self.counts.get("completed", 0) / executed

    @property
    def cache_hit_rate(self) -> float:
        lookups = self.cache_hits + self.cache_misses
        if lookups == 0:
            return 0.0
        return self.cache_hits / lookups

    @property
    def pool_utilization(self) -> float:
        """Busy device-seconds over allocated device-seconds, pooled runs."""
        if self.pool_allocated_seconds == 0:
            return 0.0
        return self.pool_busy_seconds / self.pool_allocated_seconds

    def queue_latency(self, percentile: float) -> float:
        """Queue-wait percentile over every dispatched request (seconds)."""
        return _percentile(list(self.queue_latencies), percentile)

    def tenant(self, name: str) -> TenantRow:
        for row in self.tenants:
            if row.tenant == name:
                return row
        raise KeyError(f"no tenant {name!r} in this report")

    def fairness_spread(self) -> float:
        """Max over min weight-normalized completed result rows (1.0 = even).

        Computed over tenants that completed work; returns 1.0 with fewer
        than two such tenants. The acceptance tests bound this ratio.
        """
        shares = [
            row.pairs / row.weight for row in self.tenants if row.completed > 0
        ]
        if len(shares) < 2 or min(shares) == 0:
            return 1.0
        return max(shares) / min(shares)

    # ------------------------------------------------------- rendering
    def render(self) -> str:
        t = Table(
            ["tenant", "w", "sub", "done", "fail", "rej", "hits", "pairs", "pairs/s(sim)"],
            title="Service report — per tenant",
        )
        for row in self.tenants:
            t.add_row(
                [
                    row.tenant,
                    f"{row.weight:g}",
                    row.submitted,
                    row.completed,
                    row.failed,
                    row.rejected,
                    row.cache_hits,
                    row.pairs,
                    f"{row.pairs_per_simulated_second:.0f}",
                ]
            )
        c = self.counts
        lines = [
            t.render(),
            (
                f"requests: {c.get('submitted', 0)} submitted, "
                f"{c.get('completed', 0)} completed, {c.get('failed', 0)} failed, "
                f"{c.get('rejected', 0)} rejected, {c.get('cancelled', 0)} cancelled, "
                f"{c.get('timeout', 0)} timed out"
            ),
            (
                f"availability {100 * self.availability:.1f}%"
                + (
                    f"; protection: {c.get('rate_limited', 0)} rate-limited, "
                    f"{c.get('circuit_open', 0)} circuit-open, "
                    f"{c.get('retried', 0)} retried"
                    if c.get("rate_limited", 0)
                    or c.get("circuit_open", 0)
                    or c.get("retried", 0)
                    else ""
                )
            ),
            (
                f"queue latency p50/p95/p99: "
                f"{format_seconds(self.queue_latency(50))} / "
                f"{format_seconds(self.queue_latency(95))} / "
                f"{format_seconds(self.queue_latency(99))}"
            ),
            (
                f"session cache: {self.cache_hits} hits / "
                f"{self.cache_hits + self.cache_misses} lookups "
                f"({100 * self.cache_hit_rate:.1f}%), "
                f"{self.cache_evictions} evictions"
            ),
        ]
        if self.pooled_runs:
            lines.append(
                f"shared pool ({self.pool_devices} devices): {self.pooled_runs} "
                f"pooled runs, utilization {100 * self.pool_utilization:.1f}%"
            )
        if self.checkpoint_writes or self.checkpoint_loads:
            lines.append(
                f"checkpoints: {self.checkpoint_writes} fragments written "
                f"({self.checkpoint_bytes} B, "
                f"{format_seconds(self.checkpoint_write_seconds)}), "
                f"{self.checkpoint_loads} resumed from the journal"
            )
        if self.chaos:
            lines.append(f"chaos plan: {self.chaos}")
        lines.append(f"uptime {format_seconds(self.uptime_seconds)}")
        return "\n".join(lines)

    def to_record(self) -> dict:
        """JSON-ready dict (machine-readable benchmark output)."""
        return {
            "counts": dict(self.counts),
            "queue_latency_p50": self.queue_latency(50),
            "queue_latency_p95": self.queue_latency(95),
            "queue_latency_p99": self.queue_latency(99),
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "cache_hit_rate": self.cache_hit_rate,
            "pool_devices": self.pool_devices,
            "pooled_runs": self.pooled_runs,
            "pool_utilization": self.pool_utilization,
            "fairness_spread": self.fairness_spread(),
            "availability": self.availability,
            "checkpoint_writes": self.checkpoint_writes,
            "checkpoint_loads": self.checkpoint_loads,
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_write_seconds": self.checkpoint_write_seconds,
            "uptime_seconds": self.uptime_seconds,
            "tenants": {
                row.tenant: {
                    "weight": row.weight,
                    "submitted": row.submitted,
                    "completed": row.completed,
                    "failed": row.failed,
                    "rejected": row.rejected,
                    "rate_limited": row.rate_limited,
                    "cache_hits": row.cache_hits,
                    "pairs": row.pairs,
                    "estimated_pairs": row.estimated_pairs,
                    "simulated_seconds": row.simulated_seconds,
                    "wall_seconds": row.wall_seconds,
                    "pairs_per_simulated_second": row.pairs_per_simulated_second,
                }
                for row in self.tenants
            },
        }

    def __str__(self) -> str:  # pragma: no cover
        return self.render()


def service_report(service_or_snapshot) -> ServiceReport:
    """Build the report from a service (anything with ``snapshot()``) or
    from the snapshot dict itself."""
    snap = service_or_snapshot
    snapshot_fn = getattr(snap, "snapshot", None)
    if callable(snapshot_fn):
        snap = snapshot_fn()
    cache = snap.get("cache")
    ckpt = snap.get("checkpoint", {})
    weights = snap.get("tenant_weights", {})
    tenants = tuple(
        TenantRow(
            tenant=name,
            weight=float(weights.get(name, 1.0)),
            submitted=row.get("submitted", 0),
            completed=row.get("completed", 0),
            failed=row.get("failed", 0),
            rejected=row.get("rejected", 0),
            rate_limited=row.get("rate_limited", 0),
            cache_hits=row.get("cache_hits", 0),
            pairs=row.get("pairs", 0),
            estimated_pairs=row.get("estimated_pairs", 0),
            simulated_seconds=float(row.get("simulated_seconds", 0.0)),
            wall_seconds=float(row.get("wall_seconds", 0.0)),
        )
        for name, row in snap.get("tenants", {}).items()
    )
    return ServiceReport(
        counts=dict(snap.get("counts", {})),
        queue_latencies=list(snap.get("queue_latencies", ())),
        tenants=tenants,
        dispatch_order=tuple(snap.get("dispatch_order", ())),
        cache_hits=getattr(cache, "hits", 0),
        cache_misses=getattr(cache, "misses", 0),
        cache_evictions=getattr(cache, "evictions", 0),
        pool_devices=snap.get("pool_devices", 0),
        pooled_runs=snap.get("pooled_runs", 0),
        pool_busy_seconds=float(snap.get("pool_busy_seconds", 0.0)),
        pool_allocated_seconds=float(snap.get("pool_allocated_seconds", 0.0)),
        checkpoint_writes=int(ckpt.get("writes", 0)),
        checkpoint_loads=int(ckpt.get("loads", 0)),
        checkpoint_bytes=int(ckpt.get("bytes_written", 0)),
        checkpoint_write_seconds=float(ckpt.get("write_seconds", 0.0)),
        chaos=str(snap.get("chaos", "")),
        uptime_seconds=float(snap.get("uptime_seconds", 0.0)),
    )

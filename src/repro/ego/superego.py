"""SUPER-EGO driver: sort, join, and map results to original point ids.

Produces the same ordered result-set semantics as the GPU join (both
directions of every pair, plus the identity pairs), so results are directly
comparable. The returned :class:`EgoOpCounts` feeds the modeled 16-core
execution time (:func:`repro.perfmodel.cputime.superego_seconds`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ego.egojoin import EgoOpCounts, ego_join
from repro.ego.egosort import EgoSorted, ego_preprocess
from repro.util import as_points_array

__all__ = ["SuperEgo", "SuperEgoResult"]


@dataclass(frozen=True)
class SuperEgoResult:
    """Outcome of a SUPER-EGO self-join."""

    pairs: np.ndarray  # ordered pairs in original ids (mirrored + self)
    counts: EgoOpCounts
    sorted_view: EgoSorted

    @property
    def num_pairs(self) -> int:
        return len(self.pairs)

    def sorted_pairs(self) -> np.ndarray:
        if len(self.pairs) == 0:
            return self.pairs
        order = np.lexsort((self.pairs[:, 1], self.pairs[:, 0]))
        return self.pairs[order]


class SuperEgo:
    """The CPU baseline algorithm.

    Parameters
    ----------
    simple_join_size:
        Sequence-length threshold below which the recursion switches to the
        vectorized simple join.
    include_self:
        Emit the identity pairs (matching the GPU join's semantics).
    """

    def __init__(self, *, simple_join_size: int = 16, include_self: bool = True):
        self.simple_join_size = simple_join_size
        self.include_self = include_self

    def join(self, points, epsilon: float, *, collect_pairs: bool = True) -> SuperEgoResult:
        """Run EGO-sort + EGO-join.

        ``collect_pairs=False`` runs in counting mode: the result pair array
        is empty but all operation counts (and ``counts.result_pairs``) are
        exact — the mode the benchmarks use at scale.
        """
        pts = as_points_array(points)
        sorted_view = ego_preprocess(pts, epsilon)
        raw, counts = ego_join(
            sorted_view,
            simple_join_size=self.simple_join_size,
            collect_pairs=collect_pairs,
        )
        if collect_pairs:
            orig = sorted_view.order
            unordered = np.stack([orig[raw[:, 0]], orig[raw[:, 1]]], axis=1)
            blocks = [unordered, unordered[:, ::-1]] if len(unordered) else []
            if self.include_self:
                diag = np.arange(len(pts), dtype=np.int64)
                blocks.append(np.stack([diag, diag], axis=1))
            pairs = (
                np.concatenate(blocks, axis=0)
                if blocks
                else np.empty((0, 2), dtype=np.int64)
            )
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        return SuperEgoResult(pairs=pairs, counts=counts, sorted_view=sorted_view)

    def result_rows(self, counts: EgoOpCounts, num_points: int) -> int:
        """Ordered result rows implied by counting-mode op counts."""
        rows = 2 * counts.result_pairs
        if self.include_self:
            rows += num_points
        return rows

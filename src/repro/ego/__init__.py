"""SUPER-EGO — the state-of-the-art parallel CPU baseline (Kalashnikov 2013).

The Epsilon Grid Order (EGO) join the paper compares against:

1. **EGO-sort** (:mod:`repro.ego.egosort`): reorder dimensions for
   selectivity, then sort points by their ε-cell coordinates
   lexicographically;
2. **EGO-join** (:mod:`repro.ego.egojoin`): recursively join contiguous
   sequences of the sorted array, pruning sequence pairs whose cell
   bounding boxes are farther than one cell apart, and switching to a
   vectorized simple join below a size threshold;
3. **SuperEgo** (:mod:`repro.ego.superego`): the driver — produces the
   exact result pair set plus the operation counts
   (:class:`~repro.ego.egojoin.EgoOpCounts`) that the CPU time model
   (:mod:`repro.perfmodel.cputime`) converts into modeled 16-core seconds.
"""

from repro.ego.egojoin import EgoOpCounts, ego_join
from repro.ego.egosort import EgoSorted, ego_preprocess
from repro.ego.superego import SuperEgo, SuperEgoResult

__all__ = [
    "EgoOpCounts",
    "EgoSorted",
    "SuperEgo",
    "SuperEgoResult",
    "ego_join",
    "ego_preprocess",
]

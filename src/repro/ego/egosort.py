"""EGO-sort: dimension reordering and ε-grid lexicographic ordering.

EGO lays the dataset out so that points close in space are close in the
array: each point's ε-cell coordinates, compared lexicographically, define
the order. SUPER-EGO additionally *reorders the dimensions* before sorting
so the most selective dimension (the one spanning the most cells, hence the
best pruner) comes first — that choice drives the recursion's early prunes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import as_points_array, check_epsilon

__all__ = ["EgoSorted", "ego_preprocess"]


@dataclass(frozen=True)
class EgoSorted:
    """The EGO-sorted view of a dataset.

    Attributes
    ----------
    points:
        Points with *reordered dimensions*, in EGO order, shape ``(N, n)``.
    cells:
        ε-cell coordinate of each (reordered) point, same order.
    order:
        Original index of each sorted row (``points[i] ==
        original[order[i]][dim_order]``).
    dim_order:
        The dimension permutation applied (most selective first).
    epsilon:
        The grid/cell width used.
    """

    points: np.ndarray
    cells: np.ndarray
    order: np.ndarray
    dim_order: np.ndarray
    epsilon: float

    @property
    def num_points(self) -> int:
        return len(self.points)


def _selectivity_dim_order(points: np.ndarray, epsilon: float) -> np.ndarray:
    """Dimensions sorted by descending cell span (ties: lower index first).

    A dimension spanning more ε-cells separates sequences sooner in the
    lexicographic comparison, which is where EGO-join prunes.
    """
    if len(points) == 0:
        return np.arange(points.shape[1])
    spans = (points.max(axis=0) - points.min(axis=0)) / epsilon
    return np.argsort(-spans, kind="stable")


def ego_preprocess(points, epsilon: float) -> EgoSorted:
    """EGO-sort a dataset: reorder dimensions, compute cells, sort."""
    pts = as_points_array(points)
    eps = check_epsilon(epsilon)
    dim_order = _selectivity_dim_order(pts, eps)
    reordered = np.ascontiguousarray(pts[:, dim_order])
    if len(reordered):
        mins = reordered.min(axis=0)
        cells = np.floor((reordered - mins) / eps).astype(np.int64)
    else:
        cells = np.zeros_like(reordered, dtype=np.int64)
    # lexicographic order over cell coords, first dimension most significant
    order = np.lexsort(tuple(cells[:, d] for d in range(cells.shape[1] - 1, -1, -1)))
    return EgoSorted(
        points=reordered[order],
        cells=cells[order],
        order=order.astype(np.int64),
        dim_order=dim_order.astype(np.int64),
        epsilon=eps,
    )

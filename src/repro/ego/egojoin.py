"""EGO-join: recursive sequence joining with cell-distance pruning.

Two contiguous sequences of the EGO-sorted array are joined by:

- **prune** — if the sequences' cell bounding boxes are more than one cell
  apart in *any* dimension, no pair can be within ε (each cell is ε wide);
- **simple join** — below a size threshold, refine all cross pairs with one
  vectorized distance pass (SUPER-EGO's unrolled inner loop);
- **recurse** — otherwise split (both halves for a self block, the longer
  sequence for a cross block) and join the sub-sequences.

The self-join is seeded with ``join(D, D)``; self blocks recurse as
(L,L), (L,H), (H,H) so every unordered pair is produced exactly once.

Note on pruning strength: the original EGO prune compares sequences
lexicographically (dimension d participates only while earlier dimensions
are equal); we use the bounding-box relaxation, which is equally *correct*
(never prunes a producing pair) but occasionally visits sequence pairs the
original would cut. The operation counts therefore slightly overestimate
SUPER-EGO's work — a conservative bias for the CPU baseline the paper
beats. See DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ego.egosort import EgoSorted

__all__ = ["EgoOpCounts", "ego_join"]

_DEFAULT_SIMPLE_JOIN_SIZE = 16


@dataclass
class EgoOpCounts:
    """Work performed by one EGO-join execution (drives the CPU time model)."""

    distance_computations: int = 0
    sequence_comparisons: int = 0
    simple_joins: int = 0
    prunes: int = 0
    result_pairs: int = 0  # unordered pairs (i < j), before mirroring

    def merge(self, other: "EgoOpCounts") -> None:
        self.distance_computations += other.distance_computations
        self.sequence_comparisons += other.sequence_comparisons
        self.simple_joins += other.simple_joins
        self.prunes += other.prunes
        self.result_pairs += other.result_pairs


@dataclass
class _JoinState:
    sorted_data: EgoSorted
    eps2: float
    threshold: int
    collect: bool
    counts: EgoOpCounts = field(default_factory=EgoOpCounts)
    pairs: list[np.ndarray] = field(default_factory=list)
    # per-dimension prefix min/max of cell coords would cost O(N n) memory;
    # recomputing per call on slices is vectorized and cheap.


def _bbox_prunable(state: _JoinState, a: slice, b: slice) -> bool:
    """True if no point of A can be within ε of any point of B."""
    cells = state.sorted_data.cells
    ca, cb = cells[a], cells[b]
    lo_a, hi_a = ca.min(axis=0), ca.max(axis=0)
    lo_b, hi_b = cb.min(axis=0), cb.max(axis=0)
    return bool(((lo_b > hi_a + 1) | (lo_a > hi_b + 1)).any())


def _simple_join(state: _JoinState, a: slice, b: slice, self_block: bool) -> None:
    """Vectorized all-pairs refinement of two small sequences."""
    pts = state.sorted_data.points
    pa, pb = pts[a], pts[b]
    state.counts.simple_joins += 1
    state.counts.distance_computations += len(pa) * len(pb)
    d2 = ((pa[:, None, :] - pb[None, :, :]) ** 2).sum(axis=-1)
    i_loc, j_loc = np.nonzero(d2 <= state.eps2)
    i = i_loc + a.start
    j = j_loc + b.start
    if self_block:
        keep = i < j  # unordered, no self
        i, j = i[keep], j[keep]
    state.counts.result_pairs += len(i)
    if state.collect and len(i):
        state.pairs.append(np.stack([i, j], axis=1))


def _join(state: _JoinState, a: slice, b: slice) -> None:
    na = a.stop - a.start
    nb = b.stop - b.start
    if na == 0 or nb == 0:
        return
    self_block = a == b
    state.counts.sequence_comparisons += 1
    if not self_block and _bbox_prunable(state, a, b):
        state.counts.prunes += 1
        return
    if na <= state.threshold and nb <= state.threshold:
        _simple_join(state, a, b, self_block)
        return
    if self_block:
        mid = a.start + na // 2
        lo, hi = slice(a.start, mid), slice(mid, a.stop)
        _join(state, lo, lo)
        _join(state, lo, hi)
        _join(state, hi, hi)
        return
    # split the longer sequence
    if na >= nb:
        mid = a.start + na // 2
        _join(state, slice(a.start, mid), b)
        _join(state, slice(mid, a.stop), b)
    else:
        mid = b.start + nb // 2
        _join(state, a, slice(b.start, mid))
        _join(state, a, slice(mid, b.stop))


def ego_join(
    sorted_data: EgoSorted,
    *,
    simple_join_size: int = _DEFAULT_SIMPLE_JOIN_SIZE,
    collect_pairs: bool = True,
) -> tuple[np.ndarray, EgoOpCounts]:
    """Self-join an EGO-sorted dataset.

    Returns ``(pairs, counts)`` where ``pairs`` holds each unordered pair
    ``(i, j)``, ``i < j``, as *sorted-array positions* (empty when
    ``collect_pairs=False``, which is the op-counting mode the CPU time
    model uses at scale).
    """
    if simple_join_size < 1:
        raise ValueError("simple_join_size must be >= 1")
    n = sorted_data.num_points
    state = _JoinState(
        sorted_data=sorted_data,
        eps2=sorted_data.epsilon**2,
        threshold=simple_join_size,
        collect=collect_pairs,
    )
    _join(state, slice(0, n), slice(0, n))
    if state.pairs:
        pairs = np.concatenate(state.pairs, axis=0)
    else:
        pairs = np.empty((0, 2), dtype=np.int64)
    return pairs, state.counts

"""repro — Load-imbalance-mitigated GPU similarity self-join, reproduced.

A full reproduction of Gallet & Gowanlock, *Load Imbalance Mitigation
Optimizations for GPU-Accelerated Similarity Joins* (2019), on a simulated
SIMT substrate:

- :class:`SelfJoin` / :class:`OptimizationConfig` — the self-join with the
  paper's optimizations (LID-UNICOMP, SORTBYWL, WORKQUEUE, k-granularity);
- :mod:`repro.grid` — the ε-grid index;
- :mod:`repro.simt` — the warp-level GPU simulator;
- :mod:`repro.perfmodel` — the vectorized performance model for
  paper-scale datasets;
- :mod:`repro.multigpu` — the self-join sharded over a pool of simulated
  devices, with device-level load balancing;
- :mod:`repro.resilience` — seeded fault injection (device death,
  stragglers, transient errors, forced overflows) and the recovery policy
  that lets the sharded join survive it with an identical result;
- :mod:`repro.ego` — the SUPER-EGO CPU baseline;
- :mod:`repro.data` — paper dataset generators;
- :mod:`repro.bench` — the per-figure/table experiment harness.

Quickstart::

    import numpy as np
    from repro import SelfJoin, PRESETS

    points = np.random.default_rng(0).uniform(0, 10, (2000, 2))
    result = SelfJoin(PRESETS["combined"]).execute(points, epsilon=0.5)
    print(result.num_pairs, result.total_seconds, result.warp_execution_efficiency)
"""

from repro.core import JoinResult, OptimizationConfig, PRESETS, SelfJoin, SimilarityJoin
from repro.grid import GridIndex
from repro.multigpu import MultiGpuSelfJoin, MultiGpuSimilarityJoin
from repro.resilience import FaultPlan, RecoveryPolicy
from repro.runtime import (
    JoinPlan,
    OverflowConfig,
    ProfilingOptions,
    Runner,
    RuntimeConfig,
    ShardingConfig,
    compile_join,
    compile_knn_join,
    compile_self_join,
    compile_similarity_join,
)
from repro.simt import CostParams, DeviceSpec

__version__ = "1.0.0"

__all__ = [
    "CostParams",
    "DeviceSpec",
    "FaultPlan",
    "GridIndex",
    "JoinPlan",
    "JoinResult",
    "MultiGpuSelfJoin",
    "MultiGpuSimilarityJoin",
    "OptimizationConfig",
    "OverflowConfig",
    "PRESETS",
    "ProfilingOptions",
    "RecoveryPolicy",
    "Runner",
    "RuntimeConfig",
    "SelfJoin",
    "SimilarityJoin",
    "ShardingConfig",
    "compile_join",
    "compile_knn_join",
    "compile_self_join",
    "compile_similarity_join",
    "__version__",
]

"""Result-set verification — trust-but-verify for join outputs.

Given a claimed join result, check the properties that do not require
recomputing the join (validity, symmetry, self pairs, duplicates) plus a
*sampled completeness* check (exactly re-solving the range query of a
random subset of points). Used by the test suite and available to users
validating custom configurations or external implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid import GridIndex
from repro.grid.query import grid_neighbor_counts, iter_candidate_blocks
from repro.util import as_points_array, check_epsilon, resolve_rng

__all__ = ["VerificationReport", "verify_selfjoin_result"]


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a result-set verification."""

    ok: bool
    num_pairs: int
    problems: list[str] = field(default_factory=list)
    sampled_points: int = 0

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(
                "join result verification failed:\n  " + "\n  ".join(self.problems)
            )


def verify_selfjoin_result(
    points,
    epsilon: float,
    pairs: np.ndarray,
    *,
    include_self: bool = True,
    sample: int = 64,
    rng=None,
) -> VerificationReport:
    """Verify a claimed self-join result set.

    Checks, in order of increasing cost:

    1. shape and index validity;
    2. no duplicate rows;
    3. every claimed pair is truly within ε (full distance re-check);
    4. symmetry: (i, j) present ⇔ (j, i) present;
    5. self-pair policy matches ``include_self``;
    6. completeness on a random ``sample`` of points: their exact
       neighborhoods (recomputed from scratch) appear verbatim.
    """
    pts = as_points_array(points)
    eps = check_epsilon(epsilon)
    pairs = np.asarray(pairs, dtype=np.int64)
    problems: list[str] = []

    if pairs.ndim != 2 or (pairs.size and pairs.shape[1] != 2):
        return VerificationReport(False, 0, [f"pairs must be (M, 2), got {pairs.shape}"])
    n = len(pts)
    if pairs.size and (pairs.min() < 0 or pairs.max() >= n):
        problems.append("pair indices out of range")
        return VerificationReport(False, len(pairs), problems)

    keys = pairs[:, 0] * np.int64(n) + pairs[:, 1]
    if len(np.unique(keys)) != len(keys):
        problems.append("duplicate pairs present")

    if pairs.size:
        d2 = ((pts[pairs[:, 0]] - pts[pairs[:, 1]]) ** 2).sum(axis=1)
        bad = int((d2 > eps * eps).sum())
        if bad:
            problems.append(f"{bad} claimed pairs exceed epsilon")

    mirrored = pairs[:, 1] * np.int64(n) + pairs[:, 0]
    if not np.isin(mirrored, keys).all():
        problems.append("result is not symmetric")

    self_rows = int((pairs[:, 0] == pairs[:, 1]).sum()) if pairs.size else 0
    if include_self and self_rows != n:
        problems.append(f"expected {n} self pairs, found {self_rows}")
    if not include_self and self_rows:
        problems.append(f"found {self_rows} self pairs but include_self=False")

    # sampled completeness: per-point result counts vs exact counts
    sampled = 0
    if n:
        sampled = min(sample, n)
        chosen = resolve_rng(rng if rng is not None else 0).choice(
            n, size=sampled, replace=False
        )
        index = GridIndex(pts, eps)
        exact = grid_neighbor_counts(index, chosen, include_self=include_self)
        claimed = np.bincount(pairs[:, 0], minlength=n)[chosen] if pairs.size else np.zeros(sampled, dtype=np.int64)
        wrong = int((claimed != exact).sum())
        if wrong:
            problems.append(
                f"{wrong}/{sampled} sampled points have wrong neighbor counts"
            )

    return VerificationReport(
        ok=not problems,
        num_pairs=len(pairs),
        problems=problems,
        sampled_points=sampled,
    )

"""scipy cKDTree oracle — an independent implementation to test against.

Using a third-party spatial index as a second oracle guards against the
brute force and the grid sharing a bug (e.g. a boundary-condition mistake
in ``<=`` vs ``<``).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from repro.util import as_points_array, check_epsilon

__all__ = ["kdtree_pairs"]


def kdtree_pairs(points, epsilon: float, *, include_self: bool = True) -> np.ndarray:
    """All ordered pairs within ``epsilon``, via scipy's KD-tree.

    Lexicographically sorted, shape ``(M, 2)`` int64.
    """
    pts = as_points_array(points)
    eps = check_epsilon(epsilon)
    if len(pts) == 0:
        return np.empty((0, 2), dtype=np.int64)
    tree = cKDTree(pts)
    unordered = tree.query_pairs(eps, output_type="ndarray")  # i < j, no self
    if len(unordered):
        both = np.concatenate([unordered, unordered[:, ::-1]], axis=0)
    else:
        both = np.empty((0, 2), dtype=np.int64)
    if include_self:
        diag = np.arange(len(pts), dtype=np.int64)
        both = np.concatenate([both, np.stack([diag, diag], axis=1)], axis=0)
    order = np.lexsort((both[:, 1], both[:, 0]))
    return both[order].astype(np.int64)

"""Reference baselines used for correctness validation.

These are *oracles*, not performance contenders: a blocked O(N²) brute
force and a scipy KD-tree wrapper. Every kernel, pattern and CPU algorithm
in the package is tested against them.
"""

from repro.baselines.bruteforce import brute_force_neighbor_counts, brute_force_pairs
from repro.baselines.ckdtree import kdtree_pairs
from repro.baselines.verify import VerificationReport, verify_selfjoin_result

__all__ = [
    "VerificationReport",
    "brute_force_neighbor_counts",
    "brute_force_pairs",
    "kdtree_pairs",
    "verify_selfjoin_result",
]

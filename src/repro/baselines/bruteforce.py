"""Blocked O(N²) brute-force self-join — the correctness oracle.

The double loop of the paper's introduction, vectorized in row blocks to
keep peak memory at ``block × N`` distances.
"""

from __future__ import annotations

import numpy as np

from repro.util import as_points_array, check_epsilon

__all__ = ["brute_force_neighbor_counts", "brute_force_pairs"]

_DEFAULT_BLOCK = 512


def brute_force_pairs(
    points,
    epsilon: float,
    *,
    include_self: bool = True,
    block: int = _DEFAULT_BLOCK,
) -> np.ndarray:
    """All ordered pairs ``(i, j)`` with ``dist(p_i, p_j) <= epsilon``.

    Returned in lexicographic order, shape ``(M, 2)`` int64.
    """
    pts = as_points_array(points)
    eps2 = check_epsilon(epsilon) ** 2
    if block < 1:
        raise ValueError("block must be >= 1")
    n = len(pts)
    out: list[np.ndarray] = []
    for start in range(0, n, block):
        rows = pts[start : start + block]
        d2 = ((rows[:, None, :] - pts[None, :, :]) ** 2).sum(axis=-1)
        i_loc, j = np.nonzero(d2 <= eps2)
        i = i_loc + start
        if not include_self:
            keep = i != j
            i, j = i[keep], j[keep]
        if len(i):
            out.append(np.stack([i, j], axis=1))
    if not out:
        return np.empty((0, 2), dtype=np.int64)
    return np.concatenate(out, axis=0).astype(np.int64)


def brute_force_neighbor_counts(
    points,
    epsilon: float,
    *,
    include_self: bool = True,
    block: int = _DEFAULT_BLOCK,
) -> np.ndarray:
    """Exact ε-neighbor count per point, shape ``(N,)`` int64."""
    pts = as_points_array(points)
    eps2 = check_epsilon(epsilon) ** 2
    n = len(pts)
    counts = np.zeros(n, dtype=np.int64)
    for start in range(0, n, block):
        rows = pts[start : start + block]
        d2 = ((rows[:, None, :] - pts[None, :, :]) ** 2).sum(axis=-1)
        hit = d2 <= eps2
        if not include_self:
            for r in range(len(rows)):
                hit[r, start + r] = False
        counts[start : start + len(rows)] = hit.sum(axis=1)
    return counts

"""Proxies for the paper's real-world datasets.

The originals are not redistributable here, so seeded generators reproduce
the *workload-relevant structure* (see DESIGN.md's substitution table):

- **SW-like** — the SW- space-weather datasets hold latitude/longitude of
  ionosphere measurements taken along satellite ground tracks (optionally
  with the total electron content, TEC, as a third dimension). The proxy
  samples sinusoidal ground tracks over the globe with measurement noise
  plus a diffuse background, giving the banded, locally dense spatial
  distribution that makes per-point workloads heavy-tailed.
- **Gaia-like** — star positions concentrate along the galactic plane with
  a central bulge; the proxy mixes a Laplace-latitude disk, a Gaussian
  bulge, and an isotropic background.

Coordinates are degrees (longitude ∈ [-180, 180], latitude ∈ [-90, 90]),
so the paper's ε values (fractions of a degree to a few degrees) carry
over directly.
"""

from __future__ import annotations

import numpy as np

from repro.util import resolve_rng

__all__ = ["gaia_like", "sw_like"]


def _wrap_lon(lon: np.ndarray) -> np.ndarray:
    return (lon + 180.0) % 360.0 - 180.0


def sw_like(
    num_points: int,
    ndim: int = 2,
    *,
    seed=None,
    num_tracks: int = 24,
    background_fraction: float = 0.08,
) -> np.ndarray:
    """Space-weather-like dataset: satellite ground tracks over the globe.

    ``ndim = 2`` gives (longitude, latitude); ``ndim = 3`` appends a TEC
    column (log-normal, scaled to a ~0–100 TECU range) as in the SW3D
    datasets.
    """
    if ndim not in (2, 3):
        raise ValueError("sw_like supports ndim of 2 or 3")
    if num_points < 0:
        raise ValueError("num_points must be >= 0")
    if num_tracks < 1:
        raise ValueError("num_tracks must be >= 1")
    if not 0 <= background_fraction < 1:
        raise ValueError("background_fraction must be in [0, 1)")
    rng = resolve_rng(seed)

    n_bg = int(num_points * background_fraction)
    n_track = num_points - n_bg

    # each sample sits on one of `num_tracks` inclined sinusoidal tracks
    track = rng.integers(0, num_tracks, size=n_track)
    phase = rng.uniform(0.0, 2 * np.pi, size=num_tracks)[track]
    incl = rng.uniform(40.0, 75.0, size=num_tracks)[track]  # orbital inclination
    t = rng.uniform(0.0, 2 * np.pi, size=n_track)
    lon = _wrap_lon(np.degrees(t) * 2.03 + np.degrees(phase))  # precessing node
    lat = incl * np.sin(t) + rng.normal(0.0, 0.8, size=n_track)
    np.clip(lat, -90.0, 90.0, out=lat)

    bg_lon = rng.uniform(-180.0, 180.0, size=n_bg)
    bg_lat = np.degrees(np.arcsin(rng.uniform(-1.0, 1.0, size=n_bg)))

    lon = np.concatenate([lon, bg_lon])
    lat = np.concatenate([lat, bg_lat])
    cols = [lon, lat]
    if ndim == 3:
        tec = rng.lognormal(mean=2.5, sigma=0.6, size=num_points)
        cols.append(np.clip(tec, 0.0, 100.0))
    out = np.stack(cols, axis=1)
    return out[rng.permutation(num_points)]


def gaia_like(
    num_points: int,
    *,
    seed=None,
    disk_scale_deg: float = 12.0,
    bulge_fraction: float = 0.15,
    background_fraction: float = 0.10,
) -> np.ndarray:
    """Gaia-catalog-like sky positions (galactic longitude, latitude).

    A thin disk (Laplace latitude profile), a central bulge, and an
    isotropic background — the heavy central concentration drives the same
    workload skew as the paper's 50M-star excerpt.
    """
    if num_points < 0:
        raise ValueError("num_points must be >= 0")
    if disk_scale_deg <= 0:
        raise ValueError("disk_scale_deg must be positive")
    if not 0 <= bulge_fraction + background_fraction < 1:
        raise ValueError("bulge and background fractions must sum below 1")
    rng = resolve_rng(seed)

    n_bulge = int(num_points * bulge_fraction)
    n_bg = int(num_points * background_fraction)
    n_disk = num_points - n_bulge - n_bg

    disk_lon = rng.uniform(-180.0, 180.0, size=n_disk)
    disk_lat = rng.laplace(0.0, disk_scale_deg, size=n_disk)

    bulge_lon = rng.normal(0.0, 8.0, size=n_bulge)
    bulge_lat = rng.normal(0.0, 6.0, size=n_bulge)

    bg_lon = rng.uniform(-180.0, 180.0, size=n_bg)
    bg_lat = np.degrees(np.arcsin(rng.uniform(-1.0, 1.0, size=n_bg)))

    lon = _wrap_lon(np.concatenate([disk_lon, bulge_lon, bg_lon]))
    lat = np.clip(np.concatenate([disk_lat, bulge_lat, bg_lat]), -90.0, 90.0)
    out = np.stack([lon, lat], axis=1)
    return out[rng.permutation(num_points)]

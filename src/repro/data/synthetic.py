"""Synthetic datasets: uniform and exponential distributions (Section IV-A).

The paper generates two million points in 2–6 dimensions, uniformly and
exponentially distributed (λ = 40), "as they present opposite workloads":
uniform data gives every point a similar neighborhood, exponential data
concentrates mass near the origin so per-point workloads span orders of
magnitude.

Domain conventions (documented for ε comparability):

- uniform: the hypercube ``[0, 100]^n`` — with the paper's 2-D ε range
  (0.2…1.0) this yields hundreds of neighbors per point at 2M points,
  matching the paper's workload regime;
- exponential: i.i.d. ``Exp(rate=λ)`` coordinates (mean 1/λ = 0.025), so
  the paper's ε range (0.05…0.2) spans "a few neighbors" to "most of the
  dense core".
"""

from __future__ import annotations

import numpy as np

from repro.util import resolve_rng

__all__ = ["exponential", "uniform"]


def uniform(
    num_points: int,
    ndim: int,
    *,
    seed=None,
    low: float = 0.0,
    high: float = 100.0,
) -> np.ndarray:
    """Uniformly distributed points in ``[low, high]^ndim``."""
    if num_points < 0 or ndim < 1:
        raise ValueError("num_points must be >= 0 and ndim >= 1")
    if not high > low:
        raise ValueError("high must exceed low")
    rng = resolve_rng(seed)
    return rng.uniform(low, high, size=(num_points, ndim))


def exponential(
    num_points: int,
    ndim: int,
    *,
    seed=None,
    lam: float = 40.0,
) -> np.ndarray:
    """Exponentially distributed points: i.i.d. ``Exp(rate=lam)`` coordinates.

    ``lam`` is the paper's λ = 40 (rate parameter; the coordinate mean is
    ``1/lam``). Density decays away from the origin, producing the
    heavy-tailed per-point workloads the load-balancing optimizations
    target.
    """
    if num_points < 0 or ndim < 1:
        raise ValueError("num_points must be >= 0 and ndim >= 1")
    if lam <= 0:
        raise ValueError("lam must be positive")
    rng = resolve_rng(seed)
    return rng.exponential(1.0 / lam, size=(num_points, ndim))

"""The named datasets of the paper's Table I, with benchmark scaling.

Every entry knows its paper-scale size and how to generate a seeded,
smaller instance. The scaling rule keeps the *spatial domain fixed* and
shrinks N, so ε sweeps need rescaled values to hold per-point workloads
comparable — the per-experiment ε mappings live with the experiments
(:mod:`repro.bench.experiments`) and are recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.realworld import gaia_like, sw_like
from repro.data.synthetic import exponential, uniform

__all__ = ["CATALOG", "PaperDataset", "load_dataset"]


@dataclass(frozen=True)
class PaperDataset:
    """One row of the paper's Table I."""

    name: str
    ndim: int
    paper_size: int
    distribution: str  # "uniform" | "exponential" | "sw" | "gaia"
    generator: Callable[[int, int], np.ndarray]  # (size, seed) -> points

    def generate(self, size: int | None = None, *, seed: int = 0) -> np.ndarray:
        """Seeded instance; default size is the full paper size."""
        n = self.paper_size if size is None else int(size)
        if n < 0:
            raise ValueError("size must be >= 0")
        return self.generator(n, seed)


def _entry(name, ndim, paper_size, distribution, generator) -> PaperDataset:
    return PaperDataset(name, ndim, paper_size, distribution, generator)


def _make_catalog() -> dict[str, PaperDataset]:
    cat: dict[str, PaperDataset] = {}
    for d in range(2, 7):
        cat[f"Unif{d}D2M"] = _entry(
            f"Unif{d}D2M",
            d,
            2_000_000,
            "uniform",
            lambda n, seed, d=d: uniform(n, d, seed=seed),
        )
        cat[f"Expo{d}D2M"] = _entry(
            f"Expo{d}D2M",
            d,
            2_000_000,
            "exponential",
            lambda n, seed, d=d: exponential(n, d, seed=seed),
        )
    cat["SW2DA"] = _entry(
        "SW2DA", 2, 1_864_620, "sw", lambda n, seed: sw_like(n, 2, seed=seed)
    )
    cat["SW2DB"] = _entry(
        "SW2DB", 2, 5_159_737, "sw", lambda n, seed: sw_like(n, 2, seed=seed + 1)
    )
    cat["SW3DA"] = _entry(
        "SW3DA", 3, 1_864_620, "sw", lambda n, seed: sw_like(n, 3, seed=seed)
    )
    cat["SW3DB"] = _entry(
        "SW3DB", 3, 5_159_737, "sw", lambda n, seed: sw_like(n, 3, seed=seed + 1)
    )
    cat["Gaia"] = _entry(
        "Gaia", 2, 50_000_000, "gaia", lambda n, seed: gaia_like(n, seed=seed)
    )
    return cat


#: Table I registry.
CATALOG: dict[str, PaperDataset] = _make_catalog()


def load_dataset(name: str, size: int | None = None, *, seed: int = 0) -> np.ndarray:
    """Generate a named Table I dataset at the requested size."""
    try:
        entry = CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {sorted(CATALOG)}"
        ) from None
    return entry.generate(size, seed=seed)

"""Adversarial datasets — worst cases for grids, patterns and balancing.

Pathological inputs a production spatial-join library must survive:
boundary-exact coordinates (the ``<=`` vs ``<`` traps), fully degenerate
geometry (every point identical — one cell holds everything), extreme
two-scale skew (one cell with half the dataset), and lattice data aligned
exactly on cell edges. The integration suite runs every optimization
configuration over all of them.
"""

from __future__ import annotations

import numpy as np

from repro.util import resolve_rng

__all__ = [
    "ADVERSARIAL_GENERATORS",
    "all_identical",
    "cell_boundary_lattice",
    "collinear",
    "dense_core_sparse_halo",
    "stride_aliased_hotspots",
    "two_distant_blobs",
]


def all_identical(num_points: int, ndim: int = 2, *, seed=None) -> np.ndarray:
    """Every point identical: one grid cell, quadratic result set."""
    rng = resolve_rng(seed)
    location = rng.uniform(0, 10, size=ndim)
    return np.tile(location, (num_points, 1))


def cell_boundary_lattice(side: int, ndim: int = 2, *, epsilon: float = 1.0) -> np.ndarray:
    """Points exactly on cell-boundary multiples of ε.

    Floating-point cell assignment of coordinates equal to k·ε is the
    classic off-by-one-cell trap; distances between lattice neighbors are
    exactly ε (inclusive-boundary trap).
    """
    if side < 1 or ndim < 1:
        raise ValueError("side and ndim must be >= 1")
    axes = [np.arange(side, dtype=np.float64) * epsilon] * ndim
    grids = np.meshgrid(*axes, indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)


def collinear(num_points: int, ndim: int = 2, *, seed=None) -> np.ndarray:
    """Points on a 1-D line embedded in n-D (degenerate bounding box)."""
    rng = resolve_rng(seed)
    t = np.sort(rng.uniform(0, 10, num_points))
    direction = np.ones(ndim) / np.sqrt(ndim)
    return t[:, None] * direction[None, :]


def dense_core_sparse_halo(
    num_points: int, ndim: int = 2, *, core_fraction: float = 0.5, seed=None
) -> np.ndarray:
    """Half the dataset inside one ε-sized core, the rest spread thin —
    the maximal intra-warp imbalance case."""
    if not 0 < core_fraction < 1:
        raise ValueError("core_fraction must be in (0, 1)")
    rng = resolve_rng(seed)
    n_core = int(num_points * core_fraction)
    core = rng.uniform(0.0, 0.5, size=(n_core, ndim))
    halo = rng.uniform(0.0, 100.0, size=(num_points - n_core, ndim))
    out = np.concatenate([core, halo])
    return out[rng.permutation(len(out))]


def stride_aliased_hotspots(
    num_points: int,
    ndim: int = 2,
    *,
    period: int = 8,
    core_fraction_scale: float = 1.0,
    seed=None,
) -> np.ndarray:
    """Heavy points at ids ``0, period, 2*period, ...`` — the worst case
    for point-strided sharding.

    Real datasets often arrive *ordered* (interleaved sensor streams,
    region-major exports), so per-point workload can correlate
    periodically with position. Here every ``period``-th point sits in one
    ε-sized dense core (quadratic workload) while the rest spread thin:
    any round-robin partition whose stride shares a factor with ``period``
    lands all the heavy points on few shards, while workload-aware (LPT)
    partitioning levels them. ``core_fraction_scale`` shrinks the core
    population below ``1/period`` if desired.
    """
    if num_points < 0 or ndim < 1:
        raise ValueError("num_points must be >= 0 and ndim >= 1")
    if period < 2:
        raise ValueError("period must be >= 2")
    if not 0 < core_fraction_scale <= 1:
        raise ValueError("core_fraction_scale must be in (0, 1]")
    rng = resolve_rng(seed)
    out = rng.uniform(0.0, 100.0, size=(num_points, ndim))
    hot = np.arange(0, num_points, period)
    hot = hot[: max(1, int(round(len(hot) * core_fraction_scale)))] if len(hot) else hot
    if len(hot):
        out[hot] = rng.uniform(0.0, 0.5, size=(len(hot), ndim))
    return out


def two_distant_blobs(num_points: int, ndim: int = 2, *, seed=None) -> np.ndarray:
    """Two tight blobs separated by a huge empty span (sparse grid ids)."""
    rng = resolve_rng(seed)
    half = num_points // 2
    a = rng.normal(0.0, 0.3, size=(half, ndim))
    b = rng.normal(1e4, 0.3, size=(num_points - half, ndim))
    return np.concatenate([a, b])


#: name -> generator(num_points, ndim, seed) for parametrized tests
ADVERSARIAL_GENERATORS = {
    "all_identical": lambda n, d, seed: all_identical(n, d, seed=seed),
    "boundary_lattice": lambda n, d, seed: cell_boundary_lattice(
        max(2, int(round(n ** (1.0 / d)))), d
    ),
    "collinear": lambda n, d, seed: collinear(n, d, seed=seed),
    "dense_core": lambda n, d, seed: dense_core_sparse_halo(n, d, seed=seed),
    "distant_blobs": lambda n, d, seed: two_distant_blobs(n, d, seed=seed),
    "stride_aliased": lambda n, d, seed: stride_aliased_hotspots(n, d, seed=seed),
}

"""Dataset generators reproducing the paper's workload characteristics.

The paper's results are driven by one dataset property: the distribution of
per-point neighbor counts (uniform → balanced warps, exponential / real
spatial data → heavy-tailed workloads). The generators here reproduce those
properties:

- :func:`uniform` / :func:`exponential` — the synthetic Unif*/Expo*
  datasets (Section IV-A; exponential uses the paper's λ = 40);
- :func:`sw_like` — proxy for the SW- space-weather datasets
  (ground-track-clustered latitude/longitude, plus an ionosphere
  total-electron-content third dimension);
- :func:`gaia_like` — proxy for the Gaia star catalog excerpt
  (galactic-plane-concentrated sky positions);
- :mod:`repro.data.catalog` — the named Table I datasets with paper sizes
  and the scaling rule used by the benchmarks.
"""

from repro.data.catalog import CATALOG, PaperDataset, load_dataset
from repro.data.realworld import gaia_like, sw_like
from repro.data.synthetic import exponential, uniform

__all__ = [
    "CATALOG",
    "PaperDataset",
    "exponential",
    "gaia_like",
    "load_dataset",
    "sw_like",
    "uniform",
]

"""Deprecation shims: legacy facade kwargs → :class:`RuntimeConfig`.

The pre-runtime facades took every execution knob as its own keyword
argument (``engine=``, ``executor=``, ``fault_plan=``, ``recovery=``)
and forwarded it layer by layer. Those spellings keep working for one
deprecation cycle: the facades call :func:`warn_legacy` and fold the
value into the equivalent :class:`~repro.runtime.config.RuntimeConfig`,
so legacy call sites produce *exactly* the config an explicit
``RuntimeConfig(...)`` would (asserted by ``tests/runtime/
test_deprecation_shim.py``).
"""

from __future__ import annotations

import warnings

from repro.core.config import OptimizationConfig
from repro.runtime.config import RuntimeConfig

__all__ = ["split_config", "warn_legacy"]


def warn_legacy(facade: str, kwarg: str, instead: str) -> None:
    """Emit the one-cycle :class:`DeprecationWarning` for a legacy kwarg."""
    warnings.warn(
        f"{facade}({kwarg}=...) is deprecated; {instead}",
        DeprecationWarning,
        stacklevel=3,
    )


def split_config(
    config, runtime: RuntimeConfig | None, facade: str
) -> tuple[OptimizationConfig | None, RuntimeConfig | None]:
    """Let a :class:`RuntimeConfig` ride in the legacy ``config`` slot.

    Facades accept ``Facade(RuntimeConfig(...))`` as a convenience; this
    normalizes the two slots and rejects giving both.
    """
    if isinstance(config, RuntimeConfig):
        if runtime is not None:
            raise ValueError(
                f"{facade}: pass either a RuntimeConfig positionally or "
                "runtime=..., not both"
            )
        return None, config
    return config, runtime

"""`RuntimeConfig`: every cross-cutting execution knob, in one frozen value.

Before this package existed each knob travelled its own path: ``engine=``
was threaded through :class:`~repro.core.selfjoin.SelfJoin`,
:class:`~repro.core.executor.DeviceExecutor` *and*
:class:`~repro.multigpu.pool.DevicePool`; ``overflow_policy=`` took a
different route; ``recovery=`` a third. A :class:`RuntimeConfig` composes
the paper's :class:`~repro.core.config.OptimizationConfig` (the *what* —
pattern, k, SORTBYWL, WORKQUEUE, batching) with every *how* knob — engine,
replay fidelity, overflow handling, sharding, recovery, fault injection,
profiling retention — so facades compile it into a
:class:`~repro.runtime.plan.JoinPlan` and hand it to one
:class:`~repro.runtime.runner.Runner` instead of forwarding keyword
arguments layer by layer. One ``RuntimeConfig`` serves every registered
operation (:mod:`repro.runtime.ops`): the kNN driver threads it
unchanged into each expansion round's sub-plan, so sharding, recovery,
fault and checkpoint knobs apply per round without kNN-specific
spellings.

Sub-configs group the knobs that travel together:

- :class:`OverflowConfig` — what happens when a batch overflows its result
  buffer (the :class:`~repro.core.executor.DeviceExecutor` retry knobs);
- :class:`ShardingConfig` — pool size and the device-level load-balancing
  strategy (:mod:`repro.multigpu`); ``None`` means single-device;
- :class:`ProfilingOptions` — which execution artifacts the result keeps.

Everything is frozen and hashable (fault plans and policies already are),
so a ``RuntimeConfig`` can key caches and appear in golden fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import OptimizationConfig
from repro.core.executor import OVERFLOW_POLICIES
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import RecoveryPolicy
from repro.simt import ENGINES, CostParams, DeviceSpec

__all__ = [
    "CheckpointConfig",
    "NATIVE_ENGINE",
    "OverflowConfig",
    "ProfilingOptions",
    "REPLAY_MODES",
    "RUNTIME_ENGINES",
    "RuntimeConfig",
    "ShardingConfig",
    "WORKER_BACKENDS",
]

REPLAY_MODES = ("aggregate", "lockstep")

#: the fidelity-free array engine: exact pair sets via pure NumPy passes,
#: no SIMT machine, no warp/cycle accounting (``JoinResult.fidelity="none"``)
NATIVE_ENGINE = "native"

#: engines a RuntimeConfig accepts: the two simulated SIMT engines
#: (``repro.simt.ENGINES``) plus the native array engine
RUNTIME_ENGINES = (*ENGINES, NATIVE_ENGINE)

#: pooled shard dispatch backends: ``"inline"`` runs shards in-process on
#: the simulated scheduler clock; ``"process"`` (native engine only) fans
#: shards out over a process pool sharing the dataset via
#: ``multiprocessing.shared_memory`` / re-opened memory maps
WORKER_BACKENDS = ("inline", "process")


@dataclass(frozen=True)
class OverflowConfig:
    """Result-buffer overflow handling, resolved per run.

    ``policy=None`` (the default) picks automatically: ``"retry"`` when a
    :class:`~repro.resilience.policy.RecoveryPolicy` is active (a healing
    run should not abandon a whole plan over one under-sized buffer) and
    ``"raise"`` otherwise (the paper's re-plan-and-restart recovery).
    The remaining knobs parameterize the ``"retry"`` path — see
    :class:`~repro.core.executor.DeviceExecutor`.
    """

    policy: str | None = None
    growth: float = 4.0
    max_retries: int = 6
    backoff_seconds: float = 0.0

    def __post_init__(self):
        if self.policy is not None and self.policy not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {self.policy!r}; "
                f"expected one of {OVERFLOW_POLICIES} or None (auto)"
            )
        if self.growth <= 1.0:
            raise ValueError("growth must be > 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ValueError("backoff_seconds must be >= 0")

    def resolved_policy(self, recovery: RecoveryPolicy | None) -> str:
        """The effective executor policy under the given recovery setting."""
        if self.policy is not None:
            return self.policy
        return "retry" if recovery is not None else "raise"


@dataclass(frozen=True)
class ShardingConfig:
    """How one join spreads over a :class:`~repro.multigpu.pool.DevicePool`.

    ``num_devices`` copies of the runtime's device spec form the pool;
    ``planner`` partitions the query points (strided / cell_blocks /
    balanced LPT) and ``schedule`` drives dispatch (static pre-assignment
    vs the dynamic most-work-first device queue). ``shards_per_device``
    is the queue depth — the dynamic scheduler's stealing granularity.
    ``workers`` picks the dispatch backend: ``"inline"`` (default) runs
    shards in-process; ``"process"`` — native engine only — runs each
    device as a real worker process so shards occupy separate CPU cores.
    The backend never changes the merged result, so it is excluded from
    run identity.
    """

    num_devices: int = 2
    planner: str = "balanced"
    schedule: str = "dynamic"
    shards_per_device: int = 2
    workers: str = "inline"

    def __post_init__(self):
        # multigpu modules sit above this one in the import graph; pull the
        # canonical name lists at validation time, not import time
        from repro.multigpu.scheduler import SCHEDULE_MODES
        from repro.multigpu.sharding import SHARD_PLANNERS

        if self.num_devices < 1:
            raise ValueError("num_devices must be >= 1")
        if self.planner not in SHARD_PLANNERS:
            raise ValueError(
                f"unknown planner {self.planner!r}; expected one of {SHARD_PLANNERS}"
            )
        if self.schedule not in SCHEDULE_MODES:
            raise ValueError(
                f"unknown schedule mode {self.schedule!r}; "
                f"expected one of {SCHEDULE_MODES}"
            )
        if self.shards_per_device < 1:
            raise ValueError("shards_per_device must be >= 1")
        if self.workers not in WORKER_BACKENDS:
            raise ValueError(
                f"unknown worker backend {self.workers!r}; "
                f"expected one of {WORKER_BACKENDS}"
            )

    @property
    def num_shards(self) -> int:
        return self.num_devices * self.shards_per_device


@dataclass(frozen=True)
class CheckpointConfig:
    """Durable checkpoint/resume for one run (see
    :mod:`repro.resilience.checkpoint`).

    ``directory`` roots the :class:`~repro.resilience.checkpoint.CheckpointStore`;
    each run journals under its own fingerprint subdirectory, so many
    runs (and many configs) share one directory safely. ``keep=False``
    (the default) deletes the journal when the run completes —
    checkpoints exist to survive *interruption*; ``keep=True`` retains
    the fragments with a ``done`` marker for audit or re-reads.

    Checkpointing never changes what a run computes, so this config is
    excluded from run identity (``describe()``, golden fingerprints,
    :func:`~repro.resilience.checkpoint.config_identity`).
    """

    directory: str
    keep: bool = False

    def __post_init__(self):
        directory = str(self.directory)
        if not directory:
            raise ValueError("checkpoint directory must be a non-empty path")
        object.__setattr__(self, "directory", directory)


@dataclass(frozen=True)
class ProfilingOptions:
    """Which execution artifacts the returned result retains.

    ``keep_fragments`` preserves the per-batch pair blocks that back
    :meth:`~repro.core.result.JoinResult.iter_pairs` streaming;
    ``keep_trace`` preserves the pooled run's
    :class:`~repro.multigpu.scheduler.ScheduleTrace` (pool statistics are
    computed either way). Turn them off to shed memory on huge runs.
    """

    keep_fragments: bool = True
    keep_trace: bool = True


@dataclass(frozen=True)
class RuntimeConfig:
    """The complete execution recipe of one join.

    Parameters
    ----------
    optimization:
        The paper's optimization selection (pattern, k, SORTBYWL,
        WORKQUEUE, batching) — the *algorithm* half of the recipe.
    engine:
        Kernel execution engine: ``"interpreted"`` or ``"vectorized"``
        (bit-identical simulated results; see :mod:`repro.simt.vectorized`),
        or ``"native"`` — exact pair sets through pure NumPy array passes
        with no SIMT simulation (see :mod:`repro.runtime.native`; results
        carry ``fidelity="none"``).
    replay_mode:
        Warp replay fidelity: ``"aggregate"`` or ``"lockstep"``.
    seed:
        Hardware-scheduler shuffle seed; pooled device ``d`` runs with
        ``seed + d``.
    include_self:
        Self-join only: whether each point pairs with itself.
    estimate_safety_z:
        Pad the result-size estimate by this many standard errors before
        planning batches (0 = the paper's point estimate).
    device, costs:
        Simulated hardware; ``None`` means the paper's testbed class.
    overflow:
        Buffer-overflow handling (see :class:`OverflowConfig`).
    sharding:
        ``None`` runs single-device; a :class:`ShardingConfig` runs the
        join sharded over a device pool.
    recovery:
        Optional :class:`~repro.resilience.policy.RecoveryPolicy` enabling
        the self-healing scheduler loop on pooled runs.
    fault_plan:
        Optional seeded :class:`~repro.resilience.faults.FaultPlan` to
        inject. On pooled runs a plan with *device* faults implies the
        default ``RecoveryPolicy`` unless one is given explicitly
        (host :class:`~repro.resilience.faults.CrashPoint`\\ s do not —
        their recovery story is checkpoint resume, not requeue).
    profiling:
        Artifact-retention switches (see :class:`ProfilingOptions`).
    checkpoint:
        Optional :class:`CheckpointConfig`: journal completed shards
        durably so an interrupted run resumes via ``Runner.resume``.
    """

    optimization: OptimizationConfig = field(default_factory=OptimizationConfig)
    engine: str = "interpreted"
    replay_mode: str = "aggregate"
    seed: int = 0
    include_self: bool = True
    estimate_safety_z: float = 0.0
    device: DeviceSpec | None = None
    costs: CostParams | None = None
    overflow: OverflowConfig = field(default_factory=OverflowConfig)
    sharding: ShardingConfig | None = None
    recovery: RecoveryPolicy | None = None
    fault_plan: FaultPlan | None = None
    profiling: ProfilingOptions = field(default_factory=ProfilingOptions)
    checkpoint: CheckpointConfig | None = None

    def __post_init__(self):
        if self.engine not in RUNTIME_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; expected one of {RUNTIME_ENGINES}"
            )
        if self.replay_mode not in REPLAY_MODES:
            raise ValueError(
                f"unknown replay mode {self.replay_mode!r}; "
                f"expected one of {REPLAY_MODES}"
            )
        if self.estimate_safety_z < 0:
            raise ValueError("estimate_safety_z must be >= 0")
        if self.engine == NATIVE_ENGINE:
            # the native engine has no simulated device seam: device-level
            # fault injection and the self-healing scheduler loop both live
            # inside the SIMT executor it bypasses. Host crash points (and
            # checkpoint resume) stay available — they are engine-independent.
            if self.recovery is not None:
                raise ValueError(
                    "engine='native' does not support recovery policies: "
                    "device-level healing runs inside the simulated executor "
                    "the native engine bypasses"
                )
            fp = self.fault_plan
            if fp is not None and (
                fp.failures or fp.stragglers or fp.transients or fp.overflows
            ):
                raise ValueError(
                    "engine='native' only supports host CrashPoint faults; "
                    "device failures/stragglers/transients/overflows inject "
                    "at the simulated executor seam"
                )
        if (
            self.sharding is not None
            and self.sharding.workers == "process"
            and self.engine != NATIVE_ENGINE
        ):
            raise ValueError(
                "workers='process' requires engine='native': simulated "
                "engines run on a deterministic in-process scheduler clock"
            )
        # injecting device faults into a pool without a recovery story would
        # just crash the run, so such a fault plan implies the default policy
        # there; crash-only plans don't — a host crash must propagate so the
        # run can resume from its checkpoint journal
        if (
            self.engine != NATIVE_ENGINE
            and self.fault_plan is not None
            and (self.fault_plan.has_device_faults or not self.fault_plan.crashes)
            and self.recovery is None
            and self.sharding is not None
        ):
            object.__setattr__(self, "recovery", RecoveryPolicy())

    # ------------------------------------------------------------------
    @property
    def pooled(self) -> bool:
        """Whether this recipe runs on a device pool."""
        return self.sharding is not None

    @property
    def overflow_policy(self) -> str:
        """The effective executor overflow policy."""
        return self.overflow.resolved_policy(self.recovery)

    def with_(self, **changes) -> "RuntimeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Short human-readable tag, composing the optimization tag."""
        parts = [self.optimization.describe()]
        if self.engine != "interpreted":
            parts.append(self.engine)
        if self.sharding is not None:
            s = self.sharding
            parts.append(f"{s.num_devices}dev {s.planner}/{s.schedule}")
        if self.recovery is not None:
            parts.append("resilient")
        if self.fault_plan is not None and not self.fault_plan.is_empty:
            parts.append(self.fault_plan.describe())
        return " | ".join(parts)


def _split_config(config, runtime, facade: str):
    """Let a :class:`RuntimeConfig` ride in a facade's ``config`` slot.

    Facades accept ``Facade(RuntimeConfig(...))`` as a convenience; this
    normalizes the two slots and rejects giving both. Private to the
    facades — the supported public spellings are ``Facade(optimization)``
    and ``Facade(runtime=RuntimeConfig(...))``.
    """
    if isinstance(config, RuntimeConfig):
        if runtime is not None:
            raise ValueError(
                f"{facade}: pass either a RuntimeConfig positionally or "
                "runtime=..., not both"
            )
        return None, config
    return config, runtime

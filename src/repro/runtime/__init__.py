"""repro.runtime — compile joins to declarative plans, execute with one runner.

The plan/compile/execute split of the codebase:

- :class:`RuntimeConfig` holds every cross-cutting execution knob
  (engine, overflow policy, sharding, recovery, fault injection,
  profiling) alongside the paper's
  :class:`~repro.core.config.OptimizationConfig`;
- the :mod:`repro.runtime.ops` registry holds one declarative strategy
  per operation (``self``, ``bipartite``, ``knn``), and the generic
  ``compile_join(op, index, runtime)`` turns any of them into a
  declarative :class:`JoinPlan` (index build → op planning stages →
  shard plan → batch launches → merge), with resilience and
  checkpointing applied as plan transforms; ``compile_self_join`` /
  ``compile_similarity_join`` / ``compile_knn_join`` are thin
  op-constructing wrappers;
- one :class:`Runner` executes any plan, on a lone
  :class:`~repro.core.executor.DeviceExecutor` or a
  :class:`~repro.multigpu.pool.DevicePool` — single-device is simply the
  one-shard case, and the kNN driver loop runs its per-round sub-plans
  through the same runner.

The public facades (:class:`~repro.core.selfjoin.SelfJoin`,
:class:`~repro.core.join.SimilarityJoin`, :mod:`repro.multigpu`'s pooled
variants) are thin compilers over this package.
"""

from repro.runtime.config import (
    NATIVE_ENGINE,
    REPLAY_MODES,
    RUNTIME_ENGINES,
    WORKER_BACKENDS,
    CheckpointConfig,
    OverflowConfig,
    ProfilingOptions,
    RuntimeConfig,
    ShardingConfig,
)
from repro.runtime.native import execute_shard_native, native_query_order
from repro.runtime.ops import (
    OPS,
    BipartiteOp,
    JoinOp,
    KnnConvergenceError,
    KnnJoinOp,
    KnnResult,
    SelfJoinOp,
    default_knn_epsilon,
    get_op,
    register_op,
)
from repro.runtime.plan import (
    CheckpointStage,
    EstimateStage,
    ExpansionStage,
    IndexStage,
    JoinPlan,
    LaunchStage,
    MergeStage,
    NativeLaunchStage,
    ResilienceStage,
    ShardStage,
    apply_checkpoint,
    apply_resilience,
    compile_join,
    compile_knn_join,
    compile_self_join,
    compile_similarity_join,
)
from repro.runtime.runner import (
    DeadlineExceededError,
    Runner,
    execute_shard,
    executor_from_runtime,
)

__all__ = [
    "NATIVE_ENGINE",
    "OPS",
    "REPLAY_MODES",
    "RUNTIME_ENGINES",
    "WORKER_BACKENDS",
    "BipartiteOp",
    "CheckpointConfig",
    "CheckpointStage",
    "DeadlineExceededError",
    "EstimateStage",
    "ExpansionStage",
    "IndexStage",
    "JoinOp",
    "JoinPlan",
    "KnnConvergenceError",
    "KnnJoinOp",
    "KnnResult",
    "LaunchStage",
    "MergeStage",
    "NativeLaunchStage",
    "OverflowConfig",
    "ProfilingOptions",
    "ResilienceStage",
    "Runner",
    "RuntimeConfig",
    "SelfJoinOp",
    "ShardStage",
    "ShardingConfig",
    "apply_checkpoint",
    "apply_resilience",
    "compile_join",
    "compile_knn_join",
    "compile_self_join",
    "compile_similarity_join",
    "default_knn_epsilon",
    "execute_shard",
    "execute_shard_native",
    "executor_from_runtime",
    "get_op",
    "native_query_order",
    "register_op",
]

"""repro.runtime — compile joins to declarative plans, execute with one runner.

The plan/compile/execute split of the codebase:

- :class:`RuntimeConfig` holds every cross-cutting execution knob
  (engine, overflow policy, sharding, recovery, fault injection,
  profiling) alongside the paper's
  :class:`~repro.core.config.OptimizationConfig`;
- ``compile_self_join`` / ``compile_similarity_join`` turn a config plus
  data into a declarative :class:`JoinPlan` (index build → estimate →
  shard plan → batch launches → merge), with resilience applied as a
  plan transform;
- one :class:`Runner` executes any plan, on a lone
  :class:`~repro.core.executor.DeviceExecutor` or a
  :class:`~repro.multigpu.pool.DevicePool` — single-device is simply the
  one-shard case.

The public facades (:class:`~repro.core.selfjoin.SelfJoin`,
:class:`~repro.core.join.SimilarityJoin`, :mod:`repro.multigpu`'s pooled
variants) are thin compilers over this package.
"""

from repro.runtime.config import (
    NATIVE_ENGINE,
    REPLAY_MODES,
    RUNTIME_ENGINES,
    WORKER_BACKENDS,
    CheckpointConfig,
    OverflowConfig,
    ProfilingOptions,
    RuntimeConfig,
    ShardingConfig,
)
from repro.runtime.native import execute_shard_native, native_query_order
from repro.runtime.plan import (
    CheckpointStage,
    EstimateStage,
    IndexStage,
    JoinPlan,
    LaunchStage,
    MergeStage,
    NativeLaunchStage,
    ResilienceStage,
    ShardStage,
    apply_checkpoint,
    apply_resilience,
    compile_self_join,
    compile_similarity_join,
)
from repro.runtime.runner import (
    DeadlineExceededError,
    Runner,
    execute_shard,
    executor_from_runtime,
)

__all__ = [
    "NATIVE_ENGINE",
    "REPLAY_MODES",
    "RUNTIME_ENGINES",
    "WORKER_BACKENDS",
    "CheckpointConfig",
    "CheckpointStage",
    "DeadlineExceededError",
    "EstimateStage",
    "IndexStage",
    "JoinPlan",
    "LaunchStage",
    "MergeStage",
    "NativeLaunchStage",
    "OverflowConfig",
    "ProfilingOptions",
    "ResilienceStage",
    "Runner",
    "RuntimeConfig",
    "ShardStage",
    "ShardingConfig",
    "apply_checkpoint",
    "apply_resilience",
    "compile_self_join",
    "compile_similarity_join",
    "execute_shard",
    "execute_shard_native",
    "executor_from_runtime",
    "native_query_order",
]

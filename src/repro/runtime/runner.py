"""The one runner that executes every :class:`~repro.runtime.plan.JoinPlan`.

``Runner.run(plan)`` is the only execution entry point of the codebase:
the single-device joins, the multi-device sharded joins and the
fault-injected resilient runs all pass through it. A single-device run is
just the degenerate pooled run — one shard, no scheduler — so the per-
shard function :func:`execute_shard` (estimate → batch plan → launch →
overflow re-plan loop) is the shared core of both paths.

The pooled path pulls :mod:`repro.multigpu` lazily: the runtime package
sits *below* multigpu in the import graph (multigpu's facades compile
into plans), so the upward reference resolves at call time, when the
package is fully initialized.

``Runner.stream(plan)`` yields the result pairs in blocks. Execution is
eager — the simulator prices the transfer pipeline over the whole batch
set — but consumption is incremental, backed by the per-batch fragments
the executor produced (see :meth:`repro.core.result.JoinResult.iter_pairs`).
"""

from __future__ import annotations

import time
from typing import Iterator

import numpy as np

from repro.core.executor import BatchExecutor, DeviceExecutor
from repro.core.batching import plan_batches, plan_batches_balanced
from repro.core.config import OptimizationConfig
from repro.core.result import JoinResult
from repro.grid import GridIndex
from repro.resilience.executor import FaultyExecutor
from repro.resilience.faults import SimulatedCrashError
from repro.runtime.config import NATIVE_ENGINE, RuntimeConfig
from repro.runtime.native import execute_shard_native, run_shards_process
from repro.runtime.plan import ExpansionStage, JoinPlan, NativeLaunchStage
from repro.simt import AtomicCounter, BufferOverflowError, CostParams, DeviceSpec

__all__ = [
    "DeadlineExceededError",
    "Runner",
    "execute_shard",
    "executor_from_runtime",
]

_MAX_REPLANS = 8


class DeadlineExceededError(RuntimeError):
    """A run's wall-clock deadline expired before it could finish.

    Raised at shard-dispatch boundaries (execution inside a shard is not
    interrupted), so a checkpointed run's journal stays consistent: every
    shard completed before the deadline fired is durable and a later
    ``Runner.resume`` picks up exactly there.
    """


class _Deadline:
    """Monotonic wall-clock budget checked at dispatch boundaries."""

    def __init__(self, seconds: float | None):
        self._expires = None if seconds is None else time.monotonic() + float(seconds)

    def check(self, where: str) -> None:
        if self._expires is not None and time.monotonic() >= self._expires:
            raise DeadlineExceededError(f"deadline exceeded before {where}")

    def remaining(self) -> float | None:
        """Seconds left (clamped at 0), or ``None`` for no deadline."""
        if self._expires is None:
            return None
        return max(0.0, self._expires - time.monotonic())


def executor_from_runtime(
    runtime: RuntimeConfig, *, device_index: int = 0
) -> DeviceExecutor:
    """Build the :class:`DeviceExecutor` a runtime config describes.

    Pooled device ``d`` uses ``device_index=d`` (seeded ``seed + d``).
    """
    return DeviceExecutor(
        runtime.device if runtime.device is not None else DeviceSpec(),
        runtime.costs if runtime.costs is not None else CostParams(),
        seed=runtime.seed + device_index,
        replay_mode=runtime.replay_mode,
        engine=runtime.engine,
        overflow_policy=runtime.overflow_policy,
        overflow_growth=runtime.overflow.growth,
        max_overflow_retries=runtime.overflow.max_retries,
        overflow_backoff_seconds=runtime.overflow.backoff_seconds,
    )


def execute_shard(
    op,
    index: GridIndex,
    cfg: OptimizationConfig,
    executor: BatchExecutor,
    *,
    subset: np.ndarray | None = None,
    safety_z: float = 0.0,
    description: str | None = None,
    keep_fragments: bool = True,
) -> JoinResult:
    """Run one shard of a join (or the whole join: ``subset=None``).

    Prepare order/estimate/weights via the op, plan batches, launch; if a
    batch overflows its result buffer (the estimator under-guessed), the
    run is re-planned with a doubled estimate — the same recovery a
    production implementation needs, and a tested code path here.

    WORKQUEUE state (the atomic counter over this shard's D' slice) is
    private to this call; a fresh counter is built per launch attempt.
    """
    prep = op.prepare(index, cfg, subset=subset, safety_z=safety_z)
    est = prep.estimate
    for _attempt in range(_MAX_REPLANS):
        if cfg.balanced_batches:
            plan = plan_batches_balanced(
                prep.order, prep.weights, est, cfg.batch_result_capacity
            )
        else:
            plan = plan_batches(
                prep.order,
                est,
                cfg.batch_result_capacity,
                strided=not cfg.work_queue,
            )
        try:
            return _launch(
                op,
                index,
                cfg,
                prep.order,
                plan,
                executor,
                description=description,
                keep_fragments=keep_fragments,
            )
        except BufferOverflowError:
            # estimator under-guessed; double and re-plan
            est = max(est * 2, cfg.batch_result_capacity + 1)
    raise RuntimeError(
        f"batch planning failed to converge after {_MAX_REPLANS} attempts"
    )


def _launch(
    op,
    index: GridIndex,
    cfg: OptimizationConfig,
    order: np.ndarray,
    plan,
    executor: BatchExecutor,
    *,
    description: str | None,
    keep_fragments: bool,
) -> JoinResult:
    counter = AtomicCounter(name="workqueue") if cfg.work_queue else None
    outcome = executor.run_batches(
        op.kernel,
        plan.batches,
        op.make_args(index, cfg, order, counter),
        result_capacity=cfg.batch_result_capacity,
        num_streams=cfg.num_streams,
        issue_order="fifo" if cfg.work_queue else "random",
        coop_groups=cfg.work_queue and cfg.k > 1,
    )
    return JoinResult(
        pairs=outcome.merged_pairs(),
        epsilon=op.result_epsilon(index),
        num_points=len(order),
        batch_stats=outcome.batch_stats,
        pipeline=outcome.pipeline,
        config_description=description if description is not None else op.describe(cfg),
        overflow_retries=outcome.num_overflow_retries,
        overflow_wasted_seconds=outcome.overflow_wasted_seconds,
        fragments=tuple(outcome.pairs_per_batch) if keep_fragments else None,
    )


class Runner:
    """Executes compiled :class:`~repro.runtime.plan.JoinPlan`\\ s.

    Parameters
    ----------
    executor:
        Optional explicit :class:`~repro.core.executor.BatchExecutor` for
        single-device plans (e.g. a prebuilt or fault-wrapped one); by
        default the plan's :class:`RuntimeConfig` describes the executor.
    pool:
        Optional explicit :class:`~repro.multigpu.pool.DevicePool` for
        pooled plans (e.g. heterogeneous); by default a homogeneous pool
        is built from the runtime config. A reused pool's health records
        are re-armed per run, keeping seeded fault runs reproducible.

    After an execution, ``last_checkpoint_stats`` holds the
    :class:`~repro.resilience.checkpoint.CheckpointStats` of the run's
    journal (``None`` when the plan does not checkpoint).
    """

    def __init__(self, *, executor: BatchExecutor | None = None, pool=None):
        self.executor = executor
        self.pool = pool
        self.last_checkpoint_stats = None

    def run(self, plan: JoinPlan, *, deadline_seconds: float | None = None):
        """Execute the plan; pooled plans return a ``MultiJoinResult``.

        ``deadline_seconds`` is a wall-clock budget for this execution,
        checked at shard-dispatch boundaries —
        :class:`DeadlineExceededError` is raised when it expires. Plans
        carrying a :class:`~repro.runtime.plan.CheckpointStage` journal
        each completed shard durably as they go (a fresh run never
        *reads* the journal; see :meth:`resume`).
        """
        return self._execute(plan, resume=False, deadline_seconds=deadline_seconds)

    def resume(self, plan: JoinPlan, *, deadline_seconds: float | None = None):
        """Resume an interrupted checkpointed run.

        Replays the same schedule as :meth:`run`, but shards already
        durable in the plan's journal are answered from disk instead of
        re-executed — the merged result (pair bytes, trace signature) is
        bit-identical to an uninterrupted run because shard execution is
        deterministic and the merge is execution-order independent.
        Resuming with nothing journaled (or after a completed
        ``keep=False`` run dropped its journal) is simply a full run.
        """
        if plan.checkpoint_stage is None:
            raise ValueError(
                "resume() needs a checkpointed plan; compile with "
                "RuntimeConfig(checkpoint=CheckpointConfig(directory=...))"
            )
        return self._execute(plan, resume=True, deadline_seconds=deadline_seconds)

    def stream(
        self,
        plan: JoinPlan,
        *,
        chunk: int | None = None,
        deadline_seconds: float | None = None,
    ) -> Iterator[np.ndarray]:
        """Execute the plan and yield its result pairs in blocks.

        Without ``chunk``, blocks are the runner's natural fragments (one
        per batch on single-device runs); with ``chunk``, blocks are
        re-sliced to exactly ``chunk`` rows (last one short). The
        concatenation of all yielded blocks equals ``result.pairs``.
        """
        result = self.run(plan, deadline_seconds=deadline_seconds)
        yield from result.iter_pairs(chunk=chunk)

    # ------------------------------------------------------------------
    def _execute(self, plan: JoinPlan, *, resume: bool, deadline_seconds):
        deadline = _Deadline(deadline_seconds)
        self.last_checkpoint_stats = None
        if plan.stage(ExpansionStage) is not None:
            return self._run_knn(plan, resume=resume, deadline=deadline)
        if plan.pooled:
            return self._run_pooled(plan, resume=resume, deadline=deadline)
        return self._run_single(plan, resume=resume, deadline=deadline)

    def _open_journal(self, plan: JoinPlan, num_shards: int):
        stage = plan.checkpoint_stage
        if stage is None:
            return None
        from repro.resilience.checkpoint import CheckpointStore

        return CheckpointStore(stage.directory).journal(
            stage.fingerprint,
            kind=plan.op.kind,
            description=plan.merge_stage.description,
            num_shards=num_shards,
        )

    def _run_single(self, plan: JoinPlan, *, resume: bool, deadline: _Deadline):
        rc = plan.config
        journal = self._open_journal(plan, 1)
        if journal is not None:
            # live stats: visible even when a crash interrupts the run
            self.last_checkpoint_stats = journal.stats
        if journal is not None and resume and 0 in journal.completed_shards():
            # the run completed its (single) shard before the interruption
            result = journal.load_shard(0)
            self.last_checkpoint_stats = journal.stats
            journal.finalize(keep=plan.checkpoint_stage.keep)
            return result
        crash = rc.fault_plan.crash_point() if rc.fault_plan is not None else None
        if crash is not None and crash.at_shard <= 0:
            raise SimulatedCrashError(0)
        deadline.check("launch")
        if rc.engine == NATIVE_ENGINE:
            launch = plan.stage(NativeLaunchStage)
            result = execute_shard_native(
                plan.op,
                plan.index,
                rc.optimization,
                subset=plan.subset,
                description=plan.merge_stage.description,
                keep_fragments=rc.profiling.keep_fragments,
                chunk_pairs=launch.chunk_pairs,
            )
        else:
            executor = (
                self.executor if self.executor is not None else executor_from_runtime(rc)
            )
            resil = plan.resilience_stage
            if resil is not None and resil.fault_plan is not None:
                executor = FaultyExecutor(executor, 0, resil.fault_plan)
            result = execute_shard(
                plan.op,
                plan.index,
                rc.optimization,
                executor,
                subset=plan.subset,
                safety_z=rc.estimate_safety_z,
                description=plan.merge_stage.description,
                keep_fragments=rc.profiling.keep_fragments,
            )
        if journal is not None:
            journal.save_shard(0, result)
            self.last_checkpoint_stats = journal.stats
            journal.finalize(keep=plan.checkpoint_stage.keep)
        return result

    def _run_knn(self, plan: JoinPlan, *, resume: bool, deadline: _Deadline):
        """Drive a kNN plan: one residual bipartite sub-plan per ε round.

        Round ``r`` joins the still-pending queries against the full
        dataset at radius ``epsilon0 * growth**r``; queries with ≥ k
        in-radius neighbors are finalized (their true k nearest are
        within ε — any unexamined point is farther), the rest expand.
        Sub-plans are compiled with the *same* runtime config, so rounds
        inherit engine, sharding, recovery, faults and checkpointing
        unchanged.

        Checkpointing is two-level: the driver journal (shard id =
        round) persists each round's *merged* result, while the round's
        own sub-journal persists its shards as it runs. ``resume``
        replays completed rounds from the driver journal — evolving the
        pending set deterministically without re-execution — and resumes
        the first incomplete round mid-round from its sub-journal, so
        the final :class:`~repro.runtime.ops.KnnResult` is byte-identical
        to the uninterrupted run. A ``CrashPoint``'s ``at_shard`` counts
        shard dispatches across all executed rounds; the driver
        translates the ordinal into each round's frame.
        """
        import dataclasses

        from repro.runtime.ops import KnnConvergenceError, KnnResult
        from repro.runtime.plan import compile_similarity_join

        rc = plan.config
        op = plan.op
        expand = plan.expansion_stage
        pts = op.points
        n = len(pts)
        k = expand.k

        journal = self._open_journal(plan, expand.max_rounds)
        if journal is not None:
            # live stats: visible even when a crash interrupts the run
            self.last_checkpoint_stats = journal.stats
        completed = journal.load_completed() if (journal is not None and resume) else {}
        crash = rc.fault_plan.crash_point() if rc.fault_plan is not None else None
        dispatched = 0  # shard dispatches across executed rounds

        indices = np.full((n, k), -1, dtype=np.int64)
        distances = np.full((n, k), np.inf)
        pending = np.arange(n)
        eps = expand.epsilon0
        total_seconds = 0.0
        rounds = 0
        inner = Runner(executor=self.executor, pool=self.pool)

        while len(pending) and rounds < expand.max_rounds:
            r = rounds
            rounds += 1
            result = completed.get(r)
            if result is None:
                deadline.check(f"knn round {r}")
                round_rc = rc
                if crash is not None:
                    # shift the global crash ordinal into this round's
                    # frame; a round it cannot reach runs to completion
                    offset = max(0, crash.at_shard - dispatched)
                    round_rc = rc.with_(
                        fault_plan=dataclasses.replace(
                            rc.fault_plan,
                            crashes=(dataclasses.replace(crash, at_shard=offset),),
                        )
                    )
                index = plan.index if r == 0 else op.build_index(eps)
                round_plan = compile_similarity_join(index, pts[pending], round_rc)
                if resume and round_plan.checkpoint_stage is not None:
                    result = inner.resume(
                        round_plan, deadline_seconds=deadline.remaining()
                    )
                else:
                    result = inner.run(
                        round_plan, deadline_seconds=deadline.remaining()
                    )
                dispatched += (
                    len(round_plan.shard_stage.plan.shards)
                    if round_plan.pooled
                    else 1
                )
                if journal is not None:
                    journal.save_shard(r, result)
                    if inner.last_checkpoint_stats is not None:
                        # fold the round sub-journal's cost into the
                        # driver's stats: one ledger for the whole run
                        sub = inner.last_checkpoint_stats
                        journal.stats.writes += sub.writes
                        journal.stats.loads += sub.loads
                        journal.stats.bytes_written += sub.bytes_written
                        journal.stats.write_seconds += sub.write_seconds

            pairs = result.pairs  # (pending-local query idx, global neighbor)
            keep = pending[pairs[:, 0]] != pairs[:, 1]  # drop self matches
            pairs = pairs[keep]
            counts = np.bincount(pairs[:, 0], minlength=len(pending))
            done_rows = counts[pairs[:, 0]] >= k
            if done_rows.any():
                # finalize every finished query with one segmented sort:
                # by (query, distance, neighbor id) — the id tie-break
                # makes equal-distance neighbors engine-invariant
                q = pairs[done_rows, 0]
                nb = pairs[done_rows, 1]
                d = np.linalg.norm(pts[nb] - pts[pending[q]], axis=1)
                order = np.lexsort((nb, d, q))
                qs, nbs, ds = q[order], nb[order], d[order]
                pos = np.arange(len(qs)) - np.searchsorted(qs, qs, side="left")
                top = pos < k
                q_global = pending[qs[top]]
                indices[q_global, pos[top]] = nbs[top]
                distances[q_global, pos[top]] = ds[top]
            pending = pending[counts < k]
            eps *= expand.growth
            total_seconds += float(result.total_seconds)

        if len(pending):  # pragma: no cover - 2**48 expansion always suffices
            raise KnnConvergenceError(
                pending, rounds=rounds, epsilon=eps / expand.growth
            )
        if journal is not None:
            self.last_checkpoint_stats = journal.stats
            journal.finalize(keep=plan.checkpoint_stage.keep)
        return KnnResult(
            indices=indices,
            distances=distances,
            rounds=rounds,
            final_epsilon=eps / expand.growth,
            total_seconds=total_seconds,
        )

    def _run_pooled(self, plan: JoinPlan, *, resume: bool, deadline: _Deadline):
        # upward imports: multigpu compiles *into* this runtime, so the
        # runner resolves it lazily rather than at module import
        from repro.multigpu.join import MultiJoinResult
        from repro.multigpu.merge import merge_shard_results
        from repro.multigpu.metrics import pool_stats_from_trace
        from repro.multigpu.pool import DevicePool
        from repro.multigpu.scheduler import HostScheduler
        from repro.resilience.executor import arm_pool

        rc = plan.config
        if rc.engine == NATIVE_ENGINE and rc.sharding.workers == "process":
            return self._run_pooled_native_process(plan, resume=resume, deadline=deadline)
        shard_stage = plan.shard_stage
        pool = self.pool if self.pool is not None else DevicePool.from_runtime(rc)
        resil = plan.resilience_stage
        # native pools have no executors to wrap; arming with None still
        # re-arms device health for a fresh run
        armed = arm_pool(
            pool,
            resil.fault_plan
            if resil is not None and rc.engine != NATIVE_ENGINE
            else None,
        )
        scheduler = HostScheduler(pool, shard_stage.schedule, recovery=rc.recovery)
        op, index, opt = plan.op, plan.index, rc.optimization
        native_launch = plan.stage(NativeLaunchStage)

        journal = self._open_journal(plan, len(shard_stage.plan.shards))
        if journal is not None:
            # live stats: visible even when a crash interrupts the run
            self.last_checkpoint_stats = journal.stats
        completed = journal.load_completed() if (journal is not None and resume) else {}
        crash = rc.fault_plan.crash_point() if rc.fault_plan is not None else None
        dispatched = 0

        def run_shard(device, shard):
            nonlocal dispatched
            deadline.check(f"shard {shard.shard_id} dispatch")
            if crash is not None and dispatched >= crash.at_shard:
                raise SimulatedCrashError(crash.at_shard)
            dispatched += 1
            cached = completed.get(shard.shard_id)
            if cached is not None:
                # resumed: this shard's result is already durable — replay
                # it into the schedule instead of re-executing
                return cached
            if rc.engine == NATIVE_ENGINE:
                result = execute_shard_native(
                    op,
                    index,
                    opt,
                    subset=shard.points,
                    keep_fragments=False,
                    chunk_pairs=native_launch.chunk_pairs,
                )
            else:
                executor = armed.get(device.device_id, device.executor)
                result = execute_shard(
                    op,
                    index,
                    opt,
                    executor,
                    subset=shard.points,
                    safety_z=rc.estimate_safety_z,
                    keep_fragments=False,
                )
            if journal is not None:
                journal.save_shard(shard.shard_id, result)
            return result

        results, trace = scheduler.run(shard_stage.plan, run_shard)
        if journal is not None:
            self.last_checkpoint_stats = journal.stats
            journal.finalize(keep=plan.checkpoint_stage.keep)

        # speculative re-execution is first-result-wins, so results[] holds
        # one copy per shard — but dedup anyway when it fired, making the
        # merge duplicate-safe by construction rather than by argument
        merge = plan.merge_stage
        speculated = trace.recovery is not None and trace.recovery.num_speculations > 0
        merged = merge_shard_results(
            results,
            trace,
            epsilon=op.result_epsilon(index),
            num_points=op.total_points(index),
            dedup=merge.dedup or speculated,
            config_description=merge.description,
        )
        stats = pool_stats_from_trace(trace, results, planner=shard_stage.plan.planner)
        return MultiJoinResult(
            pairs=merged.pairs,
            epsilon=merged.epsilon,
            num_points=merged.num_points,
            batch_stats=merged.batch_stats,
            pipeline=merged.pipeline,
            config_description=merged.config_description,
            overflow_retries=merged.overflow_retries,
            overflow_wasted_seconds=merged.overflow_wasted_seconds,
            fidelity=merged.fidelity,
            planner=shard_stage.plan.planner,
            schedule_mode=trace.mode,
            num_devices=pool.num_devices,
            pool_stats=stats,
            trace=trace if rc.profiling.keep_trace else None,
            shard_plan=shard_stage.plan,
        )

    def _run_pooled_native_process(
        self, plan: JoinPlan, *, resume: bool, deadline: _Deadline
    ):
        """Pooled native run over real worker processes.

        Shards fan out over a process pool (one worker per configured
        device) sharing the dataset via shared memory or a re-opened
        memory map; journaling, crash points, deadlines and resume follow
        the inline scheduler's semantics. Events carry host wall-clock
        times, so the trace reports real (not simulated) makespans — the
        merge itself is shard-id ordered and execution-order independent,
        which is what makes the merged pairs deterministic.
        """
        from repro.multigpu.join import MultiJoinResult
        from repro.multigpu.merge import merge_shard_results
        from repro.multigpu.metrics import pool_stats_from_trace
        from repro.multigpu.scheduler import ScheduleTrace, ShardEvent

        rc = plan.config
        shard_stage = plan.shard_stage
        op, index = plan.op, plan.index
        launch = plan.stage(NativeLaunchStage)

        journal = self._open_journal(plan, len(shard_stage.plan.shards))
        if journal is not None:
            self.last_checkpoint_stats = journal.stats
        completed = journal.load_completed() if (journal is not None and resume) else {}
        crash = rc.fault_plan.crash_point() if rc.fault_plan is not None else None

        save = None
        if journal is not None:
            def save(shard_id, result):
                journal.save_shard(shard_id, result)

        dispatch = (
            shard_stage.plan.dispatch_order()
            if shard_stage.schedule == "dynamic"
            else [s.shard_id for s in shard_stage.plan.shards]
        )
        try:
            results, raw_events = run_shards_process(
                op,
                index,
                rc.optimization,
                shard_stage.plan.shards,
                num_workers=shard_stage.num_devices,
                dispatch_order=dispatch,
                completed=completed,
                save_shard=save,
                deadline_check=deadline.check,
                crash_at=crash.at_shard if crash is not None else None,
                chunk_pairs=launch.chunk_pairs,
            )
        finally:
            if journal is not None:
                self.last_checkpoint_stats = journal.stats
        if journal is not None:
            journal.finalize(keep=plan.checkpoint_stage.keep)

        events = [
            ShardEvent(
                shard_id=sid,
                device_id=dev,
                start_seconds=start,
                end_seconds=end,
                num_pairs=num_pairs,
                num_points=num_points,
            )
            for sid, dev, start, end, num_pairs, num_points in raw_events
        ]
        trace = ScheduleTrace(
            events=events,
            mode=shard_stage.schedule,
            num_devices=shard_stage.num_devices,
        )
        merge = plan.merge_stage
        merged = merge_shard_results(
            results,
            trace,
            epsilon=op.result_epsilon(index),
            num_points=op.total_points(index),
            dedup=merge.dedup,
            config_description=merge.description,
        )
        stats = pool_stats_from_trace(trace, results, planner=shard_stage.plan.planner)
        return MultiJoinResult(
            pairs=merged.pairs,
            epsilon=merged.epsilon,
            num_points=merged.num_points,
            batch_stats=merged.batch_stats,
            pipeline=merged.pipeline,
            config_description=merged.config_description,
            overflow_retries=merged.overflow_retries,
            overflow_wasted_seconds=merged.overflow_wasted_seconds,
            fidelity=merged.fidelity,
            planner=shard_stage.plan.planner,
            schedule_mode=trace.mode,
            num_devices=shard_stage.num_devices,
            pool_stats=stats,
            trace=trace if rc.profiling.keep_trace else None,
            shard_plan=shard_stage.plan,
        )

"""The one runner that executes every :class:`~repro.runtime.plan.JoinPlan`.

``Runner.run(plan)`` is the only execution entry point of the codebase:
the single-device joins, the multi-device sharded joins and the
fault-injected resilient runs all pass through it. A single-device run is
just the degenerate pooled run — one shard, no scheduler — so the per-
shard function :func:`execute_shard` (estimate → batch plan → launch →
overflow re-plan loop) is the shared core of both paths.

The pooled path pulls :mod:`repro.multigpu` lazily: the runtime package
sits *below* multigpu in the import graph (multigpu's facades compile
into plans), so the upward reference resolves at call time, when the
package is fully initialized.

``Runner.stream(plan)`` yields the result pairs in blocks. Execution is
eager — the simulator prices the transfer pipeline over the whole batch
set — but consumption is incremental, backed by the per-batch fragments
the executor produced (see :meth:`repro.core.result.JoinResult.iter_pairs`).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.executor import BatchExecutor, DeviceExecutor
from repro.core.batching import plan_batches, plan_batches_balanced
from repro.core.config import OptimizationConfig
from repro.core.result import JoinResult
from repro.grid import GridIndex
from repro.resilience.executor import FaultyExecutor
from repro.runtime.config import RuntimeConfig
from repro.runtime.plan import JoinPlan
from repro.simt import AtomicCounter, BufferOverflowError, CostParams, DeviceSpec

__all__ = ["Runner", "execute_shard", "executor_from_runtime"]

_MAX_REPLANS = 8


def executor_from_runtime(
    runtime: RuntimeConfig, *, device_index: int = 0
) -> DeviceExecutor:
    """Build the :class:`DeviceExecutor` a runtime config describes.

    Pooled device ``d`` uses ``device_index=d`` (seeded ``seed + d``).
    """
    return DeviceExecutor(
        runtime.device if runtime.device is not None else DeviceSpec(),
        runtime.costs if runtime.costs is not None else CostParams(),
        seed=runtime.seed + device_index,
        replay_mode=runtime.replay_mode,
        engine=runtime.engine,
        overflow_policy=runtime.overflow_policy,
        overflow_growth=runtime.overflow.growth,
        max_overflow_retries=runtime.overflow.max_retries,
        overflow_backoff_seconds=runtime.overflow.backoff_seconds,
    )


def execute_shard(
    op,
    index: GridIndex,
    cfg: OptimizationConfig,
    executor: BatchExecutor,
    *,
    subset: np.ndarray | None = None,
    safety_z: float = 0.0,
    description: str | None = None,
    keep_fragments: bool = True,
) -> JoinResult:
    """Run one shard of a join (or the whole join: ``subset=None``).

    Prepare order/estimate/weights via the op, plan batches, launch; if a
    batch overflows its result buffer (the estimator under-guessed), the
    run is re-planned with a doubled estimate — the same recovery a
    production implementation needs, and a tested code path here.

    WORKQUEUE state (the atomic counter over this shard's D' slice) is
    private to this call; a fresh counter is built per launch attempt.
    """
    prep = op.prepare(index, cfg, subset=subset, safety_z=safety_z)
    est = prep.estimate
    for _attempt in range(_MAX_REPLANS):
        if cfg.balanced_batches:
            plan = plan_batches_balanced(
                prep.order, prep.weights, est, cfg.batch_result_capacity
            )
        else:
            plan = plan_batches(
                prep.order,
                est,
                cfg.batch_result_capacity,
                strided=not cfg.work_queue,
            )
        try:
            return _launch(
                op,
                index,
                cfg,
                prep.order,
                plan,
                executor,
                description=description,
                keep_fragments=keep_fragments,
            )
        except BufferOverflowError:
            # estimator under-guessed; double and re-plan
            est = max(est * 2, cfg.batch_result_capacity + 1)
    raise RuntimeError(
        f"batch planning failed to converge after {_MAX_REPLANS} attempts"
    )


def _launch(
    op,
    index: GridIndex,
    cfg: OptimizationConfig,
    order: np.ndarray,
    plan,
    executor: BatchExecutor,
    *,
    description: str | None,
    keep_fragments: bool,
) -> JoinResult:
    counter = AtomicCounter(name="workqueue") if cfg.work_queue else None
    outcome = executor.run_batches(
        op.kernel,
        plan.batches,
        op.make_args(index, cfg, order, counter),
        result_capacity=cfg.batch_result_capacity,
        num_streams=cfg.num_streams,
        issue_order="fifo" if cfg.work_queue else "random",
        coop_groups=cfg.work_queue and cfg.k > 1,
    )
    return JoinResult(
        pairs=outcome.merged_pairs(),
        epsilon=op.result_epsilon(index),
        num_points=len(order),
        batch_stats=outcome.batch_stats,
        pipeline=outcome.pipeline,
        config_description=description if description is not None else op.describe(cfg),
        overflow_retries=outcome.num_overflow_retries,
        overflow_wasted_seconds=outcome.overflow_wasted_seconds,
        fragments=tuple(outcome.pairs_per_batch) if keep_fragments else None,
    )


class Runner:
    """Executes compiled :class:`~repro.runtime.plan.JoinPlan`\\ s.

    Parameters
    ----------
    executor:
        Optional explicit :class:`~repro.core.executor.BatchExecutor` for
        single-device plans (e.g. a prebuilt or fault-wrapped one); by
        default the plan's :class:`RuntimeConfig` describes the executor.
    pool:
        Optional explicit :class:`~repro.multigpu.pool.DevicePool` for
        pooled plans (e.g. heterogeneous); by default a homogeneous pool
        is built from the runtime config. A reused pool's health records
        are re-armed per run, keeping seeded fault runs reproducible.
    """

    def __init__(self, *, executor: BatchExecutor | None = None, pool=None):
        self.executor = executor
        self.pool = pool

    def run(self, plan: JoinPlan) -> JoinResult:
        """Execute the plan; pooled plans return a ``MultiJoinResult``."""
        if plan.pooled:
            return self._run_pooled(plan)
        return self._run_single(plan)

    def stream(
        self, plan: JoinPlan, *, chunk: int | None = None
    ) -> Iterator[np.ndarray]:
        """Execute the plan and yield its result pairs in blocks.

        Without ``chunk``, blocks are the runner's natural fragments (one
        per batch on single-device runs); with ``chunk``, blocks are
        re-sliced to exactly ``chunk`` rows (last one short). The
        concatenation of all yielded blocks equals ``result.pairs``.
        """
        yield from self.run(plan).iter_pairs(chunk=chunk)

    # ------------------------------------------------------------------
    def _run_single(self, plan: JoinPlan) -> JoinResult:
        rc = plan.config
        executor = self.executor if self.executor is not None else executor_from_runtime(rc)
        resil = plan.resilience_stage
        if resil is not None and resil.fault_plan is not None:
            executor = FaultyExecutor(executor, 0, resil.fault_plan)
        return execute_shard(
            plan.op,
            plan.index,
            rc.optimization,
            executor,
            subset=plan.subset,
            safety_z=rc.estimate_safety_z,
            description=plan.merge_stage.description,
            keep_fragments=rc.profiling.keep_fragments,
        )

    def _run_pooled(self, plan: JoinPlan):
        # upward imports: multigpu compiles *into* this runtime, so the
        # runner resolves it lazily rather than at module import
        from repro.multigpu.join import MultiJoinResult
        from repro.multigpu.merge import merge_shard_results
        from repro.multigpu.metrics import pool_stats_from_trace
        from repro.multigpu.pool import DevicePool
        from repro.multigpu.scheduler import HostScheduler
        from repro.resilience.executor import arm_pool

        rc = plan.config
        shard_stage = plan.shard_stage
        pool = self.pool if self.pool is not None else DevicePool.from_runtime(rc)
        resil = plan.resilience_stage
        armed = arm_pool(pool, resil.fault_plan if resil is not None else None)
        scheduler = HostScheduler(pool, shard_stage.schedule, recovery=rc.recovery)
        op, index, opt = plan.op, plan.index, rc.optimization

        def run_shard(device, shard):
            executor = armed.get(device.device_id, device.executor)
            return execute_shard(
                op,
                index,
                opt,
                executor,
                subset=shard.points,
                safety_z=rc.estimate_safety_z,
                keep_fragments=False,
            )

        results, trace = scheduler.run(shard_stage.plan, run_shard)

        # speculative re-execution is first-result-wins, so results[] holds
        # one copy per shard — but dedup anyway when it fired, making the
        # merge duplicate-safe by construction rather than by argument
        merge = plan.merge_stage
        speculated = trace.recovery is not None and trace.recovery.num_speculations > 0
        merged = merge_shard_results(
            results,
            trace,
            epsilon=op.result_epsilon(index),
            num_points=op.total_points(index),
            dedup=merge.dedup or speculated,
            config_description=merge.description,
        )
        stats = pool_stats_from_trace(trace, results, planner=shard_stage.plan.planner)
        return MultiJoinResult(
            pairs=merged.pairs,
            epsilon=merged.epsilon,
            num_points=merged.num_points,
            batch_stats=merged.batch_stats,
            pipeline=merged.pipeline,
            config_description=merged.config_description,
            overflow_retries=merged.overflow_retries,
            overflow_wasted_seconds=merged.overflow_wasted_seconds,
            planner=shard_stage.plan.planner,
            schedule_mode=trace.mode,
            num_devices=pool.num_devices,
            pool_stats=stats,
            trace=trace if rc.profiling.keep_trace else None,
            shard_plan=shard_stage.plan,
        )

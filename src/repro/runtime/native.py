"""``engine="native"``: the fidelity-free array-native join backend.

The simulated engines (``"interpreted"``, ``"vectorized"``) reconstruct
the paper's SIMT machine cycle-for-cycle; this module computes the same
exact pair *set* with pure NumPy array passes and nothing else — no warp
accounting, no replay, no batch planning. Cell-pair blocks come from the
same :class:`~repro.grid.GridIndex` neighbor topology the kernels walk,
but only the lexicographically-positive half of the ``3**n`` offsets is
searched (plus each cell's id-increasing half internally): every hit is
emitted with its mirror, which restores the kernels' full directed pair
set at half the candidate volume. Queries visit in the paper's SORTBYWL
heaviest-cells-first order when the optimization config asks for it, and
each block is refined with one vectorized distance pass.
Results carry ``fidelity="none"``: ``batch_stats`` is empty, WEE is
undefined, and the pipeline times are host wall-clock seconds.

Dispatch is by the registry op's ``kind`` (:mod:`repro.runtime.ops`):
``"self"`` walks the half-neighborhood scheme above, every other kind is
executed through the op's ``queries`` attribute as a bipartite sweep.
The kNN driver never reaches this module directly — each of its
expansion rounds compiles to a bipartite sub-plan, so kNN-on-native is
just this backend run once per round.

The module also hosts the process worker backend
(``ShardingConfig(workers="process")``): shards of a pooled native join
fan out over a ``ProcessPoolExecutor`` whose workers share the dataset
through ``multiprocessing.shared_memory`` — or by re-opening the same
``.npy`` file when the dataset is a :class:`numpy.memmap`
(``load_dataset(..., mmap=True)``), in which case no process ever holds
a full resident copy. Each worker builds its grid index once (the bulk
``method="sorted"`` build) and then answers shard subsets from it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.result import JoinResult
from repro.core.sortbywl import sort_by_workload
from repro.grid import GridIndex
from repro.grid.bipartite import bipartite_workloads, iter_bipartite_blocks
from repro.grid.neighbors import neighbor_offsets, neighbor_ranks_for_offset
from repro.simt.streams import PipelineResult
from repro.util import gather_slices, stable_argsort_desc

__all__ = [
    "NATIVE_CHUNK_PAIRS",
    "SharedArray",
    "execute_shard_native",
    "native_query_order",
    "run_shards_process",
    "share_array",
]

#: candidate pairs refined per vectorized block — bounds peak memory of
#: one distance pass (~64 MB of intermediates at the default)
NATIVE_CHUNK_PAIRS = 4_000_000


# ----------------------------------------------------------------------
# in-process execution
# ----------------------------------------------------------------------
def native_query_order(
    op, index: GridIndex, cfg, *, subset: np.ndarray | None = None
) -> np.ndarray:
    """The shard's query visiting order D' for the native engine.

    Mirrors the ops' ``prepare`` ordering — SORTBYWL heaviest-cells-first
    when ``cfg.uses_sorted_points``, dataset/subset order otherwise — but
    skips the result-size estimation the batch planner needs and the
    native engine does not.
    """
    if op.kind == "self":
        if cfg.uses_sorted_points:
            order = sort_by_workload(index, cfg.pattern)
            if subset is not None:
                keep = np.zeros(index.num_points, dtype=bool)
                keep[np.asarray(subset, dtype=np.int64)] = True
                order = order[keep[order]]
            return order
        if subset is not None:
            return np.asarray(subset, dtype=np.int64)
        return np.arange(index.num_points, dtype=np.int64)
    ids = (
        np.asarray(subset, dtype=np.int64)
        if subset is not None
        else np.arange(len(op.queries), dtype=np.int64)
    )
    if cfg.uses_sorted_points and len(ids):
        workloads, _ = bipartite_workloads(index, op.queries[ids])
        return ids[stable_argsort_desc(workloads)]
    return ids


def _file_backed(arr) -> bool:
    base = arr
    while base is not None:
        if isinstance(base, np.memmap):
            return True
        base = getattr(base, "base", None)
    return False


def _refiner(left, right, eps2):
    """``hits(qi, cj) -> kept indices`` for the ε distance predicate.

    Resident datasets get contiguous per-dimension columns (1-D gathers,
    no row materialization, no axis reduction); file-backed datasets keep
    row gathers so only the touched pages ever become resident.
    """
    if _file_backed(left) or _file_backed(right):

        def hits(qi, cj):
            d2 = ((left[qi] - right[cj]) ** 2).sum(axis=1)
            return np.flatnonzero(d2 <= eps2)

        return hits

    lcols = [np.ascontiguousarray(left[:, k]) for k in range(left.shape[1])]
    rcols = (
        lcols
        if right is left
        else [np.ascontiguousarray(right[:, k]) for k in range(right.shape[1])]
    )

    def hits(qi, cj):
        d2 = None
        for lc, rc in zip(lcols, rcols):
            d = lc[qi]
            d -= rc[cj]
            d *= d
            if d2 is None:
                d2 = d
            else:
                d2 += d
        return np.flatnonzero(d2 <= eps2)

    return hits


def _half_offsets(ndim: int) -> list[np.ndarray]:
    """The ``(3**n - 1) / 2`` lexicographically-positive neighbor offsets.

    For distinct adjacent cells A and B exactly one of ``B - A`` / ``A - B``
    is lex-positive, so walking only these offsets (plus the zero offset's
    id-increasing half within each cell) visits every unordered candidate
    pair exactly once from the query side; mirrored emission restores the
    full directed pair set. Because the relation is defined purely by the
    query's cell and id, a union over any query-subset partition (shards)
    still covers every pair exactly once.
    """
    out = []
    for off in neighbor_offsets(ndim):
        nz = np.flatnonzero(off)
        if nz.size and off[nz[0]] > 0:
            out.append(off)
    return out


def _offset_blocks(index, queries, nbr, *, chunk_pairs):
    """``(query_idx, candidate_idx)`` blocks for one neighbor-rank mapping."""
    valid = nbr >= 0
    if not valid.any():
        return
    q_sel = queries[valid]
    n_sel = nbr[valid]
    lengths = index.cell_counts[n_sel]
    csum = np.cumsum(lengths)
    start = 0
    while start < len(q_sel):
        base = csum[start - 1] if start > 0 else 0
        # largest stop with csum[stop-1] - base <= chunk_pairs, but at
        # least one query per block so oversized cells still progress
        stop = int(np.searchsorted(csum, base + chunk_pairs, side="right"))
        stop = min(max(stop, start + 1), len(q_sel))
        sl = slice(start, stop)
        lens = lengths[sl]
        qi = np.repeat(q_sel[sl], lens)
        cj = gather_slices(index.point_order, index.cell_starts[n_sel[sl]], lens)
        if qi.size:
            yield qi, cj
        start = stop


def _mirrored(qi, cj):
    out = np.empty((2 * len(qi), 2), dtype=np.int64)
    out[: len(qi), 0] = qi
    out[: len(qi), 1] = cj
    out[len(qi) :, 0] = cj
    out[len(qi) :, 1] = qi
    return out


def _self_join_blocks(index, order, *, include_self, chunk_pairs):
    eps2 = index.epsilon * index.epsilon
    queries = np.asarray(order, dtype=np.int64)
    if queries.size == 0 or index.num_points == 0:
        return
    hits = _refiner(index.points, index.points, eps2)
    if include_self:
        for start in range(0, len(queries), max(chunk_pairs, 1)):
            q = queries[start : start + chunk_pairs]
            yield np.stack([q, q], axis=1)
    q_rank = index.point_cell_rank[queries]
    # within-cell: the id-increasing half of each cell's pairs, mirrored
    for qi, cj in _offset_blocks(index, queries, q_rank, chunk_pairs=chunk_pairs):
        upper = np.flatnonzero(cj > qi)
        if not upper.size:
            continue
        qi = qi[upper]
        cj = cj[upper]
        keep = hits(qi, cj)
        if keep.size:
            yield _mirrored(qi[keep], cj[keep])
    # cross-cell: one lex-positive offset per unordered cell pair, mirrored
    for off in _half_offsets(index.ndim):
        nbr = neighbor_ranks_for_offset(index, off)[q_rank]
        for qi, cj in _offset_blocks(index, queries, nbr, chunk_pairs=chunk_pairs):
            keep = hits(qi, cj)
            if keep.size:
                yield _mirrored(qi[keep], cj[keep])


def _bipartite_blocks(op, index, order, *, chunk_pairs):
    eps2 = index.epsilon * index.epsilon
    queries = op.queries
    hits = _refiner(queries, index.points, eps2)
    for qi, cj in iter_bipartite_blocks(
        index, queries[order], query_ids=order, chunk_pairs=chunk_pairs
    ):
        keep = hits(qi, cj)
        if keep.size:
            yield np.stack([qi[keep], cj[keep]], axis=1)


def execute_shard_native(
    op,
    index: GridIndex,
    cfg,
    *,
    subset: np.ndarray | None = None,
    description: str | None = None,
    keep_fragments: bool = True,
    chunk_pairs: int = NATIVE_CHUNK_PAIRS,
) -> JoinResult:
    """Run one shard (or the whole join: ``subset=None``) natively.

    The returned pair set equals the simulated engines' merged set
    order-normalized (compare via
    :meth:`~repro.core.result.JoinResult.canonical_pairs`); fragments are
    the per-block pair buffers, so streaming consumption works unchanged.
    Pipeline times are host wall-clock, ``fidelity="none"``.
    """
    order = native_query_order(op, index, cfg, subset=subset)
    include_self = getattr(op, "include_self", True)
    t0 = time.perf_counter()
    fragments: list[np.ndarray] = []
    starts: list[float] = []
    ends: list[float] = []
    if op.kind == "self":
        blocks = _self_join_blocks(
            index, order, include_self=include_self, chunk_pairs=chunk_pairs
        )
    else:
        blocks = _bipartite_blocks(op, index, order, chunk_pairs=chunk_pairs)
    prev = 0.0
    for block in blocks:
        now = time.perf_counter() - t0
        fragments.append(block)
        starts.append(prev)
        ends.append(now)
        prev = now
    wall = time.perf_counter() - t0
    pairs = (
        np.concatenate(fragments, axis=0)
        if fragments
        else np.empty((0, 2), dtype=np.int64)
    )
    pipeline = PipelineResult(
        total_seconds=wall,
        kernel_start=np.array(starts, dtype=np.float64),
        kernel_end=np.array(ends, dtype=np.float64),
        transfer_end=np.array(ends, dtype=np.float64),
    )
    return JoinResult(
        pairs=pairs,
        epsilon=op.result_epsilon(index),
        num_points=len(order),
        batch_stats=[],
        pipeline=pipeline,
        config_description=description if description is not None else op.describe(cfg),
        fragments=tuple(fragments) if keep_fragments else None,
        fidelity="none",
    )


# ----------------------------------------------------------------------
# process worker backend
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SharedArray:
    """A picklable handle to an array workers can open without copying it.

    ``kind="shm"`` names a ``multiprocessing.shared_memory`` segment the
    host filled; ``kind="mmap"`` names the ``.npy``-backing file of a
    :class:`numpy.memmap` — workers re-open the file read-only, so a
    memory-mapped dataset is never made resident anywhere.
    """

    kind: str  # "shm" or "mmap"
    name: str  # segment name / file path
    shape: tuple
    dtype: str
    offset: int = 0


def _backing_memmap(arr: np.ndarray) -> np.memmap | None:
    """The file-backed memmap whose full buffer ``arr`` views, if any.

    Validation helpers (``as_points_array``) return base-ndarray *views*
    of a loaded memmap, so the walk follows ``.base``; the view must
    cover the map exactly — same start address, shape and dtype — for
    by-path sharing to be equivalent.
    """
    candidate = arr
    while candidate is not None:
        if isinstance(candidate, np.memmap) and getattr(candidate, "filename", None):
            same_data = (
                candidate.shape == arr.shape
                and candidate.dtype == arr.dtype
                and candidate.__array_interface__["data"][0]
                == arr.__array_interface__["data"][0]
            )
            return candidate if same_data else None
        candidate = getattr(candidate, "base", None)
    return None


def share_array(arr: np.ndarray):
    """Publish ``arr`` for worker processes: ``(handle, segment-or-None)``.

    File-backed memmaps (including validated views of one) are shared by
    path — no copy anywhere; anything else is copied once into a fresh
    shared-memory segment the caller must ``close()``/``unlink()`` after
    the pool shuts down.
    """
    mm = _backing_memmap(arr)
    if mm is not None:
        return (
            SharedArray(
                kind="mmap",
                name=str(mm.filename),
                shape=tuple(mm.shape),
                dtype=str(mm.dtype),
                offset=int(mm.offset),
            ),
            None,
        )
    from multiprocessing import shared_memory

    arr = np.ascontiguousarray(arr)
    shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[:] = arr
    return (
        SharedArray(kind="shm", name=shm.name, shape=tuple(arr.shape), dtype=str(arr.dtype)),
        shm,
    )


def _attach_array(handle: SharedArray):
    """Open a :class:`SharedArray` in this process; returns (array, keepalive)."""
    if handle.kind == "mmap":
        arr = np.memmap(
            handle.name,
            dtype=np.dtype(handle.dtype),
            mode="r",
            shape=handle.shape,
            offset=handle.offset,
        )
        return arr, arr
    from multiprocessing import shared_memory

    # under the fork start method workers share the host's resource
    # tracker, so attach-time registrations dedup against the creator's
    # and the host's unlink() retires the segment exactly once
    shm = shared_memory.SharedMemory(name=handle.name)
    arr = np.ndarray(handle.shape, dtype=np.dtype(handle.dtype), buffer=shm.buf)
    return arr, shm


# per-worker state, set once by the pool initializer
_WORKER: dict = {}


def _worker_init(points_handle, queries_handle, epsilon, spec, cfg, include_self, kind):
    pts, pts_keep = _attach_array(points_handle)
    queries = None
    q_keep = None
    if queries_handle is not None:
        queries, q_keep = _attach_array(queries_handle)
    index = GridIndex.build(pts, epsilon, spec=spec, method="sorted")
    _WORKER.clear()
    _WORKER.update(
        index=index,
        queries=queries,
        cfg=cfg,
        include_self=include_self,
        kind=kind,
        keepalive=(pts_keep, q_keep),
    )


class _WorkerOp:
    """Duck-typed stand-in for the runtime op inside a worker process."""

    def __init__(self, kind, include_self, queries):
        self.kind = kind
        self.include_self = include_self
        self.queries = queries

    def result_epsilon(self, index):
        return float(index.epsilon)

    def describe(self, cfg):
        return cfg.describe()


def _worker_run(task):
    shard_id, subset, chunk_pairs = task
    index = _WORKER["index"]
    cfg = _WORKER["cfg"]
    op = _WorkerOp(_WORKER["kind"], _WORKER["include_self"], _WORKER["queries"])
    t0 = time.perf_counter()
    order = native_query_order(op, index, cfg, subset=subset)
    if op.kind == "self":
        blocks = _self_join_blocks(
            index, order, include_self=op.include_self, chunk_pairs=chunk_pairs
        )
    else:
        blocks = _bipartite_blocks(op, index, order, chunk_pairs=chunk_pairs)
    found = [b for b in blocks]
    pairs = (
        np.concatenate(found, axis=0) if found else np.empty((0, 2), dtype=np.int64)
    )
    return shard_id, pairs, time.perf_counter() - t0, len(order)


def run_shards_process(
    op,
    index: GridIndex,
    cfg,
    shards,
    *,
    num_workers: int,
    dispatch_order,
    completed=None,
    save_shard=None,
    deadline_check=None,
    crash_at: int | None = None,
    chunk_pairs: int = NATIVE_CHUNK_PAIRS,
):
    """Fan a pooled native join's shards over real worker processes.

    ``dispatch_order`` is the shard-id dispatch sequence (the scheduler's
    most-work-first queue); ``completed`` maps already-durable shard ids
    to their results (checkpoint resume) — those are not re-executed.
    ``save_shard(shard_id, result)`` journals each completion as it
    arrives, in completion order, exactly like the inline scheduler.
    ``crash_at`` emulates a host crash after that many dispatches: the
    already-dispatched shards finish and journal, then
    :class:`~repro.resilience.faults.SimulatedCrashError` propagates.

    Returns ``(results, events)``: results indexed by shard id, events as
    ``(shard_id, device_id, start, end, num_pairs, num_points)`` tuples
    in host wall-clock seconds since pool start.
    """
    from concurrent.futures import ProcessPoolExecutor, as_completed

    from repro.resilience.faults import SimulatedCrashError

    completed = completed or {}
    results: list[JoinResult | None] = [None] * len(shards)
    events: list[tuple] = []
    shard_by_id = {s.shard_id: s for s in shards}

    points_handle, points_seg = share_array(index.points)
    queries_handle, queries_seg = (None, None)
    if op.kind != "self":
        queries_handle, queries_seg = share_array(op.queries)
    include_self = getattr(op, "include_self", True)
    t0 = time.perf_counter()
    crashed = False
    try:
        with ProcessPoolExecutor(
            max_workers=num_workers,
            initializer=_worker_init,
            initargs=(
                points_handle,
                queries_handle,
                float(index.epsilon),
                index.spec,
                cfg,
                include_self,
                op.kind,
            ),
        ) as pool:
            futures = {}
            dispatched = 0
            for slot, shard_id in enumerate(dispatch_order):
                shard = shard_by_id[shard_id]
                if deadline_check is not None:
                    deadline_check(f"shard {shard_id} dispatch")
                if crash_at is not None and dispatched >= crash_at:
                    crashed = True
                    break
                dispatched += 1
                cached = completed.get(shard_id)
                if cached is not None:
                    results[shard_id] = cached
                    events.append(
                        (shard_id, slot % num_workers, 0.0,
                         cached.total_seconds, cached.num_pairs, len(shard.points))
                    )
                    continue
                fut = pool.submit(
                    _worker_run,
                    (shard_id, np.asarray(shard.points, dtype=np.int64), chunk_pairs),
                )
                futures[fut] = slot % num_workers
            for fut in as_completed(futures):
                shard_id, pairs, seconds, num_queries = fut.result()
                end = time.perf_counter() - t0
                result = JoinResult(
                    pairs=pairs,
                    epsilon=op.result_epsilon(index),
                    num_points=num_queries,
                    batch_stats=[],
                    pipeline=PipelineResult(
                        total_seconds=seconds,
                        kernel_start=np.array([max(end - seconds, 0.0)]),
                        kernel_end=np.array([end]),
                        transfer_end=np.array([end]),
                    ),
                    config_description=op.describe(cfg),
                    fidelity="none",
                )
                results[shard_id] = result
                if save_shard is not None:
                    save_shard(shard_id, result)
                events.append(
                    (shard_id, futures[fut], max(end - seconds, 0.0), end,
                     len(pairs), num_queries)
                )
    finally:
        if points_seg is not None:
            points_seg.close()
            points_seg.unlink()
        if queries_seg is not None:
            queries_seg.close()
            queries_seg.unlink()
    if crashed:
        raise SimulatedCrashError(crash_at)
    return results, events
